//! Equivalence of the emulation library under randomized inputs: the
//! bit-sliced AES must match the table-based reference, and every scalar
//! SIMD emulation must match its architectural lane semantics.
//!
//! All differential pairs run through [`suit::check`]'s `check_diff`
//! oracle: a divergence shrinks to a minimal input pair and pins its
//! replay seed in `tests/corpus/`. The final test turns the framework on
//! itself — a deliberately broken AES must produce a byte-identical,
//! standalone-replayable shrink trace (the acceptance bar for "failures
//! are deterministic").

use suit::check::{corpus_dir, gen, gens, Checker};
use suit::emu::aes::{bitsliced, reference, Aes128Key};
use suit::emu::{emulate, simd, EmuOperands};
use suit::isa::{FaultableSet, Opcode, Vec128};

/// A differential checker preconfigured for this suite.
fn diff(name: &str) -> Checker {
    Checker::new(name).cases(256).corpus(corpus_dir!())
}

#[test]
fn bitsliced_aesenc_matches_reference() {
    diff("emu::aesenc").check_diff(
        &gens::vec128_pair(),
        |&(s, k)| bitsliced::aesenc(s, k),
        |&(s, k)| reference::aesenc(s, k),
    );
    diff("emu::aesenclast").check_diff(
        &gens::vec128_pair(),
        |&(s, k)| bitsliced::aesenclast(s, k),
        |&(s, k)| reference::aesenclast(s, k),
    );
}

#[test]
fn bitsliced_full_encryption_matches() {
    diff("emu::encrypt128").check_diff(
        &gen::pair(&gen::u128_any(), &gens::vec128()),
        |&(key, b)| bitsliced::encrypt128(&Aes128Key::expand(key.to_le_bytes()), b),
        |&(key, b)| reference::encrypt128(&Aes128Key::expand(key.to_le_bytes()), b),
    );
}

#[test]
fn four_wide_kernel_lanes_are_independent() {
    diff("emu::aesenc4").check_diff(
        &gen::pair(&gens::vec128().array::<4>(), &gens::vec128()),
        |&(bs, k)| bitsliced::aesenc4(bs, k),
        |&(bs, k)| bs.map(|b| reference::aesenc(b, k)),
    );
}

#[test]
fn eight_wide_kernel_lanes_are_independent() {
    diff("emu::aesenc8").check_diff(
        &gen::pair(&gens::vec128().array::<8>(), &gens::vec128()),
        |&(bs, k)| bitsliced::aesenc8(bs, k),
        |&(bs, k)| bs.map(|b| reference::aesenc(b, k)),
    );
    diff("emu::aesenclast8").check_diff(
        &gen::pair(&gens::vec128().array::<8>(), &gens::vec128()),
        |&(bs, k)| bitsliced::aesenclast8(bs, k),
        |&(bs, k)| bs.map(|b| reference::aesenclast(b, k)),
    );
}

/// The wide path must agree with the narrow path *and* the table-based
/// reference under the same random keys and blocks: x8 ≡ x4 ≡ reference.
#[test]
fn eight_wide_encryption_matches_four_wide_and_reference() {
    let input = gen::pair(&gen::u128_any(), &gens::vec128().array::<8>());
    diff("emu::encrypt128_x8").check_diff(
        &input,
        |&(key, bs)| bitsliced::encrypt128_x8(&Aes128Key::expand(key.to_le_bytes()), bs),
        |&(key, bs)| bs.map(|b| reference::encrypt128(&Aes128Key::expand(key.to_le_bytes()), b)),
    );
    diff("emu::encrypt128_x8_vs_x4").check_diff(
        &input,
        |&(key, bs)| bitsliced::encrypt128_x8(&Aes128Key::expand(key.to_le_bytes()), bs),
        |&(key, bs)| {
            let k = Aes128Key::expand(key.to_le_bytes());
            let lo = bitsliced::encrypt128_x4(&k, [bs[0], bs[1], bs[2], bs[3]]);
            let hi = bitsliced::encrypt128_x4(&k, [bs[4], bs[5], bs[6], bs[7]]);
            [lo[0], lo[1], lo[2], lo[3], hi[0], hi[1], hi[2], hi[3]]
        },
    );
}

#[test]
fn vpaddq_matches_lane_semantics() {
    diff("emu::vpaddq").check_diff(
        &gens::vec128_pair(),
        |&(a, b)| simd::vpaddq(a, b).to_u64x2(),
        |&(a, b)| {
            let (a, b) = (a.to_u64x2(), b.to_u64x2());
            [a[0].wrapping_add(b[0]), a[1].wrapping_add(b[1])]
        },
    );
}

#[test]
fn vpmaxsd_matches_lane_semantics() {
    diff("emu::vpmaxsd").check_diff(
        &gens::vec128_pair(),
        |&(a, b)| simd::vpmaxsd(a, b).to_i32x4(),
        |&(a, b)| {
            let (a, b) = (a.to_i32x4(), b.to_i32x4());
            std::array::from_fn(|i| a[i].max(b[i]))
        },
    );
}

#[test]
fn vpsrad_matches_lane_semantics() {
    diff("emu::vpsrad").check_diff(
        &gen::pair(&gens::vec128(), &gen::byte()),
        |&(a, count)| simd::vpsrad(a, count).to_i32x4(),
        |&(a, count)| {
            let shift = u32::from(count).min(31);
            a.to_i32x4().map(|lane| lane >> shift)
        },
    );
}

#[test]
fn vpcmp_produces_all_or_nothing_masks() {
    // Mix fresh pairs with forced duplicates so the equal path is hit.
    let operands =
        gen::pair(&gens::vec128_pair(), &gen::bool_any())
            .map(|((a, b), dup)| if dup { (a, a) } else { (a, b) });
    diff("emu::vpcmp").check(&operands, |&(a, b)| {
        let eq = simd::vpcmpeqd(a, b).to_u32x4();
        let gt = simd::vpcmpgtd(a, b).to_u32x4();
        let (ai, bi) = (a.to_i32x4(), b.to_i32x4());
        for i in 0..4 {
            if eq[i] != 0 && eq[i] != u32::MAX {
                return Err(format!("lane {i}: partial mask {:#010x}", eq[i]));
            }
            if (eq[i] == u32::MAX) != (ai[i] == bi[i]) {
                return Err(format!("lane {i}: eq mask disagrees"));
            }
            if (gt[i] == u32::MAX) != (ai[i] > bi[i]) {
                return Err(format!("lane {i}: gt mask disagrees"));
            }
        }
        Ok(())
    });
}

#[test]
fn clmul_is_xor_linear() {
    let f = |x: u64, y: u64| {
        simd::vpclmulqdq(Vec128::from_u64x2([x, 0]), Vec128::from_u64x2([y, 0]), 0).as_u128()
    };
    diff("emu::clmul_linear").check(
        &gen::triple(&gen::u64_any(), &gen::u64_any(), &gen::u64_any()),
        move |&(a, b, c)| {
            if f(a, b ^ c) != f(a, b) ^ f(a, c) {
                return Err("carry-less multiply is not XOR-linear".into());
            }
            if f(a, b) != f(b, a) {
                return Err("carry-less multiply is not commutative".into());
            }
            Ok(())
        },
    );
}

#[test]
fn vandn_uses_x86_operand_order() {
    diff("emu::vandn").check_diff(
        &gens::vec128_pair(),
        |&(a, b)| simd::vandn(a, b).as_u128(),
        |&(a, b)| !a.as_u128() & b.as_u128(),
    );
}

#[test]
fn vsqrtpd_squares_back() {
    // Positive finite doubles spread over ~300 orders of magnitude.
    let lane = gen::pair(&gen::f64_in(0.0, 1.0), &gen::u32_in(0..=149))
        .map(|(m, e)| m * 10f64.powi(e as i32));
    diff("emu::vsqrtpd").check(&gen::pair(&lane, &lane), |&(l0, l1)| {
        let a = [l0, l1];
        let r = simd::vsqrtpd(Vec128::from_f64x2(a)).to_f64x2();
        for i in 0..2 {
            let back = r[i] * r[i];
            let rel = if a[i] == 0.0 {
                0.0
            } else {
                (back - a[i]).abs() / a[i]
            };
            if rel >= 1e-12 {
                return Err(format!("lane {i}: sqrt({})² = {back}", a[i]));
            }
        }
        Ok(())
    });
}

#[test]
fn imul_emulation_is_a_full_multiplier() {
    diff("emu::imul_full").check_diff(
        &gen::pair(&gen::u64_any(), &gen::u64_any()),
        |&(a, b)| {
            emulate(
                Opcode::Imul,
                EmuOperands::new(Vec128::from_u64x2([a, 0]), Vec128::from_u64x2([b, 0])),
            )
            .unwrap()
            .value
            .as_u128()
        },
        |&(a, b)| u128::from(a) * u128::from(b),
    );
}

#[test]
fn dispatcher_covers_exactly_the_faultable_set() {
    diff("emu::dispatch_coverage").check(&gens::vec128_pair(), |&(a, b)| {
        let ops = EmuOperands::new(a, b);
        for op in Opcode::ALL {
            if emulate(op, ops).is_ok() != FaultableSet::table1().contains(op) {
                return Err(format!("dispatcher disagrees with Table 1 on {op}"));
            }
        }
        Ok(())
    });
}

/// The framework's own acceptance bar: a deliberately broken AES (output
/// bit flipped for a subset of inputs) must (a) be caught, (b) shrink to
/// a byte-identical trace on every run of the same seed, and (c) re-fail
/// standalone from the reported replay seed with the identical result.
#[test]
fn broken_aes_shrinks_deterministically() {
    let broken = |s: Vec128, k: Vec128| {
        let good = bitsliced::aesenc(s, k);
        // The planted bug: inputs whose low state byte has its top bit
        // set take a corrupted path.
        if s.as_u128() & 0x80 != 0 {
            Vec128::from_u128(good.as_u128() ^ 1)
        } else {
            good
        }
    };
    let run = || {
        Checker::new("emu::broken_aes")
            .cases(256)
            .check_report(&gens::vec128_pair(), |&(s, k)| {
                if broken(s, k) == reference::aesenc(s, k) {
                    Ok(())
                } else {
                    Err("bit-sliced output diverges from the reference".into())
                }
            })
            .expect("the planted bug must be caught")
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "same seed must shrink along a byte-identical trace");
    assert!(!a.trace.is_empty(), "the failure must actually shrink");

    // The reported seed re-fails standalone and re-shrinks identically.
    let replayed = Checker::new("emu::broken_aes")
        .replay(
            &gens::vec128_pair(),
            |&(s, k)| {
                if broken(s, k) == reference::aesenc(s, k) {
                    Ok(())
                } else {
                    Err("bit-sliced output diverges from the reference".into())
                }
            },
            a.seed,
        )
        .expect("the replay seed must re-fail standalone");
    assert_eq!(replayed, a);

    // The minimal counterexample is on the planted-bug boundary: the
    // low byte's top bit set and nothing else required.
    assert!(
        a.minimal_debug.contains("80") || a.minimal_debug.contains("128"),
        "minimal counterexample should isolate the planted bit: {}",
        a.minimal_debug
    );
}
