//! Equivalence of the emulation library under randomized inputs: the
//! bit-sliced AES must match the table-based reference, and every scalar
//! SIMD emulation must match its architectural lane semantics.
//!
//! Cases come from explicitly seeded [`SuitRng`] loops, so each run tests
//! the identical inputs and a failure names its iteration.

use suit::emu::aes::{bitsliced, reference, Aes128Key};
use suit::emu::{emulate, simd, EmuOperands};
use suit::isa::{FaultableSet, Opcode, Vec128};
use suit_rng::{Rng, RngCore, SuitRng};

const CASES: usize = 256;

fn i32x4(rng: &mut dyn RngCore) -> [i32; 4] {
    [
        rng.next_u64() as i32,
        rng.next_u64() as i32,
        rng.next_u64() as i32,
        rng.next_u64() as i32,
    ]
}

fn u64x2(rng: &mut dyn RngCore) -> [u64; 2] {
    [rng.next_u64(), rng.next_u64()]
}

#[test]
fn bitsliced_aesenc_matches_reference() {
    let mut rng = SuitRng::seed_from_u64(0xAE5_0001);
    for case in 0..CASES {
        let s = Vec128::from_u128(rng.u128());
        let k = Vec128::from_u128(rng.u128());
        assert_eq!(
            bitsliced::aesenc(s, k),
            reference::aesenc(s, k),
            "case {case}"
        );
        assert_eq!(
            bitsliced::aesenclast(s, k),
            reference::aesenclast(s, k),
            "case {case}"
        );
    }
}

#[test]
fn bitsliced_full_encryption_matches() {
    let mut rng = SuitRng::seed_from_u64(0xAE5_0002);
    for case in 0..CASES {
        let key = Aes128Key::expand(rng.u128().to_le_bytes());
        let b = Vec128::from_u128(rng.u128());
        assert_eq!(
            bitsliced::encrypt128(&key, b),
            reference::encrypt128(&key, b),
            "case {case}"
        );
    }
}

#[test]
fn four_wide_kernel_lanes_are_independent() {
    let mut rng = SuitRng::seed_from_u64(0xAE5_0003);
    for case in 0..CASES {
        let blocks = [rng.u128(), rng.u128(), rng.u128(), rng.u128()];
        let k = Vec128::from_u128(rng.u128());
        let bs = blocks.map(Vec128::from_u128);
        let out = bitsliced::aesenc4(bs, k);
        for i in 0..4 {
            assert_eq!(out[i], reference::aesenc(bs[i], k), "case {case}, lane {i}");
        }
    }
}

#[test]
fn vpaddq_matches_lane_semantics() {
    let mut rng = SuitRng::seed_from_u64(0xAE5_0004);
    for case in 0..CASES {
        let a = u64x2(&mut rng);
        let b = u64x2(&mut rng);
        let r = simd::vpaddq(Vec128::from_u64x2(a), Vec128::from_u64x2(b)).to_u64x2();
        assert_eq!(r[0], a[0].wrapping_add(b[0]), "case {case}");
        assert_eq!(r[1], a[1].wrapping_add(b[1]), "case {case}");
    }
}

#[test]
fn vpmaxsd_matches_lane_semantics() {
    let mut rng = SuitRng::seed_from_u64(0xAE5_0005);
    for case in 0..CASES {
        let a = i32x4(&mut rng);
        let b = i32x4(&mut rng);
        let r = simd::vpmaxsd(Vec128::from_i32x4(a), Vec128::from_i32x4(b)).to_i32x4();
        for i in 0..4 {
            assert_eq!(r[i], a[i].max(b[i]), "case {case}, lane {i}");
        }
    }
}

#[test]
fn vpsrad_matches_lane_semantics() {
    let mut rng = SuitRng::seed_from_u64(0xAE5_0006);
    for case in 0..CASES {
        let a = i32x4(&mut rng);
        let count = rng.u8();
        let r = simd::vpsrad(Vec128::from_i32x4(a), count).to_i32x4();
        let shift = u32::from(count).min(31);
        for i in 0..4 {
            assert_eq!(r[i], a[i] >> shift, "case {case}, lane {i}");
        }
    }
}

#[test]
fn vpcmp_produces_all_or_nothing_masks() {
    let mut rng = SuitRng::seed_from_u64(0xAE5_0007);
    for case in 0..CASES {
        let a = i32x4(&mut rng);
        // Mix fresh draws with near-duplicates so the equal path is hit.
        let b = if rng.bool() { a } else { i32x4(&mut rng) };
        let eq = simd::vpcmpeqd(Vec128::from_i32x4(a), Vec128::from_i32x4(b)).to_u32x4();
        let gt = simd::vpcmpgtd(Vec128::from_i32x4(a), Vec128::from_i32x4(b)).to_u32x4();
        for i in 0..4 {
            assert!(eq[i] == 0 || eq[i] == u32::MAX, "case {case}, lane {i}");
            assert_eq!(eq[i] == u32::MAX, a[i] == b[i], "case {case}, lane {i}");
            assert_eq!(gt[i] == u32::MAX, a[i] > b[i], "case {case}, lane {i}");
        }
    }
}

#[test]
fn clmul_is_xor_linear() {
    let mut rng = SuitRng::seed_from_u64(0xAE5_0008);
    let f = |x: u64, y: u64| {
        simd::vpclmulqdq(Vec128::from_u64x2([x, 0]), Vec128::from_u64x2([y, 0]), 0).as_u128()
    };
    for case in 0..CASES {
        let (a, b, c) = (rng.u64(), rng.u64(), rng.u64());
        assert_eq!(f(a, b ^ c), f(a, b) ^ f(a, c), "case {case}");
        assert_eq!(f(a, b), f(b, a), "case {case}");
    }
}

#[test]
fn vandn_uses_x86_operand_order() {
    let mut rng = SuitRng::seed_from_u64(0xAE5_0009);
    for case in 0..CASES {
        let (a, b) = (rng.u128(), rng.u128());
        let r = simd::vandn(Vec128::from_u128(a), Vec128::from_u128(b));
        assert_eq!(r.as_u128(), !a & b, "case {case}");
    }
}

#[test]
fn vsqrtpd_squares_back() {
    let mut rng = SuitRng::seed_from_u64(0xAE5_000A);
    for case in 0..CASES {
        // Positive finite doubles spread over ~300 orders of magnitude.
        let a = [
            rng.f64() * 10f64.powi(rng.gen_range(0u32..150) as i32),
            rng.f64() * 10f64.powi(rng.gen_range(0u32..150) as i32),
        ];
        let r = simd::vsqrtpd(Vec128::from_f64x2(a)).to_f64x2();
        for i in 0..2 {
            let back = r[i] * r[i];
            let rel = if a[i] == 0.0 {
                0.0
            } else {
                (back - a[i]).abs() / a[i]
            };
            assert!(rel < 1e-12, "case {case}, lane {i}: {} vs {}", back, a[i]);
        }
    }
}

#[test]
fn imul_emulation_is_a_full_multiplier() {
    let mut rng = SuitRng::seed_from_u64(0xAE5_000B);
    for case in 0..CASES {
        let (a, b) = (rng.u64(), rng.u64());
        let r = emulate(
            Opcode::Imul,
            EmuOperands::new(Vec128::from_u64x2([a, 0]), Vec128::from_u64x2([b, 0])),
        )
        .unwrap();
        assert_eq!(r.value.as_u128(), (a as u128) * (b as u128), "case {case}");
    }
}

#[test]
fn dispatcher_covers_exactly_the_faultable_set() {
    let mut rng = SuitRng::seed_from_u64(0xAE5_000C);
    for case in 0..CASES {
        let ops = EmuOperands::new(Vec128::from_u128(rng.u128()), Vec128::from_u128(rng.u128()));
        for op in Opcode::ALL {
            let result = emulate(op, ops);
            assert_eq!(
                result.is_ok(),
                FaultableSet::table1().contains(op),
                "case {case}: {op}"
            );
        }
    }
}
