//! Property-based equivalence of the emulation library: the bit-sliced
//! AES must match the table-based reference on *all* inputs, and every
//! scalar SIMD emulation must match its architectural lane semantics.

use proptest::prelude::*;
use suit::emu::aes::{bitsliced, reference, Aes128Key};
use suit::emu::{emulate, simd, EmuOperands};
use suit::isa::{FaultableSet, Opcode, Vec128};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bitsliced_aesenc_matches_reference(state in any::<u128>(), rk in any::<u128>()) {
        let s = Vec128::from_u128(state);
        let k = Vec128::from_u128(rk);
        prop_assert_eq!(bitsliced::aesenc(s, k), reference::aesenc(s, k));
        prop_assert_eq!(bitsliced::aesenclast(s, k), reference::aesenclast(s, k));
    }

    #[test]
    fn bitsliced_full_encryption_matches(key in any::<[u8; 16]>(), block in any::<u128>()) {
        let key = Aes128Key::expand(key);
        let b = Vec128::from_u128(block);
        prop_assert_eq!(bitsliced::encrypt128(&key, b), reference::encrypt128(&key, b));
    }

    #[test]
    fn four_wide_kernel_lanes_are_independent(blocks in any::<[u128; 4]>(), rk in any::<u128>()) {
        let k = Vec128::from_u128(rk);
        let bs = blocks.map(Vec128::from_u128);
        let out = bitsliced::aesenc4(bs, k);
        for i in 0..4 {
            prop_assert_eq!(out[i], reference::aesenc(bs[i], k), "lane {}", i);
        }
    }

    #[test]
    fn vpaddq_matches_lane_semantics(a in any::<[u64; 2]>(), b in any::<[u64; 2]>()) {
        let r = simd::vpaddq(Vec128::from_u64x2(a), Vec128::from_u64x2(b)).to_u64x2();
        prop_assert_eq!(r[0], a[0].wrapping_add(b[0]));
        prop_assert_eq!(r[1], a[1].wrapping_add(b[1]));
    }

    #[test]
    fn vpmaxsd_matches_lane_semantics(a in any::<[i32; 4]>(), b in any::<[i32; 4]>()) {
        let r = simd::vpmaxsd(Vec128::from_i32x4(a), Vec128::from_i32x4(b)).to_i32x4();
        for i in 0..4 {
            prop_assert_eq!(r[i], a[i].max(b[i]));
        }
    }

    #[test]
    fn vpsrad_matches_lane_semantics(a in any::<[i32; 4]>(), count in any::<u8>()) {
        let r = simd::vpsrad(Vec128::from_i32x4(a), count).to_i32x4();
        let shift = u32::from(count).min(31);
        for i in 0..4 {
            prop_assert_eq!(r[i], a[i] >> shift);
        }
    }

    #[test]
    fn vpcmp_produces_all_or_nothing_masks(a in any::<[i32; 4]>(), b in any::<[i32; 4]>()) {
        let eq = simd::vpcmpeqd(Vec128::from_i32x4(a), Vec128::from_i32x4(b)).to_u32x4();
        let gt = simd::vpcmpgtd(Vec128::from_i32x4(a), Vec128::from_i32x4(b)).to_u32x4();
        for i in 0..4 {
            prop_assert!(eq[i] == 0 || eq[i] == u32::MAX);
            prop_assert_eq!(eq[i] == u32::MAX, a[i] == b[i]);
            prop_assert_eq!(gt[i] == u32::MAX, a[i] > b[i]);
        }
    }

    #[test]
    fn clmul_is_xor_linear(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let f = |x: u64, y: u64| {
            simd::vpclmulqdq(
                Vec128::from_u64x2([x, 0]),
                Vec128::from_u64x2([y, 0]),
                0,
            ).as_u128()
        };
        prop_assert_eq!(f(a, b ^ c), f(a, b) ^ f(a, c));
        prop_assert_eq!(f(a, b), f(b, a));
    }

    #[test]
    fn vandn_uses_x86_operand_order(a in any::<u128>(), b in any::<u128>()) {
        let r = simd::vandn(Vec128::from_u128(a), Vec128::from_u128(b));
        prop_assert_eq!(r.as_u128(), !a & b);
    }

    #[test]
    fn vsqrtpd_squares_back(a in prop::array::uniform2(0.0f64..1e150)) {
        let r = simd::vsqrtpd(Vec128::from_f64x2(a)).to_f64x2();
        for i in 0..2 {
            let back = r[i] * r[i];
            let rel = if a[i] == 0.0 { 0.0 } else { (back - a[i]).abs() / a[i] };
            prop_assert!(rel < 1e-12, "lane {}: {} vs {}", i, back, a[i]);
        }
    }

    #[test]
    fn imul_emulation_is_a_full_multiplier(a in any::<u64>(), b in any::<u64>()) {
        let r = emulate(
            Opcode::Imul,
            EmuOperands::new(Vec128::from_u64x2([a, 0]), Vec128::from_u64x2([b, 0])),
        ).unwrap();
        prop_assert_eq!(r.value.as_u128(), (a as u128) * (b as u128));
    }

    #[test]
    fn dispatcher_covers_exactly_the_faultable_set(a in any::<u128>(), b in any::<u128>()) {
        let ops = EmuOperands::new(Vec128::from_u128(a), Vec128::from_u128(b));
        for op in Opcode::ALL {
            let result = emulate(op, ops);
            prop_assert_eq!(
                result.is_ok(),
                FaultableSet::table1().contains(op),
                "{}", op
            );
        }
    }
}
