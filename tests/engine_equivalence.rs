//! Differential equivalence suite: the production arena scheduler vs.
//! the event-heap reference vs. the legacy scan loop.
//!
//! Three engines share the boot, per-quantum advancement, dispatch, and
//! collection code verbatim (`suit::sim::engine`) and differ only in
//! event selection: the production arena loop (`suit::sim::arena` —
//! linear argmin over flat core state plus a batched lone-core fast
//! path), the PR 8 event-heap loop (entry points in
//! `suit::sim::heap_ref`), and the original linear scan
//! (`suit::sim::legacy`). This suite pins all three **byte-identical** —
//! same `Debug` rendering, so every `f64` bit pattern agrees, not just
//! approximate equality — across:
//!
//! * every built-in workload profile × all three curve-switching
//!   strategies (`fv`, `f`, `V`), at 1 and 4 executor threads;
//! * multi-core consolidation mixes on the shared-domain CPU
//!   (`simulate_mixed`);
//! * streamed traces through `run_stream`;
//! * a ≥1024-core fleet scenario, sharded at 1 and 4 threads and via
//!   the serial component-scheduler driver.
//!
//! The suite also pins the idle-park bugfix: the legacy loop advanced
//! *every* core of a shared DVFS domain each quantum, finished or not;
//! the production engines drop finished cores from their live sets, so
//! an idle window contributes zero per-core step events to telemetry.
//! Finally it asserts the arena scheduler's hot loop is allocation-free
//! once its thread-local scratch is warm, via the telemetry
//! `EngineScratchAllocs` counter.

use suit::exec::Threads;
use suit::hw::{CpuModel, UndervoltLevel};
use suit::sim::engine::{run_stream, simulate, simulate_mixed, SimConfig};
use suit::sim::fleet::{FleetConfig, FleetSim};
use suit::sim::{heap_ref, legacy};
use suit::telemetry::{Counter, Telemetry};
use suit::trace::{profile, TraceGen};

const INSTS: u64 = 20_000_000;

fn strategies(level: UndervoltLevel) -> Vec<(&'static str, SimConfig)> {
    let fv = SimConfig::fv_intel(level);
    let f = SimConfig {
        strategy: suit::core::OperatingStrategy::Frequency,
        ..SimConfig::fv_intel(level)
    };
    let v = SimConfig {
        strategy: suit::core::OperatingStrategy::Voltage,
        ..SimConfig::fv_intel(level)
    };
    vec![("fv", fv), ("f", f), ("V", v)]
}

/// Every (workload × strategy) cell, one production arena run against
/// both references, compared byte-for-byte — fanned out at both 1 and 4
/// threads, which must also agree with each other.
#[test]
fn all_workloads_all_strategies_match_legacy() {
    let cpu = CpuModel::xeon_4208();
    let cells: Vec<(&'static str, SimConfig)> = profile::all()
        .iter()
        .flat_map(|p| {
            strategies(UndervoltLevel::Mv97)
                .into_iter()
                .map(move |(_, cfg)| (p.name, cfg.with_max_insts(INSTS)))
        })
        .collect();
    assert!(cells.len() >= 75, "expected 25 workloads x 3 strategies");

    let run_all = |threads: Threads| -> Vec<String> {
        suit::exec::run(cells.len(), threads, |i| {
            let (name, cfg) = &cells[i];
            let p = profile::by_name(name).expect("known profile");
            let new = simulate(&cpu, p, cfg);
            let heap = heap_ref::simulate(&cpu, p, cfg);
            let old = legacy::simulate(&cpu, p, cfg);
            assert_eq!(new, heap, "{name} {:?} diverged from heap", cfg.strategy);
            assert_eq!(new, old, "{name} {:?} diverged from legacy", cfg.strategy);
            format!("{new:?}")
        })
    };

    let t1 = run_all(Threads::Fixed(1));
    let t4 = run_all(Threads::Fixed(4));
    assert_eq!(t1, t4, "results depend on thread count");
}

/// Consolidation mixes exercise the multi-core shared-domain path
/// (heterogeneous cores, one curve) where event-selection order
/// matters most.
#[test]
fn consolidation_mixes_match_legacy() {
    let cpu = CpuModel::i9_9900k();
    let cfg = SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(INSTS);
    for name in profile::MIX_NAMES {
        let workloads = profile::mix(name).expect("known mix");
        let new = simulate_mixed(&cpu, &workloads, &cfg);
        let heap = heap_ref::simulate_mixed(&cpu, &workloads, &cfg);
        let old = legacy::simulate_mixed(&cpu, &workloads, &cfg);
        assert_eq!(
            format!("{new:?}"),
            format!("{heap:?}"),
            "mix '{name}' diverged from the event-heap reference"
        );
        assert_eq!(
            format!("{new:?}"),
            format!("{old:?}"),
            "mix '{name}' diverged from legacy"
        );
    }
}

/// Streamed input (`run_stream`) drives the engine through the
/// iterator-backed core instead of the lazy generator.
#[test]
fn streamed_traces_match_legacy() {
    let cpu = CpuModel::xeon_4208();
    let p = profile::by_name("502.gcc").expect("502.gcc");
    let meta = suit::trace::io::TraceMeta {
        name: p.name.into(),
        ipc: p.ipc,
        total_insts: p.total_insts,
    };
    for (label, cfg) in strategies(UndervoltLevel::Mv97) {
        let cfg = cfg.with_max_insts(INSTS);
        let bursts: Vec<suit::trace::Burst> = TraceGen::new(p, 0x5EED).collect();
        let new = run_stream(&cpu, &meta, bursts.iter().copied(), &cfg);
        let heap = heap_ref::run_stream(&cpu, &meta, bursts.iter().copied(), &cfg);
        let old = legacy::run_stream(&cpu, &meta, bursts.iter().copied(), &cfg);
        assert_eq!(
            format!("{new:?}"),
            format!("{heap:?}"),
            "streamed {label} diverged from the event-heap reference"
        );
        assert_eq!(
            format!("{new:?}"),
            format!("{old:?}"),
            "streamed {label} diverged from legacy"
        );
    }
}

/// A ≥1024-core fleet: byte-identical across thread counts, and the
/// component-scheduler driver reproduces the sharded result exactly.
#[test]
fn kilo_core_fleet_is_engine_invariant() {
    let cfg = FleetConfig {
        racks: 16,
        domains_per_rack: 16,
        cores_per_domain: 4, // 16 x 16 x 4 = 1024 cores
        epochs: 2,
        epoch_insts: 1_000_000,
        workloads: vec!["502.gcc".into(), "557.xz".into()],
        ..FleetConfig::default()
    };
    let sim = FleetSim::new(cfg).expect("valid fleet");
    assert_eq!(sim.active_domains() * sim.config().cores_per_domain, 1024);
    let t1 = sim.run(Threads::Fixed(1));
    let t4 = sim.run(Threads::Fixed(4));
    assert_eq!(format!("{t1:?}"), format!("{t4:?}"), "thread-dependent");
    let ev = sim.run_event_driven();
    assert_eq!(format!("{t1:?}"), format!("{ev:?}"), "driver-dependent");
    assert!(t1.events() > 0, "fleet simulated nothing");
}

/// Idle-park regression: cores that finish early leave the scheduler's
/// live set, so idle windows contribute zero per-core step events. A
/// 4-core mix with very different workload lengths makes the cores
/// finish far apart; if parked cores were still being stepped, the
/// per-core step count would equal `cores x quanta`.
#[test]
fn idle_parked_cores_contribute_zero_steps() {
    let cpu = CpuModel::i9_9900k();
    let tele = Telemetry::with_capacity(64);
    let cfg = SimConfig {
        cores: 4,
        ..SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(8_000_000)
    };
    // Heterogeneous IPCs make the cores finish far apart (the 0.5-IPC
    // mcf core runs ~4x longer than the 1.8-IPC perlbench core).
    let profiles: Vec<&suit::trace::profile::WorkloadProfile> =
        ["505.mcf", "502.gcc", "557.xz", "500.perlbench"]
            .iter()
            .map(|n| profile::by_name(n).expect("known profile"))
            .collect();
    let _ = suit::sim::engine::simulate_mixed_telemetry(&cpu, &profiles, &cfg, &tele);
    let snap = tele.snapshot();
    let quanta = snap.counter(Counter::EngineQuanta);
    let steps = snap.counter(Counter::CoreSteps);
    assert!(quanta > 0, "no quanta recorded");
    assert!(
        steps < 4 * quanta,
        "every quantum stepped all 4 cores ({steps} steps over {quanta} quanta): \
         idle-parked cores are being advanced"
    );
    assert!(steps >= quanta, "fewer steps than quanta is impossible");
}

/// Allocation-free hot loop: once a warm-up run has grown the arena
/// scheduler's thread-local scratch to its high-water mark, later runs
/// on the same thread never reallocate — `EngineScratchAllocs` ticks
/// only when a reset has to grow a buffer, and must stay at zero for a
/// fresh recording run of the same shape (single-core and the 4-core
/// shared-domain path).
#[test]
fn warm_quantum_loop_never_allocates_scratch() {
    let cpu = CpuModel::xeon_4208();
    let p = profile::by_name("502.gcc").expect("502.gcc");
    let cfg = SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(INSTS);
    let mixed_cpu = CpuModel::i9_9900k();
    let mixed_cfg = SimConfig {
        cores: 4,
        ..SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(8_000_000)
    };
    let profiles: Vec<&suit::trace::profile::WorkloadProfile> =
        ["505.mcf", "502.gcc", "557.xz", "500.perlbench"]
            .iter()
            .map(|n| profile::by_name(n).expect("known profile"))
            .collect();

    // Warm-up: grows this thread's scratch to the 4-core high-water mark.
    let _ = simulate(&cpu, p, &cfg);
    let _ = simulate_mixed(&mixed_cpu, &profiles, &mixed_cfg);

    // Recording runs on the warmed thread must not touch the allocator.
    let tele = Telemetry::with_capacity(64);
    let warm_single = suit::sim::engine::simulate_telemetry(&cpu, p, &cfg, &tele);
    let _ = suit::sim::engine::simulate_mixed_telemetry(&mixed_cpu, &profiles, &mixed_cfg, &tele);
    let snap = tele.snapshot();
    assert!(
        snap.counter(Counter::EngineQuanta) > 0,
        "no quanta recorded"
    );
    assert_eq!(
        snap.counter(Counter::EngineScratchAllocs),
        0,
        "warm arena runs grew their scratch buffers"
    );

    // The reuse is invisible in the results: a warmed run is byte-equal
    // to a cold reference run.
    assert_eq!(
        format!("{warm_single:?}"),
        format!("{:?}", legacy::simulate(&cpu, p, &cfg))
    );
}
