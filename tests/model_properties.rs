//! Property-style invariants over the hardware models, trace generators
//! and the system simulator — the "can't-happen" class of bugs.
//!
//! Every seeded loop here runs through [`suit::check`]: cases are
//! explored from a deterministic base seed, failures shrink to a minimal
//! counterexample, and the failing case seed is persisted to
//! `tests/corpus/` so the regression replays first on every future run.

use suit::check::{corpus_dir, gen, Checker};
use suit::core::strategy::StrategyParams;
use suit::core::thrash::ThrashGuard;
use suit::hw::{CpuModel, DelayTable, DvfsCurve, PointKind, TransitionDelays, UndervoltLevel};
use suit::isa::{SimDuration, SimTime};
use suit::rng::SuitRng;
use suit::sim::engine::{simulate, SimConfig};
use suit::trace::{profile, Burst, TraceGen};

/// DVFS curve interpolation is monotone and bounded for any query pair.
#[test]
fn dvfs_curve_is_monotone() {
    let c = DvfsCurve::i9_9900k();
    Checker::new("model::dvfs_monotone")
        .cases(256)
        .corpus(corpus_dir!())
        .check(
            &gen::pair(&gen::f64_in(0.5, 6.0), &gen::f64_in(0.5, 6.0)),
            move |&(f1, f2)| {
                let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
                if c.voltage_at(lo) > c.voltage_at(hi) + 1e-9 {
                    return Err(format!("voltage not monotone between {lo} and {hi}"));
                }
                let v = c.voltage_at(f1);
                if !(700.0..=1300.0).contains(&v) {
                    return Err(format!("voltage {v} outside the physical range"));
                }
                Ok(())
            },
        );
}

/// `max_freq_at_voltage` inverts `voltage_at` on the curve's range.
#[test]
fn dvfs_inversion_roundtrips() {
    let c = DvfsCurve::i9_9900k();
    Checker::new("model::dvfs_inversion")
        .cases(256)
        .corpus(corpus_dir!())
        .check(&gen::f64_in(1.0, 5.0), move |&f| {
            let v = c.voltage_at(f);
            let back = c.max_freq_at_voltage(v);
            // On flat segments many frequencies share a voltage: the
            // inverse must return one at least as fast, still safe.
            if back < f - 1e-9 {
                return Err(format!("inverse {back} slower than query {f}"));
            }
            if c.voltage_at(back) > v + 1e-9 {
                return Err(format!("inverse {back} needs more than {v} mV"));
            }
            Ok(())
        });
}

/// The steady-state undervolt response is well behaved on the whole
/// modelled range, not just at the two paper points.
#[test]
fn undervolt_response_is_sane() {
    Checker::new("model::undervolt_response")
        .cases(128)
        .corpus(corpus_dir!())
        .check(&gen::f64_in(-97.0, 0.0), |&offset| {
            for cpu in [
                CpuModel::i9_9900k(),
                CpuModel::ryzen_7700x(),
                CpuModel::i5_1035g1(),
            ] {
                let r = cpu.steady.response(offset);
                if r.power > 1e-12 {
                    return Err(format!(
                        "{}: undervolting raised power {}",
                        cpu.name, r.power
                    ));
                }
                if r.score < -1e-12 {
                    return Err(format!("{}: negative score {}", cpu.name, r.score));
                }
                if r.power <= -0.35 {
                    return Err(format!("{}: implausible power {}", cpu.name, r.power));
                }
                if r.score >= 0.25 {
                    return Err(format!("{}: implausible score {}", cpu.name, r.score));
                }
            }
            Ok(())
        });
}

/// The precomputed [`DelayTable`] is bit-identical to the closed-form
/// µs → [`SimDuration`] conversions for every operating point ×
/// transition kind — including the Monte-Carlo jittered paths, which
/// rebuild the table from each run's sampled delays (mirroring the
/// resampling `sim::montecarlo` performs before boot).
#[test]
fn delay_table_matches_closed_form_under_jitter() {
    let case = gen::pair(&gen::u64_any(), &gen::usize_in(0..=2));
    Checker::new("model::delay_table")
        .cases(256)
        .corpus(corpus_dir!())
        .check(&case, move |&(seed, which)| {
            let base = match which {
                0 => TransitionDelays::i9_9900k(),
                1 => TransitionDelays::ryzen_7700x(),
                _ => TransitionDelays::xeon_4208(),
            };
            let mut d = base;
            let mut rng = SuitRng::seed_from_u64(seed);
            d.freq_change_us = base.sample_freq_change(&mut rng).as_micros_f64();
            d.volt_change_us = base.sample_volt_change(&mut rng).as_micros_f64();
            if base.freq_stall_us > 0.0 {
                d.freq_stall_us = d.freq_change_us.min(base.freq_stall_us);
            }
            let t = DelayTable::new(&d);
            for kind in PointKind::ALL {
                let sync = match kind {
                    PointKind::ConservativeVolt => d.volt_change() + d.freq_change(),
                    _ => d.freq_change(),
                };
                let async_ = match kind {
                    PointKind::ConservativeVolt => d.volt_change(),
                    _ => d.freq_change(),
                };
                if t.sync_wait(kind) != sync {
                    return Err(format!("{kind:?}: sync_wait diverges from closed form"));
                }
                if t.async_delay(kind) != async_ {
                    return Err(format!("{kind:?}: async_delay diverges from closed form"));
                }
            }
            if t.freq_stall() != d.freq_stall() {
                return Err("freq_stall diverges".into());
            }
            if t.exception() != d.exception() {
                return Err("exception diverges".into());
            }
            if t.emulation_call() != d.emulation_call() {
                return Err("emulation_call diverges".into());
            }
            if t.emulation_remainder() != d.emulation_call().saturating_sub(d.exception()) {
                return Err("emulation_remainder diverges".into());
            }
            Ok(())
        });
}

/// Trace generation: bursts are structurally valid for any seed/profile.
#[test]
fn trace_bursts_are_well_formed() {
    let profiles = profile::all();
    Checker::new("model::trace_bursts")
        .cases(64)
        .corpus(corpus_dir!())
        .check(
            &gen::pair(&gen::u64_any(), &gen::usize_in(0..=profiles.len() - 1)),
            move |&(seed, idx)| {
                let p = &profiles[idx];
                let bursts: Vec<Burst> = TraceGen::new(p, seed).take(200).collect();
                if bursts.is_empty() {
                    return Err(format!("{}: no bursts", p.name));
                }
                for b in &bursts {
                    if b.events < 1 || b.gap_insts == 0 {
                        return Err(format!("{}: degenerate burst {b:?}", p.name));
                    }
                    if !b.opcode.is_faultable() {
                        return Err(format!("{}: non-faultable {:?}", p.name, b.opcode));
                    }
                }
                Ok(())
            },
        );
}

/// Engine invariants for arbitrary seeds, levels and workloads:
/// accounting conservation, metric ranges, episode consistency.
#[test]
fn engine_invariants() {
    let profiles = profile::all();
    let case = gen::triple(
        &gen::u64_any(),
        &gen::usize_in(0..=profiles.len() - 1),
        &gen::bool_any(),
    );
    Checker::new("model::engine_invariants")
        .cases(48)
        .corpus(corpus_dir!())
        .check(&case, move |&(seed, idx, deep)| {
            let level = if deep {
                UndervoltLevel::Mv70
            } else {
                UndervoltLevel::Mv97
            };
            let p = &profiles[idx];
            let mut cfg = SimConfig::fv_intel(level).with_max_insts(150_000_000);
            cfg.seed = seed;
            let r = simulate(&CpuModel::xeon_4208(), p, &cfg);

            // Time accounting conserves.
            let parts = r.time_e + r.time_cf + r.time_cv + r.time_stall;
            let diff = (parts.as_secs_f64() - r.duration.as_secs_f64()).abs();
            if diff >= 1e-6 * r.duration.as_secs_f64().max(1e-9) {
                return Err(format!("{}: time accounting leaks {diff}", p.name));
            }

            // Metrics in physical ranges.
            if !(0.0..=1.0 + 1e-9).contains(&r.residency()) {
                return Err(format!("residency {} outside [0, 1]", r.residency()));
            }
            if r.power() > 1e-9 {
                return Err(format!("undervolting raised mean power: {}", r.power()));
            }
            if r.power() <= -0.25 {
                return Err(format!("implausible power {}", r.power()));
            }
            if r.perf() <= -0.30 || r.perf() >= 0.10 {
                return Err(format!("implausible perf {}", r.perf()));
            }
            // Episode accounting: timers never outnumber exceptions.
            if r.timer_fires > r.exceptions {
                return Err(format!(
                    "{} timers > {} exceptions",
                    r.timer_fires, r.exceptions
                ));
            }
            if r.events < r.exceptions {
                return Err(format!("{} events < {} exceptions", r.events, r.exceptions));
            }
            Ok(())
        });
}

/// Strategy-parameter robustness: any sane deadline keeps the engine
/// convergent and the metrics bounded (the paper's "workloads tolerate
/// a range rather than requiring individual parameters").
#[test]
fn any_sane_deadline_works() {
    let p = profile::by_name("502.gcc").unwrap();
    Checker::new("model::any_sane_deadline")
        .cases(48)
        .corpus(corpus_dir!())
        .check(
            &gen::pair(&gen::u64_in(2..=499), &gen::u32_in(2..=39)),
            move |&(dl_us, df)| {
                let mut cfg = SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(150_000_000);
                cfg.params = StrategyParams::intel()
                    .with_deadline(SimDuration::from_micros(dl_us))
                    .with_deadline_factor(f64::from(df));
                let r = simulate(&CpuModel::xeon_4208(), p, &cfg);
                if r.perf() <= -0.25 {
                    return Err(format!("dl {dl_us} df {df}: perf {}", r.perf()));
                }
                if r.efficiency() <= -0.15 {
                    return Err(format!("dl {dl_us} df {df}: eff {}", r.efficiency()));
                }
                Ok(())
            },
        );
}

/// Thrash detection is monotone in its parameters: on the same exception
/// stream, a lower threshold or a longer look-back window can only
/// detect thrashing at least as often (§4.3).
#[test]
fn thrash_guard_is_monotone_in_its_parameters() {
    // Inter-arrival gaps in µs; cumulative sum gives the event stream.
    let gaps = gen::u64_in(0..=600).vec_up_to(40);
    let params = gen::pair(&gen::u32_in(1..=5), &gen::u64_in(50..=900));
    let case = gen::triple(&gaps, &params, &params);
    let activations = |gaps: &[u64], threshold: u32, window_us: u64| -> u64 {
        let mut g = ThrashGuard::new(SimDuration::from_micros(window_us), threshold);
        let mut now = SimTime::ZERO;
        for &gap in gaps {
            now += SimDuration::from_micros(gap);
            g.record_exception(now);
        }
        g.activations()
    };
    Checker::new("model::thrash_monotone")
        .cases(512)
        .corpus(corpus_dir!())
        .check(&case, move |(gaps, a, b)| {
            // Order the two parameter sets so `strict` is pointwise at
            // least as sensitive as `lax`.
            let strict = (a.0.min(b.0), a.1.max(b.1));
            let lax = (a.0.max(b.0), a.1.min(b.1));
            let sensitive = activations(gaps, strict.0, strict.1);
            let relaxed = activations(gaps, lax.0, lax.1);
            if sensitive < relaxed {
                return Err(format!(
                    "threshold {} window {} µs detected {sensitive} < {relaxed} \
                     with threshold {} window {} µs",
                    strict.0, strict.1, lax.0, lax.1
                ));
            }
            Ok(())
        });
}

#[test]
fn generator_is_deterministic_across_all_profiles() {
    for p in profile::all() {
        let a: Vec<Burst> = TraceGen::new(p, 7).take(100).collect();
        let b: Vec<Burst> = TraceGen::new(p, 7).take(100).collect();
        assert_eq!(a, b, "{}", p.name);
    }
}

#[test]
fn analytic_imul_penalty_matches_the_o3_simulator() {
    // The trace simulator charges an analytic 4-cycle-IMUL penalty
    // (sim::engine::imul_penalty); the out-of-order model *measures* the
    // same quantity (Fig. 14 at 4 cycles). The two must agree on the
    // extremes: tiny for average SPEC, ~1-2% for x264 — and within a few
    // tenths of a point in absolute terms.
    use suit::ooo::fig14;
    use suit::sim::engine::imul_penalty;

    let data = fig14::run(300_000);
    let measured_geomean = data.geomean(0);
    let analytic_geomean: f64 = profile::spec_suite()
        .map(imul_penalty)
        .map(|p| (1.0 + p).ln())
        .sum::<f64>()
        / 23.0;
    let analytic_geomean = analytic_geomean.exp_m1();
    assert!(
        (measured_geomean - analytic_geomean).abs() < 0.004,
        "geomean: O3 {measured_geomean:.4} vs analytic {analytic_geomean:.4}"
    );

    let x264_measured = data.x264().slowdowns[0];
    let x264_analytic = imul_penalty(profile::by_name("525.x264").unwrap());
    assert!(
        (x264_measured - x264_analytic).abs() < 0.02,
        "x264: O3 {x264_measured:.4} vs analytic {x264_analytic:.4}"
    );
    assert!(x264_analytic > 5.0 * analytic_geomean.max(1e-6));
}

#[test]
fn all_workloads_simulate_on_all_cpus_and_levels() {
    for cpu in CpuModel::evaluated() {
        let cfg_base = match cpu.kind {
            suit::hw::CpuKind::AmdRyzen7700X => SimConfig::f_amd(UndervoltLevel::Mv70),
            _ => SimConfig::fv_intel(UndervoltLevel::Mv70),
        };
        for p in profile::all() {
            let cfg = cfg_base.clone().with_max_insts(100_000_000);
            let r = simulate(&cpu, p, &cfg);
            assert!(r.duration.as_secs_f64() > 0.0, "{} on {}", p.name, cpu.name);
        }
    }
}
