//! Property-based invariants over the hardware models, trace generators
//! and the system simulator — the "can't-happen" class of bugs.

use proptest::prelude::*;
use suit::core::strategy::StrategyParams;
use suit::hw::{CpuModel, DvfsCurve, UndervoltLevel};
use suit::isa::SimDuration;
use suit::sim::engine::{simulate, SimConfig};
use suit::trace::{profile, Burst, TraceGen};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DVFS curve interpolation is monotone and bounded for any query.
    #[test]
    fn dvfs_curve_is_monotone(f1 in 0.5f64..6.0, f2 in 0.5f64..6.0) {
        let c = DvfsCurve::i9_9900k();
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(c.voltage_at(lo) <= c.voltage_at(hi) + 1e-9);
        let v = c.voltage_at(f1);
        prop_assert!((700.0..=1300.0).contains(&v), "{v}");
    }

    /// `max_freq_at_voltage` inverts `voltage_at` on the curve's range.
    #[test]
    fn dvfs_inversion_roundtrips(f in 1.0f64..5.0) {
        let c = DvfsCurve::i9_9900k();
        let v = c.voltage_at(f);
        let back = c.max_freq_at_voltage(v);
        // On flat segments many frequencies share a voltage: the inverse
        // must return one at least as fast that is still safe.
        prop_assert!(back >= f - 1e-9, "{back} vs {f}");
        prop_assert!(c.voltage_at(back) <= v + 1e-9);
    }

    /// The steady-state undervolt response is well behaved on the whole
    /// modelled range, not just at the two paper points.
    #[test]
    fn undervolt_response_is_sane(offset in -97.0f64..0.0) {
        for cpu in [CpuModel::i9_9900k(), CpuModel::ryzen_7700x(), CpuModel::i5_1035g1()] {
            let r = cpu.steady.response(offset);
            prop_assert!(r.power <= 1e-12, "{}: power {}", cpu.name, r.power);
            prop_assert!(r.score >= -1e-12, "{}: score {}", cpu.name, r.score);
            prop_assert!(r.power > -0.35, "{}: implausible power {}", cpu.name, r.power);
            prop_assert!(r.score < 0.25, "{}: implausible score {}", cpu.name, r.score);
        }
    }

    /// Trace generation: bursts are structurally valid and instruction
    /// accounting never regresses.
    #[test]
    fn trace_bursts_are_well_formed(seed in any::<u64>(), idx in 0usize..25) {
        let p = &profile::all()[idx];
        let bursts: Vec<Burst> = TraceGen::new(p, seed).take(200).collect();
        prop_assert!(!bursts.is_empty());
        for b in &bursts {
            prop_assert!(b.events >= 1);
            prop_assert!(b.opcode.is_faultable());
            prop_assert!(b.gap_insts > 0);
        }
    }

    /// Engine invariants for arbitrary seeds, levels and workloads:
    /// accounting conservation, metric ranges, baseline consistency.
    #[test]
    fn engine_invariants(seed in any::<u64>(), idx in 0usize..25, level_97 in any::<bool>()) {
        let p = &profile::all()[idx];
        let level = if level_97 { UndervoltLevel::Mv97 } else { UndervoltLevel::Mv70 };
        let mut cfg = SimConfig::fv_intel(level).with_max_insts(150_000_000);
        cfg.seed = seed;
        let r = simulate(&CpuModel::xeon_4208(), p, &cfg);

        // Time accounting conserves.
        let parts = r.time_e + r.time_cf + r.time_cv + r.time_stall;
        let diff = (parts.as_secs_f64() - r.duration.as_secs_f64()).abs();
        prop_assert!(diff < 1e-6 * r.duration.as_secs_f64().max(1e-9));

        // Metrics in physical ranges.
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r.residency()));
        prop_assert!(r.power() <= 0.0 + 1e-9, "undervolting cannot raise mean power: {}", r.power());
        prop_assert!(r.power() > -0.25);
        prop_assert!(r.perf() > -0.30 && r.perf() < 0.10, "perf {}", r.perf());
        // Episode accounting: timers never outnumber exceptions.
        prop_assert!(r.timer_fires <= r.exceptions);
        prop_assert!(r.events >= r.exceptions);
    }

    /// Strategy-parameter robustness: any sane deadline keeps the engine
    /// convergent and the metrics bounded (the paper's "workloads tolerate
    /// a range rather than requiring individual parameters").
    #[test]
    fn any_sane_deadline_works(dl_us in 2u64..500, df in 2u32..40) {
        let p = profile::by_name("502.gcc").unwrap();
        let mut cfg = SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(150_000_000);
        cfg.params = StrategyParams::intel()
            .with_deadline(SimDuration::from_micros(dl_us))
            .with_deadline_factor(f64::from(df));
        let r = simulate(&CpuModel::xeon_4208(), p, &cfg);
        prop_assert!(r.perf() > -0.25, "dl {dl_us} df {df}: perf {}", r.perf());
        prop_assert!(r.efficiency() > -0.15, "eff {}", r.efficiency());
    }
}

#[test]
fn generator_is_deterministic_across_all_profiles() {
    for p in profile::all() {
        let a: Vec<Burst> = TraceGen::new(p, 7).take(100).collect();
        let b: Vec<Burst> = TraceGen::new(p, 7).take(100).collect();
        assert_eq!(a, b, "{}", p.name);
    }
}

#[test]
fn analytic_imul_penalty_matches_the_o3_simulator() {
    // The trace simulator charges an analytic 4-cycle-IMUL penalty
    // (sim::engine::imul_penalty); the out-of-order model *measures* the
    // same quantity (Fig. 14 at 4 cycles). The two must agree on the
    // extremes: tiny for average SPEC, ~1-2% for x264 — and within a few
    // tenths of a point in absolute terms.
    use suit::ooo::fig14;
    use suit::sim::engine::imul_penalty;

    let data = fig14::run(300_000);
    let measured_geomean = data.geomean(0);
    let analytic_geomean: f64 = profile::spec_suite()
        .map(imul_penalty)
        .map(|p| (1.0 + p).ln())
        .sum::<f64>()
        / 23.0;
    let analytic_geomean = analytic_geomean.exp_m1();
    assert!(
        (measured_geomean - analytic_geomean).abs() < 0.004,
        "geomean: O3 {measured_geomean:.4} vs analytic {analytic_geomean:.4}"
    );

    let x264_measured = data.x264().slowdowns[0];
    let x264_analytic = imul_penalty(profile::by_name("525.x264").unwrap());
    assert!(
        (x264_measured - x264_analytic).abs() < 0.02,
        "x264: O3 {x264_measured:.4} vs analytic {x264_analytic:.4}"
    );
    assert!(x264_analytic > 5.0 * analytic_geomean.max(1e-6));
}

#[test]
fn all_workloads_simulate_on_all_cpus_and_levels() {
    for cpu in CpuModel::evaluated() {
        let cfg_base = match cpu.kind {
            suit::hw::CpuKind::AmdRyzen7700X => SimConfig::f_amd(UndervoltLevel::Mv70),
            _ => SimConfig::fv_intel(UndervoltLevel::Mv70),
        };
        for p in profile::all() {
            let cfg = cfg_base.clone().with_max_insts(100_000_000);
            let r = simulate(&cpu, p, &cfg);
            assert!(r.duration.as_secs_f64() > 0.0, "{} on {}", p.name, cpu.name);
        }
    }
}
