//! Property-style invariants over the hardware models, trace generators
//! and the system simulator — the "can't-happen" class of bugs.
//!
//! Each test draws its cases from an explicitly seeded [`SuitRng`], so
//! every run checks the identical case set and a failure names the exact
//! iteration that produced it.

use suit::core::strategy::StrategyParams;
use suit::hw::{CpuModel, DvfsCurve, UndervoltLevel};
use suit::isa::SimDuration;
use suit::sim::engine::{simulate, SimConfig};
use suit::trace::{profile, Burst, TraceGen};
use suit_rng::{Rng, SuitRng};

const CASES: usize = 48;

/// DVFS curve interpolation is monotone and bounded for any query.
#[test]
fn dvfs_curve_is_monotone() {
    let c = DvfsCurve::i9_9900k();
    let mut rng = SuitRng::seed_from_u64(0x0D5F_0001);
    for case in 0..CASES {
        let f1 = rng.gen_range(0.5f64..6.0);
        let f2 = rng.gen_range(0.5f64..6.0);
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        assert!(
            c.voltage_at(lo) <= c.voltage_at(hi) + 1e-9,
            "case {case}: f1 {f1}, f2 {f2}"
        );
        let v = c.voltage_at(f1);
        assert!((700.0..=1300.0).contains(&v), "case {case}: {v}");
    }
}

/// `max_freq_at_voltage` inverts `voltage_at` on the curve's range.
#[test]
fn dvfs_inversion_roundtrips() {
    let c = DvfsCurve::i9_9900k();
    let mut rng = SuitRng::seed_from_u64(0x0D5F_0002);
    for case in 0..CASES {
        let f = rng.gen_range(1.0f64..5.0);
        let v = c.voltage_at(f);
        let back = c.max_freq_at_voltage(v);
        // On flat segments many frequencies share a voltage: the inverse
        // must return one at least as fast that is still safe.
        assert!(back >= f - 1e-9, "case {case}: {back} vs {f}");
        assert!(c.voltage_at(back) <= v + 1e-9, "case {case}");
    }
}

/// The steady-state undervolt response is well behaved on the whole
/// modelled range, not just at the two paper points.
#[test]
fn undervolt_response_is_sane() {
    let mut rng = SuitRng::seed_from_u64(0x0D5F_0003);
    for case in 0..CASES {
        let offset = rng.gen_range(-97.0f64..0.0);
        for cpu in [
            CpuModel::i9_9900k(),
            CpuModel::ryzen_7700x(),
            CpuModel::i5_1035g1(),
        ] {
            let r = cpu.steady.response(offset);
            assert!(
                r.power <= 1e-12,
                "case {case}, {}: power {}",
                cpu.name,
                r.power
            );
            assert!(
                r.score >= -1e-12,
                "case {case}, {}: score {}",
                cpu.name,
                r.score
            );
            assert!(
                r.power > -0.35,
                "case {case}, {}: implausible power {}",
                cpu.name,
                r.power
            );
            assert!(
                r.score < 0.25,
                "case {case}, {}: implausible score {}",
                cpu.name,
                r.score
            );
        }
    }
}

/// Trace generation: bursts are structurally valid and instruction
/// accounting never regresses.
#[test]
fn trace_bursts_are_well_formed() {
    let mut rng = SuitRng::seed_from_u64(0x0D5F_0004);
    for case in 0..CASES {
        let seed = rng.u64();
        let idx = rng.gen_range(0..profile::all().len());
        let p = &profile::all()[idx];
        let bursts: Vec<Burst> = TraceGen::new(p, seed).take(200).collect();
        assert!(!bursts.is_empty(), "case {case}: {}", p.name);
        for b in &bursts {
            assert!(b.events >= 1, "case {case}");
            assert!(b.opcode.is_faultable(), "case {case}");
            assert!(b.gap_insts > 0, "case {case}");
        }
    }
}

/// Engine invariants for arbitrary seeds, levels and workloads:
/// accounting conservation, metric ranges, baseline consistency.
#[test]
fn engine_invariants() {
    let mut rng = SuitRng::seed_from_u64(0x0D5F_0005);
    for case in 0..CASES {
        let seed = rng.u64();
        let idx = rng.gen_range(0..profile::all().len());
        let level = if rng.bool() {
            UndervoltLevel::Mv97
        } else {
            UndervoltLevel::Mv70
        };
        let p = &profile::all()[idx];
        let mut cfg = SimConfig::fv_intel(level).with_max_insts(150_000_000);
        cfg.seed = seed;
        let r = simulate(&CpuModel::xeon_4208(), p, &cfg);

        // Time accounting conserves.
        let parts = r.time_e + r.time_cf + r.time_cv + r.time_stall;
        let diff = (parts.as_secs_f64() - r.duration.as_secs_f64()).abs();
        assert!(
            diff < 1e-6 * r.duration.as_secs_f64().max(1e-9),
            "case {case}: {}",
            p.name
        );

        // Metrics in physical ranges.
        assert!((0.0..=1.0 + 1e-9).contains(&r.residency()), "case {case}");
        assert!(
            r.power() <= 0.0 + 1e-9,
            "case {case}: undervolting cannot raise mean power: {}",
            r.power()
        );
        assert!(r.power() > -0.25, "case {case}");
        assert!(
            r.perf() > -0.30 && r.perf() < 0.10,
            "case {case}: perf {}",
            r.perf()
        );
        // Episode accounting: timers never outnumber exceptions.
        assert!(r.timer_fires <= r.exceptions, "case {case}");
        assert!(r.events >= r.exceptions, "case {case}");
    }
}

/// Strategy-parameter robustness: any sane deadline keeps the engine
/// convergent and the metrics bounded (the paper's "workloads tolerate
/// a range rather than requiring individual parameters").
#[test]
fn any_sane_deadline_works() {
    let p = profile::by_name("502.gcc").unwrap();
    let mut rng = SuitRng::seed_from_u64(0x0D5F_0006);
    for case in 0..CASES {
        let dl_us = rng.gen_range(2u64..500);
        let df = rng.gen_range(2u32..40);
        let mut cfg = SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(150_000_000);
        cfg.params = StrategyParams::intel()
            .with_deadline(SimDuration::from_micros(dl_us))
            .with_deadline_factor(f64::from(df));
        let r = simulate(&CpuModel::xeon_4208(), p, &cfg);
        assert!(
            r.perf() > -0.25,
            "case {case}: dl {dl_us} df {df}: perf {}",
            r.perf()
        );
        assert!(
            r.efficiency() > -0.15,
            "case {case}: eff {}",
            r.efficiency()
        );
    }
}

#[test]
fn generator_is_deterministic_across_all_profiles() {
    for p in profile::all() {
        let a: Vec<Burst> = TraceGen::new(p, 7).take(100).collect();
        let b: Vec<Burst> = TraceGen::new(p, 7).take(100).collect();
        assert_eq!(a, b, "{}", p.name);
    }
}

#[test]
fn analytic_imul_penalty_matches_the_o3_simulator() {
    // The trace simulator charges an analytic 4-cycle-IMUL penalty
    // (sim::engine::imul_penalty); the out-of-order model *measures* the
    // same quantity (Fig. 14 at 4 cycles). The two must agree on the
    // extremes: tiny for average SPEC, ~1-2% for x264 — and within a few
    // tenths of a point in absolute terms.
    use suit::ooo::fig14;
    use suit::sim::engine::imul_penalty;

    let data = fig14::run(300_000);
    let measured_geomean = data.geomean(0);
    let analytic_geomean: f64 = profile::spec_suite()
        .map(imul_penalty)
        .map(|p| (1.0 + p).ln())
        .sum::<f64>()
        / 23.0;
    let analytic_geomean = analytic_geomean.exp_m1();
    assert!(
        (measured_geomean - analytic_geomean).abs() < 0.004,
        "geomean: O3 {measured_geomean:.4} vs analytic {analytic_geomean:.4}"
    );

    let x264_measured = data.x264().slowdowns[0];
    let x264_analytic = imul_penalty(profile::by_name("525.x264").unwrap());
    assert!(
        (x264_measured - x264_analytic).abs() < 0.02,
        "x264: O3 {x264_measured:.4} vs analytic {x264_analytic:.4}"
    );
    assert!(x264_analytic > 5.0 * analytic_geomean.max(1e-6));
}

#[test]
fn all_workloads_simulate_on_all_cpus_and_levels() {
    for cpu in CpuModel::evaluated() {
        let cfg_base = match cpu.kind {
            suit::hw::CpuKind::AmdRyzen7700X => SimConfig::f_amd(UndervoltLevel::Mv70),
            _ => SimConfig::fv_intel(UndervoltLevel::Mv70),
        };
        for p in profile::all() {
            let cfg = cfg_base.clone().with_max_insts(100_000_000);
            let r = simulate(&cpu, p, &cfg);
            assert!(r.duration.as_secs_f64() > 0.0, "{} on {}", p.name, cpu.name);
        }
    }
}
