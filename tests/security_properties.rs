//! Security invariants (§3.2, §6.9) under randomized inputs.
//!
//! The central theorem, checked across random chips, offsets, sequences
//! and MSR interleavings: **a SUIT system never executes a faultable
//! instruction below its minimum voltage**, hence never produces a silent
//! data error — while naive undervolting demonstrably does.
//!
//! Cases come from explicitly seeded [`SuitRng`] loops, so each run tests
//! the identical inputs and a failure names its iteration.

use suit::core::{CurveSelect, MsrError, SuitMsrs};
use suit::faults::vmin::ChipVminModel;
use suit::faults::{audit_naive_undervolt, audit_suit_system};
use suit::isa::{FaultableSet, Opcode};
use suit_rng::{Rng, SuitRng};

const CASES: usize = 64;

/// The hardware invariant: no random sequence of MSR writes can reach
/// (efficient curve, any vendor-faultable opcode enabled).
#[test]
fn msr_interleavings_preserve_the_invariant() {
    let mut rng = SuitRng::seed_from_u64(0x5EC_0001);
    for case in 0..CASES {
        let len = rng.gen_range(1usize..60);
        let mut msrs = SuitMsrs::suit_cpu();
        for _ in 0..len {
            // Exercise all four write kinds; errors are allowed (that is
            // the enforcement), state corruption is not.
            let _res: Result<(), MsrError> = match rng.gen_range(0u8..4) {
                0 => msrs.write_curve(CurveSelect::Efficient),
                1 => msrs.write_curve(CurveSelect::Conservative),
                2 => {
                    msrs.disable_faultable();
                    Ok(())
                }
                _ => msrs.enable_all(),
            };
            assert!(msrs.invariant_holds(), "case {case}");
        }
    }
}

/// The end-to-end theorem at the evaluated offsets.
#[test]
fn suit_never_faults_silently() {
    let mut rng = SuitRng::seed_from_u64(0x5EC_0002);
    for case in 0..CASES {
        let seed = rng.gen_range(0u64..500);
        let offset = rng.gen_range(-130.0f64..-60.0);
        let chip = ChipVminModel::sample(2, 12.0, seed);
        let out = audit_suit_system(&chip, seed as usize % 2, offset, seed, 800);
        assert_eq!(
            out.silent_errors, 0,
            "case {case}: seed {seed}, offset {offset}"
        );
    }
}

/// Depth monotonicity of the attack surface: if naive undervolting is
/// fault-free at a deep offset on a chip, it is fault-free at every
/// shallower offset with the same sequence.
#[test]
fn naive_fault_counts_grow_with_depth() {
    let mut rng = SuitRng::seed_from_u64(0x5EC_0003);
    for case in 0..CASES {
        let seed = rng.gen_range(0u64..100);
        let chip = ChipVminModel::sample(1, 12.0, seed);
        let shallow = audit_naive_undervolt(&chip, 0, -80.0, seed, 600).silent_errors;
        let deep = audit_naive_undervolt(&chip, 0, -160.0, seed, 600).silent_errors;
        assert!(
            deep >= shallow,
            "case {case}: deep {deep} vs shallow {shallow}"
        );
    }
}

/// The safe-offset function is consistent with per-opcode margins.
#[test]
fn safe_offset_is_min_margin() {
    let mut rng = SuitRng::seed_from_u64(0x5EC_0004);
    for case in 0..CASES {
        let seed = rng.gen_range(0u64..200);
        let core = rng.gen_range(0usize..2);
        let chip = ChipVminModel::sample(2, 15.0, seed);
        let safe = chip.safe_offset_mv(core, FaultableSet::table1().iter());
        for op in FaultableSet::table1().iter() {
            assert!(
                !chip.can_fault(core, op, safe + 0.5),
                "case {case}: {op} faults above the bound"
            );
        }
        // The bound is tight: *some* opcode faults just below it.
        let any_faults = FaultableSet::table1()
            .iter()
            .any(|op| chip.can_fault(core, op, safe - 1.0));
        assert!(any_faults, "case {case}");
    }
}

/// The §3.4 architectural contract, fuzzed: for *any* program of
/// register-form faultable instructions and any starting register
/// state, running with traps + OS emulation produces bit-identical
/// final state to direct execution.
#[test]
fn trap_emulation_equals_direct_execution() {
    use suit::core::frontend::SuitFrontend;
    use suit::isa::Vec128;

    let mut rng = SuitRng::seed_from_u64(0x5EC_0005);
    for case in 0..CASES {
        let len = rng.gen_range(1usize..40);
        let ops: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..6)).collect();
        let seed = rng.u64();

        // Assemble a random program from register-form encodings.
        let mut prog = Vec::new();
        for op in &ops {
            match op % 6 {
                0 => prog.extend_from_slice(&[0x66, 0x0F, 0x38, 0xDC, 0xC1]), // AESENC xmm0, xmm1
                1 => prog.extend_from_slice(&[0x66, 0x0F, 0xEF, 0xD1]),       // PXOR xmm2, xmm1
                2 => prog.extend_from_slice(&[0x66, 0x0F, 0xEB, 0xC2]),       // POR xmm0, xmm2
                3 => prog.extend_from_slice(&[0x66, 0x0F, 0xD4, 0xCA]),       // PADDQ xmm1, xmm2
                4 => prog.extend_from_slice(&[0x0F, 0xAF, 0xC3]),             // IMUL eax, ebx
                _ => prog.extend_from_slice(&[0x66, 0x0F, 0x3A, 0x44, 0xD9, 0x01]), // PCLMULQDQ xmm3, xmm1, 1
            }
        }

        // Identical random starting state for both runs.
        let seed_state = |f: &mut SuitFrontend| {
            let mut rng = SuitRng::seed_from_u64(seed);
            for x in f.state.xmm.iter_mut() {
                *x = Vec128::from_u128(rng.u128());
            }
            f.state.gpr[0] = rng.u64();
            f.state.gpr[3] = rng.u64();
        };
        let mut direct = SuitFrontend::new();
        seed_state(&mut direct);

        let mut trapped = SuitFrontend::new();
        seed_state(&mut trapped);
        trapped.msrs.disable_faultable();
        trapped
            .msrs
            .write_curve(suit::core::CurveSelect::Efficient)
            .unwrap();

        let a = direct.run_with_emulation_os(&prog).unwrap();
        let b = trapped.run_with_emulation_os(&prog).unwrap();
        assert_eq!(a, b, "case {case}");
        assert_eq!(&direct.state, &trapped.state, "case {case}");
        // Everything except IMUL must have trapped.
        let imuls = ops.iter().filter(|&&o| o % 6 == 4).count() as u64;
        assert_eq!(trapped.emulated, ops.len() as u64 - imuls, "case {case}");
    }
}

#[test]
fn naive_undervolting_faults_somewhere_in_the_population() {
    // Existence (not universality): across a chip population, −130 mV
    // naive undervolting corrupts at least one computation — SUIT's
    // motivating threat.
    let total: u64 = (0..30)
        .map(|seed| {
            let chip = ChipVminModel::sample(1, 12.0, seed);
            audit_naive_undervolt(&chip, 0, -130.0, seed, 2_000).silent_errors
        })
        .sum();
    assert!(total > 0, "the threat model must be non-vacuous");
}

#[test]
fn suit_trap_counts_match_disabled_executions() {
    let chip = ChipVminModel::sample(2, 12.0, 99);
    let out = audit_suit_system(&chip, 0, -97.0, 123, 5_000);
    assert_eq!(out.executed, 5_000);
    assert!(out.trapped > 0);
    assert!(
        out.trapped < out.executed,
        "conservative dwell must execute some natively"
    );
}

#[test]
fn hardened_imul_is_safe_on_the_efficient_curve() {
    // §6.9: the +1-cycle IMUL gains ~220 mV of slack — every chip in a
    // large sample keeps IMUL safe at −97 mV with that relaxation.
    for seed in 0..300 {
        let chip = ChipVminModel::sample(1, 15.0, seed);
        let margin =
            chip.margin_mv(0, Opcode::Imul) + suit::faults::security::HARDENED_IMUL_EXTRA_MARGIN_MV;
        assert!(margin > 97.0, "seed {seed}: hardened margin {margin}");
    }
}
