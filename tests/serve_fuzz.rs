//! Structure-aware fuzz targets for the `suit-serve` request path.
//!
//! Two totality properties pin the service's "never a panic" contract:
//!
//! 1. the HTTP/1.1 request parser is total over raw, valid, mutated,
//!    over-long-header and truncated-body byte streams, and every
//!    `Complete` parse is prefix-stable (re-parsing exactly the consumed
//!    bytes reproduces the identical request);
//! 2. the endpoint body validators (`parse_simulate` / `parse_batch` /
//!    `parse_faults`) are total over raw and near-valid JSON — a bad
//!    body is always a structured 400, never a crash.
//!
//! CI drives property 1 with `SUIT_CHECK_CASES=100000` as the fuzz-smoke
//! gate. The committed corpus seeds in `tests/corpus/` pin the two
//! interesting parser shapes (over-long header, truncated body) and are
//! replayed before random exploration on every run.

use suit::check::gen::{self, Gen};
use suit::check::{corpus_dir, Checker, Source};
use suit::serve::api;
use suit::serve::http::{parse_request, Limits, Parse};

/// Small limits so the generator can reach every rejection branch with
/// short inputs.
fn limits() -> Limits {
    Limits {
        max_head: 256,
        max_body: 512,
    }
}

/// A syntactically valid request with a correct `content-length`.
fn valid_request() -> Gen<Vec<u8>> {
    let method = gen::from_slice(&["GET", "POST"]);
    let path = gen::from_slice(&["/v1/simulate", "/v1/batch", "/v1/healthz", "/"]);
    let body = gen::bytes_up_to(64);
    let keep = gen::bool_any();
    gen::pair(&gen::pair(&method, &path), &gen::pair(&body, &keep)).map(
        |((method, path), (body, keep))| {
            let mut req = format!("{method} {path} HTTP/1.1\r\nhost: fuzz\r\n");
            if keep {
                req.push_str("connection: keep-alive\r\n");
            }
            req.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
            let mut bytes = req.into_bytes();
            bytes.extend_from_slice(&body);
            bytes
        },
    )
}

/// A valid request with one byte overwritten.
fn mutated_request() -> Gen<Vec<u8>> {
    gen::pair(
        &valid_request(),
        &gen::pair(&gen::usize_in(0..=511), &gen::byte()),
    )
    .map(|(mut bytes, (pos, b))| {
        let at = pos % bytes.len();
        bytes[at] = b;
        bytes
    })
}

/// A request whose header block alone exceeds `max_head` (256 here).
fn overlong_header_request() -> Gen<Vec<u8>> {
    gen::usize_in(260..=400).map(|n| {
        let mut req = String::from("GET / HTTP/1.1\r\nx-pad: ");
        req.extend(std::iter::repeat('a').take(n));
        req.push_str("\r\n\r\n");
        req.into_bytes()
    })
}

/// A request whose `content-length` promises more bytes than follow.
fn truncated_body_request() -> Gen<Vec<u8>> {
    gen::pair(&gen::usize_in(1..=200), &gen::usize_in(0..=100)).map(|(claim, have)| {
        let mut bytes =
            format!("POST /v1/simulate HTTP/1.1\r\ncontent-length: {claim}\r\n\r\n").into_bytes();
        bytes.extend(std::iter::repeat(0x7Bu8).take(have.min(claim.saturating_sub(1))));
        bytes
    })
}

/// The full request-stream generator: raw soup first (shrinks toward
/// simplest), then the structured shapes.
fn request_stream() -> Gen<Vec<u8>> {
    gen::one_of(vec![
        gen::bytes_up_to(400),
        valid_request(),
        mutated_request(),
        overlong_header_request(),
        truncated_body_request(),
    ])
}

/// Property 1: the parser is total and `Complete` parses are
/// prefix-stable and within limits.
fn parser_is_total(input: &[u8]) -> Result<(), String> {
    match parse_request(input, &limits()) {
        Err(_) | Ok(Parse::Partial) => Ok(()),
        Ok(Parse::Complete(req, consumed)) => {
            if consumed > input.len() {
                return Err(format!(
                    "consumed {consumed} of a {}-byte input",
                    input.len()
                ));
            }
            if req.body.len() > limits().max_body {
                return Err(format!("body {} exceeds max_body", req.body.len()));
            }
            match parse_request(&input[..consumed], &limits()) {
                Ok(Parse::Complete(req2, consumed2)) if req2 == req && consumed2 == consumed => {
                    Ok(())
                }
                other => Err(format!("prefix re-parse diverged: {other:?}")),
            }
        }
    }
}

#[test]
fn http_parser_is_total_over_request_streams() {
    Checker::new("serve_fuzz::http_parser")
        .cases_from_env_or(20_000)
        .corpus(corpus_dir!())
        .check(&request_stream(), |input: &Vec<u8>| parser_is_total(input));
}

/// The committed corpus seeds must keep generating the shapes they were
/// committed to pin — if the generator drifts, this fails loudly instead
/// of the seeds silently degenerating into byte soup.
#[test]
fn committed_corpus_seeds_cover_the_advertised_shapes() {
    let sample = |seed: u64| request_stream().sample(&mut Source::fresh(seed));

    let overlong = sample(OVERLONG_HEADER_SEED);
    assert!(
        matches!(
            parse_request(&overlong, &limits()),
            Err(ref e) if e.status() == 431
        ),
        "seed {OVERLONG_HEADER_SEED:#x} no longer generates an over-long header: {:?}",
        parse_request(&overlong, &limits())
    );

    let truncated = sample(TRUNCATED_BODY_SEED);
    let parsed = parse_request(&truncated, &limits());
    assert!(
        matches!(parsed, Ok(Parse::Partial)),
        "seed {TRUNCATED_BODY_SEED:#x} no longer generates a truncated body: {parsed:?}"
    );
    assert!(
        truncated.windows(16).any(|w| w == b"content-length: "),
        "truncated-body seed lost its content-length header"
    );
}

/// Seeds committed under `tests/corpus/` for the shapes above.
const OVERLONG_HEADER_SEED: u64 = 0x0;
const TRUNCATED_BODY_SEED: u64 = 0xc;

/// Maintenance tool, not part of the suite: scans seeds and prints the
/// first one generating each corpus shape. Run with
/// `cargo test -p suit --test serve_fuzz find_corpus_seeds -- --ignored --nocapture`
/// after changing the generator, then update the constants and the
/// committed `.seed` files.
#[test]
#[ignore]
fn find_corpus_seeds() {
    let g = request_stream();
    let mut overlong = None;
    let mut truncated = None;
    for seed in 0..200_000u64 {
        let input = g.sample(&mut Source::fresh(seed));
        let parsed = parse_request(&input, &limits());
        if overlong.is_none() && matches!(parsed, Err(ref e) if e.status() == 431) {
            overlong = Some(seed);
        }
        if truncated.is_none()
            && matches!(parsed, Ok(Parse::Partial))
            && input.windows(16).any(|w| w == b"content-length: ")
        {
            truncated = Some(seed);
        }
        if overlong.is_some() && truncated.is_some() {
            break;
        }
    }
    println!("over-long header seed: {overlong:?}");
    println!("truncated body seed:   {truncated:?}");
}

/// A JSON-ish body: raw text, valid endpoint bodies, and valid bodies
/// with one byte overwritten.
fn jsonish_body() -> Gen<String> {
    let valid = gen::from_slice(&[
        "{\"workload\":\"557.xz\",\"insts\":1000000}",
        "{\"sweep\":\"table6\",\"max_insts\":1000000}",
        "{\"workloads\":[\"Nginx\",\"VLC\"],\"cpu\":\"a\",\"offset\":70}",
        "{\"workloads\":\"all\",\"strategy\":\"adaptive\",\"deadline_ms\":1000}",
        "{\"executions\":100,\"sigma_mv\":5.5,\"cores\":8}",
        "{}",
    ]);
    let mutated = gen::pair(&valid, &gen::pair(&gen::usize_in(0..=127), &gen::byte())).map(
        |(s, (pos, b))| {
            let mut bytes = s.as_bytes().to_vec();
            let at = pos % bytes.len();
            bytes[at] = b;
            String::from_utf8_lossy(&bytes).into_owned()
        },
    );
    let soup = gen::bytes_up_to(200).map(|b| String::from_utf8_lossy(&b).into_owned());
    gen::one_of(vec![soup, valid.map(String::from), mutated])
}

/// Property 2: every endpoint validator is total — any outcome is fine,
/// panicking is the only failure.
#[test]
fn endpoint_validators_are_total_over_jsonish_bodies() {
    Checker::new("serve_fuzz::validators")
        .cases_from_env_or(20_000)
        .corpus(corpus_dir!())
        .check(&jsonish_body(), |body: &String| {
            let _ = api::parse_simulate(body);
            let _ = api::parse_batch(body);
            let _ = api::parse_faults(body);
            Ok::<(), String>(())
        });
}
