//! Structure-aware fuzz targets for the `suit-serve` request path.
//!
//! Two totality properties pin the service's "never a panic" contract:
//!
//! 1. the HTTP/1.1 request parser is total over raw, valid, mutated,
//!    over-long-header and truncated-body byte streams, and every
//!    `Complete` parse is prefix-stable (re-parsing exactly the consumed
//!    bytes reproduces the identical request);
//! 2. the endpoint body validators (`parse_simulate` / `parse_batch` /
//!    `parse_faults`) are total over raw and near-valid JSON — a bad
//!    body is always a structured 400, never a crash.
//!
//! Two construction-based oracle properties pin the header semantics
//! fixed in the conformance sweep:
//!
//! 3. `Request::wants_close` honours `Connection` as a comma-separated
//!    token list (RFC 9112 §9.6) — the expectation is carried alongside
//!    each generated token, so a `close` buried in `TE, close, upgrade`
//!    (the pre-fix bug shape) or a near-miss like `closet` can never be
//!    misread;
//! 4. `Request::if_none_match` implements the RFC 9110 §13.1.2 weak
//!    comparison over `If-None-Match` lists — `W/` prefixes, the `*`
//!    wildcard, and non-matching/unquoted members all carry their
//!    ground-truth match bit from the generator.
//!
//! CI drives property 1 with `SUIT_CHECK_CASES=100000` as the fuzz-smoke
//! gate. The committed corpus seeds in `tests/corpus/` pin the
//! interesting shapes (over-long header, truncated body, close-in-list
//! `Connection`, matching tag in an `If-None-Match` list) and are
//! replayed before random exploration on every run.

use suit::check::gen::{self, Gen};
use suit::check::{corpus_dir, Checker, Source};
use suit::serve::api;
use suit::serve::http::{parse_request, Limits, Parse};

/// Small limits so the generator can reach every rejection branch with
/// short inputs.
fn limits() -> Limits {
    Limits {
        max_head: 256,
        max_body: 512,
    }
}

/// A syntactically valid request with a correct `content-length`.
fn valid_request() -> Gen<Vec<u8>> {
    let method = gen::from_slice(&["GET", "POST"]);
    let path = gen::from_slice(&["/v1/simulate", "/v1/batch", "/v1/healthz", "/"]);
    let body = gen::bytes_up_to(64);
    let keep = gen::bool_any();
    gen::pair(&gen::pair(&method, &path), &gen::pair(&body, &keep)).map(
        |((method, path), (body, keep))| {
            let mut req = format!("{method} {path} HTTP/1.1\r\nhost: fuzz\r\n");
            if keep {
                req.push_str("connection: keep-alive\r\n");
            }
            req.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
            let mut bytes = req.into_bytes();
            bytes.extend_from_slice(&body);
            bytes
        },
    )
}

/// A valid request with one byte overwritten.
fn mutated_request() -> Gen<Vec<u8>> {
    gen::pair(
        &valid_request(),
        &gen::pair(&gen::usize_in(0..=511), &gen::byte()),
    )
    .map(|(mut bytes, (pos, b))| {
        let at = pos % bytes.len();
        bytes[at] = b;
        bytes
    })
}

/// A request whose header block alone exceeds `max_head` (256 here).
fn overlong_header_request() -> Gen<Vec<u8>> {
    gen::usize_in(260..=400).map(|n| {
        let mut req = String::from("GET / HTTP/1.1\r\nx-pad: ");
        req.extend(std::iter::repeat('a').take(n));
        req.push_str("\r\n\r\n");
        req.into_bytes()
    })
}

/// A request whose `content-length` promises more bytes than follow.
fn truncated_body_request() -> Gen<Vec<u8>> {
    gen::pair(&gen::usize_in(1..=200), &gen::usize_in(0..=100)).map(|(claim, have)| {
        let mut bytes =
            format!("POST /v1/simulate HTTP/1.1\r\ncontent-length: {claim}\r\n\r\n").into_bytes();
        bytes.extend(std::iter::repeat(0x7Bu8).take(have.min(claim.saturating_sub(1))));
        bytes
    })
}

/// The full request-stream generator: raw soup first (shrinks toward
/// simplest), then the structured shapes.
fn request_stream() -> Gen<Vec<u8>> {
    gen::one_of(vec![
        gen::bytes_up_to(400),
        valid_request(),
        mutated_request(),
        overlong_header_request(),
        truncated_body_request(),
    ])
}

/// Property 1: the parser is total and `Complete` parses are
/// prefix-stable and within limits.
fn parser_is_total(input: &[u8]) -> Result<(), String> {
    match parse_request(input, &limits()) {
        Err(_) | Ok(Parse::Partial) => Ok(()),
        Ok(Parse::Complete(req, consumed)) => {
            if consumed > input.len() {
                return Err(format!(
                    "consumed {consumed} of a {}-byte input",
                    input.len()
                ));
            }
            if req.body.len() > limits().max_body {
                return Err(format!("body {} exceeds max_body", req.body.len()));
            }
            match parse_request(&input[..consumed], &limits()) {
                Ok(Parse::Complete(req2, consumed2)) if req2 == req && consumed2 == consumed => {
                    Ok(())
                }
                other => Err(format!("prefix re-parse diverged: {other:?}")),
            }
        }
    }
}

#[test]
fn http_parser_is_total_over_request_streams() {
    Checker::new("serve_fuzz::http_parser")
        .cases_from_env_or(20_000)
        .corpus(corpus_dir!())
        .check(&request_stream(), |input: &Vec<u8>| parser_is_total(input));
}

/// The committed corpus seeds must keep generating the shapes they were
/// committed to pin — if the generator drifts, this fails loudly instead
/// of the seeds silently degenerating into byte soup.
#[test]
fn committed_corpus_seeds_cover_the_advertised_shapes() {
    let sample = |seed: u64| request_stream().sample(&mut Source::fresh(seed));

    let overlong = sample(OVERLONG_HEADER_SEED);
    assert!(
        matches!(
            parse_request(&overlong, &limits()),
            Err(ref e) if e.status() == 431
        ),
        "seed {OVERLONG_HEADER_SEED:#x} no longer generates an over-long header: {:?}",
        parse_request(&overlong, &limits())
    );

    let truncated = sample(TRUNCATED_BODY_SEED);
    let parsed = parse_request(&truncated, &limits());
    assert!(
        matches!(parsed, Ok(Parse::Partial)),
        "seed {TRUNCATED_BODY_SEED:#x} no longer generates a truncated body: {parsed:?}"
    );
    assert!(
        truncated.windows(16).any(|w| w == b"content-length: "),
        "truncated-body seed lost its content-length header"
    );
}

/// Seeds committed under `tests/corpus/` for the shapes above.
const OVERLONG_HEADER_SEED: u64 = 0x0;
const TRUNCATED_BODY_SEED: u64 = 0xc;

/// Seeds committed under `tests/corpus/` for the conformance shapes.
const CLOSE_IN_LIST_SEED: u64 = 0x9;
const TAG_IN_LIST_SEED: u64 = 0x9;

/// Same drift alarm for the conformance-sweep corpus: the committed
/// seeds must keep generating a `close` buried in a multi-token
/// `Connection` list and a matching tag inside an `If-None-Match` list.
#[test]
fn conformance_corpus_seeds_cover_the_advertised_shapes() {
    let (bytes, expect) = connection_case().sample(&mut Source::fresh(CLOSE_IN_LIST_SEED));
    let value = connection_value(&bytes).expect("generated request has a connection header");
    assert!(
        expect && close_buried_in_list(&value),
        "seed {CLOSE_IN_LIST_SEED:#x} no longer buries close in a token list: {value:?}"
    );

    let (bytes, expect) = if_none_match_case().sample(&mut Source::fresh(TAG_IN_LIST_SEED));
    let text = String::from_utf8_lossy(&bytes).into_owned();
    assert!(
        expect && text.contains(','),
        "seed {TAG_IN_LIST_SEED:#x} no longer puts a matching tag in a list: {text:?}"
    );
}

/// Maintenance tool, not part of the suite: scans seeds and prints the
/// first one generating each corpus shape. Run with
/// `cargo test -p suit --test serve_fuzz find_corpus_seeds -- --ignored --nocapture`
/// after changing the generator, then update the constants and the
/// committed `.seed` files.
#[test]
#[ignore]
fn find_corpus_seeds() {
    let g = request_stream();
    let mut overlong = None;
    let mut truncated = None;
    for seed in 0..200_000u64 {
        let input = g.sample(&mut Source::fresh(seed));
        let parsed = parse_request(&input, &limits());
        if overlong.is_none() && matches!(parsed, Err(ref e) if e.status() == 431) {
            overlong = Some(seed);
        }
        if truncated.is_none()
            && matches!(parsed, Ok(Parse::Partial))
            && input.windows(16).any(|w| w == b"content-length: ")
        {
            truncated = Some(seed);
        }
        if overlong.is_some() && truncated.is_some() {
            break;
        }
    }
    println!("over-long header seed: {overlong:?}");
    println!("truncated body seed:   {truncated:?}");

    // The conformance shapes: a `close` token inside a multi-token list
    // (the pre-fix wants_close bug), and a matching tag inside an
    // `If-None-Match` list with at least one non-matching member.
    let conn = connection_case();
    let mut close_in_list = None;
    for seed in 0..200_000u64 {
        let (bytes, expect) = conn.sample(&mut Source::fresh(seed));
        if expect && connection_value(&bytes).is_some_and(|v| close_buried_in_list(&v)) {
            close_in_list = Some(seed);
            break;
        }
    }
    let inm = if_none_match_case();
    let mut tag_in_list = None;
    for seed in 0..200_000u64 {
        let (bytes, expect) = inm.sample(&mut Source::fresh(seed));
        if expect && bytes.windows(1).any(|w| w == b",") {
            tag_in_list = Some(seed);
            break;
        }
    }
    println!("close-in-list seed:    {close_in_list:?}");
    println!("tag-in-list seed:      {tag_in_list:?}");
}

/// Extracts the generated `connection:` header value.
fn connection_value(bytes: &[u8]) -> Option<String> {
    String::from_utf8_lossy(bytes)
        .lines()
        .find_map(|l| l.strip_prefix("connection: ").map(str::to_string))
}

/// The pre-fix bug shape: a `close` token inside a multi-token list,
/// which the old literal `value == "close"` comparison misread as
/// keep-alive.
fn close_buried_in_list(value: &str) -> bool {
    let tokens: Vec<&str> = value
        .split(',')
        .map(|t| t.trim_matches([' ', '\t']))
        .collect();
    tokens.len() >= 2
        && tokens.iter().any(|t| t.eq_ignore_ascii_case("close"))
        && !value.trim().eq_ignore_ascii_case("close")
}

/// What a `Connection` token means for connection lifetime. Carried
/// alongside the spelled form so the property's expectation is ground
/// truth by construction, not a re-implementation of the parser.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ConnToken {
    Close,
    KeepAlive,
    Other,
}

/// One spelled `Connection` token: mixed case, unrelated tokens, and
/// near-miss spellings that contain `close` as a substring.
fn connection_token() -> Gen<(&'static str, ConnToken)> {
    gen::from_slice(&[
        ("close", ConnToken::Close),
        ("CLOSE", ConnToken::Close),
        ("ClOsE", ConnToken::Close),
        ("keep-alive", ConnToken::KeepAlive),
        ("Keep-Alive", ConnToken::KeepAlive),
        ("TE", ConnToken::Other),
        ("upgrade", ConnToken::Other),
        ("closet", ConnToken::Other),
        ("disclose", ConnToken::Other),
        ("keep-alives", ConnToken::Other),
        ("", ConnToken::Other),
    ])
}

/// A parseable request carrying a token-list `Connection` header, plus
/// the by-construction expectation of whether the server must close:
/// a `close` token always wins, `keep-alive` holds an HTTP/1.0
/// connection open, and a list of neither falls back to the version
/// default.
fn connection_case() -> Gen<(Vec<u8>, bool)> {
    let tokens = connection_token().vec_up_to(4);
    let sep = gen::from_slice(&[",", ", ", " ,", ",\t", "\t,\t", " , "]);
    gen::pair(&gen::pair(&tokens, &sep), &gen::bool_any()).map(|((tokens, sep), http11)| {
        let value = tokens.iter().map(|(s, _)| *s).collect::<Vec<_>>().join(sep);
        let version = if http11 { "HTTP/1.1" } else { "HTTP/1.0" };
        let req = format!("GET / {version}\r\nhost: f\r\nconnection: {value}\r\n\r\n");
        let close = tokens.iter().any(|(_, t)| *t == ConnToken::Close);
        let keep = tokens.iter().any(|(_, t)| *t == ConnToken::KeepAlive);
        (req.into_bytes(), close || (!keep && !http11))
    })
}

/// Property 3: `wants_close` agrees with the constructed token list.
#[test]
fn wants_close_honours_token_list_connection_headers() {
    Checker::new("serve_fuzz::connection_tokens")
        .cases_from_env_or(20_000)
        .corpus(corpus_dir!())
        .check(
            &connection_case(),
            |(bytes, expect): &(Vec<u8>, bool)| match parse_request(bytes, &limits()) {
                Ok(Parse::Complete(req, _)) => {
                    if req.wants_close() == *expect {
                        Ok(())
                    } else {
                        Err(format!(
                            "wants_close() = {} for {:?}, expected {expect}",
                            req.wants_close(),
                            String::from_utf8_lossy(bytes)
                        ))
                    }
                }
                other => Err(format!("constructed request failed to parse: {other:?}")),
            },
        );
}

/// The tag every `If-None-Match` case revalidates against.
const TARGET_ETAG: &str = "\"suit-00112233445566778899aabbccddeeff\"";

/// One `If-None-Match` list member plus whether the weak comparison
/// must match [`TARGET_ETAG`]: the tag itself, its `W/` form and the
/// `*` wildcard match; other tags, weak other tags, the unquoted
/// spelling, and the empty member must not.
fn etag_member() -> Gen<(&'static str, bool)> {
    gen::from_slice(&[
        ("\"suit-00112233445566778899aabbccddeeff\"", true),
        ("W/\"suit-00112233445566778899aabbccddeeff\"", true),
        ("*", true),
        ("\"suit-ffffffffffffffffffffffffffffffff\"", false),
        ("\"etag\"", false),
        ("W/\"etag\"", false),
        ("suit-00112233445566778899aabbccddeeff", false),
        ("", false),
    ])
}

/// A parseable request carrying an `If-None-Match` list, plus whether
/// any member matches [`TARGET_ETAG`].
fn if_none_match_case() -> Gen<(Vec<u8>, bool)> {
    let members = etag_member().vec_up_to(3);
    let sep = gen::from_slice(&[",", ", ", " ,\t", " , "]);
    gen::pair(&members, &sep).map(|(members, sep)| {
        let value = members
            .iter()
            .map(|(s, _)| *s)
            .collect::<Vec<_>>()
            .join(sep);
        let req = format!(
            "POST /v1/simulate HTTP/1.1\r\nhost: f\r\nif-none-match: {value}\r\n\
             content-length: 0\r\n\r\n"
        );
        (req.into_bytes(), members.iter().any(|(_, m)| *m))
    })
}

/// Property 4: `if_none_match` agrees with the constructed member list.
#[test]
fn if_none_match_honours_etag_lists_weak_tags_and_star() {
    Checker::new("serve_fuzz::etag_lists")
        .cases_from_env_or(20_000)
        .corpus(corpus_dir!())
        .check(
            &if_none_match_case(),
            |(bytes, expect): &(Vec<u8>, bool)| match parse_request(bytes, &limits()) {
                Ok(Parse::Complete(req, _)) => {
                    if req.if_none_match(TARGET_ETAG) == *expect {
                        Ok(())
                    } else {
                        Err(format!(
                            "if_none_match() = {} for {:?}, expected {expect}",
                            req.if_none_match(TARGET_ETAG),
                            String::from_utf8_lossy(bytes)
                        ))
                    }
                }
                other => Err(format!("constructed request failed to parse: {other:?}")),
            },
        );
}

/// A JSON-ish body: raw text, valid endpoint bodies, and valid bodies
/// with one byte overwritten.
fn jsonish_body() -> Gen<String> {
    let valid = gen::from_slice(&[
        "{\"workload\":\"557.xz\",\"insts\":1000000}",
        "{\"sweep\":\"table6\",\"max_insts\":1000000}",
        "{\"workloads\":[\"Nginx\",\"VLC\"],\"cpu\":\"a\",\"offset\":70}",
        "{\"workloads\":\"all\",\"strategy\":\"adaptive\",\"deadline_ms\":1000}",
        "{\"executions\":100,\"sigma_mv\":5.5,\"cores\":8}",
        "{}",
    ]);
    let mutated = gen::pair(&valid, &gen::pair(&gen::usize_in(0..=127), &gen::byte())).map(
        |(s, (pos, b))| {
            let mut bytes = s.as_bytes().to_vec();
            let at = pos % bytes.len();
            bytes[at] = b;
            String::from_utf8_lossy(&bytes).into_owned()
        },
    );
    let soup = gen::bytes_up_to(200).map(|b| String::from_utf8_lossy(&b).into_owned());
    gen::one_of(vec![soup, valid.map(String::from), mutated])
}

/// Property 2: every endpoint validator is total — any outcome is fine,
/// panicking is the only failure.
#[test]
fn endpoint_validators_are_total_over_jsonish_bodies() {
    Checker::new("serve_fuzz::validators")
        .cases_from_env_or(20_000)
        .corpus(corpus_dir!())
        .check(&jsonish_body(), |body: &String| {
            let _ = api::parse_simulate(body);
            let _ = api::parse_batch(body);
            let _ = api::parse_faults(body);
            Ok::<(), String>(())
        });
}
