//! Cross-crate properties of the scenario subsystem.
//!
//! Three contracts, each swept over seeds rather than pinned to one
//! lucky sample:
//!
//! 1. **Bank-Vmin monotonicity** — undervolting deeper can only grow
//!    the set of faulting SRAM banks: for any array and offsets
//!    `a >= b` (b deeper), `faulted_banks(a) ⊆ faulted_banks(b)`.
//! 2. **Scrooge determinism** — the economic search returns
//!    byte-identical reports at 1 and 4 `suit-exec` workers.
//! 3. **Extended §6.9 audit** — at offsets deep enough to fault, every
//!    SUIT-defended configuration (traps-only, hardened `IMUL`, the
//!    SRAM bank guard) reports *zero* silent errors under both fault
//!    classes, while the naive undervolt does not get through clean.

use suit::exec::Threads;
use suit::faults::{
    audit_naive_undervolt, audit_sram_guarded, audit_sram_naive, audit_suit_system,
    audit_suit_traps_only, ChipVminModel, SramArrayModel,
};
use suit::scenarios::{scrooge, sram, ScroogeConfig, SramScenarioConfig};
use suit::telemetry::Telemetry;

#[test]
fn deeper_offsets_fault_a_superset_of_banks() {
    let offsets = [-40.0, -80.0, -110.0, -130.0, -150.0, -200.0];
    for seed in 0..20u64 {
        let array = SramArrayModel::sample(6, 3, 14.0, seed);
        for pair in offsets.windows(2) {
            let (shallow, deep) = (pair[0], pair[1]);
            let at_shallow = array.faulted_banks(shallow);
            let at_deep = array.faulted_banks(deep);
            for bank in &at_shallow {
                assert!(
                    at_deep.contains(bank),
                    "seed {seed}: bank {bank} faults at {shallow} mV but not at {deep} mV"
                );
            }
        }
    }
}

#[test]
fn scrooge_search_is_byte_identical_across_thread_counts() {
    for seed in [3u64, 0x5017] {
        let cfg = ScroogeConfig {
            seed,
            epoch_insts: 200_000,
            audit_len: 300,
            ..ScroogeConfig::default()
        };
        let one = scrooge::search(&cfg, 1, &Telemetry::off()).unwrap();
        let four = scrooge::search(&cfg, 4, &Telemetry::off()).unwrap();
        assert_eq!(
            one.to_json(),
            four.to_json(),
            "seed {seed}: search diverged across thread counts"
        );
        assert!(one.chosen.offset_mv < 0.0);
        assert!(one.chosen.freq_scale > 0.0 && one.chosen.freq_scale <= 1.0);
    }
}

/// The sram scenario report's audit matrix holds the SRAM-aware
/// invariant over seeds: no silent error in any defended row, both
/// fault classes covered, and the naive rows actually exercised the
/// fault models (deep sweep ⇒ corruption without the defences).
#[test]
fn defended_audits_are_silent_error_free_across_seeds() {
    let mut naive_instruction_failures = 0u32;
    let mut naive_sram_failures = 0u32;
    for seed in 0..8u64 {
        let cfg = SramScenarioConfig {
            seed,
            reads: 256,
            audit_len: 1000,
            ..SramScenarioConfig::default()
        };
        let report = sram::run(&cfg, 2, &Telemetry::off());
        let classes: Vec<&str> = report.audits.iter().map(|r| r.fault_class).collect();
        assert!(classes.contains(&"instruction") && classes.contains(&"sram"));
        assert!(
            report.defended_rows_secure(),
            "seed {seed}: a defended row leaked silent errors: {:#?}",
            report.audits
        );
        for row in &report.audits {
            if row.defence == "naive" && !row.outcome.is_secure() {
                match row.fault_class {
                    "instruction" => naive_instruction_failures += 1,
                    _ => naive_sram_failures += 1,
                }
            }
        }
    }
    // The deep sweep (to -180 mV) must corrupt the undefended system in
    // both fault classes for most seeds — otherwise the audit is not
    // actually distinguishing SUIT from doing nothing.
    assert!(
        naive_instruction_failures >= 6,
        "naive instruction audit almost never failed ({naive_instruction_failures}/8)"
    );
    assert!(
        naive_sram_failures >= 6,
        "naive sram audit almost never failed ({naive_sram_failures}/8)"
    );
}

/// The same invariant straight at the `suit-faults` audit layer, at a
/// spread of depths: SUIT configurations never execute a faulted
/// result silently, at any offset.
#[test]
fn suit_audits_hold_at_every_depth() {
    for seed in 0..6u64 {
        let chip = ChipVminModel::sample(2, 12.0, seed);
        let array = SramArrayModel::sample(4, 2, 12.0, seed);
        for offset in [-60.0, -100.0, -140.0, -180.0] {
            for (label, outcome) in [
                ("traps", audit_suit_traps_only(&chip, 0, offset, seed, 600)),
                ("hardened", audit_suit_system(&chip, 0, offset, seed, 600)),
                ("guarded", audit_sram_guarded(&array, offset, seed, 600)),
            ] {
                assert!(
                    outcome.is_secure(),
                    "seed {seed}, {offset} mV: {label} leaked {} silent errors",
                    outcome.silent_errors
                );
            }
        }
        // And the naive paths do fault somewhere in that range.
        let naive_faults = [-60.0, -100.0, -140.0, -180.0].iter().any(|&o| {
            audit_naive_undervolt(&chip, 0, o, seed, 600).silent_errors > 0
                || audit_sram_naive(&array, o, seed, 600).silent_errors > 0
        });
        assert!(naive_faults, "seed {seed}: naive audits never faulted");
    }
}

/// The two scenario runners agree with the service/CLI JSON contract:
/// reports parse as JSON and carry the discriminator.
#[test]
fn reports_serialize_with_discriminators() {
    let sram_cfg = SramScenarioConfig {
        reads: 128,
        audit_len: 200,
        ..SramScenarioConfig::default()
    };
    let r = sram::run(&sram_cfg, 1, &Telemetry::off());
    let doc = suit::telemetry::json::parse(&r.to_json()).expect("valid JSON");
    assert_eq!(doc.get("scenario").and_then(|s| s.as_str()), Some("sram"));

    let scrooge_cfg = ScroogeConfig {
        epoch_insts: 100_000,
        audit_len: 200,
        ..ScroogeConfig::default()
    };
    let r = scrooge::search(&scrooge_cfg, 2, &Telemetry::off()).unwrap();
    let doc = suit::telemetry::json::parse(&r.to_json()).expect("valid JSON");
    assert_eq!(
        doc.get("scenario").and_then(|s| s.as_str()),
        Some("scrooge")
    );
    // Threads::parse is the shared CLI surface the scenario subcommand
    // uses; pin that the fixed policy the tests rely on round-trips.
    assert_eq!(Threads::parse("4").unwrap().count(), 4);
}
