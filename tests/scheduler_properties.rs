//! Property tests for the discrete-event scheduler.
//!
//! The engine's correctness rests on three scheduler invariants, each
//! pinned here over randomized inputs (seeds replay from
//! `tests/corpus/` before random exploration):
//!
//! 1. **Total, stable order** — `EventHeap` pops form exactly the
//!    lexicographic `(tick, component id)` sort of what was pushed:
//!    equal ticks resolve by id, duplicates included. This is the
//!    tie-break rule that makes replay byte-identical (pending=0 beats
//!    timer=1 beats cores 2+i, reproducing the legacy scan priorities).
//! 2. **Time never moves backwards** — interleaved push/pop sequences
//!    agree with a sorted-model oracle, and every drain is
//!    nondecreasing; at the engine level, recorded p-state timelines
//!    are nondecreasing in time for random configurations.
//! 3. **Sharding is invisible** — for random fleet topologies, the
//!    domain-sharded driver at 1 and 4 threads and the serial
//!    component-scheduler driver produce identical results.

use suit::check::gen::{self, Gen};
use suit::check::{corpus_dir, Checker};
use suit::exec::Threads;
use suit::hw::{CpuModel, UndervoltLevel};
use suit::isa::SimTime;
use suit::sim::engine::{simulate_with_timeline, SimConfig};
use suit::sim::event::EventHeap;
use suit::sim::fleet::{FleetConfig, FleetSim};
use suit::trace::profile;

/// Random `(tick, id)` entries: tick range is tiny on purpose so ties
/// and duplicates are common, which is where tie-break bugs live.
fn entries() -> Gen<Vec<(u64, u32)>> {
    gen::pair(&gen::u64_in(0..=40), &gen::u32_in(0..=6)).vec_up_to(96)
}

/// Property 1: a full drain is exactly the stable lexicographic sort.
#[test]
fn heap_drain_is_total_stable_order() {
    Checker::new("scheduler_props::heap_order")
        .cases_from_env_or(20_000)
        .corpus(corpus_dir!())
        .check(&entries(), |items: &Vec<(u64, u32)>| {
            let mut heap = EventHeap::new();
            for &(t, id) in items {
                heap.push(SimTime::from_picos(t), id);
            }
            let mut drained = Vec::new();
            while let Some((t, id)) = heap.pop() {
                drained.push((t.as_picos(), id));
            }
            let mut expect = items.clone();
            expect.sort_unstable();
            if drained == expect {
                Ok(())
            } else {
                Err(format!("drain {drained:?} != sorted {expect:?}"))
            }
        });
}

/// An interleaved op sequence: push `(tick, id)` or pop.
fn op_sequence() -> Gen<Vec<Option<(u64, u32)>>> {
    gen::one_of(vec![
        gen::pair(&gen::u64_in(0..=40), &gen::u32_in(0..=6)).map(Some),
        gen::u64_in(0..=1).map(|_| None),
    ])
    .vec_up_to(96)
}

/// Property 2 (heap level): interleaved push/pop matches a sorted-model
/// oracle — covering *reschedule* shapes, where a popped component
/// pushes its next tick back in while other events are pending — and
/// consecutive pops between pushes never go backwards.
#[test]
fn heap_matches_sorted_model_under_interleaving() {
    Checker::new("scheduler_props::heap_model")
        .cases_from_env_or(20_000)
        .corpus(corpus_dir!())
        .check(&op_sequence(), |ops: &Vec<Option<(u64, u32)>>| {
            let mut heap = EventHeap::new();
            let mut model: Vec<(u64, u32)> = Vec::new();
            for op in ops {
                match op {
                    Some((t, id)) => {
                        heap.push(SimTime::from_picos(*t), *id);
                        model.push((*t, *id));
                        model.sort_unstable();
                    }
                    None => {
                        let got = heap.pop().map(|(t, id)| (t.as_picos(), id));
                        let want = if model.is_empty() {
                            None
                        } else {
                            Some(model.remove(0))
                        };
                        if got != want {
                            return Err(format!("pop {got:?}, model says {want:?}"));
                        }
                    }
                }
            }
            if heap.len() != model.len() {
                return Err(format!("leftover {} != model {}", heap.len(), model.len()));
            }
            Ok(())
        });
}

/// Property 2 (engine level): no component observes time moving
/// backwards — the recorded p-state timeline of a random configuration
/// is nondecreasing.
#[test]
fn timelines_never_move_backwards() {
    let workloads: Vec<&'static str> = profile::all().iter().map(|p| p.name).collect();
    let n = workloads.len();
    let scenario = gen::pair(
        &gen::pair(&gen::usize_in(0..=n - 1), &gen::from_slice(&[1usize, 2, 4])),
        &gen::pair(
            &gen::u64_any(),
            &gen::from_slice(&[1_000_000u64, 4_000_000]),
        ),
    );
    Checker::new("scheduler_props::time_forward")
        .cases_from_env_or(40)
        .corpus(corpus_dir!())
        .check(
            &scenario,
            move |&((wi, cores), (seed, insts)): &((usize, usize), (u64, u64))| {
                let p = profile::by_name(workloads[wi]).expect("known");
                let cpu = CpuModel::i9_9900k();
                let cfg = SimConfig {
                    cores,
                    seed,
                    ..SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(insts)
                };
                let (_, timeline) = simulate_with_timeline(&cpu, p, &cfg);
                for w in timeline.windows(2) {
                    if w[1].at < w[0].at {
                        return Err(format!(
                            "timeline went backwards: {:?} then {:?}",
                            w[0], w[1]
                        ));
                    }
                }
                Ok(())
            },
        );
}

/// Random small-but-structured fleet topologies.
fn topologies() -> Gen<FleetConfig> {
    let shape = gen::pair(
        &gen::pair(&gen::usize_in(1..=3), &gen::usize_in(1..=3)),
        &gen::pair(&gen::usize_in(1..=2), &gen::usize_in(1..=3)),
    );
    let knobs = gen::pair(
        &gen::pair(&gen::u64_any(), &gen::from_slice(&[0.3f64, 0.7, 1.0])),
        &gen::pair(
            &gen::from_slice(&["502.gcc", "557.xz", "520.omnetpp", "Nginx"]),
            &gen::from_slice(&[0.0f64, 4.0]),
        ),
    );
    gen::pair(&shape, &knobs).map(
        |(((racks, dpr), (cpd, epochs)), ((seed, util), (workload, age)))| FleetConfig {
            racks,
            domains_per_rack: dpr,
            cores_per_domain: cpd,
            epochs,
            epoch_insts: 1_000_000,
            seed,
            utilization: util,
            workloads: vec![workload.to_string()],
            deployment_years: age,
            ..FleetConfig::default()
        },
    )
}

/// Property 3: domain-sharded execution is indistinguishable from
/// single-threaded execution, and both from the serial event-driven
/// driver, for random fleet topologies.
#[test]
fn sharded_fleet_equals_serial_for_random_topologies() {
    Checker::new("scheduler_props::fleet_shard")
        .cases_from_env_or(25)
        .corpus(corpus_dir!())
        .check(&topologies(), |cfg: &FleetConfig| {
            let sim = FleetSim::new(cfg.clone()).map_err(|e| format!("invalid config: {e}"))?;
            let t1 = sim.run(Threads::Fixed(1));
            let t4 = sim.run(Threads::Fixed(4));
            if format!("{t1:?}") != format!("{t4:?}") {
                return Err("sharded run depends on thread count".to_string());
            }
            let ev = sim.run_event_driven();
            if format!("{t1:?}") != format!("{ev:?}") {
                return Err("event-driven driver diverges from sharded".to_string());
            }
            Ok(())
        });
}
