//! Structure-aware differential fuzz target for the `#DO` byte decoder.
//!
//! Four properties over `suit_isa::decode`:
//!
//! 1. total safety: `decode` never panics on arbitrary/mutated input, and
//!    every `Ok` decode is self-consistent (length in `1..=15`, within the
//!    input, and stable under re-decoding its own prefix);
//! 2. encode→decode agreement: the independent encoder's expectation is
//!    reproduced exactly for every valid encoding spec;
//! 3. decode→reencode→decode: canonical re-encoding preserves instruction
//!    semantics;
//! 4. over-length rejection: any encoding padded past the architectural
//!    15-byte limit is refused, never decoded.
//!
//! CI drives property 1 with `SUIT_CHECK_CASES=100000` as the fuzz-smoke
//! gate; locally it runs a bounded default. Failing seeds are persisted
//! to `tests/corpus/` and replayed first on every run.

use suit::check::{corpus_dir, gens, Checker};
use suit::isa::decode::decode;
use suit::isa::reencode;

/// The decoder must be total: no panics, and every accepted decode must
/// be internally consistent with the bytes it consumed.
#[test]
fn decode_is_total_and_consistent() {
    Checker::new("decode_fuzz::total")
        .cases_from_env_or(20_000)
        .corpus(corpus_dir!())
        .check(&gens::decoder_input(), |bytes: &Vec<u8>| {
            match decode(bytes) {
                Err(_) => Ok(()),
                Ok(d) => {
                    if d.length == 0 || d.length > 15 {
                        return Err(format!("length {} outside 1..=15", d.length));
                    }
                    if d.length > bytes.len() {
                        return Err(format!(
                            "length {} exceeds input length {}",
                            d.length,
                            bytes.len()
                        ));
                    }
                    // Prefix stability: the consumed bytes alone decode
                    // to the identical instruction.
                    match decode(&bytes[..d.length]) {
                        Ok(d2) if d2 == d => Ok(()),
                        other => Err(format!("prefix re-decode diverged: {other:?} vs {d:?}")),
                    }
                }
            }
        });
}

/// Differential oracle: the encoder (an independent transcription of the
/// SDM tables) and the decoder must agree on every valid encoding.
#[test]
fn encode_decode_round_trip() {
    Checker::new("decode_fuzz::encode_roundtrip")
        .cases_from_env_or(20_000)
        .corpus(corpus_dir!())
        .check(&gens::encode_spec(), |spec| {
            let bytes = spec.encode();
            match decode(&bytes) {
                Ok(d) if d == spec.expected() => Ok(()),
                Ok(d) => Err(format!("decoded {d:?}, expected {:?}", spec.expected())),
                Err(e) => Err(format!("valid encoding rejected: {e} ({bytes:02x?})")),
            }
        });
}

/// Canonical re-encoding preserves instruction semantics: a decode of
/// `reencode(d)` agrees with `d` on every semantic field (the byte form
/// may differ — redundant prefixes and memory operands are canonicalised).
#[test]
fn reencode_preserves_semantics() {
    Checker::new("decode_fuzz::reencode")
        .cases_from_env_or(10_000)
        .corpus(corpus_dir!())
        .check(&gens::valid_encoding(), |bytes: &Vec<u8>| {
            let d = match decode(bytes) {
                Ok(d) => d,
                Err(e) => return Err(format!("valid encoding rejected: {e}")),
            };
            let re = match reencode(&d) {
                Some(re) => re,
                None => return Err(format!("no canonical re-encoding for {d:?}")),
            };
            let d2 = match decode(&re) {
                Ok(d2) => d2,
                Err(e) => return Err(format!("re-encoding undecodable: {e} ({re:02x?})")),
            };
            let semantic = |d: &suit::isa::decode::Decoded| {
                (d.opcode, d.aes, d.reg, d.rm_reg, d.vvvv, d.imm8, d.vex)
            };
            if semantic(&d2) != semantic(&d) {
                return Err(format!("semantics changed: {d:?} -> {d2:?}"));
            }
            if d2.length != re.len() {
                return Err(format!(
                    "canonical form has trailing bytes: length {} of {}",
                    d2.length,
                    re.len()
                ));
            }
            Ok(())
        });
}

/// Padding a valid encoding past 15 total bytes must be rejected with
/// `TooLong` — real hardware raises #GP, so the model must not decode it.
#[test]
fn over_length_encodings_are_rejected() {
    Checker::new("decode_fuzz::over_length")
        .cases_from_env_or(5_000)
        .corpus(corpus_dir!())
        .check(&gens::valid_encoding(), |bytes: &Vec<u8>| {
            // Pad with redundant F3 prefixes to one byte past the limit.
            // (F3 keeps every faultable form decodable-but-over-long.)
            let pad = 16usize.saturating_sub(bytes.len());
            let mut long = vec![0xF3u8; pad];
            long.extend_from_slice(bytes);
            match decode(&long) {
                Ok(d) => Err(format!("16-byte encoding decoded: {d:?}")),
                // Extending the prefix run may reclassify the instruction
                // entirely (e.g. F3 before a VEX escape), so any rejection
                // counts — `TooLong` is just the usual one.
                Err(_) => Ok(()),
            }
        });
}
