//! Determinism regression tests for the parallel campaigns.
//!
//! The contract: every random draw in a sharded campaign derives from the
//! top-level seed through [`suit_rng::SuitRng::fork`] keyed by the shard
//! index — a pure function of `(seed, index)`, independent of which worker
//! thread executes the shard and of when it is scheduled. Hence the same
//! seed must produce **byte-identical** results at every thread count.
//! These tests pin that property at the public-API level so a future
//! refactor cannot silently trade reproducibility for speed.

use suit::exec::Threads;
use suit::faults::inject::Campaign;
use suit::faults::vmin::ChipVminModel;
use suit::hw::{CpuModel, UndervoltLevel};
use suit::sim::engine::{simulate, simulate_telemetry, SimConfig};
use suit::sim::experiment::run_table6;
use suit::sim::montecarlo::{monte_carlo_telemetry, monte_carlo_with_threads};
use suit::telemetry::Telemetry;
use suit::trace::profile;

#[test]
fn monte_carlo_values_are_byte_identical_across_thread_counts() {
    let cpu = CpuModel::xeon_4208();
    let p = profile::by_name("502.gcc").unwrap();
    let cfg = SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(200_000_000);

    let reference = monte_carlo_with_threads(&cpu, p, &cfg, 8, 1);
    for threads in [4, 8] {
        let parallel = monte_carlo_with_threads(&cpu, p, &cfg, 8, threads);
        // Compare the raw sorted per-run vectors bit-for-bit: f64 -> bits
        // so even a ±0.0 or ULP difference fails loudly.
        for (name, a, b) in [
            ("perf", &reference.perf, &parallel.perf),
            ("power", &reference.power, &parallel.power),
            ("eff", &reference.eff, &parallel.eff),
            ("residency", &reference.residency, &parallel.residency),
        ] {
            let bits = |d: &suit::sim::montecarlo::Distribution| {
                d.values.iter().map(|v| v.to_bits()).collect::<Vec<u64>>()
            };
            assert_eq!(bits(a), bits(b), "{name} diverged at {threads} threads");
        }
    }
}

#[test]
fn monte_carlo_is_invariant_to_oversubscription() {
    // More workers than runs: some threads get empty shards. The chunked
    // index arithmetic must still place run i's metrics in slot i.
    let cpu = CpuModel::xeon_4208();
    let p = profile::by_name("Nginx").unwrap();
    let cfg = SimConfig::fv_intel(UndervoltLevel::Mv70).with_max_insts(100_000_000);

    let serial = monte_carlo_with_threads(&cpu, p, &cfg, 3, 1);
    let oversubscribed = monte_carlo_with_threads(&cpu, p, &cfg, 3, 16);
    assert_eq!(serial, oversubscribed);
}

#[test]
fn fault_campaign_reports_are_identical_across_thread_counts() {
    let chip = ChipVminModel::sample(2, 12.0, 7);
    let campaign = Campaign::standard(chip, 1234);
    let reference = campaign.run_with_threads(1);
    for threads in [2, 4, 8] {
        assert_eq!(
            campaign.run_with_threads(threads),
            reference,
            "campaign diverged at {threads} threads"
        );
    }
}

#[test]
fn merged_telemetry_is_byte_identical_across_thread_counts() {
    // Telemetry from a sharded Monte-Carlo campaign: per-run recorders are
    // merged in run-index order after the parallel scope, so counters,
    // histogram buckets and the event stream — and therefore the serialized
    // Perfetto trace — must be byte-identical at every thread count.
    let cpu = CpuModel::xeon_4208();
    let p = profile::by_name("502.gcc").unwrap();
    let cfg = SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(100_000_000);

    let (reference_mc, reference) = monte_carlo_telemetry(&cpu, p, &cfg, 8, 1);
    assert!(reference.counter(suit::telemetry::Counter::DoTraps) > 0);
    for threads in [4, 8, 16] {
        let (mc, snap) = monte_carlo_telemetry(&cpu, p, &cfg, 8, threads);
        assert_eq!(reference_mc, mc, "metrics diverged at {threads} threads");
        assert_eq!(reference, snap, "telemetry diverged at {threads} threads");
        assert_eq!(
            reference.to_perfetto_json(),
            snap.to_perfetto_json(),
            "serialized trace diverged at {threads} threads"
        );
    }
}

#[test]
fn table6_sweep_is_byte_identical_across_thread_counts() {
    // The full Table 6 sweep — every (row, level) cell — goes through the
    // suit-exec fan-out. PartialEq on RowResult compares every per-workload
    // f64, so any scheduling-dependent divergence fails here.
    let reference = run_table6(Threads::Fixed(1), Some(20_000_000));
    assert_eq!(reference.len(), 12, "6 rows x 2 levels");
    for threads in [4, 8] {
        assert_eq!(
            run_table6(Threads::Fixed(threads), Some(20_000_000)),
            reference,
            "Table 6 sweep diverged at {threads} threads"
        );
    }
}

#[test]
fn fault_campaign_telemetry_is_identical_across_thread_counts() {
    // The refactored campaign shares one recorder across workers and
    // restricts itself to commutative telemetry (counters/histograms), so
    // both the report and the merged snapshot must match at any width.
    let chip = ChipVminModel::sample(2, 12.0, 3);
    let campaign = Campaign::standard(chip, 99);
    let reference_tele = Telemetry::recording();
    let reference = campaign.run_with_threads_telemetry(1, &reference_tele);
    for threads in [4, 8] {
        let tele = Telemetry::recording();
        let report = campaign.run_with_threads_telemetry(threads, &tele);
        assert_eq!(report, reference, "report diverged at {threads} threads");
        assert_eq!(
            tele.snapshot(),
            reference_tele.snapshot(),
            "telemetry diverged at {threads} threads"
        );
    }
}

#[test]
fn parallel_property_exploration_finds_the_sequential_failure() {
    // suit-check's parallel mode scans case indices in blocks and takes the
    // lowest failing index, then shrinks sequentially — so the reported
    // Failure (seed, minimal counterexample, shrink trace) must be
    // byte-identical to a one-worker run.
    use suit::check::{gen, Checker};
    let run = |threads: Threads| {
        Checker::new("determinism::parallel_explore")
            .cases(512)
            .workers(threads)
            .check_report(&gen::u64_in(0..=1_000_000).vec_up_to(8), |v: &Vec<u64>| {
                v.iter().sum::<u64>() < 900_000
            })
            .expect("property must fail")
    };
    let sequential = run(Threads::Fixed(1));
    for threads in [2, 4, 8] {
        assert_eq!(
            run(Threads::Fixed(threads)),
            sequential,
            "suit-check diverged at {threads} workers"
        );
    }
}

#[test]
fn telemetry_recording_does_not_change_results() {
    // The recorder is strictly observational: a run with telemetry on must
    // produce bit-for-bit the same RunResult as one with it off.
    let cpu = CpuModel::xeon_4208();
    let p = profile::by_name("Nginx").unwrap();
    for level in [UndervoltLevel::Mv70, UndervoltLevel::Mv97] {
        let cfg = SimConfig::fv_intel(level).with_max_insts(150_000_000);
        let plain = simulate(&cpu, p, &cfg);
        let traced = simulate_telemetry(&cpu, p, &cfg, &Telemetry::recording());
        assert_eq!(plain, traced, "telemetry perturbed the run at {level}");
    }
}

#[test]
fn distinct_top_level_seeds_decorrelate() {
    // Guards against a fork() regression that ignores the root seed.
    let cpu = CpuModel::xeon_4208();
    let p = profile::by_name("502.gcc").unwrap();
    let mut cfg = SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(100_000_000);

    let a = monte_carlo_with_threads(&cpu, p, &cfg, 4, 4);
    cfg.seed = cfg.seed.wrapping_add(1);
    let b = monte_carlo_with_threads(&cpu, p, &cfg, 4, 4);
    assert_ne!(a, b, "different seeds must give different campaigns");
}
