//! Cross-validation between the *functional* crypto (suit-emu's AES-GCM)
//! and the *statistical* workload model (suit-trace's Nginx profile): the
//! faultable-instruction counts implied by actually encrypting an HTTPS
//! response must agree with the burst sizes the trace generator emits.

use suit::emu::aes::Aes128Key;
use suit::emu::gcm::{gcm_decrypt, gcm_encrypt};
use suit::trace::{profile, TraceGen};

/// Faultable instructions a hardware AES-GCM implementation executes per
/// 16-byte block: 10 `AESENC`-class rounds for the CTR keystream plus
/// GHASH's carry-less multiplies (≈ 1 `VPCLMULQDQ` per block with
/// aggregated reduction) and XORs.
const FAULTABLE_PER_BLOCK_MIN: f64 = 11.0;
const FAULTABLE_PER_BLOCK_MAX: f64 = 20.0;

#[test]
fn nginx_profile_matches_real_gcm_instruction_counts() {
    // The paper's Nginx serves 100 kB files over HTTPS (§6.2).
    let file_bytes = 100 * 1024u64;
    let blocks = file_bytes as f64 / 16.0;

    let p = profile::by_name("Nginx").unwrap();
    // Burst sizes in the profile, in faultable instructions.
    let mean_burst = p.events_per_burst;

    // One profile burst covers one pipelined batch of requests; derive the
    // implied requests per burst and require it to be physically sensible
    // (the wrk benchmark pipelines a small number of requests).
    let implied_min = mean_burst / (blocks * FAULTABLE_PER_BLOCK_MAX);
    let implied_max = mean_burst / (blocks * FAULTABLE_PER_BLOCK_MIN);
    assert!(
        implied_min <= 4.0 && implied_max >= 0.5,
        "burst {mean_burst} implies {implied_min:.2}..{implied_max:.2} requests"
    );
}

#[test]
fn gcm_of_100kb_uses_the_expected_instruction_budget() {
    // Count actual primitive invocations by construction: our GCM does
    // 11 rounds per keystream block (10 AESENC + 1 AESENCLAST), plus one
    // block for H, one for the tag mask, and 4 VPCLMULQDQs per GHASH block.
    let file = vec![0xA5u8; 100 * 1024];
    let key = Aes128Key::expand(*b"server-key-bytes");
    let iv = *b"nonce-123456";
    let (ct, tag) = gcm_encrypt(&key, &iv, b"", &file);
    assert_eq!(ct.len(), file.len());

    let blocks = (file.len() as f64 / 16.0).ceil();
    let aes_rounds = (blocks + 2.0) * 11.0; // keystream + H + tag mask
    let clmuls = (blocks + 1.0) * 4.0; // GHASH + length block
    let total = aes_rounds + clmuls;
    // §6.2's order of magnitude: ~70 000 AESENC-class ops per 100 kB file.
    assert!(
        (60_000.0..110_000.0).contains(&total),
        "faultable budget {total}"
    );

    // And the crypto is actually correct.
    let pt = gcm_decrypt(&key, &iv, b"", &ct, tag).expect("tag verifies");
    assert_eq!(pt, file);
}

#[test]
fn trace_generator_bursts_are_consistent_with_the_cipher() {
    // Generated Nginx bursts must hold enough faultable instructions for
    // at least one whole 100 kB response's crypto, on average.
    let p = profile::by_name("Nginx").unwrap();
    let bursts: Vec<_> = TraceGen::new(p, 0x5017).take(300).collect();
    let mean: f64 = bursts.iter().map(|b| f64::from(b.events)).sum::<f64>() / bursts.len() as f64;
    let one_response = (100.0 * 1024.0 / 16.0) * FAULTABLE_PER_BLOCK_MIN;
    assert!(
        mean > one_response * 0.8,
        "mean burst {mean:.0} vs one response {one_response:.0}"
    );
}

#[test]
fn tag_is_sensitive_to_every_part_of_the_message() {
    let key = Aes128Key::expand([3u8; 16]);
    let iv = [1u8; 12];
    let msg = vec![0u8; 256];
    let (_, tag0) = gcm_encrypt(&key, &iv, b"", &msg);
    for flip in [0usize, 100, 255] {
        let mut m = msg.clone();
        m[flip] ^= 0x80;
        let (_, tag) = gcm_encrypt(&key, &iv, b"", &m);
        assert_ne!(tag.as_u128(), tag0.as_u128(), "byte {flip}");
    }
    // AAD too.
    let (_, tag_aad) = gcm_encrypt(&key, &iv, b"x", &msg);
    assert_ne!(tag_aad.as_u128(), tag0.as_u128());
}

#[test]
fn distinct_nonces_give_distinct_keystreams() {
    let key = Aes128Key::expand([9u8; 16]);
    let msg = vec![0u8; 64];
    let (c1, _) = gcm_encrypt(&key, &[1u8; 12], b"", &msg);
    let (c2, _) = gcm_encrypt(&key, &[2u8; 12], b"", &msg);
    assert_ne!(c1, c2, "nonce reuse would be catastrophic");
    // Zero plaintext ⇒ ciphertext *is* the keystream; it must look
    // balanced (sanity against constant or degenerate output).
    let ones: u32 = c1.iter().map(|b| b.count_ones()).sum();
    assert!((150..=350).contains(&ones), "{ones} set bits in 512");
}
