//! Cross-validation between the *functional* crypto (suit-emu's AES-GCM)
//! and the *statistical* workload model (suit-trace's Nginx profile): the
//! faultable-instruction counts implied by actually encrypting an HTTPS
//! response must agree with the burst sizes the trace generator emits.

use suit::check::{corpus_dir, gen, Checker};
use suit::emu::aes::aes256::Aes256Key;
use suit::emu::aes::{bitsliced, Aes128Key};
use suit::emu::gcm::{gcm_decrypt, gcm_encrypt, ghash_mul_ref};
use suit::isa::Vec128;
use suit::trace::{profile, TraceGen};

/// Decodes an even-length hex string (KAT vectors are quoted verbatim
/// from the specs, so keeping them as text keeps them checkable).
fn hex(s: &str) -> Vec<u8> {
    assert!(s.len() % 2 == 0, "odd hex length");
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
        .collect()
}

fn hex16(s: &str) -> [u8; 16] {
    hex(s).try_into().unwrap()
}

/// Faultable instructions a hardware AES-GCM implementation executes per
/// 16-byte block: 10 `AESENC`-class rounds for the CTR keystream plus
/// GHASH's carry-less multiplies (≈ 1 `VPCLMULQDQ` per block with
/// aggregated reduction) and XORs.
const FAULTABLE_PER_BLOCK_MIN: f64 = 11.0;
const FAULTABLE_PER_BLOCK_MAX: f64 = 20.0;

#[test]
fn nginx_profile_matches_real_gcm_instruction_counts() {
    // The paper's Nginx serves 100 kB files over HTTPS (§6.2).
    let file_bytes = 100 * 1024u64;
    let blocks = file_bytes as f64 / 16.0;

    let p = profile::by_name("Nginx").unwrap();
    // Burst sizes in the profile, in faultable instructions.
    let mean_burst = p.events_per_burst;

    // One profile burst covers one pipelined batch of requests; derive the
    // implied requests per burst and require it to be physically sensible
    // (the wrk benchmark pipelines a small number of requests).
    let implied_min = mean_burst / (blocks * FAULTABLE_PER_BLOCK_MAX);
    let implied_max = mean_burst / (blocks * FAULTABLE_PER_BLOCK_MIN);
    assert!(
        implied_min <= 4.0 && implied_max >= 0.5,
        "burst {mean_burst} implies {implied_min:.2}..{implied_max:.2} requests"
    );
}

#[test]
fn gcm_of_100kb_uses_the_expected_instruction_budget() {
    // Count actual primitive invocations by construction: our GCM does
    // 11 rounds per keystream block (10 AESENC + 1 AESENCLAST), plus one
    // block for H, one for the tag mask, and 4 VPCLMULQDQs per GHASH block.
    let file = vec![0xA5u8; 100 * 1024];
    let key = Aes128Key::expand(*b"server-key-bytes");
    let iv = *b"nonce-123456";
    let (ct, tag) = gcm_encrypt(&key, &iv, b"", &file);
    assert_eq!(ct.len(), file.len());

    let blocks = (file.len() as f64 / 16.0).ceil();
    let aes_rounds = (blocks + 2.0) * 11.0; // keystream + H + tag mask
    let clmuls = (blocks + 1.0) * 4.0; // GHASH + length block
    let total = aes_rounds + clmuls;
    // §6.2's order of magnitude: ~70 000 AESENC-class ops per 100 kB file.
    assert!(
        (60_000.0..110_000.0).contains(&total),
        "faultable budget {total}"
    );

    // And the crypto is actually correct.
    let pt = gcm_decrypt(&key, &iv, b"", &ct, tag).expect("tag verifies");
    assert_eq!(pt, file);
}

#[test]
fn trace_generator_bursts_are_consistent_with_the_cipher() {
    // Generated Nginx bursts must hold enough faultable instructions for
    // at least one whole 100 kB response's crypto, on average.
    let p = profile::by_name("Nginx").unwrap();
    let bursts: Vec<_> = TraceGen::new(p, 0x5017).take(300).collect();
    let mean: f64 = bursts.iter().map(|b| f64::from(b.events)).sum::<f64>() / bursts.len() as f64;
    let one_response = (100.0 * 1024.0 / 16.0) * FAULTABLE_PER_BLOCK_MIN;
    assert!(
        mean > one_response * 0.8,
        "mean burst {mean:.0} vs one response {one_response:.0}"
    );
}

#[test]
fn tag_is_sensitive_to_every_part_of_the_message() {
    let key = Aes128Key::expand([3u8; 16]);
    let iv = [1u8; 12];
    let msg = vec![0u8; 256];
    let (_, tag0) = gcm_encrypt(&key, &iv, b"", &msg);
    for flip in [0usize, 100, 255] {
        let mut m = msg.clone();
        m[flip] ^= 0x80;
        let (_, tag) = gcm_encrypt(&key, &iv, b"", &m);
        assert_ne!(tag.as_u128(), tag0.as_u128(), "byte {flip}");
    }
    // AAD too.
    let (_, tag_aad) = gcm_encrypt(&key, &iv, b"x", &msg);
    assert_ne!(tag_aad.as_u128(), tag0.as_u128());
}

#[test]
fn distinct_nonces_give_distinct_keystreams() {
    let key = Aes128Key::expand([9u8; 16]);
    let msg = vec![0u8; 64];
    let (c1, _) = gcm_encrypt(&key, &[1u8; 12], b"", &msg);
    let (c2, _) = gcm_encrypt(&key, &[2u8; 12], b"", &msg);
    assert_ne!(c1, c2, "nonce reuse would be catastrophic");
    // Zero plaintext ⇒ ciphertext *is* the keystream; it must look
    // balanced (sanity against constant or degenerate output).
    let ones: u32 = c1.iter().map(|b| b.count_ones()).sum();
    assert!((150..=350).contains(&ones), "{ones} set bits in 512");
}

/// FIPS-197 appendix C.3: the AES-256 example vector, through both the
/// table-based and the constant-time bit-sliced path (and the 4-wide
/// kernel, which must treat lanes independently).
#[test]
fn aes256_fips197_kat() {
    let key = Aes256Key::expand(
        hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
            .try_into()
            .unwrap(),
    );
    let pt = Vec128::from_bytes(hex16("00112233445566778899aabbccddeeff"));
    let ct = Vec128::from_bytes(hex16("8ea2b7ca516745bfeafc49904b496089"));
    assert_eq!(key.encrypt(pt), ct, "table-based path");
    assert_eq!(key.encrypt_ct(pt), ct, "bit-sliced path");
    let lanes = key.encrypt_ct_x4([pt, Vec128::ZERO, pt, Vec128::ZERO]);
    assert_eq!(lanes[0], ct, "4-wide lane 0");
    assert_eq!(lanes[2], ct, "4-wide lane 2");
    assert_eq!(lanes[1], key.encrypt_ct(Vec128::ZERO), "4-wide lane 1");
}

/// NIST GCM test cases 1–4 (SP 800-38D validation set): empty plaintext,
/// empty AAD, a block-aligned message, and a non-block-aligned message
/// with AAD. Both directions are exercised.
#[test]
fn aes128_gcm_nist_kats() {
    // Cases 1 & 2: zero key/IV, empty and single-zero-block messages.
    let zero_key = Aes128Key::expand([0u8; 16]);
    let (ct, tag) = gcm_encrypt(&zero_key, &[0u8; 12], &[], &[]);
    assert!(ct.is_empty());
    assert_eq!(tag.to_bytes(), hex16("58e2fccefa7e3061367f1d57a4e7455a"));

    let (ct, tag) = gcm_encrypt(&zero_key, &[0u8; 12], &[], &[0u8; 16]);
    assert_eq!(ct, hex("0388dace60b6a392f328c2b971b2fe78"));
    assert_eq!(tag.to_bytes(), hex16("ab6e47d42cec13bdf53a67b21257bddf"));

    // Cases 3 & 4 share key, IV and plaintext prefix.
    let key = Aes128Key::expand(hex16("feffe9928665731c6d6a8f9467308308"));
    let iv: [u8; 12] = hex("cafebabefacedbaddecaf888").try_into().unwrap();
    let pt = hex(concat!(
        "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72",
        "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255"
    ));
    let ct3 = hex(concat!(
        "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e",
        "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
    ));

    // Case 3: 64-byte message, no AAD.
    let (ct, tag) = gcm_encrypt(&key, &iv, &[], &pt);
    assert_eq!(ct, ct3);
    assert_eq!(tag.to_bytes(), hex16("4d5c2af327cd64a62cf35abd2ba6fab4"));
    assert_eq!(gcm_decrypt(&key, &iv, &[], &ct, tag).unwrap(), pt);

    // Case 4: first 60 bytes (non-block-aligned) plus AAD.
    let aad = hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
    let (ct, tag) = gcm_encrypt(&key, &iv, &aad, &pt[..60]);
    assert_eq!(ct, ct3[..60]);
    assert_eq!(tag.to_bytes(), hex16("5bc94fbc3221a5db94fae95ae7121a47"));
    assert_eq!(gcm_decrypt(&key, &iv, &aad, &ct, tag).unwrap(), &pt[..60]);
    // Tag binds the AAD: stripping it must fail.
    assert!(gcm_decrypt(&key, &iv, &[], &ct, tag).is_none());
}

/// Composes AES-GCM from its public primitives — bit-sliced keystream
/// blocks plus the *bit-serial* GHASH reference — exactly as SP 800-38D
/// writes it down. No shared code with `gcm_encrypt` beyond the
/// single-block cipher itself.
fn gcm_reference(key: &Aes128Key, iv: &[u8; 12], aad: &[u8], pt: &[u8]) -> (Vec<u8>, Vec128) {
    let h = bitsliced::encrypt128(key, Vec128::ZERO);
    let mut j0 = [0u8; 16];
    j0[..12].copy_from_slice(iv);
    j0[15] = 1;

    // CTR mode, counters inc32(J0), inc32²(J0), … one block at a time.
    let inc32 = |b: [u8; 16], n: u32| {
        let mut b = b;
        let c = u32::from_be_bytes([b[12], b[13], b[14], b[15]]).wrapping_add(n);
        b[12..].copy_from_slice(&c.to_be_bytes());
        b
    };
    let mut ct = Vec::with_capacity(pt.len());
    for (i, chunk) in pt.chunks(16).enumerate() {
        let ks = bitsliced::encrypt128(key, Vec128::from_bytes(inc32(j0, i as u32 + 1)));
        ct.extend(chunk.iter().zip(ks.to_bytes()).map(|(&p, k)| p ^ k));
    }

    // GHASH(AAD ‖ CT ‖ lengths) with the bit-serial multiplier.
    let mut y = Vec128::ZERO;
    let mut absorb = |data: &[u8]| {
        for chunk in data.chunks(16) {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            y = ghash_mul_ref(y ^ Vec128::from_bytes(block), h);
        }
    };
    absorb(aad);
    absorb(&ct);
    let mut lens = [0u8; 16];
    lens[..8].copy_from_slice(&(aad.len() as u64 * 8).to_be_bytes());
    lens[8..].copy_from_slice(&(ct.len() as u64 * 8).to_be_bytes());
    let s = ghash_mul_ref(y ^ Vec128::from_bytes(lens), h);

    let tag = s ^ bitsliced::encrypt128(key, Vec128::from_bytes(j0));
    (ct, tag)
}

/// The production GCM (4-wide batched keystream, CLMUL-based GHASH) must
/// agree with the composed SP 800-38D reference on arbitrary inputs —
/// keys, nonces, AAD and message lengths straddling block boundaries.
#[test]
fn gcm_matches_composed_reference() {
    let input = gen::pair(
        &gen::pair(&gen::u128_any(), &gen::bytes_up_to(12).map(iv_pad)),
        &gen::pair(&gen::bytes_up_to(20), &gen::bytes_up_to(100)),
    );
    Checker::new("crypto::gcm_differential")
        .cases(128)
        .corpus(corpus_dir!())
        .check_diff(
            &input,
            |((key, iv), (aad, pt))| {
                gcm_encrypt(&Aes128Key::expand(key.to_le_bytes()), iv, aad, pt)
            },
            |((key, iv), (aad, pt))| {
                gcm_reference(&Aes128Key::expand(key.to_le_bytes()), iv, aad, pt)
            },
        );
}

/// Encrypt/decrypt round-trips for arbitrary inputs, and the tag rejects
/// a one-bit ciphertext flip.
#[test]
fn gcm_roundtrips_and_authenticates() {
    let input = gen::pair(
        &gen::pair(&gen::u128_any(), &gen::bytes_up_to(12).map(iv_pad)),
        &gen::pair(&gen::bytes_up_to(20), &gen::bytes_up_to(100)),
    );
    Checker::new("crypto::gcm_roundtrip")
        .cases(128)
        .corpus(corpus_dir!())
        .check(&input, |((key, iv), (aad, pt))| {
            let key = Aes128Key::expand(key.to_le_bytes());
            let (ct, tag) = gcm_encrypt(&key, iv, aad, pt);
            if ct.len() != pt.len() {
                return Err("ciphertext length changed".into());
            }
            match gcm_decrypt(&key, iv, aad, &ct, tag) {
                Some(back) if &back == pt => {}
                Some(_) => return Err("round-trip produced different plaintext".into()),
                None => return Err("authentic tag rejected".into()),
            }
            if !ct.is_empty() {
                let mut tampered = ct.clone();
                tampered[0] ^= 1;
                if gcm_decrypt(&key, iv, aad, &tampered, tag).is_some() {
                    return Err("tampered ciphertext accepted".into());
                }
            }
            Ok(())
        });
}

/// Zero-pads generated bytes into the fixed 96-bit GCM nonce.
fn iv_pad(bytes: Vec<u8>) -> [u8; 12] {
    let mut iv = [0u8; 12];
    iv[..bytes.len()].copy_from_slice(&bytes);
    iv
}
