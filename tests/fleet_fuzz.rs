//! Structure-aware fuzz target for the fleet-scenario config parser.
//!
//! `FleetConfig::from_json` feeds `suit-cli fleet --config` and shares
//! the `SUITTRC` readers' totality contract: any input — byte soup,
//! truncations, single-byte mutations of valid documents, or documents
//! with hostile counts (`"racks": 1e308`, `"epochs": -3`,
//! `"epoch_insts": 1e18`) — must come back as a structured `Err`
//! string, never a panic, and never an allocation proportional to a
//! hostile count (bounds are checked with checked arithmetic *before*
//! anything is sized from them). Accepted documents must validate, and
//! unknown keys must be rejected so config typos fail loudly.
//!
//! CI drives the `total` property with `SUIT_CHECK_CASES=100000` as the
//! fuzz-smoke gate; corpus seeds in `tests/corpus/` replay first.

use suit::check::gen::{self, Gen};
use suit::check::{corpus_dir, Checker};
use suit::sim::fleet::FleetConfig;

/// A randomized field value: valid-looking, hostile, or junk.
fn field_value() -> Gen<String> {
    gen::one_of(vec![
        gen::u64_in(0..=8).map(|n| n.to_string()),
        gen::from_slice(&[
            "1e308",
            "-3",
            "1e18",
            "0.5",
            "1000000000000000000000",
            "-0.0",
            "NaN",
            "null",
            "true",
            "\"502.gcc\"",
            "\"zzz\"",
            "[]",
            "[1800, 900]",
            "[\"502.gcc\", \"557.xz\"]",
            "{}",
        ])
        .map(str::to_string),
    ])
}

/// A JSON object assembled from random (mostly known, sometimes
/// unknown) keys and random values — the structured half of the
/// input stream.
fn structured_doc() -> Gen<String> {
    let key = gen::from_slice(&[
        "cpu",
        "strategy",
        "offset",
        "racks",
        "domains_per_rack",
        "cores_per_domain",
        "epochs",
        "epoch_insts",
        "seed",
        "utilization",
        "deployment_years",
        "workloads",
        "rack_fan_rpm",
        "rack_age_years",
        "rakcs", // typo: must be rejected as an unknown key
        "__proto__",
    ])
    .map(str::to_string);
    gen::pair(&key, &field_value()).vec_up_to(8).map(|fields| {
        let body: Vec<String> = fields
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("{{{}}}", body.join(", "))
    })
}

/// A definitely-valid document (the mutation base).
fn valid_doc() -> Gen<String> {
    let nums = gen::pair(&gen::usize_in(1..=3), &gen::usize_in(1..=3));
    gen::pair(&nums, &gen::u64_in(1..=99)).map(|((racks, dpr), seed)| {
        format!(
            "{{\"racks\": {racks}, \"domains_per_rack\": {dpr}, \"epochs\": 2, \
             \"epoch_insts\": 1000000, \"seed\": {seed}, \"workloads\": [\"557.xz\"]}}"
        )
    })
}

/// A valid document cut off at an arbitrary byte (char-boundary safe:
/// the documents above are pure ASCII).
fn truncated_doc() -> Gen<String> {
    gen::pair(&valid_doc(), &gen::usize_in(0..=255)).map(|(mut s, cut)| {
        s.truncate(cut % (s.len() + 1));
        s
    })
}

/// A valid document with one byte overwritten.
fn mutated_doc() -> Gen<String> {
    gen::pair(
        &valid_doc(),
        &gen::pair(&gen::usize_in(0..=255), &gen::byte()),
    )
    .map(|(s, (pos, b))| {
        let mut bytes = s.into_bytes();
        let at = pos % bytes.len();
        bytes[at] ^= b | 1;
        String::from_utf8_lossy(&bytes).into_owned()
    })
}

/// The full parser input stream.
fn doc_stream() -> Gen<String> {
    gen::one_of(vec![
        gen::bytes_up_to(200).map(|b| String::from_utf8_lossy(&b).into_owned()),
        structured_doc(),
        valid_doc(),
        truncated_doc(),
        mutated_doc(),
    ])
}

/// Totality: the parser never panics, and whatever it accepts
/// revalidates cleanly (parse and validate can never disagree).
#[test]
fn fleet_config_parser_is_total() {
    Checker::new("fleet_fuzz::total")
        .cases_from_env_or(20_000)
        .corpus(corpus_dir!())
        .check(&doc_stream(), |doc: &String| {
            match FleetConfig::from_json(doc) {
                Ok(cfg) => cfg
                    .validate()
                    .map_err(|e| format!("accepted config fails validate(): {e}")),
                Err(e) => {
                    if e.is_empty() {
                        Err("rejection carried an empty error message".to_string())
                    } else {
                        Ok(())
                    }
                }
            }
        });
}

/// The hostile shapes the contract calls out, pinned explicitly.
#[test]
fn hostile_counts_are_rejected_before_allocation() {
    for doc in [
        r#"{"racks": 1e308}"#,
        r#"{"racks": 4096, "domains_per_rack": 4096, "cores_per_domain": 4096}"#,
        r#"{"epochs": -3}"#,
        r#"{"epoch_insts": 1e18}"#,
        r#"{"epochs": 100000, "epoch_insts": 1000000000000}"#,
        r#"{"seed": 0.5}"#,
        r#"{"utilization": 1e308}"#,
        r#"{"workloads": []}"#,
        r#"{"rack_fan_rpm": [1]}"#,
        r#"{"rakcs": 2}"#,
        "{",
        "",
        "[]",
        "null",
    ] {
        let err = FleetConfig::from_json(doc).expect_err(doc);
        assert!(!err.is_empty(), "empty error for {doc}");
    }
}

/// A round-trip sanity anchor: the documented example parses and the
/// parsed values land where they should.
#[test]
fn canonical_document_parses() {
    let cfg = FleetConfig::from_json(
        r#"{"racks": 2, "domains_per_rack": 8, "cores_per_domain": 4,
            "epochs": 3, "epoch_insts": 5000000, "utilization": 0.75,
            "workloads": ["502.gcc", "Nginx"], "rack_fan_rpm": [1800, 600],
            "rack_age_years": [0.5, 5.0], "cpu": "c", "strategy": "fv",
            "offset": 97, "seed": 7}"#,
    )
    .expect("canonical doc is valid");
    assert_eq!(cfg.racks, 2);
    assert_eq!(cfg.domains_per_rack, 8);
    assert_eq!(cfg.rack_fan_rpm, vec![1800.0, 600.0]);
    assert_eq!(cfg.workloads, vec!["502.gcc", "Nginx"]);
}
