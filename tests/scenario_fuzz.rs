//! Structure-aware fuzz target for the scenario config parser.
//!
//! `ScenarioConfig::from_json` feeds `suit-cli scenario --config` and
//! `POST /v1/scenario`, and shares the fleet parser's totality
//! contract: any input — byte soup, truncations, single-byte mutations
//! of valid documents, or documents with hostile counts
//! (`"cache_banks": 1e308`, `"reads": -3`, `"offset_steps": 1e18`) —
//! must come back as a structured `Err` string, never a panic, and
//! never an allocation proportional to a hostile count (every bound is
//! checked in `validate()` *before* the runners size anything from it).
//! Accepted documents must validate, and unknown keys must be rejected
//! so config typos fail loudly.
//!
//! CI drives the `total` property with `SUIT_CHECK_CASES=100000` as the
//! fuzz-smoke gate; corpus seeds in `tests/corpus/` replay first.

use suit::check::gen::{self, Gen};
use suit::check::{corpus_dir, Checker};
use suit::scenarios::{ScenarioConfig, ScroogeConfig, SramScenarioConfig};

/// A randomized field value: valid-looking, hostile, or junk.
fn field_value() -> Gen<String> {
    gen::one_of(vec![
        gen::u64_in(0..=16).map(|n| n.to_string()),
        gen::from_slice(&[
            "1e308",
            "-3",
            "1e18",
            "0.5",
            "-120.5",
            "1000000000000000000000",
            "-0.0",
            "NaN",
            "null",
            "true",
            "\"sram\"",
            "\"scrooge\"",
            "\"502.gcc\"",
            "\"zzz\"",
            "[]",
            "[-100, -150]",
            "[1e999]",
            "{}",
        ])
        .map(str::to_string),
    ])
}

/// A JSON object assembled from random (mostly known, sometimes
/// unknown) keys and random values — the structured half of the
/// input stream.
fn structured_doc() -> Gen<String> {
    let key = gen::from_slice(&[
        "scenario",
        "cache_banks",
        "rob_banks",
        "sigma_mv",
        "offsets_mv",
        "reads",
        "audit_len",
        "cores",
        "seed",
        "racks",
        "domains_per_rack",
        "epoch_insts",
        "workload",
        "offset_min_mv",
        "offset_steps",
        "freq_min",
        "freq_steps",
        "refine_rounds",
        "energy_price",
        "sdc_cost",
        "horizon_hours",
        "cache_bankz", // typo: must be rejected as an unknown key
        "__proto__",
    ])
    .map(str::to_string);
    gen::pair(&key, &field_value()).vec_up_to(8).map(|fields| {
        let body: Vec<String> = fields
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("{{{}}}", body.join(", "))
    })
}

/// A definitely-valid document of either scenario (the mutation base).
fn valid_doc() -> Gen<String> {
    let sram = gen::pair(&gen::usize_in(1..=4), &gen::u64_in(1..=99)).map(|(banks, seed)| {
        format!(
            "{{\"scenario\": \"sram\", \"cache_banks\": {banks}, \"rob_banks\": 1, \
             \"reads\": 128, \"offsets_mv\": [-100, -160], \"audit_len\": 100, \
             \"seed\": {seed}}}"
        )
    });
    let scrooge = gen::pair(&gen::usize_in(2..=5), &gen::u64_in(1..=99)).map(|(steps, seed)| {
        format!(
            "{{\"scenario\": \"scrooge\", \"racks\": 1, \"offset_steps\": {steps}, \
             \"freq_steps\": 3, \"refine_rounds\": 1, \"audit_len\": 100, \
             \"epoch_insts\": 100000, \"seed\": {seed}}}"
        )
    });
    gen::one_of(vec![sram, scrooge])
}

/// A valid document cut off at an arbitrary byte (char-boundary safe:
/// the documents above are pure ASCII).
fn truncated_doc() -> Gen<String> {
    gen::pair(&valid_doc(), &gen::usize_in(0..=255)).map(|(mut s, cut)| {
        s.truncate(cut % (s.len() + 1));
        s
    })
}

/// A valid document with one byte overwritten.
fn mutated_doc() -> Gen<String> {
    gen::pair(
        &valid_doc(),
        &gen::pair(&gen::usize_in(0..=255), &gen::byte()),
    )
    .map(|(s, (pos, b))| {
        let mut bytes = s.into_bytes();
        let at = pos % bytes.len();
        bytes[at] ^= b | 1;
        String::from_utf8_lossy(&bytes).into_owned()
    })
}

/// The full parser input stream.
fn doc_stream() -> Gen<String> {
    gen::one_of(vec![
        gen::bytes_up_to(200).map(|b| String::from_utf8_lossy(&b).into_owned()),
        structured_doc(),
        valid_doc(),
        truncated_doc(),
        mutated_doc(),
    ])
}

/// Totality: the discriminated parser never panics, and whatever it
/// accepts revalidates cleanly (parse and validate can never disagree).
#[test]
fn scenario_config_parser_is_total() {
    Checker::new("scenario_fuzz::total")
        .cases_from_env_or(20_000)
        .corpus(corpus_dir!())
        .check(
            &doc_stream(),
            |doc: &String| match ScenarioConfig::from_json(doc) {
                Ok(ScenarioConfig::Sram(cfg)) => cfg
                    .validate()
                    .map_err(|e| format!("accepted sram config fails validate(): {e}")),
                Ok(ScenarioConfig::Scrooge(cfg)) => cfg
                    .validate()
                    .map_err(|e| format!("accepted scrooge config fails validate(): {e}")),
                Err(e) => {
                    if e.is_empty() {
                        Err("rejection carried an empty error message".to_string())
                    } else {
                        Ok(())
                    }
                }
            },
        );
}

/// The undirected per-type parsers (what `suit-cli scenario` calls: no
/// discriminator required) are total over the same stream.
#[test]
fn per_type_parsers_are_total() {
    Checker::new("scenario_fuzz::per_type")
        .cases_from_env_or(10_000)
        .corpus(corpus_dir!())
        .check(&doc_stream(), |doc: &String| {
            if let Ok(cfg) = SramScenarioConfig::from_json(doc) {
                cfg.validate()
                    .map_err(|e| format!("accepted sram config fails validate(): {e}"))?;
            }
            if let Ok(cfg) = ScroogeConfig::from_json(doc) {
                cfg.validate()
                    .map_err(|e| format!("accepted scrooge config fails validate(): {e}"))?;
            }
            Ok(())
        });
}

/// The hostile shapes the contract calls out, pinned explicitly.
#[test]
fn hostile_counts_are_rejected_before_allocation() {
    for doc in [
        r#"{"scenario": "sram", "cache_banks": 1e308}"#,
        r#"{"scenario": "sram", "cache_banks": 99999999}"#,
        r#"{"scenario": "sram", "reads": -3}"#,
        r#"{"scenario": "sram", "reads": 0.5}"#,
        r#"{"scenario": "sram", "offsets_mv": []}"#,
        r#"{"scenario": "sram", "offsets_mv": [1e999]}"#,
        r#"{"scenario": "sram", "audit_len": 1e18}"#,
        r#"{"scenario": "scrooge", "offset_steps": 1e18}"#,
        r#"{"scenario": "scrooge", "offset_steps": 1}"#,
        r#"{"scenario": "scrooge", "freq_min": -1}"#,
        r#"{"scenario": "scrooge", "epoch_insts": 1e18}"#,
        r#"{"scenario": "scrooge", "workload": "zzz"}"#,
        r#"{"scenario": "scrooge", "cache_bankz": 2}"#,
        r#"{"scenario": "warp"}"#,
        r#"{"seed": 1}"#,
        "{",
        "",
        "[]",
        "null",
    ] {
        let err = ScenarioConfig::from_json(doc).expect_err(doc);
        assert!(!err.is_empty(), "empty error for {doc}");
    }
}

/// A round-trip sanity anchor: the documented example parses and the
/// parsed values land where they should.
#[test]
fn canonical_documents_parse() {
    let sram = ScenarioConfig::from_json(
        r#"{"scenario": "sram", "cache_banks": 8, "rob_banks": 4,
            "sigma_mv": 12.0, "offsets_mv": [-100, -140, -180],
            "reads": 4096, "audit_len": 2000, "cores": 2, "seed": 7}"#,
    )
    .expect("canonical sram doc is valid");
    let ScenarioConfig::Sram(cfg) = sram else {
        panic!("discriminator routed wrongly");
    };
    assert_eq!(cfg.cache_banks, 8);
    assert_eq!(cfg.offsets_mv, vec![-100.0, -140.0, -180.0]);
    assert_eq!(cfg.seed, 7);

    let scrooge = ScenarioConfig::from_json(
        r#"{"scenario": "scrooge", "racks": 2, "domains_per_rack": 2,
            "offset_min_mv": -180, "offset_steps": 13, "freq_min": 0.7,
            "freq_steps": 7, "refine_rounds": 3, "energy_price": 80,
            "sdc_cost": 500, "workload": "502.gcc", "seed": 7}"#,
    )
    .expect("canonical scrooge doc is valid");
    let ScenarioConfig::Scrooge(cfg) = scrooge else {
        panic!("discriminator routed wrongly");
    };
    assert_eq!(cfg.offset_steps, 13);
    assert_eq!(cfg.workload, "502.gcc");
    assert_eq!(cfg.energy_price, 80.0);
}
