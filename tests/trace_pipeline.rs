//! End-to-end tests for the out-of-core trace pipeline: `SUITTRC1` ↔
//! `SUITTRC2` round trips, bounded-memory streaming replay, index seeks,
//! and the `/v1/trace` + `/v1/simulate-trace` service path.
//!
//! The load-bearing assertions are the byte-identity ones: a simulation
//! fed bursts streamed chunk-by-chunk out of a compressed container —
//! through a two-chunk window, across a 64+-chunk trace — must produce
//! exactly the result of the same simulation fed the fully-loaded burst
//! vector, and the `/v1/simulate-trace` response must equal the JSON the
//! direct API produces, at one worker and at four.

use std::sync::Arc;
use std::time::Duration;

use suit::core::strategy::StrategyParams;
use suit::core::{AdaptiveConfig, OperatingStrategy};
use suit::exec::Threads;
use suit::hw::{CpuModel, UndervoltLevel};
use suit::serve::api;
use suit::serve::{
    request_bytes, request_text, ServeConfig, Server, ShutdownHandle, StoredTrace, TraceStore,
};
use suit::sim::engine::{run_stream, SimConfig};
use suit::store;
use suit::trace::event::Burst;
use suit::trace::io::{read_trace, write_trace, TraceMeta};
use suit::trace::{profile, TraceGen};
use suit_rng::SuitRng;

const TIMEOUT: Duration = Duration::from_secs(120);

/// The shared test trace: the full (finite) 502.gcc burst stream.
fn test_trace() -> (TraceMeta, Vec<Burst>) {
    let p = profile::by_name("502.gcc").expect("502.gcc profile");
    let meta = TraceMeta {
        name: p.name.into(),
        ipc: p.ipc,
        total_insts: p.total_insts,
    };
    (meta, TraceGen::new(p, 0x7AC3).collect())
}

#[test]
fn pack_unpack_round_trip_is_byte_identical() {
    let (meta, bursts) = test_trace();

    // The v1 ground truth.
    let mut v1 = Vec::new();
    write_trace(&mut v1, &meta, bursts.iter().copied()).expect("write v1");

    // v1 → container → v1 must reproduce the bytes exactly, and packing
    // must be deterministic.
    let mut cur = std::io::Cursor::new(&v1[..]);
    let (meta2, bursts2) = read_trace(&mut cur).expect("read v1");
    let packed = store::pack_to_vec(&meta2, bursts2.iter().copied(), 256).expect("pack");
    let again = store::pack_to_vec(&meta2, bursts2.iter().copied(), 256).expect("re-pack");
    assert_eq!(packed, again, "packing is not deterministic");

    let reader = store::open_bytes(&packed).expect("open container");
    let info = reader.info();
    assert_eq!(info.bursts, bursts.len() as u64);
    let mut out = Vec::new();
    let mut it = reader.bursts();
    suit::trace::io::write_trace_counted(&mut out, &info.meta, info.bursts, &mut it)
        .expect("write v1 from stream");
    assert!(it.error().is_none(), "streaming decode error");
    assert_eq!(out, v1, "pack→unpack drifted from the original v1 bytes");
}

/// One replay configuration used across the identity tests.
fn replay_cfg(strategy: OperatingStrategy, seed: u64) -> SimConfig {
    SimConfig {
        strategy,
        params: StrategyParams::intel(),
        level: UndervoltLevel::Mv97,
        cores: 1,
        seed,
        max_insts: None,
        record_timeline: false,
        adaptive: None,
    }
}

#[test]
fn streaming_replay_matches_full_load_byte_for_byte() {
    let (meta, bursts) = test_trace();
    let cpu = CpuModel::xeon_4208();

    // Small chunks so the trace spans well over 64 chunks: the bounded
    // window genuinely cycles.
    let chunk_bursts = 32;
    let packed = store::pack_to_vec(&meta, bursts.iter().copied(), chunk_bursts).expect("pack");
    let chunks = store::open_bytes(&packed).expect("open").info().chunks;
    assert!(
        chunks >= 64,
        "need a 64+-chunk trace to exercise the window, got {chunks}"
    );

    for strategy in [
        OperatingStrategy::FreqVolt,
        OperatingStrategy::Frequency,
        OperatingStrategy::Voltage,
    ] {
        let cfg = replay_cfg(strategy, 0xD15C);
        let full = run_stream(&cpu, &meta, bursts.iter().copied(), &cfg);

        // Stream through a two-chunk window and verify both the result
        // and the memory bound: the reader must never hold more than
        // two chunks' worth of decoded bursts.
        let reader = store::StreamingReader::with_window(std::io::Cursor::new(&packed[..]), 2)
            .expect("open windowed");
        let meta2 = reader.meta().clone();
        let it = reader.bursts();
        let streamed = run_stream(&cpu, &meta2, it, &cfg);

        assert_eq!(
            api::run_result_json(&full),
            api::run_result_json(&streamed),
            "streaming replay diverged from full-load replay under {strategy:?}"
        );
    }

    // The memory bound, observed directly: drain the whole container
    // through a 2-chunk window and check the high-water mark.
    let mut reader = store::StreamingReader::with_window(std::io::Cursor::new(&packed[..]), 2)
        .expect("open windowed");
    while reader.next_burst().expect("decode").is_some() {}
    assert!(
        reader.peak_resident_bursts() <= 2 * chunk_bursts,
        "window leaked: {} resident bursts across {chunks} chunks (cap {})",
        reader.peak_resident_bursts(),
        2 * chunk_bursts
    );
    assert!(
        reader.chunk_decodes() >= chunks,
        "every chunk must have been decoded at least once"
    );
}

#[test]
fn seek_matches_skip_from_start_on_a_recorded_trace() {
    let (meta, bursts) = test_trace();
    let packed = store::pack_to_vec(&meta, bursts.iter().copied(), 64).expect("pack");

    // Burst start offsets by the skip-from-start definition.
    let mut starts = Vec::with_capacity(bursts.len());
    let mut v = 0u64;
    for b in &bursts {
        starts.push(v);
        v += b.total_insts();
    }
    let total = v;

    for target in [
        0,
        1,
        total / 7,
        total / 3,
        total / 2,
        total - 1,
        total,
        total + 12345,
    ] {
        let mut reader = store::open_bytes(&packed).expect("open");
        let start = reader.seek_to_vtime(target).expect("seek");
        let landed = reader.next_burst().expect("read");
        let expect = starts
            .iter()
            .zip(&bursts)
            .enumerate()
            .find(|(_, (&s, b))| s + b.total_insts() > target)
            .map(|(i, (&s, _))| (i, s));
        match (expect, landed) {
            (Some((i, s)), Some(b)) => {
                assert_eq!(start, s, "seek({target}) start vtime");
                assert_eq!(b, bursts[i], "seek({target}) landed burst");
                // O(log n) seek: at most one chunk decoded.
                assert!(reader.chunk_decodes() <= 2, "seek decoded too many chunks");
            }
            (None, None) => assert_eq!(start, total, "past-end seek reports total"),
            (want, got) => panic!("seek({target}): expected {want:?}, landed {got:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// Service path
// ---------------------------------------------------------------------

fn start(
    cfg: ServeConfig,
) -> (
    String,
    ShutdownHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

fn stop(handle: ShutdownHandle, join: std::thread::JoinHandle<std::io::Result<()>>) {
    handle.shutdown();
    join.join().expect("server thread").expect("server run");
}

/// The exact response `/v1/simulate-trace` must produce, computed with
/// the direct API: same seed forking, same configs, same serializers.
fn expected_simulate_trace_body(
    packed: &[u8],
    id: &str,
    strategies: &[&str],
    cpu: &CpuModel,
    seed: u64,
) -> String {
    let reader = store::open_bytes(packed).expect("open");
    let info = reader.info();
    let root = SuitRng::seed_from_u64(seed);
    let items: Vec<String> = strategies
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let (strategy, adaptive) = match *s {
                "fv" => (OperatingStrategy::FreqVolt, None),
                "f" => (OperatingStrategy::Frequency, None),
                "v" => (OperatingStrategy::Voltage, None),
                "adaptive" => (
                    OperatingStrategy::FreqVolt,
                    Some(AdaptiveConfig::for_cpu(&cpu.delays)),
                ),
                other => panic!("unknown strategy {other}"),
            };
            let mut cfg = replay_cfg(strategy, root.fork(i as u64).root_seed());
            cfg.adaptive = adaptive;
            let reader = store::open_bytes(packed).expect("open");
            let meta = reader.meta().clone();
            let r = run_stream(cpu, &meta, reader.bursts(), &cfg);
            format!(
                "{{\"strategy\":\"{s}\",\"result\":{}}}",
                api::run_result_json(&r)
            )
        })
        .collect();
    let stored = StoredTrace {
        bytes: Arc::new(packed.to_vec()),
        workload: info.meta.name.clone(),
        ipc: info.meta.ipc,
        total_insts: info.meta.total_insts,
        bursts: info.bursts,
        chunks: info.chunks,
    };
    format!(
        "{{\"trace\":{},\"results\":[{}]}}",
        api::trace_info_json(id, &stored),
        items.join(",")
    )
}

#[test]
fn served_trace_replay_is_byte_identical_to_the_direct_api_at_any_worker_count() {
    let (meta, bursts) = test_trace();
    let packed = store::pack_to_vec(&meta, bursts.iter().copied(), 256).expect("pack");
    let id = TraceStore::id_for(&packed);
    let cpu = CpuModel::xeon_4208();
    let strategies = ["fv", "f", "v", "adaptive"];
    let expect = expected_simulate_trace_body(&packed, &id, &strategies, &cpu, 0x5017);
    let body = format!(
        "{{\"trace\":\"{id}\",\"strategies\":[\"fv\",\"f\",\"v\",\"adaptive\"],\
         \"cpu\":\"c\",\"offset\":97}}"
    );

    for workers in [1, 4] {
        let (addr, handle, join) = start(ServeConfig {
            threads: Threads::Fixed(workers),
            ..ServeConfig::default()
        });

        // Upload: created on first sight…
        let up = request_bytes(&addr, "POST", "/v1/trace", &packed, TIMEOUT).expect("upload");
        assert_eq!(up.status, 200, "upload failed: {:?}", up.text());
        let up_text = up.text().expect("upload body").to_string();
        assert!(
            up_text.starts_with("{\"created\":true,"),
            "first upload must create: {up_text}"
        );
        assert!(up_text.contains(&id), "upload response must carry the id");

        // …idempotent on the second.
        let again = request_bytes(&addr, "POST", "/v1/trace", &packed, TIMEOUT).expect("re-upload");
        assert!(
            again
                .text()
                .expect("body")
                .starts_with("{\"created\":false,"),
            "re-upload must dedup"
        );

        // Info endpoint sees it.
        let info =
            request_text(&addr, "GET", &format!("/v1/trace/{id}"), None, TIMEOUT).expect("info");
        assert!(info.contains(&id) && info.contains("502.gcc"), "{info}");

        // Replay is byte-identical to the direct API.
        let got = request_text(&addr, "POST", "/v1/simulate-trace", Some(&body), TIMEOUT)
            .expect("simulate-trace");
        assert_eq!(
            got, expect,
            "/v1/simulate-trace diverged from the direct API at {workers} worker(s)"
        );

        stop(handle, join);
    }
}

#[test]
fn trace_store_full_corrupt_and_missing_are_structured_errors() {
    let (meta, bursts) = test_trace();
    let packed = store::pack_to_vec(&meta, bursts.iter().copied(), 256).expect("pack");
    let id = TraceStore::id_for(&packed);

    let (addr, handle, join) = start(ServeConfig {
        trace_entries: 1,
        ..ServeConfig::default()
    });

    // Fill the single-entry store.
    let up = request_bytes(&addr, "POST", "/v1/trace", &packed, TIMEOUT).expect("upload");
    assert_eq!(up.status, 200);

    // A different trace is refused with a structured 413.
    let other = store::pack_to_vec(&meta, bursts.iter().rev().copied(), 256).expect("pack other");
    let full = request_bytes(&addr, "POST", "/v1/trace", &other, TIMEOUT).expect("post");
    assert_eq!(full.status, 413, "{:?}", full.text());
    assert!(
        full.text().expect("body").contains("trace store is full"),
        "413 must explain itself"
    );

    // Re-uploading the stored trace stays idempotent even when full.
    let again = request_bytes(&addr, "POST", "/v1/trace", &packed, TIMEOUT).expect("re-upload");
    assert_eq!(again.status, 200);
    assert!(again
        .text()
        .expect("body")
        .starts_with("{\"created\":false,"));

    // Corruption in any region — header, chunk payload, index — is a
    // structured 400, never a panic.
    for at in [0, 9, packed.len() / 2, packed.len() - 5] {
        let mut bad = packed.clone();
        bad[at] ^= 0xFF;
        let resp = request_bytes(&addr, "POST", "/v1/trace", &bad, TIMEOUT).expect("post corrupt");
        assert!(
            resp.status == 400 || resp.status == 413,
            "corrupt byte {at}: expected 400 (or 413 for a still-valid container), got {}",
            resp.status
        );
    }
    let resp = request_bytes(&addr, "POST", "/v1/trace", b"", TIMEOUT).expect("post empty");
    assert_eq!(resp.status, 400, "empty upload must be a 400");

    // Simulating a trace that is not stored is a 404 with a hint.
    let missing = format!("{{\"trace\":\"{}\"}}", "0".repeat(32));
    let err = request_text(&addr, "POST", "/v1/simulate-trace", Some(&missing), TIMEOUT)
        .expect_err("unknown trace must fail");
    assert!(err.starts_with("HTTP 404"), "{err}");
    assert!(
        err.contains("/v1/trace"),
        "404 must point at the upload path"
    );

    // And the happy replay still works on the stored one.
    let ok = request_text(
        &addr,
        "POST",
        "/v1/simulate-trace",
        Some(&format!("{{\"trace\":\"{id}\"}}")),
        TIMEOUT,
    )
    .expect("replay stored trace");
    assert!(ok.contains("\"results\":["), "{ok}");

    stop(handle, join);
}
