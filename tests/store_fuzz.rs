//! Structure-aware fuzz targets for the `SUITTRC2` container decoder.
//!
//! The decoder sits on the service's unauthenticated upload path
//! (`POST /v1/trace`), so its totality contract is load-bearing: any byte
//! stream — raw soup, a valid container, a truncation, a bit flip, or a
//! container whose trailing index/trailer region was overwritten — must
//! come back as a typed [`suit::store::StoreError`], never a panic, and
//! never an allocation the physical input size cannot justify.
//!
//! Three properties pin this:
//!
//! 1. `total` — full-load ([`suit::store::read_all`]) and streaming
//!    ([`suit::store::open_bytes`] + drain) decoding are total over the
//!    structured input stream, and *agree*: both accept with identical
//!    metadata and bursts, or both reject;
//! 2. `roundtrip` — every constructed (meta, bursts, chunk size) triple
//!    packs deterministically and decodes back to exactly the input;
//! 3. `seek` — on a valid container, seeking to any virtual time lands on
//!    the same burst boundary that skipping burst-by-burst from the start
//!    reaches.
//!
//! CI drives property 1 with `SUIT_CHECK_CASES=100000` as the fuzz-smoke
//! gate. Committed corpus seeds in `tests/corpus/` pin the interesting
//! shapes (a rejected corruption, a surviving valid container) and are
//! replayed before random exploration on every run.

use suit::check::gen::{self, Gen};
use suit::check::{corpus_dir, Checker, Source};
use suit::isa::Opcode;
use suit::store;
use suit::trace::event::Burst;
use suit::trace::io::TraceMeta;

/// Every opcode the trace format can carry (bursts are built over the
/// faultable set only — `Burst::new` enforces it).
fn faultable() -> Vec<Opcode> {
    Opcode::ALL
        .iter()
        .copied()
        .filter(|o| o.is_faultable())
        .collect()
}

/// One structurally valid burst.
fn burst() -> Gen<Burst> {
    let ops = faultable();
    let n = ops.len();
    gen::pair(
        &gen::pair(&gen::u64_in(0..=1_000_000), &gen::u32_in(1..=500)),
        &gen::pair(&gen::u32_in(0..=64), &gen::usize_in(0..=n - 1)),
    )
    .map(move |((gap, events), (within, oi))| Burst::new(gap, events, within, ops[oi]))
}

/// A full construction triple: metadata, burst list, chunk size. Chunk
/// sizes stay tiny so short burst lists still span several chunks and a
/// non-trivial index.
fn construction() -> Gen<(TraceMeta, Vec<Burst>, usize)> {
    let meta = gen::pair(
        &gen::from_slice(&["502.gcc", "aes-ni", ""]),
        &gen::pair(&gen::f64_in(0.2, 4.0), &gen::u64_in(1..=u64::MAX / 2)),
    )
    .map(|(name, (ipc, total))| TraceMeta {
        name: name.into(),
        ipc,
        total_insts: total,
    });
    gen::pair(
        &gen::pair(&meta, &burst().vec_up_to(64)),
        &gen::usize_in(1..=8),
    )
    .map(|((meta, bursts), chunk_bursts)| (meta, bursts, chunk_bursts))
}

/// A valid container's bytes.
fn valid_container() -> Gen<Vec<u8>> {
    construction().map(|(meta, bursts, chunk_bursts)| {
        store::pack_to_vec(&meta, bursts, chunk_bursts).expect("constructed pack cannot fail")
    })
}

/// A valid container cut off at an arbitrary byte.
fn truncated_container() -> Gen<Vec<u8>> {
    gen::pair(&valid_container(), &gen::usize_in(0..=4095)).map(|(mut bytes, cut)| {
        bytes.truncate(cut % (bytes.len() + 1));
        bytes
    })
}

/// A valid container with one byte overwritten — hits chunk payloads,
/// the index records, the trailer and the header alike.
fn flipped_container() -> Gen<Vec<u8>> {
    gen::pair(
        &valid_container(),
        &gen::pair(&gen::usize_in(0..=4095), &gen::byte()),
    )
    .map(|(mut bytes, (pos, b))| {
        let at = pos % bytes.len();
        bytes[at] ^= b | 1; // always changes the byte
        bytes
    })
}

/// A valid container whose index/trailer region (the last up-to-64
/// bytes) is overwritten wholesale — the shape that exercises the
/// open-time size-equation and index-CRC validation hardest.
fn smashed_tail_container() -> Gen<Vec<u8>> {
    gen::pair(&valid_container(), &gen::bytes_up_to(64)).map(|(mut bytes, tail)| {
        let len = bytes.len();
        let start = len.saturating_sub(tail.len());
        bytes[start..].copy_from_slice(&tail[..len - start]);
        bytes
    })
}

/// The full decoder input stream: raw soup first (shrinks toward the
/// simplest), then the structured shapes.
fn container_stream() -> Gen<Vec<u8>> {
    gen::one_of(vec![
        gen::bytes_up_to(300),
        valid_container(),
        truncated_container(),
        flipped_container(),
        smashed_tail_container(),
    ])
}

/// Streaming decode: drain the iterator, then surface any deferred error
/// through `finish`.
fn decode_streaming(input: &[u8]) -> Result<(TraceMeta, Vec<Burst>), store::StoreError> {
    let reader = store::open_bytes(input)?;
    let mut it = reader.bursts();
    let out: Vec<Burst> = it.by_ref().collect();
    let reader = it.finish()?;
    Ok((reader.meta().clone(), out))
}

/// Property 1: both decode paths are total and agree.
fn decoder_is_total_and_consistent(input: &[u8]) -> Result<(), String> {
    let full = store::read_all(input);
    let streamed = decode_streaming(input);
    match (full, streamed) {
        (Ok(f), Ok(s)) if f == s => Ok(()),
        (Ok(f), Ok(s)) => Err(format!(
            "full-load and streaming decode disagree: {} vs {} bursts",
            f.1.len(),
            s.1.len()
        )),
        (Err(_), Err(_)) => Ok(()),
        (f, s) => Err(format!(
            "one decode path accepted what the other rejected: full={:?} streamed={:?}",
            f.map(|(_, b)| b.len()),
            s.map(|(_, b)| b.len())
        )),
    }
}

#[test]
fn decoder_is_total_over_container_streams() {
    Checker::new("store_fuzz::total")
        .cases_from_env_or(20_000)
        .corpus(corpus_dir!())
        .check(&container_stream(), |input: &Vec<u8>| {
            decoder_is_total_and_consistent(input)
        });
}

/// Property 2: pack ∘ decode is the identity and packing is
/// deterministic.
#[test]
fn constructed_containers_roundtrip_exactly() {
    Checker::new("store_fuzz::roundtrip")
        .cases_from_env_or(5_000)
        .corpus(corpus_dir!())
        .check(
            &construction(),
            |(meta, bursts, chunk_bursts): &(TraceMeta, Vec<Burst>, usize)| {
                let bytes = store::pack_to_vec(meta, bursts.iter().copied(), *chunk_bursts)
                    .map_err(|e| format!("pack failed: {e}"))?;
                let again = store::pack_to_vec(meta, bursts.iter().copied(), *chunk_bursts)
                    .map_err(|e| format!("re-pack failed: {e}"))?;
                if bytes != again {
                    return Err("packing is not deterministic".into());
                }
                let (m, b) = store::read_all(&bytes).map_err(|e| format!("decode failed: {e}"))?;
                if &m != meta {
                    return Err(format!("metadata drifted: {m:?} != {meta:?}"));
                }
                if &b != bursts {
                    return Err(format!(
                        "bursts drifted: {} decoded vs {} packed",
                        b.len(),
                        bursts.len()
                    ));
                }
                Ok(())
            },
        );
}

/// Property 3: seeking lands where skipping from the start lands.
#[test]
fn seek_agrees_with_skip_from_start() {
    let case = gen::pair(&construction(), &gen::u64_in(0..=u64::MAX));
    Checker::new("store_fuzz::seek")
        .cases_from_env_or(2_000)
        .corpus(corpus_dir!())
        .check(
            &case,
            |((meta, bursts, chunk_bursts), raw_target): &((TraceMeta, Vec<Burst>, usize), u64)| {
                let bytes = store::pack_to_vec(meta, bursts.iter().copied(), *chunk_bursts)
                    .map_err(|e| format!("pack failed: {e}"))?;

                // Skip-from-start oracle: walk bursts accumulating
                // their total (gap + events + internal-gap) length; the
                // cursor must stop on the first burst whose end passes
                // the target.
                let mut vtime = 0u64;
                let mut expect = None;
                // Keep targets inside (and slightly past) the trace.
                let total: u64 = bursts.iter().map(Burst::total_insts).sum();
                let target = raw_target % (total + 2);
                for (i, b) in bursts.iter().enumerate() {
                    let end = vtime + b.total_insts();
                    if expect.is_none() && end > target {
                        expect = Some((i, vtime));
                    }
                    vtime = end;
                }

                let mut reader =
                    store::open_bytes(&bytes).map_err(|e| format!("open failed: {e}"))?;
                let start = reader
                    .seek_to_vtime(target)
                    .map_err(|e| format!("seek failed: {e}"))?;
                let landed = reader
                    .next_burst()
                    .map_err(|e| format!("read failed: {e}"))?;

                match (expect, landed) {
                    (Some((i, s)), Some(b)) if b == bursts[i] && start == s => Ok(()),
                    (None, None) if start == total => Ok(()),
                    (want, got) => Err(format!(
                        "seek({target}) landed at vtime {start} / burst {got:?}, expected \
                         {want:?} of {} bursts (total {total})",
                        bursts.len()
                    )),
                }
            },
        );
}

/// The committed corpus seeds must keep generating the shapes they were
/// committed to pin — if the generator drifts, this fails loudly instead
/// of the seeds silently degenerating into byte soup.
#[test]
fn committed_corpus_seeds_cover_the_advertised_shapes() {
    let sample = |seed: u64| container_stream().sample(&mut Source::fresh(seed));

    let valid = sample(VALID_CONTAINER_SEED);
    assert!(
        store::read_all(&valid).is_ok(),
        "seed {VALID_CONTAINER_SEED:#x} no longer generates a decodable container"
    );

    let corrupt = sample(CORRUPT_CONTAINER_SEED);
    assert!(
        corrupt.len() >= 8 && &corrupt[..8] == b"SUITTRC2" && store::read_all(&corrupt).is_err(),
        "seed {CORRUPT_CONTAINER_SEED:#x} no longer generates a well-magicked corrupt container"
    );
}

/// Seeds committed under `tests/corpus/` for the shapes above.
const VALID_CONTAINER_SEED: u64 = 0x5;
const CORRUPT_CONTAINER_SEED: u64 = 0x0;

/// Maintenance tool, not part of the suite: scans seeds and prints the
/// first one generating each corpus shape. Run with
/// `cargo test -p suit --test store_fuzz find_corpus_seeds -- --ignored --nocapture`
/// after changing the generator, then update the constants and the
/// committed `.seed` files.
#[test]
#[ignore]
fn find_corpus_seeds() {
    let g = container_stream();
    let mut valid = None;
    let mut corrupt = None;
    for seed in 0..200_000u64 {
        let input = g.sample(&mut Source::fresh(seed));
        if valid.is_none() && store::read_all(&input).is_ok() {
            valid = Some(seed);
        }
        if corrupt.is_none()
            && input.len() >= 8
            && &input[..8] == b"SUITTRC2"
            && store::read_all(&input).is_err()
        {
            corrupt = Some(seed);
        }
        if valid.is_some() && corrupt.is_some() {
            break;
        }
    }
    println!("valid container seed:   {valid:?}");
    println!("corrupt container seed: {corrupt:?}");
}
