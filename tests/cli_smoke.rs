//! Smoke tests for the `suit-cli` binary: strict argument handling
//! (unknown subcommands and flags must print usage and exit nonzero, not
//! panic or get silently ignored) and the `profile` → `validate-trace`
//! round trip.

use std::process::{Command, Output};

fn cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_suit-cli"))
        .args(args)
        .output()
        .expect("spawn suit-cli")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn unknown_subcommand_prints_usage_and_fails() {
    let out = cli(&["frobnicate"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown subcommand 'frobnicate'"), "{err}");
    assert!(err.contains("usage: suit-cli"), "{err}");
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = cli(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage: suit-cli"));
}

#[test]
fn unknown_flag_prints_usage_and_fails() {
    let out = cli(&["simulate", "--workload", "557.xz", "--bogus"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown flag '--bogus'"), "{err}");
    assert!(err.contains("usage: suit-cli"), "{err}");
}

#[test]
fn unexpected_positional_fails() {
    let out = cli(&["simulate", "stray", "--workload", "557.xz"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unexpected argument 'stray'"));
}

#[test]
fn list_succeeds() {
    let out = cli(&["list"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("557.xz"));
}

#[test]
fn bad_flag_values_fail_cleanly() {
    for args in [
        ["simulate", "--workload", "no-such-workload"].as_slice(),
        ["simulate", "--workload", "557.xz", "--cpu", "z"].as_slice(),
        ["simulate", "--workload", "557.xz", "--insts", "many"].as_slice(),
        ["validate-trace", "/no/such/file.json"].as_slice(),
    ] {
        let out = cli(args);
        assert!(!out.status.success(), "{args:?} should fail");
        assert!(stderr(&out).contains("error:"), "{args:?}");
    }
}

#[test]
fn bad_threads_values_print_usage_and_fail() {
    for bad in ["0", "-1", "many", ""] {
        let out = cli(&["simulate", "--workload", "557.xz", "--threads", bad]);
        assert!(!out.status.success(), "--threads {bad:?} should fail");
        let err = stderr(&out);
        assert!(
            err.contains("--threads must be a positive integer"),
            "--threads {bad:?}: {err}"
        );
        assert!(err.contains("usage: suit-cli"), "--threads {bad:?}: {err}");
    }
}

#[test]
fn simulate_fans_out_a_workload_list_deterministically() {
    let args = |threads: &'static str| {
        [
            "simulate",
            "--workload",
            "557.xz,Nginx,502.gcc",
            "--insts",
            "50000000",
            "--threads",
            threads,
        ]
    };
    let parallel = cli(&args("2"));
    assert!(parallel.status.success(), "{}", stderr(&parallel));
    let log = stdout(&parallel);
    // Output is in list order, one block per workload, at any width.
    let xz = log.find("557.xz on").expect("xz block");
    let nginx = log.find("Nginx on").expect("nginx block");
    let gcc = log.find("502.gcc on").expect("gcc block");
    assert!(xz < nginx && nginx < gcc, "{log}");
    let sequential = cli(&args("1"));
    assert_eq!(stdout(&sequential), log, "output diverged across widths");
}

#[test]
fn mix_all_runs_every_mix() {
    let out = cli(&["mix", "all", "--insts", "50000000", "--threads", "2"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let log = stdout(&out);
    for name in ["office", "webserver", "hpc", "media"] {
        assert!(
            log.contains(&format!("mix '{name}'")),
            "missing {name}: {log}"
        );
    }
}

#[test]
fn scenario_rejects_bad_kinds_and_flags() {
    let out = cli(&["scenario"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("expected sram or scrooge"), "{err}");
    assert!(err.contains("usage: suit-cli"), "{err}");

    let out = cli(&["scenario", "warp"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown scenario 'warp'"));

    let out = cli(&["scenario", "sram", "--bogus"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown flag '--bogus'"), "{err}");
    assert!(err.contains("usage: suit-cli"), "{err}");

    let out = cli(&["scenario", "sram", "--threads", "0"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--threads must be a positive integer"));
}

#[test]
fn scenario_runs_both_kinds_deterministically() {
    // --json output must be byte-identical across worker counts; the
    // human rendering must carry the audit verdicts.
    let json = |threads: &'static str, kind: &'static str| {
        let out = cli(&["scenario", kind, "--json", "--threads", threads]);
        assert!(out.status.success(), "{}", stderr(&out));
        stdout(&out)
    };
    for kind in ["sram", "scrooge"] {
        let one = json("1", kind);
        assert_eq!(one, json("2", kind), "{kind} diverged across threads");
        assert!(one.contains(&format!("\"scenario\":\"{kind}\"")), "{one}");
    }
    let out = cli(&["scenario", "sram"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let log = stdout(&out);
    assert!(log.contains("audit matrix"), "{log}");
    assert!(log.contains("INSECURE"), "{log}");
    assert!(log.contains("secure"), "{log}");
}

#[test]
fn scenario_config_file_overrides_and_bad_configs_fail() {
    let path = std::env::temp_dir().join(format!("suit-cli-scenario-{}.json", std::process::id()));
    let path = path.to_str().expect("utf-8 temp path");
    std::fs::write(
        path,
        r#"{"scenario": "sram", "cache_banks": 2, "rob_banks": 1}"#,
    )
    .expect("write config");
    let out = cli(&["scenario", "sram", "--config", path, "--json"]);
    assert!(out.status.success(), "{}", stderr(&out));
    // 3 banks -> 3 bank rows in the JSON report.
    assert_eq!(stdout(&out).matches("\"margin_mv\"").count(), 3);

    // A config naming the other scenario must be refused, as must junk.
    let out = cli(&["scenario", "scrooge", "--config", path]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("error:"));
    std::fs::write(path, "not json").expect("write config");
    let out = cli(&["scenario", "sram", "--config", path]);
    std::fs::remove_file(path).ok();
    assert!(!out.status.success());
    assert!(stderr(&out).contains("error:"));
}

#[test]
fn serve_flag_validation_prints_usage_and_fails() {
    // Bad values must fail *before* any socket is bound: validation is
    // fast, loud, and routed through the same usage path as --threads.
    for (args, needle) in [
        (
            ["serve", "--addr", "not-an-address"].as_slice(),
            "--addr must be HOST:PORT",
        ),
        (
            ["serve", "--queue-depth", "0"].as_slice(),
            "--queue-depth must be a positive integer",
        ),
        (
            ["serve", "--queue-depth", "lots"].as_slice(),
            "--queue-depth must be a positive integer",
        ),
        (
            ["serve", "--threads", "0"].as_slice(),
            "--threads must be a positive integer",
        ),
        (
            ["serve", "--port", "80"].as_slice(),
            "unknown flag '--port'",
        ),
    ] {
        let out = cli(args);
        assert!(!out.status.success(), "{args:?} should fail");
        let err = stderr(&out);
        assert!(err.contains(needle), "{args:?}: {err}");
        assert!(err.contains("usage: suit-cli"), "{args:?}: {err}");
    }
}

#[test]
fn client_flag_validation_fails_cleanly() {
    for args in [
        ["client"].as_slice(),
        ["client", "v1/healthz"].as_slice(),
        ["client", "/v1/healthz", "--addr", "nope"].as_slice(),
        ["client", "/v1/healthz", "--method", "PUT"].as_slice(),
    ] {
        let out = cli(args);
        assert!(!out.status.success(), "{args:?} should fail");
        assert!(stderr(&out).contains("error:"), "{args:?}");
    }
}

#[test]
fn profile_validates_threads_like_every_other_subcommand() {
    let out = cli(&["profile", "Nginx", "--insts", "50000000", "--threads", "0"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains("--threads must be a positive integer"),
        "{err}"
    );
    assert!(err.contains("usage: suit-cli"), "{err}");

    let out = cli(&["profile", "Nginx", "--insts", "50000000", "--threads", "2"]);
    assert!(out.status.success(), "{}", stderr(&out));
}

#[test]
fn validate_trace_reads_stdin_with_dash() {
    use std::io::Write;
    let path = std::env::temp_dir().join(format!("suit-cli-stdin-{}.json", std::process::id()));
    let path = path.to_str().expect("utf-8 temp path");
    let out = cli(&[
        "profile",
        "Nginx",
        "--insts",
        "50000000",
        "--trace-out",
        path,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let trace = std::fs::read(path).expect("trace file");
    std::fs::remove_file(path).ok();

    let mut child = Command::new(env!("CARGO_BIN_EXE_suit-cli"))
        .args(["validate-trace", "-"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn suit-cli");
    child.stdin.take().expect("stdin").write_all(&trace).ok();
    let out = child.wait_with_output().expect("wait suit-cli");
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("valid Perfetto trace"),
        "{}",
        stdout(&out)
    );

    // Without the trace on stdin nothing changes for files: a missing
    // path still fails strictly.
    let out = cli(&["validate-trace"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("missing <file|->"));
}

#[test]
fn profile_trace_round_trips_through_validate_trace() {
    let path = std::env::temp_dir().join(format!("suit-cli-smoke-{}.json", std::process::id()));
    let path = path.to_str().expect("utf-8 temp path");

    let out = cli(&[
        "profile",
        "Nginx",
        "--insts",
        "50000000",
        "--trace-out",
        path,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let log = stdout(&out);
    assert!(log.contains("telemetry summary"), "{log}");
    assert!(log.contains("do_traps"), "{log}");

    let out = cli(&["validate-trace", path]);
    let report = stdout(&out);
    std::fs::remove_file(path).ok();
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(report.contains("valid Perfetto trace"), "{report}");
    for required in ["curve_switch", "do_trap", "stall"] {
        assert!(report.contains(required), "missing {required}: {report}");
    }
}
