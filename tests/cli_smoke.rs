//! Smoke tests for the `suit-cli` binary: strict argument handling
//! (unknown subcommands and flags must print usage and exit nonzero, not
//! panic or get silently ignored) and the `profile` → `validate-trace`
//! round trip.

use std::process::{Command, Output};

fn cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_suit-cli"))
        .args(args)
        .output()
        .expect("spawn suit-cli")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn unknown_subcommand_prints_usage_and_fails() {
    let out = cli(&["frobnicate"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown subcommand 'frobnicate'"), "{err}");
    assert!(err.contains("usage: suit-cli"), "{err}");
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = cli(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage: suit-cli"));
}

#[test]
fn unknown_flag_prints_usage_and_fails() {
    let out = cli(&["simulate", "--workload", "557.xz", "--bogus"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown flag '--bogus'"), "{err}");
    assert!(err.contains("usage: suit-cli"), "{err}");
}

#[test]
fn unexpected_positional_fails() {
    let out = cli(&["simulate", "stray", "--workload", "557.xz"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unexpected argument 'stray'"));
}

#[test]
fn list_succeeds() {
    let out = cli(&["list"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("557.xz"));
}

#[test]
fn bad_flag_values_fail_cleanly() {
    for args in [
        ["simulate", "--workload", "no-such-workload"].as_slice(),
        ["simulate", "--workload", "557.xz", "--cpu", "z"].as_slice(),
        ["simulate", "--workload", "557.xz", "--insts", "many"].as_slice(),
        ["validate-trace", "/no/such/file.json"].as_slice(),
    ] {
        let out = cli(args);
        assert!(!out.status.success(), "{args:?} should fail");
        assert!(stderr(&out).contains("error:"), "{args:?}");
    }
}

#[test]
fn profile_trace_round_trips_through_validate_trace() {
    let path = std::env::temp_dir().join(format!("suit-cli-smoke-{}.json", std::process::id()));
    let path = path.to_str().expect("utf-8 temp path");

    let out = cli(&[
        "profile",
        "Nginx",
        "--insts",
        "50000000",
        "--trace-out",
        path,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let log = stdout(&out);
    assert!(log.contains("telemetry summary"), "{log}");
    assert!(log.contains("do_traps"), "{log}");

    let out = cli(&["validate-trace", path]);
    let report = stdout(&out);
    std::fs::remove_file(path).ok();
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(report.contains("valid Perfetto trace"), "{report}");
    for required in ["curve_switch", "do_trap", "stall"] {
        assert!(report.contains(required), "missing {required}: {report}");
    }
}
