//! Loopback end-to-end tests for `suit-serve`: real sockets, real
//! worker pools, in-process server.
//!
//! The load-bearing assertion is *byte identity*: a `/v1/batch` response
//! must equal the JSON serialization of the equivalent direct
//! `suit-sim` API call — at one worker thread and at four. Everything
//! else (400s, 429 backpressure, 408 deadlines, graceful drain) pins the
//! service's robustness contract.

use std::time::Duration;

use suit::exec::Threads;
use suit::serve::api;
use suit::serve::{
    request, request_text, request_with_headers, ServeConfig, Server, ShutdownHandle,
};
use suit::sim::experiment::run_table6;
use suit::telemetry::json::{parse, Value};

/// Binds an ephemeral port, runs the server on a background thread, and
/// returns the address, a shutdown handle, and the join handle.
fn start(
    cfg: ServeConfig,
) -> (
    String,
    ShutdownHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

fn stop(handle: ShutdownHandle, join: std::thread::JoinHandle<std::io::Result<()>>) {
    handle.shutdown();
    join.join().expect("server thread").expect("server run");
}

const TIMEOUT: Duration = Duration::from_secs(120);

fn post(addr: &str, path: &str, body: &str) -> Result<String, String> {
    request_text(addr, "POST", path, Some(body), TIMEOUT)
}

/// Field lookup in a parsed JSON object.
fn field<'v>(v: &'v Value, name: &str) -> &'v Value {
    match v {
        Value::Obj(pairs) => pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field '{name}'")),
        other => panic!("expected object, got {other:?}"),
    }
}

#[test]
fn batch_table6_is_byte_identical_to_the_direct_api_at_any_thread_count() {
    const CAP: u64 = 20_000_000;
    // The ground truth: the same sweep through the suit-sim API,
    // serialized by the same functions the server uses.
    let expect = api::batch_table6_json(&run_table6(Threads::Fixed(1), Some(CAP)));
    let body = format!("{{\"sweep\":\"table6\",\"max_insts\":{CAP}}}");
    for workers in [1, 4] {
        let (addr, handle, join) = start(ServeConfig {
            threads: Threads::Fixed(workers),
            ..ServeConfig::default()
        });
        let got = post(&addr, "/v1/batch", &body).expect("batch");
        assert_eq!(
            got, expect,
            "/v1/batch diverged from run_table6 at {workers} worker(s)"
        );
        stop(handle, join);
    }
}

#[test]
fn simulate_round_trips_and_metrics_count_it() {
    let (addr, handle, join) = start(ServeConfig::default());
    let got = post(
        &addr,
        "/v1/simulate",
        "{\"workload\":\"557.xz\",\"insts\":50000000}",
    )
    .expect("simulate");
    let parsed = parse(&got).expect("response is valid JSON");
    let result = field(&parsed, "result");
    assert!(matches!(
        field(result, "workload"),
        Value::Str(s) if s == "557.xz"
    ));

    let metrics = request_text(&addr, "GET", "/v1/metrics", None, TIMEOUT).expect("metrics");
    let m = parse(&metrics).expect("metrics JSON");
    assert!(matches!(
        field(field(&m, "requests"), "accepted"),
        Value::Num(n) if *n >= 1.0
    ));
    assert!(matches!(
        field(field(field(&m, "latency_us"), "simulate"), "count"),
        Value::Num(n) if *n == 1.0
    ));
    stop(handle, join);
}

#[test]
fn malformed_bodies_are_400_with_structured_json_never_a_panic() {
    let (addr, handle, join) = start(ServeConfig::default());
    for bad in [
        "",
        "not json",
        "[1,2,3]",
        "{\"workload\":\"no-such-workload\"}",
        "{\"workload\":\"557.xz\",\"bogus\":1}",
        "{\"workload\":\"557.xz\",\"insts\":0}",
        "{\"workload\":\"557.xz\",\"strategy\":\"warp\"}",
        "{\"workload\":\"557.xz\",\"seed\":-1}",
    ] {
        let resp = request(&addr, "POST", "/v1/simulate", Some(bad), TIMEOUT).expect("request");
        assert_eq!(resp.status, 400, "body {bad:?}: {}", resp.text().unwrap());
        let err = parse(resp.text().expect("utf-8")).expect("error body is valid JSON");
        assert!(matches!(
            field(field(&err, "error"), "status"),
            Value::Num(n) if *n == 400.0
        ));
    }
    // The server survived all of it.
    let health = request_text(&addr, "GET", "/v1/healthz", None, TIMEOUT).expect("healthz");
    assert_eq!(health, "{\"status\":\"ok\"}");
    stop(handle, join);
}

#[test]
fn full_queue_answers_429_with_retry_after() {
    // One worker, queue depth one: at most two jobs can be in the system,
    // so a burst of concurrent slow batches must bounce at least one
    // request with 429. Cache off: identical requests would otherwise
    // coalesce onto one computation and never fill the queue.
    let (addr, handle, join) = start(ServeConfig {
        threads: Threads::Fixed(1),
        queue_depth: 1,
        cache_entries: 0,
        ..ServeConfig::default()
    });
    let slow = "{\"workloads\":\"all\",\"insts\":2000000000}";
    let mut rejected = 0u32;
    'rounds: for _ in 0..20 {
        let results: Vec<_> = std::thread::scope(|scope| {
            let addr = addr.as_str();
            let posts: Vec<_> = (0..6)
                .map(|_| {
                    scope.spawn(move || {
                        request(addr, "POST", "/v1/batch", Some(slow), TIMEOUT).expect("request")
                    })
                })
                .collect();
            posts.into_iter().map(|t| t.join().expect("join")).collect()
        });
        for resp in results {
            match resp.status {
                200 => {}
                429 => {
                    // Retry-After is computed from the observed drain
                    // rate (queue depth × recent p50), clamped to 1..=60,
                    // and echoed in the JSON body for honest backoff.
                    let secs: u32 = resp
                        .header("retry-after")
                        .expect("429 needs Retry-After")
                        .parse()
                        .expect("Retry-After must be integral seconds");
                    assert!((1..=60).contains(&secs), "unclamped Retry-After {secs}");
                    let err = parse(resp.text().expect("utf-8")).expect("429 body is JSON");
                    assert!(matches!(
                        field(field(&err, "error"), "retry_after_s"),
                        Value::Num(n) if *n == secs as f64
                    ));
                    rejected += 1;
                }
                other => panic!("unexpected status {other}: {}", resp.text().unwrap()),
            }
            if rejected > 0 {
                break 'rounds;
            }
        }
    }
    assert!(rejected >= 1, "bounded queue never produced a 429");
    let metrics = request_text(&addr, "GET", "/v1/metrics", None, TIMEOUT).expect("metrics");
    let m = parse(&metrics).expect("metrics JSON");
    assert!(matches!(
        field(field(&m, "requests"), "rejected"),
        Value::Num(n) if *n >= 1.0
    ));
    stop(handle, join);
}

#[test]
fn an_already_expired_deadline_is_408() {
    let (addr, handle, join) = start(ServeConfig::default());
    let resp = request(
        &addr,
        "POST",
        "/v1/simulate",
        Some("{\"workload\":\"557.xz\",\"deadline_ms\":0}"),
        TIMEOUT,
    )
    .expect("request");
    assert_eq!(resp.status, 408, "{}", resp.text().unwrap());
    stop(handle, join);
}

#[test]
fn faults_campaign_reports_table1_and_is_deterministic() {
    let body = "{\"executions\":200,\"seed\":7}";
    let (addr, handle, join) = start(ServeConfig::default());
    let a = post(&addr, "/v1/faults", body).expect("faults");
    let b = post(&addr, "/v1/faults", body).expect("faults again");
    assert_eq!(a, b, "same campaign spec must serialize identically");
    let parsed = parse(&a).expect("faults JSON");
    match field(&parsed, "table1") {
        Value::Arr(rows) => assert!(!rows.is_empty(), "table1 must list opcodes"),
        other => panic!("table1 should be an array, got {other:?}"),
    }
    stop(handle, join);
}

#[test]
fn scenario_round_trips_match_the_direct_library_call_at_1_and_4_workers() {
    use suit::scenarios::{scrooge, sram, ScroogeConfig, SramScenarioConfig};
    use suit::telemetry::Telemetry;

    // Small but representative configs; the server must serialize the
    // exact bytes of the library reports at every worker count.
    let sram_body = "{\"scenario\":\"sram\",\"cache_banks\":3,\"rob_banks\":2,\"reads\":128,\
                     \"offsets_mv\":[-100,-150,-180],\"audit_len\":300,\"seed\":9}";
    let sram_cfg = SramScenarioConfig {
        cache_banks: 3,
        rob_banks: 2,
        reads: 128,
        offsets_mv: vec![-100.0, -150.0, -180.0],
        audit_len: 300,
        seed: 9,
        ..SramScenarioConfig::default()
    };
    let scrooge_body = "{\"scenario\":\"scrooge\",\"epoch_insts\":200000,\"audit_len\":300,\
                        \"seed\":9}";
    let scrooge_cfg = ScroogeConfig {
        epoch_insts: 200_000,
        audit_len: 300,
        seed: 9,
        ..ScroogeConfig::default()
    };
    for workers in [1, 4] {
        let threads = workers; // suit-exec fan-out tracks the pool size
        let (addr, handle, join) = start(ServeConfig {
            threads: Threads::Fixed(workers),
            ..ServeConfig::default()
        });
        let got = post(&addr, "/v1/scenario", sram_body).expect("sram scenario");
        assert_eq!(
            got,
            sram::run(&sram_cfg, threads, &Telemetry::off()).to_json(),
            "/v1/scenario (sram) diverged from the library at {workers} worker(s)"
        );
        let got = post(&addr, "/v1/scenario", scrooge_body).expect("scrooge scenario");
        assert_eq!(
            got,
            scrooge::search(&scrooge_cfg, threads, &Telemetry::off())
                .unwrap()
                .to_json(),
            "/v1/scenario (scrooge) diverged from the library at {workers} worker(s)"
        );

        // The endpoint has its own latency histogram on /v1/metrics.
        let metrics = request_text(&addr, "GET", "/v1/metrics", None, TIMEOUT).expect("metrics");
        let m = parse(&metrics).expect("metrics JSON");
        assert!(matches!(
            field(field(field(&m, "latency_us"), "scenario"), "count"),
            Value::Num(n) if *n >= 2.0
        ));
        stop(handle, join);
    }
}

#[test]
fn scenario_bodies_validate_strictly_over_the_wire() {
    let (addr, handle, join) = start(ServeConfig::default());
    for bad in [
        "{}",
        "{\"scenario\":\"warp\"}",
        "{\"scenario\":\"sram\",\"bogus\":1}",
        "{\"scenario\":\"sram\",\"cache_banks\":1e308}",
        "{\"scenario\":\"sram\",\"sigma_mv\":1e999}",
        "{\"scenario\":\"scrooge\",\"offset_steps\":1}",
    ] {
        let resp = request(&addr, "POST", "/v1/scenario", Some(bad), TIMEOUT).expect("request");
        assert_eq!(resp.status, 400, "accepted {bad:?}");
        let err = parse(resp.text().expect("utf-8")).expect("error body is valid JSON");
        assert!(matches!(
            field(field(&err, "error"), "status"),
            Value::Num(n) if *n == 400.0
        ));
    }
    // Wrong method is routed like every other compute endpoint.
    let resp = request(&addr, "GET", "/v1/scenario", None, TIMEOUT).expect("request");
    assert_eq!(resp.status, 405);
    stop(handle, join);
}

#[test]
fn graceful_shutdown_drains_the_inflight_job() {
    let (addr, handle, join) = start(ServeConfig {
        threads: Threads::Fixed(1),
        ..ServeConfig::default()
    });
    // Park a slow job on the single worker…
    let slow_addr = addr.clone();
    let slow = std::thread::spawn(move || {
        post(
            &slow_addr,
            "/v1/batch",
            "{\"workloads\":\"all\",\"insts\":2000000000}",
        )
    });
    // …wait until it is actually inflight…
    let mut inflight = false;
    for _ in 0..200 {
        let metrics = request_text(&addr, "GET", "/v1/metrics", None, TIMEOUT).expect("metrics");
        let m = parse(&metrics).expect("metrics JSON");
        if matches!(field(field(&m, "queue"), "inflight"), Value::Num(n) if *n >= 1.0) {
            inflight = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(inflight, "slow job never became inflight");
    // …then ask for shutdown over HTTP. The drain contract: the inflight
    // job still completes with a full 200 response, and run() returns.
    let drain = post(&addr, "/v1/shutdown", "{}").expect("shutdown");
    assert_eq!(drain, "{\"status\":\"draining\"}");
    let slow_result = slow
        .join()
        .expect("slow thread")
        .expect("inflight job must complete");
    assert!(
        slow_result.contains("\"results\""),
        "drained job returned a full batch result"
    );
    join.join().expect("server thread").expect("server run");
    let _ = handle;
}

/// Reads a numeric field out of the parsed `/v1/metrics` cache section.
fn cache_metric(addr: &str, name: &str) -> f64 {
    let metrics = request_text(addr, "GET", "/v1/metrics", None, TIMEOUT).expect("metrics");
    let m = parse(&metrics).expect("metrics JSON");
    match field(field(&m, "cache"), name) {
        Value::Num(n) => *n,
        other => panic!("cache.{name} should be a number, got {other:?}"),
    }
}

#[test]
fn cache_on_and_cache_off_responses_are_byte_identical_at_1_and_4_workers() {
    let simulate = "{\"workload\":\"557.xz\",\"insts\":50000000,\"seed\":11}";
    let batch = "{\"workloads\":[\"557.xz\",\"Nginx\"],\"insts\":20000000,\"seed\":11}";
    for workers in [1, 4] {
        let (addr, handle, join) = start(ServeConfig {
            threads: Threads::Fixed(workers),
            cache_entries: 0, // cache disabled: every request computes
            ..ServeConfig::default()
        });
        let sim_off = post(&addr, "/v1/simulate", simulate).expect("simulate off");
        let batch_off = post(&addr, "/v1/batch", batch).expect("batch off");
        stop(handle, join);

        let (addr, handle, join) = start(ServeConfig {
            threads: Threads::Fixed(workers),
            ..ServeConfig::default() // cache enabled by default
        });
        // First request computes (miss), second is served from cache.
        let sim_miss = post(&addr, "/v1/simulate", simulate).expect("simulate miss");
        let sim_hit = post(&addr, "/v1/simulate", simulate).expect("simulate hit");
        let batch_miss = post(&addr, "/v1/batch", batch).expect("batch miss");
        assert_eq!(
            sim_off, sim_miss,
            "cache-on diverged at {workers} worker(s)"
        );
        assert_eq!(
            sim_off, sim_hit,
            "cached bytes diverged at {workers} worker(s)"
        );
        assert_eq!(
            batch_off, batch_miss,
            "batch diverged at {workers} worker(s)"
        );
        assert!(
            cache_metric(&addr, "hits") >= 1.0,
            "hit counter never moved"
        );
        assert_eq!(cache_metric(&addr, "misses"), 2.0);
        assert!(cache_metric(&addr, "entries") >= 2.0);
        stop(handle, join);
    }
}

#[test]
fn concurrent_identical_requests_coalesce_onto_one_computation() {
    const N: usize = 4;
    let (addr, handle, join) = start(ServeConfig {
        threads: Threads::Fixed(1),
        ..ServeConfig::default()
    });
    let slow = "{\"workloads\":\"all\",\"insts\":2000000000,\"seed\":3}";
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let addr = addr.as_str();
        let posts: Vec<_> = (0..N)
            .map(|_| scope.spawn(move || post(addr, "/v1/batch", slow).expect("batch")))
            .collect();
        posts.into_iter().map(|t| t.join().expect("join")).collect()
    });
    for body in &bodies[1..] {
        assert_eq!(body, &bodies[0], "coalesced responses must be identical");
    }
    // The load-bearing count: N identical requests, exactly ONE
    // computation. Every non-leader either coalesced onto the flight or
    // (if it arrived after publication) hit the cache.
    assert_eq!(
        cache_metric(&addr, "misses"),
        1.0,
        "computation ran more than once"
    );
    assert_eq!(
        cache_metric(&addr, "coalesced") + cache_metric(&addr, "hits"),
        (N - 1) as f64
    );
    stop(handle, join);
}

#[test]
fn if_none_match_revalidation_round_trips_304() {
    let (addr, handle, join) = start(ServeConfig::default());
    let body = "{\"workload\":\"557.xz\",\"insts\":50000000}";
    let first = request(&addr, "POST", "/v1/simulate", Some(body), TIMEOUT).expect("request");
    assert_eq!(first.status, 200);
    let etag = first
        .header("etag")
        .expect("cacheable 200 carries an ETag")
        .to_string();
    assert!(
        etag.starts_with("\"suit-") && etag.ends_with('"'),
        "strong quoted ETag, got {etag}"
    );

    // Revalidate with the tag: 304, no body, tag echoed.
    let revalidated = request_with_headers(
        &addr,
        "POST",
        "/v1/simulate",
        Some(body),
        &[("if-none-match", &etag)],
        TIMEOUT,
    )
    .expect("conditional request");
    assert_eq!(revalidated.status, 304);
    assert!(revalidated.body.is_empty(), "304 must not carry a body");
    assert_eq!(revalidated.header("etag"), Some(etag.as_str()));

    // A stale tag still gets the full representation.
    let stale = request_with_headers(
        &addr,
        "POST",
        "/v1/simulate",
        Some(body),
        &[("if-none-match", "\"suit-00000000000000000000000000000000\"")],
        TIMEOUT,
    )
    .expect("stale conditional request");
    assert_eq!(stale.status, 200);
    assert_eq!(stale.body, first.body);
    assert!(cache_metric(&addr, "not_modified") >= 1.0);
    stop(handle, join);
}

#[test]
fn non_finite_numbers_in_bodies_are_structured_400s() {
    let (addr, handle, join) = start(ServeConfig::default());
    for (path, bad) in [
        ("/v1/simulate", "{\"workload\":\"557.xz\",\"seed\":1e999}"),
        ("/v1/batch", "{\"workloads\":[\"557.xz\"],\"insts\":1e999}"),
        ("/v1/faults", "{\"sigma_mv\":-1e999}"),
    ] {
        let resp = request(&addr, "POST", path, Some(bad), TIMEOUT).expect("request");
        assert_eq!(resp.status, 400, "{path} accepted {bad:?}");
        let err = parse(resp.text().expect("utf-8")).expect("error body is valid JSON");
        assert!(matches!(
            field(field(&err, "error"), "status"),
            Value::Num(n) if *n == 400.0
        ));
    }
    stop(handle, join);
}

#[test]
fn connection_close_inside_a_token_list_closes_after_the_response() {
    // A raw-socket exchange: `Connection: close, TE` must yield
    // `connection: close` back and EOF after one response — the
    // pre-fix parser treated the token list as keep-alive.
    use std::io::{Read, Write};
    let (addr, handle, join) = start(ServeConfig::default());
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    stream
        .write_all(b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\nConnection: close, TE\r\n\r\n")
        .expect("write");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read to EOF");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    assert!(
        text.contains("connection: close"),
        "server must acknowledge the close: {text}"
    );
    stop(handle, join);
}

#[test]
fn unknown_paths_and_wrong_methods_fail_cleanly() {
    let (addr, handle, join) = start(ServeConfig::default());
    let resp = request(&addr, "GET", "/v1/nope", None, TIMEOUT).expect("request");
    assert_eq!(resp.status, 404);
    let resp = request(&addr, "GET", "/v1/simulate", None, TIMEOUT).expect("request");
    assert_eq!(resp.status, 405);
    let resp = request(&addr, "POST", "/v1/metrics", Some("{}"), TIMEOUT).expect("request");
    assert_eq!(resp.status, 405);
    stop(handle, join);
}
