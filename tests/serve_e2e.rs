//! Loopback end-to-end tests for `suit-serve`: real sockets, real
//! worker pools, in-process server.
//!
//! The load-bearing assertion is *byte identity*: a `/v1/batch` response
//! must equal the JSON serialization of the equivalent direct
//! `suit-sim` API call — at one worker thread and at four. Everything
//! else (400s, 429 backpressure, 408 deadlines, graceful drain) pins the
//! service's robustness contract.

use std::time::Duration;

use suit::exec::Threads;
use suit::serve::api;
use suit::serve::{request, request_text, ServeConfig, Server, ShutdownHandle};
use suit::sim::experiment::run_table6;
use suit::telemetry::json::{parse, Value};

/// Binds an ephemeral port, runs the server on a background thread, and
/// returns the address, a shutdown handle, and the join handle.
fn start(
    cfg: ServeConfig,
) -> (
    String,
    ShutdownHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

fn stop(handle: ShutdownHandle, join: std::thread::JoinHandle<std::io::Result<()>>) {
    handle.shutdown();
    join.join().expect("server thread").expect("server run");
}

const TIMEOUT: Duration = Duration::from_secs(120);

fn post(addr: &str, path: &str, body: &str) -> Result<String, String> {
    request_text(addr, "POST", path, Some(body), TIMEOUT)
}

/// Field lookup in a parsed JSON object.
fn field<'v>(v: &'v Value, name: &str) -> &'v Value {
    match v {
        Value::Obj(pairs) => pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field '{name}'")),
        other => panic!("expected object, got {other:?}"),
    }
}

#[test]
fn batch_table6_is_byte_identical_to_the_direct_api_at_any_thread_count() {
    const CAP: u64 = 20_000_000;
    // The ground truth: the same sweep through the suit-sim API,
    // serialized by the same functions the server uses.
    let expect = api::batch_table6_json(&run_table6(Threads::Fixed(1), Some(CAP)));
    let body = format!("{{\"sweep\":\"table6\",\"max_insts\":{CAP}}}");
    for workers in [1, 4] {
        let (addr, handle, join) = start(ServeConfig {
            threads: Threads::Fixed(workers),
            ..ServeConfig::default()
        });
        let got = post(&addr, "/v1/batch", &body).expect("batch");
        assert_eq!(
            got, expect,
            "/v1/batch diverged from run_table6 at {workers} worker(s)"
        );
        stop(handle, join);
    }
}

#[test]
fn simulate_round_trips_and_metrics_count_it() {
    let (addr, handle, join) = start(ServeConfig::default());
    let got = post(
        &addr,
        "/v1/simulate",
        "{\"workload\":\"557.xz\",\"insts\":50000000}",
    )
    .expect("simulate");
    let parsed = parse(&got).expect("response is valid JSON");
    let result = field(&parsed, "result");
    assert!(matches!(
        field(result, "workload"),
        Value::Str(s) if s == "557.xz"
    ));

    let metrics = request_text(&addr, "GET", "/v1/metrics", None, TIMEOUT).expect("metrics");
    let m = parse(&metrics).expect("metrics JSON");
    assert!(matches!(
        field(field(&m, "requests"), "accepted"),
        Value::Num(n) if *n >= 1.0
    ));
    assert!(matches!(
        field(field(field(&m, "latency_us"), "simulate"), "count"),
        Value::Num(n) if *n == 1.0
    ));
    stop(handle, join);
}

#[test]
fn malformed_bodies_are_400_with_structured_json_never_a_panic() {
    let (addr, handle, join) = start(ServeConfig::default());
    for bad in [
        "",
        "not json",
        "[1,2,3]",
        "{\"workload\":\"no-such-workload\"}",
        "{\"workload\":\"557.xz\",\"bogus\":1}",
        "{\"workload\":\"557.xz\",\"insts\":0}",
        "{\"workload\":\"557.xz\",\"strategy\":\"warp\"}",
        "{\"workload\":\"557.xz\",\"seed\":-1}",
    ] {
        let resp = request(&addr, "POST", "/v1/simulate", Some(bad), TIMEOUT).expect("request");
        assert_eq!(resp.status, 400, "body {bad:?}: {}", resp.text().unwrap());
        let err = parse(resp.text().expect("utf-8")).expect("error body is valid JSON");
        assert!(matches!(
            field(field(&err, "error"), "status"),
            Value::Num(n) if *n == 400.0
        ));
    }
    // The server survived all of it.
    let health = request_text(&addr, "GET", "/v1/healthz", None, TIMEOUT).expect("healthz");
    assert_eq!(health, "{\"status\":\"ok\"}");
    stop(handle, join);
}

#[test]
fn full_queue_answers_429_with_retry_after() {
    // One worker, queue depth one: at most two jobs can be in the system,
    // so a burst of concurrent slow batches must bounce at least one
    // request with 429.
    let (addr, handle, join) = start(ServeConfig {
        threads: Threads::Fixed(1),
        queue_depth: 1,
        ..ServeConfig::default()
    });
    let slow = "{\"workloads\":\"all\",\"insts\":2000000000}";
    let mut rejected = 0u32;
    'rounds: for _ in 0..20 {
        let results: Vec<_> = std::thread::scope(|scope| {
            let addr = addr.as_str();
            let posts: Vec<_> = (0..6)
                .map(|_| {
                    scope.spawn(move || {
                        request(addr, "POST", "/v1/batch", Some(slow), TIMEOUT).expect("request")
                    })
                })
                .collect();
            posts.into_iter().map(|t| t.join().expect("join")).collect()
        });
        for resp in results {
            match resp.status {
                200 => {}
                429 => {
                    assert_eq!(
                        resp.header("retry-after"),
                        Some("1"),
                        "429 needs Retry-After"
                    );
                    rejected += 1;
                }
                other => panic!("unexpected status {other}: {}", resp.text().unwrap()),
            }
            if rejected > 0 {
                break 'rounds;
            }
        }
    }
    assert!(rejected >= 1, "bounded queue never produced a 429");
    let metrics = request_text(&addr, "GET", "/v1/metrics", None, TIMEOUT).expect("metrics");
    let m = parse(&metrics).expect("metrics JSON");
    assert!(matches!(
        field(field(&m, "requests"), "rejected"),
        Value::Num(n) if *n >= 1.0
    ));
    stop(handle, join);
}

#[test]
fn an_already_expired_deadline_is_408() {
    let (addr, handle, join) = start(ServeConfig::default());
    let resp = request(
        &addr,
        "POST",
        "/v1/simulate",
        Some("{\"workload\":\"557.xz\",\"deadline_ms\":0}"),
        TIMEOUT,
    )
    .expect("request");
    assert_eq!(resp.status, 408, "{}", resp.text().unwrap());
    stop(handle, join);
}

#[test]
fn faults_campaign_reports_table1_and_is_deterministic() {
    let body = "{\"executions\":200,\"seed\":7}";
    let (addr, handle, join) = start(ServeConfig::default());
    let a = post(&addr, "/v1/faults", body).expect("faults");
    let b = post(&addr, "/v1/faults", body).expect("faults again");
    assert_eq!(a, b, "same campaign spec must serialize identically");
    let parsed = parse(&a).expect("faults JSON");
    match field(&parsed, "table1") {
        Value::Arr(rows) => assert!(!rows.is_empty(), "table1 must list opcodes"),
        other => panic!("table1 should be an array, got {other:?}"),
    }
    stop(handle, join);
}

#[test]
fn graceful_shutdown_drains_the_inflight_job() {
    let (addr, handle, join) = start(ServeConfig {
        threads: Threads::Fixed(1),
        ..ServeConfig::default()
    });
    // Park a slow job on the single worker…
    let slow_addr = addr.clone();
    let slow = std::thread::spawn(move || {
        post(
            &slow_addr,
            "/v1/batch",
            "{\"workloads\":\"all\",\"insts\":2000000000}",
        )
    });
    // …wait until it is actually inflight…
    let mut inflight = false;
    for _ in 0..200 {
        let metrics = request_text(&addr, "GET", "/v1/metrics", None, TIMEOUT).expect("metrics");
        let m = parse(&metrics).expect("metrics JSON");
        if matches!(field(field(&m, "queue"), "inflight"), Value::Num(n) if *n >= 1.0) {
            inflight = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(inflight, "slow job never became inflight");
    // …then ask for shutdown over HTTP. The drain contract: the inflight
    // job still completes with a full 200 response, and run() returns.
    let drain = post(&addr, "/v1/shutdown", "{}").expect("shutdown");
    assert_eq!(drain, "{\"status\":\"draining\"}");
    let slow_result = slow
        .join()
        .expect("slow thread")
        .expect("inflight job must complete");
    assert!(
        slow_result.contains("\"results\""),
        "drained job returned a full batch result"
    );
    join.join().expect("server thread").expect("server run");
    let _ = handle;
}

#[test]
fn unknown_paths_and_wrong_methods_fail_cleanly() {
    let (addr, handle, join) = start(ServeConfig::default());
    let resp = request(&addr, "GET", "/v1/nope", None, TIMEOUT).expect("request");
    assert_eq!(resp.status, 404);
    let resp = request(&addr, "GET", "/v1/simulate", None, TIMEOUT).expect("request");
    assert_eq!(resp.status, 405);
    let resp = request(&addr, "POST", "/v1/metrics", Some("{}"), TIMEOUT).expect("request");
    assert_eq!(resp.status, 405);
    stop(handle, join);
}
