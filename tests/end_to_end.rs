//! End-to-end integration: trace generation → SUIT policy → system
//! simulator → paper-shaped results, across crate boundaries.

use suit::core::strategy::StrategyParams;
use suit::core::OperatingStrategy;
use suit::hw::{CpuModel, UndervoltLevel};
use suit::sim::analytic::{simulate_emulation, simulate_no_simd};
use suit::sim::engine::{simulate, SimConfig};
use suit::sim::experiment::{run_row, table6_rows};
use suit::trace::profile;

const CAP: Option<u64> = Some(2_000_000_000);

fn cfg(level: UndervoltLevel) -> SimConfig {
    SimConfig::fv_intel(level).with_max_insts(CAP.unwrap())
}

#[test]
fn headline_efficiency_on_xeon() {
    // §9: "run the CPU on a more efficient DVFS curve 72.7 % of the time,
    // increasing the efficiency by 11.0 % with no performance impact".
    let spec = &table6_rows()[5]; // C∞ fV
    let row = run_row(spec, UndervoltLevel::Mv97, CAP);
    let g = row.spec_gmean();
    assert!((0.07..=0.15).contains(&g.eff), "efficiency {:+.3}", g.eff);
    assert!(
        g.perf.abs() < 0.03,
        "perf {:+.3} should be ~neutral",
        g.perf
    );
    let res = row.spec_residency_mean();
    assert!(
        (0.62..=0.82).contains(&res),
        "residency {res:.3} vs paper 0.727"
    );
}

#[test]
fn pinned_benchmark_residencies() {
    let cpu = CpuModel::xeon_4208();
    let c = cfg(UndervoltLevel::Mv97);
    let xz = simulate(&cpu, profile::by_name("557.xz").unwrap(), &c);
    let gcc = simulate(&cpu, profile::by_name("502.gcc").unwrap(), &c);
    let omnetpp = simulate(&cpu, profile::by_name("520.omnetpp").unwrap(), &c);
    assert!(
        (xz.residency() - 0.971).abs() < 0.03,
        "xz {:.3}",
        xz.residency()
    );
    assert!(
        (gcc.residency() - 0.766).abs() < 0.06,
        "gcc {:.3}",
        gcc.residency()
    );
    assert!(
        omnetpp.residency() < 0.10,
        "omnetpp {:.3}",
        omnetpp.residency()
    );
}

#[test]
fn state_time_accounting_is_conserved() {
    let cpu = CpuModel::xeon_4208();
    let r = simulate(
        &cpu,
        profile::by_name("502.gcc").unwrap(),
        &cfg(UndervoltLevel::Mv97),
    );
    let parts = r.time_e + r.time_cf + r.time_cv + r.time_stall;
    let diff = (parts.as_secs_f64() - r.duration.as_secs_f64()).abs();
    assert!(
        diff < 1e-6 * r.duration.as_secs_f64(),
        "accounting leak: {diff}"
    );
}

#[test]
fn every_workload_simulates_on_every_cpu_row() {
    for spec in table6_rows() {
        let row = run_row(&spec, UndervoltLevel::Mv70, Some(300_000_000));
        assert_eq!(row.per_workload.len(), 25, "{}", spec.label);
        for r in &row.per_workload {
            assert!(r.duration.as_secs_f64() > 0.0);
            assert!(r.power() < 0.05, "{}: power {:+.3}", r.workload, r.power());
            assert!(r.perf() > -0.999, "{}", r.workload);
        }
    }
}

#[test]
fn strategies_rank_as_the_paper_argues() {
    // §4.3/§6.6 on a bursty crypto workload: fV ≥ f on performance;
    // emulation is catastrophic.
    let cpu = CpuModel::i9_9900k();
    let nginx = profile::by_name("Nginx").unwrap();
    let level = UndervoltLevel::Mv97;

    let fv = simulate(&cpu, nginx, &cfg(level));
    let mut f_cfg = cfg(level);
    f_cfg.strategy = OperatingStrategy::Frequency;
    let f = simulate(&cpu, nginx, &f_cfg);
    let e = simulate_emulation(&cpu, nginx, level, 0x5017, CAP);

    assert!(
        fv.perf() >= f.perf() - 0.005,
        "fV {:+.3} vs f {:+.3}",
        fv.perf(),
        f.perf()
    );
    assert!(
        e.perf() < -0.9,
        "emulation must collapse on Nginx: {:+.3}",
        e.perf()
    );
}

#[test]
fn amd_parameters_differ_and_are_used() {
    // The long 668 µs switch forces ℬ's Table 7 row (700 µs deadline);
    // running ℬ with Intel parameters must thrash harder.
    let cpu = CpuModel::ryzen_7700x();
    let gcc = profile::by_name("502.gcc").unwrap();
    let mut amd_cfg = SimConfig::f_amd(UndervoltLevel::Mv97).with_max_insts(CAP.unwrap());
    let with_amd = simulate(&cpu, gcc, &amd_cfg);
    amd_cfg.params = StrategyParams::intel();
    let with_intel = simulate(&cpu, gcc, &amd_cfg);
    assert!(
        with_amd.perf() >= with_intel.perf() - 0.002,
        "AMD params {:+.4} vs Intel params {:+.4}",
        with_amd.perf(),
        with_intel.perf()
    );
}

#[test]
fn no_simd_beats_emulation_everywhere() {
    // §6.7: emulation = no-SIMD overhead + call overhead, so no-SIMD wins
    // or ties on every benchmark and both vendors.
    for cpu in [CpuModel::i9_9900k(), CpuModel::ryzen_7700x()] {
        for p in profile::spec_suite() {
            let ns = simulate_no_simd(&cpu, p, UndervoltLevel::Mv97, Some(300_000_000));
            let em = simulate_emulation(&cpu, p, UndervoltLevel::Mv97, 7, Some(300_000_000));
            assert!(em.perf() <= ns.perf() + 1e-9, "{} on {}", p.name, cpu.name);
        }
    }
}

#[test]
fn analytic_residency_predictor_matches_the_engine() {
    // Two independent views of the same mechanism — the §5.1-style trace
    // analyser and the event simulator — must agree on residency for
    // non-thrashing workloads.
    use suit::trace::analyze::{AnalyzeParams, TraceReport};
    use suit::trace::TraceGen;
    let cpu = CpuModel::xeon_4208();
    for name in ["557.xz", "502.gcc", "511.povray", "527.cam4"] {
        let p = profile::by_name(name).unwrap();
        let sim = simulate(&cpu, p, &cfg(UndervoltLevel::Mv97));
        let report = TraceReport::from_bursts(
            TraceGen::new(p, 0x5017).take(3_000),
            AnalyzeParams::xeon(p.ipc),
        );
        assert!(
            (sim.residency() - report.predicted_residency).abs() < 0.10,
            "{name}: engine {:.3} vs predictor {:.3}",
            sim.residency(),
            report.predicted_residency
        );
    }
}

#[test]
fn four_core_shared_domain_halves_the_gain() {
    // §6.4: 𝒜₁ +12 % → 𝒜₄ +5.8 % on a shared DVFS domain.
    let rows = table6_rows();
    let a1 = run_row(&rows[0], UndervoltLevel::Mv97, Some(1_000_000_000));
    let a4 = run_row(&rows[1], UndervoltLevel::Mv97, Some(1_000_000_000));
    let (e1, e4) = (a1.spec_gmean().eff, a4.spec_gmean().eff);
    assert!(
        e4 < e1,
        "shared domain must cost efficiency: {e1:.3} vs {e4:.3}"
    );
    assert!(e4 > 0.0, "but a gain must remain (paper: +5.8 %)");
    assert!(e4 / e1 > 0.25 && e4 / e1 < 0.85, "ratio {:.2}", e4 / e1);
}
