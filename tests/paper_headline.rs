//! The paper's headline claims (abstract + §9), checked end to end against
//! this reproduction. Exact magnitudes depend on modelled substrates; the
//! assertions pin the *shape*: who wins, by roughly what factor, and where
//! the crossovers fall.

use suit::hw::UndervoltLevel;
use suit::sim::experiment::{run_row, table6_rows};

const CAP: Option<u64> = Some(2_000_000_000);

/// Abstract: "a performance overhead of 3.79 % and a CPU efficiency gain
/// of 20.8 % on average on SPEC CPU2017" — these are the *with
/// compile-time optimisation* numbers (§9: "Together with compile-time
/// optimizations for SUIT the CPU efficiency increases by 20.8 % while
/// the performance increases by 3.79 %"): every benchmark compiled
/// without SIMD, running permanently on the efficient curve.
#[test]
fn abstract_headline_with_compile_time_optimisation() {
    let spec = &table6_rows()[5]; // C∞
    let row = run_row(spec, UndervoltLevel::Mv97, CAP);
    let ns = row.spec_no_simd();
    assert!(
        (0.12..=0.26).contains(&ns.eff),
        "no-SIMD efficiency {:+.3} vs paper +20.8 %",
        ns.eff
    );
    assert!(
        (0.0..=0.06).contains(&ns.perf),
        "no-SIMD performance {:+.3} vs paper +3.79 %",
        ns.perf
    );
}

/// §9: "increasing the efficiency by 11.0 % with no performance impact
/// over SPEC CPU2017" for plain SUIT (trap mechanism, no recompilation).
#[test]
fn conclusion_headline_plain_suit() {
    let spec = &table6_rows()[5];
    let row = run_row(spec, UndervoltLevel::Mv97, CAP);
    let g = row.spec_gmean();
    assert!(
        (0.07..=0.15).contains(&g.eff),
        "efficiency {:+.3} vs paper +11 %",
        g.eff
    );
    assert!(g.perf.abs() <= 0.03, "perf {:+.3} vs paper ~0", g.perf);
}

/// Contribution bullet: "a reduction in power consumption by 14 %,
/// resulting in an energy efficiency gain of up to 20 %" — the best rows.
#[test]
fn power_reduction_and_peak_efficiency() {
    let spec = &table6_rows()[0]; // A1 fV
    let row = run_row(spec, UndervoltLevel::Mv97, CAP);
    // Peak per-benchmark efficiency reaches high-teens.
    let best = row
        .per_workload
        .iter()
        .map(|r| r.efficiency())
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        best > 0.14,
        "peak efficiency {best:+.3} vs paper 'up to 20 %'"
    );
    // Deepest per-benchmark power reduction is in the teens.
    let deepest_power = row
        .per_workload
        .iter()
        .map(|r| r.power())
        .fold(f64::INFINITY, f64::min);
    assert!(deepest_power < -0.10, "deepest power {deepest_power:+.3}");
}

/// §6.3: efficiency approximately doubles from −70 mV to −97 mV (the
/// quadratic CMOS power law).
#[test]
fn efficiency_doubles_between_offsets() {
    let spec = &table6_rows()[5];
    let e70 = run_row(spec, UndervoltLevel::Mv70, CAP).spec_gmean().eff;
    let e97 = run_row(spec, UndervoltLevel::Mv97, CAP).spec_gmean().eff;
    let ratio = e97 / e70;
    assert!((1.6..=3.4).contains(&ratio), "ratio {ratio:.2} vs paper ~2");
}

/// Table 6 cross-row ordering at −97 mV: the qualitative winners table.
#[test]
fn table6_row_ordering_holds() {
    let rows = table6_rows();
    let eff = |i: usize| run_row(&rows[i], UndervoltLevel::Mv97, Some(1_000_000_000)).spec_gmean();
    let a1 = eff(0);
    let a4 = eff(1);
    let ae = eff(2);
    let bf = eff(3);
    let cf = eff(5);

    // Per-core p-states (C) ≈ single-core shared (A1): both near +11 %.
    assert!(
        (a1.eff - cf.eff).abs() < 0.04,
        "A1 {:+.3} vs C {:+.3}",
        a1.eff,
        cf.eff
    );
    // Shared domain with 4 cores halves the gain.
    assert!(a4.eff < a1.eff - 0.02);
    // Emulation's gmean is deeply negative (a few catastrophic benchmarks).
    assert!(ae.perf < -0.25, "A∞e perf {:+.3}", ae.perf);
    // B's slow switching keeps it clearly behind the Intel fV rows.
    assert!(bf.eff < cf.eff, "B {:+.3} vs C {:+.3}", bf.eff, cf.eff);
    assert!(
        bf.perf < -0.03,
        "B must pay its 668 µs switches: {:+.3}",
        bf.perf
    );
}

/// §1/§6.1: the hardened IMUL costs 0.03 % on SPEC average and ~1.6 % on
/// 525.x264 — checked against the out-of-order model.
#[test]
fn imul_hardening_cost_is_tiny() {
    let data = suit::ooo::fig14::run(300_000);
    let g = data.geomean(0); // 4 cycles
    let x = data.x264().slowdowns[0];
    assert!(g < 0.005, "geomean {g:+.4} vs paper +0.03 %");
    assert!((0.002..0.04).contains(&x), "x264 {x:+.4} vs paper +1.60 %");
}

/// §6.6: the emulation-viability threshold — workloads below roughly one
/// disabled instruction per 4×10¹⁰ instructions gain from emulation,
/// dense ones collapse.
#[test]
fn emulation_crossover_by_event_rate() {
    use suit::hw::CpuModel;
    use suit::sim::analytic::simulate_emulation;
    use suit::trace::profile;

    let cpu = CpuModel::i9_9900k();
    let mut gains = Vec::new();
    let mut losses = Vec::new();
    for p in profile::spec_suite() {
        let r = simulate_emulation(&cpu, p, UndervoltLevel::Mv97, 5, Some(500_000_000));
        let rate = p.events_per_burst / p.burst_interval_insts; // events per inst
        if r.efficiency() > 0.0 {
            gains.push(rate);
        } else {
            losses.push(rate);
        }
    }
    assert!(!gains.is_empty() && !losses.is_empty());
    // Gaining workloads are sparser (lower event rate) than collapsing
    // ones, comparing geometric means of the rates.
    let gmean = |v: &[f64]| (v.iter().map(|r| r.ln()).sum::<f64>() / v.len() as f64).exp();
    let g = gmean(&gains);
    let l = gmean(&losses);
    assert!(g < l, "gainers must be sparser: {g:e} vs {l:e}");
}
