//! The `#DO` emulation dispatcher.
//!
//! When the OS handles a Disabled-Opcode exception with the *emulation*
//! strategy (§3.4), it decodes the trapped instruction and executes its
//! architectural semantics in software. [`emulate`] is that dispatch: it
//! maps a faultable [`Opcode`] plus operands to the instruction's result.
//!
//! `IMUL` is included for completeness — a CPU *without* SUIT's static
//! hardening (§4.2) would have to trap and emulate it too, which is the
//! ablation the paper argues against (one trap every ~560 instructions).

use suit_isa::{Opcode, Vec128};

use crate::aes::bitsliced;
use crate::simd;

/// Operands for an emulated instruction.
///
/// `a` is the first (destination-source) operand, `b` the second source,
/// `imm8` the immediate where the instruction takes one (`VPSRAD`,
/// `VPCLMULQDQ`). Scalar `IMUL` sources travel in the low 64-bit lanes of
/// `a` and `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EmuOperands {
    /// First source operand.
    pub a: Vec128,
    /// Second source operand (ignored by unary instructions).
    pub b: Vec128,
    /// Immediate byte (ignored by instructions without one).
    pub imm8: u8,
}

impl EmuOperands {
    /// Two-operand constructor.
    pub fn new(a: Vec128, b: Vec128) -> Self {
        EmuOperands { a, b, imm8: 0 }
    }

    /// Two operands plus an immediate.
    pub fn with_imm(a: Vec128, b: Vec128, imm8: u8) -> Self {
        EmuOperands { a, b, imm8 }
    }
}

/// The result of a successful emulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmuResult {
    /// The architectural result value (for `IMUL`, the low 64-bit lane holds
    /// the low half of the product and the high lane the high half, i.e.
    /// the RDX:RAX pair of the one-operand form).
    pub value: Vec128,
}

/// Emulation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmuError {
    /// The opcode is not in the faultable set, so the OS would never see a
    /// `#DO` trap for it and has no emulation for it.
    NotFaultable(Opcode),
}

impl core::fmt::Display for EmuError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EmuError::NotFaultable(op) => {
                write!(
                    f,
                    "opcode {op} is not in the faultable set; nothing to emulate"
                )
            }
        }
    }
}

impl std::error::Error for EmuError {}

/// Emulates one faultable instruction, returning its architectural result.
///
/// # Errors
///
/// Returns [`EmuError::NotFaultable`] if `op` is not in Table 1's faultable
/// set — such instructions never raise `#DO` and reaching the handler with
/// one indicates a simulator bug.
///
/// # Examples
///
/// ```
/// use suit_emu::{emulate, EmuOperands};
/// use suit_isa::{Opcode, Vec128};
///
/// let a = Vec128::from_u64x2([0xF0, 0x00]);
/// let b = Vec128::from_u64x2([0x0F, 0x00]);
/// let r = emulate(Opcode::Vor, EmuOperands::new(a, b)).unwrap();
/// assert_eq!(r.value.to_u64x2()[0], 0xFF);
/// ```
pub fn emulate(op: Opcode, operands: EmuOperands) -> Result<EmuResult, EmuError> {
    let EmuOperands { a, b, imm8 } = operands;
    let value = match op {
        Opcode::Imul => {
            let x = a.to_u64x2()[0];
            let y = b.to_u64x2()[0];
            let wide = (x as u128).wrapping_mul(y as u128);
            Vec128::from_u128(wide)
        }
        Opcode::Aesenc => bitsliced::aesenc(a, b),
        Opcode::Vor => simd::vor(a, b),
        Opcode::Vxor => simd::vxor(a, b),
        Opcode::Vand => simd::vand(a, b),
        Opcode::Vandn => simd::vandn(a, b),
        Opcode::Vpaddq => simd::vpaddq(a, b),
        Opcode::Vpmax => simd::vpmaxsd(a, b),
        Opcode::Vpcmp => simd::vpcmpeqd(a, b),
        Opcode::Vpsrad => simd::vpsrad(a, imm8),
        Opcode::Vsqrtpd => simd::vsqrtpd(a),
        Opcode::Vpclmulqdq => simd::vpclmulqdq(a, b, imm8),
        other => return Err(EmuError::NotFaultable(other)),
    };
    Ok(EmuResult { value })
}

#[cfg(test)]
mod tests {
    use super::*;
    use suit_isa::FaultableSet;

    #[test]
    fn every_faultable_opcode_is_emulatable() {
        let ops = EmuOperands::new(Vec128::from_u128(7), Vec128::from_u128(9));
        for op in FaultableSet::table1().iter() {
            assert!(emulate(op, ops).is_ok(), "{op}");
        }
    }

    #[test]
    fn non_faultable_opcodes_are_rejected() {
        let ops = EmuOperands::default();
        for op in [Opcode::Alu, Opcode::Load, Opcode::Branch, Opcode::Fp] {
            assert_eq!(emulate(op, ops), Err(EmuError::NotFaultable(op)));
        }
    }

    #[test]
    fn imul_produces_full_128_bit_product() {
        let a = Vec128::from_u64x2([u64::MAX, 0]);
        let b = Vec128::from_u64x2([2, 0]);
        let r = emulate(Opcode::Imul, EmuOperands::new(a, b)).unwrap();
        // (2^64 - 1) * 2 = 2^65 - 2: low lane wraps, high lane is 1.
        assert_eq!(r.value.to_u64x2(), [u64::MAX - 1, 1]);
    }

    #[test]
    fn aesenc_goes_through_bitsliced_path() {
        let s = Vec128::from_u128(0x1234);
        let k = Vec128::from_u128(0x5678);
        let r = emulate(Opcode::Aesenc, EmuOperands::new(s, k)).unwrap();
        assert_eq!(r.value, crate::aes::reference::aesenc(s, k));
    }
}
