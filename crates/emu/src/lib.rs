//! # suit-emu
//!
//! The instruction-emulation library of the SUIT reproduction (§3.4 of the
//! paper).
//!
//! When a disabled instruction traps with a `#DO` exception and the
//! operating strategy chooses *emulation* rather than a DVFS-curve switch,
//! the OS maps emulation code into the faulting process and executes the
//! instruction in software. This crate provides that emulation code:
//!
//! * [`aes`] — AES round primitives. [`aes::reference`] is a plain
//!   table-driven FIPS-197 implementation (used for validation and as the
//!   fast-but-leaky baseline); [`aes::bitsliced`] is the side-channel
//!   resilient bit-sliced implementation the paper prescribes for `AESENC`
//!   emulation: the 16 state bytes (of up to 4 blocks in parallel) are
//!   transposed into bit-planes and the S-box is computed as GF(2⁸)
//!   inversion with pure AND/XOR gate logic — no secret-dependent memory
//!   accesses or branches.
//! * [`simd`] — scalar (non-vectorized) emulation of every SIMD opcode in
//!   the faultable set of Table 1: `VOR*`, `VXOR*`, `VAND*`, `VANDN*`,
//!   `VPADDQ`, `VPMAX*`, `VPCMP*`, `VPSRAD`, `VSQRTPD` and `VPCLMULQDQ`.
//! * [`gf`] — constant-time GF(2⁸) field arithmetic and 64-bit carry-less
//!   multiplication, shared by the AES and `VPCLMULQDQ` emulators.
//! * [`gcm`] — AES-GCM (SP 800-38D) assembled from the emulated
//!   primitives: the bit-sliced keystream plus GHASH through the emulated
//!   `VPCLMULQDQ` — functionally the crypto the paper's Nginx workload
//!   executes per HTTPS request.
//! * [`handler`] — the `#DO` emulation dispatcher: given a faultable opcode
//!   and its operands, computes the architectural result exactly as the
//!   hardware instruction would.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod gcm;
pub mod gf;
pub mod handler;
pub mod simd;

pub use handler::{emulate, EmuError, EmuOperands, EmuResult};
