//! Constant-time GF(2⁸) arithmetic and carry-less multiplication.
//!
//! AES's S-box is the multiplicative inverse in GF(2⁸) (modulo the
//! Rijndael polynomial x⁸+x⁴+x³+x+1) followed by an affine transform. The
//! bit-sliced AES emulator computes the inverse as x²⁵⁴ with an addition
//! chain of constant-time multiplications, and the `VPCLMULQDQ` emulator
//! needs a 64×64→128-bit carry-less multiply. Both live here.
//!
//! Everything in this module is branch-free on secret data and performs no
//! data-dependent memory accesses.

/// The Rijndael reduction polynomial x⁸ + x⁴ + x³ + x + 1 (without the x⁸
/// term, as used during byte-wise reduction).
pub const AES_POLY: u8 = 0x1b;

/// Multiplies two elements of GF(2⁸) modulo the Rijndael polynomial, in
/// constant time (no tables, no secret-dependent branches).
pub fn gf_mul(a: u8, b: u8) -> u8 {
    let mut a = a as u32;
    let mut b = b as u32;
    let mut acc = 0u32;
    for _ in 0..8 {
        // Add `a` if the low bit of `b` is set, via a mask.
        acc ^= a & 0u32.wrapping_sub(b & 1);
        b >>= 1;
        // xtime: multiply `a` by x, reducing if bit 7 was set.
        let carry = 0u32.wrapping_sub((a >> 7) & 1);
        a = ((a << 1) & 0xff) ^ (carry & AES_POLY as u32);
    }
    acc as u8
}

/// Squares an element of GF(2⁸) (squaring is linear over GF(2)).
#[inline]
pub fn gf_square(a: u8) -> u8 {
    gf_mul(a, a)
}

/// The multiplicative inverse in GF(2⁸), with `inv(0) = 0` as AES requires.
///
/// Computed as a²⁵⁴ via the addition chain
/// `2, 3, 6, 12, 15, 240, 252, 254`, which costs 11 multiplications and is
/// constant-time because [`gf_mul`] is.
pub fn gf_inv(a: u8) -> u8 {
    let x2 = gf_square(a); // a^2
    let x3 = gf_mul(x2, a); // a^3
    let x6 = gf_square(x3); // a^6
    let x12 = gf_square(x6); // a^12
    let x15 = gf_mul(x12, x3); // a^15
    let mut x240 = x15; // a^240 = (a^15)^16
    for _ in 0..4 {
        x240 = gf_square(x240);
    }
    let x252 = gf_mul(x240, x12); // a^252
    gf_mul(x252, x2) // a^254 = a^-1 (and 0 for a = 0)
}

/// The AES S-box affine transform applied to `x` (which should already be
/// the field inverse): `y = x ⊕ rol(x,1) ⊕ rol(x,2) ⊕ rol(x,3) ⊕ rol(x,4) ⊕ 0x63`.
#[inline]
pub fn sbox_affine(x: u8) -> u8 {
    x ^ x.rotate_left(1) ^ x.rotate_left(2) ^ x.rotate_left(3) ^ x.rotate_left(4) ^ 0x63
}

/// The AES S-box computed arithmetically (inverse + affine), constant-time.
#[inline]
pub fn sbox(a: u8) -> u8 {
    sbox_affine(gf_inv(a))
}

/// The inverse AES S-box (inverse affine transform, then field inverse).
pub fn inv_sbox(a: u8) -> u8 {
    // Inverse affine: y = rol(x,1) ⊕ rol(x,3) ⊕ rol(x,6) ⊕ 0x05.
    let x = a.rotate_left(1) ^ a.rotate_left(3) ^ a.rotate_left(6) ^ 0x05;
    gf_inv(x)
}

/// Carry-less (polynomial over GF(2)) multiplication of two 64-bit values,
/// producing the full 128-bit product. This is the scalar emulation core of
/// `VPCLMULQDQ`.
///
/// Constant-time: the loop trip count is fixed and selection uses masks.
pub fn clmul64(a: u64, b: u64) -> u128 {
    let a = a as u128;
    let mut acc = 0u128;
    for i in 0..64 {
        let mask = 0u128.wrapping_sub(((b >> i) & 1) as u128);
        acc ^= (a << i) & mask;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_identity_and_zero() {
        for a in 0..=255u8 {
            assert_eq!(gf_mul(a, 1), a);
            assert_eq!(gf_mul(1, a), a);
            assert_eq!(gf_mul(a, 0), 0);
        }
    }

    #[test]
    fn mul_is_commutative() {
        for a in (0..=255u8).step_by(7) {
            for b in 0..=255u8 {
                assert_eq!(gf_mul(a, b), gf_mul(b, a));
            }
        }
    }

    #[test]
    fn xtime_known_values() {
        // {57} · {02} = {ae}, {57} · {04} = {47}, {57} · {08} = {8e},
        // {57} · {10} = {07} — the worked example from FIPS-197 §4.2.1.
        assert_eq!(gf_mul(0x57, 0x02), 0xae);
        assert_eq!(gf_mul(0x57, 0x04), 0x47);
        assert_eq!(gf_mul(0x57, 0x08), 0x8e);
        assert_eq!(gf_mul(0x57, 0x10), 0x07);
        // {57} · {13} = {fe} (FIPS-197 example result).
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
    }

    #[test]
    fn inverse_really_inverts() {
        assert_eq!(gf_inv(0), 0);
        for a in 1..=255u8 {
            let inv = gf_inv(a);
            assert_eq!(gf_mul(a, inv), 1, "a = {a:#04x}");
        }
    }

    #[test]
    fn sbox_known_values() {
        assert_eq!(sbox(0x00), 0x63);
        assert_eq!(sbox(0x01), 0x7c);
        // S-box is a permutation.
        let mut seen = [false; 256];
        for a in 0..=255u8 {
            let s = sbox(a) as usize;
            assert!(!seen[s]);
            seen[s] = true;
        }
    }

    #[test]
    fn inv_sbox_inverts_sbox() {
        for a in 0..=255u8 {
            assert_eq!(inv_sbox(sbox(a)), a, "a = {a:#04x}");
        }
    }

    #[test]
    fn clmul_basics() {
        assert_eq!(clmul64(0, 0xdead_beef), 0);
        assert_eq!(clmul64(1, 0xdead_beef), 0xdead_beef);
        assert_eq!(clmul64(2, 0xdead_beef), 0xdead_beef << 1);
        // (x ⊕ 1)(x ⊕ 1) = x² ⊕ 1 over GF(2).
        assert_eq!(clmul64(0b11, 0b11), 0b101);
        // Top bits spill into the high half.
        assert_eq!(clmul64(1 << 63, 1 << 63), 1u128 << 126);
    }

    #[test]
    fn clmul_distributes_over_xor() {
        let a = 0x0123_4567_89ab_cdef;
        let b = 0xfedc_ba98_7654_3210;
        let c = 0x0f0f_f0f0_aaaa_5555;
        assert_eq!(clmul64(a, b ^ c), clmul64(a, b) ^ clmul64(a, c));
    }
}
