//! Scalar (non-vectorized) emulation of the faultable SIMD instructions.
//!
//! §3.4: *"SUIT emulates instructions like VOR or VPCMP with non-vectorized
//! alternatives."* Each function here implements the architectural
//! semantics of one faultable-set opcode family over [`Vec128`] using only
//! scalar integer/float operations — precisely the code the OS maps into a
//! user process to execute after a `#DO` trap.
//!
//! Lane interpretations follow the Intel SDM. Where the paper's Table 1
//! names a family (`VPCMP*`, `VPMAX*`), the most common family members are
//! provided and the family dispatcher in [`crate::handler`] picks the
//! canonical one.

use suit_isa::Vec128;

use crate::gf::clmul64;

/// `VPOR` / `VOR*`: bitwise OR.
#[inline]
pub fn vor(a: Vec128, b: Vec128) -> Vec128 {
    a | b
}

/// `VPXOR` / `VXOR*`: bitwise XOR.
#[inline]
pub fn vxor(a: Vec128, b: Vec128) -> Vec128 {
    a ^ b
}

/// `VPAND` / `VAND*`: bitwise AND.
#[inline]
pub fn vand(a: Vec128, b: Vec128) -> Vec128 {
    a & b
}

/// `VPANDN` / `VANDN*`: bitwise AND-NOT — note the x86 operand order:
/// `dst = NOT(a) AND b`.
#[inline]
pub fn vandn(a: Vec128, b: Vec128) -> Vec128 {
    !a & b
}

/// `VPADDQ`: lane-wise wrapping addition of the two 64-bit lanes.
pub fn vpaddq(a: Vec128, b: Vec128) -> Vec128 {
    let [a0, a1] = a.to_u64x2();
    let [b0, b1] = b.to_u64x2();
    Vec128::from_u64x2([a0.wrapping_add(b0), a1.wrapping_add(b1)])
}

/// `VPMAXSD`: lane-wise signed 32-bit maximum.
pub fn vpmaxsd(a: Vec128, b: Vec128) -> Vec128 {
    let al = a.to_i32x4();
    let bl = b.to_i32x4();
    Vec128::from_i32x4([
        al[0].max(bl[0]),
        al[1].max(bl[1]),
        al[2].max(bl[2]),
        al[3].max(bl[3]),
    ])
}

/// `VPMAXUB`: byte-wise unsigned maximum.
pub fn vpmaxub(a: Vec128, b: Vec128) -> Vec128 {
    let mut out = [0u8; 16];
    let ab = a.to_bytes();
    let bb = b.to_bytes();
    for i in 0..16 {
        out[i] = ab[i].max(bb[i]);
    }
    Vec128::from_bytes(out)
}

/// `VPCMPEQD`: lane-wise 32-bit equality compare; equal lanes become
/// all-ones, unequal lanes all-zeros.
pub fn vpcmpeqd(a: Vec128, b: Vec128) -> Vec128 {
    let al = a.to_u32x4();
    let bl = b.to_u32x4();
    let mut out = [0u32; 4];
    for i in 0..4 {
        out[i] = if al[i] == bl[i] { u32::MAX } else { 0 };
    }
    Vec128::from_u32x4(out)
}

/// `VPCMPGTD`: lane-wise signed 32-bit greater-than compare.
pub fn vpcmpgtd(a: Vec128, b: Vec128) -> Vec128 {
    let al = a.to_i32x4();
    let bl = b.to_i32x4();
    let mut out = [0u32; 4];
    for i in 0..4 {
        out[i] = if al[i] > bl[i] { u32::MAX } else { 0 };
    }
    Vec128::from_u32x4(out)
}

/// `VPSRAD xmm, imm8`: lane-wise 32-bit arithmetic shift right. Counts
/// above 31 fill each lane with its sign bit (Intel SDM behaviour).
pub fn vpsrad(a: Vec128, count: u8) -> Vec128 {
    let shift = u32::from(count).min(31);
    let al = a.to_i32x4();
    Vec128::from_i32x4([
        al[0] >> shift,
        al[1] >> shift,
        al[2] >> shift,
        al[3] >> shift,
    ])
}

/// `VSQRTPD`: lane-wise double-precision square root. Negative inputs
/// produce NaN, as the hardware instruction does (we do not model the
/// `#IE` floating-point exception flags).
pub fn vsqrtpd(a: Vec128) -> Vec128 {
    let [l0, l1] = a.to_f64x2();
    Vec128::from_f64x2([l0.sqrt(), l1.sqrt()])
}

/// `VPCLMULQDQ xmm1, xmm2, imm8`: carry-less multiplication of one 64-bit
/// lane of each source. Bit 0 of `imm8` selects the lane of `a`, bit 4 the
/// lane of `b`.
pub fn vpclmulqdq(a: Vec128, b: Vec128, imm8: u8) -> Vec128 {
    let al = a.to_u64x2();
    let bl = b.to_u64x2();
    let x = al[(imm8 & 1) as usize];
    let y = bl[((imm8 >> 4) & 1) as usize];
    Vec128::from_u128(clmul64(x, y))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(lo: u64, hi: u64) -> Vec128 {
        Vec128::from_u64x2([lo, hi])
    }

    #[test]
    fn bitwise_ops_match_definitions() {
        let a = v(0xF0F0, 0xAAAA);
        let b = v(0xFF00, 0x5555);
        assert_eq!(vor(a, b), a | b);
        assert_eq!(vxor(a, b), a ^ b);
        assert_eq!(vand(a, b), a & b);
        // x86 ANDN is NOT(first) AND second.
        assert_eq!(vandn(a, b).to_u64x2()[0], !0xF0F0u64 & 0xFF00);
    }

    #[test]
    fn vpaddq_wraps() {
        let a = v(u64::MAX, 1);
        let b = v(1, 2);
        assert_eq!(vpaddq(a, b).to_u64x2(), [0, 3]);
    }

    #[test]
    fn vpmaxsd_is_signed() {
        let a = Vec128::from_i32x4([-1, 5, i32::MIN, 0]);
        let b = Vec128::from_i32x4([0, -5, i32::MAX, 0]);
        assert_eq!(vpmaxsd(a, b).to_i32x4(), [0, 5, i32::MAX, 0]);
    }

    #[test]
    fn vpmaxub_is_unsigned() {
        let mut ab = [0u8; 16];
        let mut bb = [0u8; 16];
        ab[0] = 0xFF; // 255 unsigned, -1 signed
        bb[0] = 0x01;
        assert_eq!(
            vpmaxub(Vec128::from_bytes(ab), Vec128::from_bytes(bb)).to_bytes()[0],
            0xFF
        );
    }

    #[test]
    fn compares_produce_masks() {
        let a = Vec128::from_i32x4([1, 2, 3, -4]);
        let b = Vec128::from_i32x4([1, 3, 2, 4]);
        assert_eq!(vpcmpeqd(a, b).to_u32x4(), [u32::MAX, 0, 0, 0]);
        assert_eq!(vpcmpgtd(a, b).to_u32x4(), [0, 0, u32::MAX, 0]);
    }

    #[test]
    fn vpsrad_saturates_count_at_31() {
        let a = Vec128::from_i32x4([-8, 8, i32::MIN, 1]);
        assert_eq!(vpsrad(a, 2).to_i32x4(), [-2, 2, i32::MIN >> 2, 0]);
        // Count ≥ 32 behaves like 31: all sign bits.
        assert_eq!(vpsrad(a, 200).to_i32x4(), [-1, 0, -1, 0]);
    }

    #[test]
    fn vsqrtpd_lanes() {
        let a = Vec128::from_f64x2([4.0, 9.0]);
        assert_eq!(vsqrtpd(a).to_f64x2(), [2.0, 3.0]);
        let n = vsqrtpd(Vec128::from_f64x2([-1.0, 0.0])).to_f64x2();
        assert!(n[0].is_nan());
        assert_eq!(n[1], 0.0);
    }

    #[test]
    fn vpclmulqdq_lane_selection() {
        let a = v(3, 5); // low = 0b11, high = 0b101
        let b = v(3, 7);
        // low × low: (x+1)² = x²+1 = 0b101.
        assert_eq!(vpclmulqdq(a, b, 0x00).as_u128(), 0b101);
        // high(a) × low(b): 0b101 ⊗ 0b11 = 0b1111.
        assert_eq!(vpclmulqdq(a, b, 0x01).as_u128(), 0b1111);
        // low(a) × high(b): 0b11 ⊗ 0b111 = 0b1001 ... compute: (x+1)(x²+x+1) = x³+1.
        assert_eq!(vpclmulqdq(a, b, 0x10).as_u128(), 0b1001);
    }
}
