//! AES-GCM (NIST SP 800-38D) — the cipher the paper's Nginx workload
//! actually runs.
//!
//! §6.2 describes Nginx serving 100 kB files over HTTPS: each request is
//! tens of thousands of `AESENC` rounds (AES-CTR keystream) plus
//! `VPCLMULQDQ` carry-less multiplies (the GHASH authenticator). This
//! module implements the full mode on top of the emulation primitives:
//!
//! * the keystream through [`crate::aes`] (bit-sliced, constant time);
//! * GHASH two ways — a bit-by-bit reference (`ghash_mul_ref`) and the
//!   production path built on the emulated `VPCLMULQDQ`
//!   ([`ghash_mul_clmul`]), cross-validated against each other and the
//!   NIST vectors.
//!
//! GCM's GF(2¹²⁸) uses *reflected* bit order: the first bit of the block
//! is the polynomial's constant term.

use suit_isa::Vec128;

use crate::aes::{bitsliced, Aes128Key};
use crate::simd::vpclmulqdq;

/// A GCM block as a 128-bit big-endian integer (byte 0 = most significant),
/// the natural orientation for the NIST bit numbering.
fn to_be(v: Vec128) -> u128 {
    u128::from_be_bytes(v.to_bytes())
}

fn from_be(v: u128) -> Vec128 {
    Vec128::from_bytes(v.to_be_bytes())
}

/// GHASH multiplication, bit-serial reference (SP 800-38D algorithm 1).
pub fn ghash_mul_ref(x: Vec128, y: Vec128) -> Vec128 {
    const R: u128 = 0xe1 << 120;
    let x = to_be(x);
    let mut v = to_be(y);
    let mut z: u128 = 0;
    for i in 0..128 {
        if (x >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    from_be(z)
}

/// Reverses the bits of a 128-bit value.
fn bit_reflect(v: u128) -> u128 {
    let mut out = 0u128;
    for i in 0..128 {
        out |= ((v >> i) & 1) << (127 - i);
    }
    out
}

/// GHASH multiplication through the emulated `VPCLMULQDQ` — the
/// instruction path an AES-GCM implementation takes on real hardware.
///
/// Strategy: reflect both operands into plain polynomial order, do a
/// 128×128→256 carry-less multiply out of four `VPCLMULQDQ` invocations,
/// reduce modulo x¹²⁸ + x⁷ + x² + x + 1, and reflect back.
pub fn ghash_mul_clmul(x: Vec128, y: Vec128) -> Vec128 {
    let a = bit_reflect(to_be(x));
    let b = bit_reflect(to_be(y));
    let av = Vec128::from_u128(a);
    let bv = Vec128::from_u128(b);

    // Schoolbook 128×128 from 64×64 pieces, selecting halves via imm8.
    let lo = vpclmulqdq(av, bv, 0x00).as_u128(); // a_lo ⊗ b_lo
    let hi = vpclmulqdq(av, bv, 0x11).as_u128(); // a_hi ⊗ b_hi
    let mid = vpclmulqdq(av, bv, 0x01).as_u128() ^ vpclmulqdq(av, bv, 0x10).as_u128();

    // 256-bit product in (hi256, lo256).
    let lo256 = lo ^ (mid << 64);
    let hi256 = hi ^ (mid >> 64);

    // Reduce modulo x^128 + x^7 + x^2 + x + 1: fold the high 128 bits
    // twice (each fold multiplies by x^7 + x^2 + x + 1 at the right shift).
    let fold = |h: u128| -> (u128, u128) {
        // h · x^128 ≡ h·x^7 ⊕ h·x^2 ⊕ h·x ⊕ h
        let l = (h << 7) ^ (h << 2) ^ (h << 1) ^ h;
        let c = (h >> (128 - 7)) ^ (h >> (128 - 2)) ^ (h >> (128 - 1));
        (l, c)
    };
    let (l1, c1) = fold(hi256);
    let (l2, c2) = fold(c1);
    debug_assert_eq!(c2, 0, "second fold clears the carry");
    let _ = c2;
    let reduced = lo256 ^ l1 ^ l2;

    from_be(bit_reflect(reduced))
}

/// GHASH over a byte stream with hash key `h` (blocks are zero-padded).
fn ghash(h: Vec128, aad: &[u8], ct: &[u8]) -> Vec128 {
    let mut y = Vec128::ZERO;
    let absorb = |data: &[u8], y: &mut Vec128| {
        for chunk in data.chunks(16) {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            *y = ghash_mul_clmul(*y ^ Vec128::from_bytes(block), h);
        }
    };
    absorb(aad, &mut y);
    absorb(ct, &mut y);
    // Length block: 64-bit bit lengths of AAD and ciphertext.
    let mut len_block = [0u8; 16];
    len_block[..8].copy_from_slice(&((aad.len() as u64) * 8).to_be_bytes());
    len_block[8..].copy_from_slice(&((ct.len() as u64) * 8).to_be_bytes());
    ghash_mul_clmul(y ^ Vec128::from_bytes(len_block), h)
}

/// The pre-counter block J0 for a 96-bit IV: `IV || 0^31 || 1`.
fn j0_block(iv: &[u8; 12]) -> Vec128 {
    let mut bytes = [0u8; 16];
    bytes[..12].copy_from_slice(iv);
    bytes[15] = 1;
    Vec128::from_bytes(bytes)
}

/// Increments the rightmost 32 bits of a counter block (inc₃₂).
fn inc32(block: Vec128) -> Vec128 {
    let mut bytes = block.to_bytes();
    let ctr = u32::from_be_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]).wrapping_add(1);
    bytes[12..].copy_from_slice(&ctr.to_be_bytes());
    Vec128::from_bytes(bytes)
}

/// AES-128-GCM authenticated encryption.
///
/// `iv` must be the standard 96-bit nonce. Returns `(ciphertext, tag)`.
///
/// ```
/// use suit_emu::aes::Aes128Key;
/// use suit_emu::gcm::{gcm_encrypt, gcm_decrypt};
///
/// let key = Aes128Key::expand(*b"an aes-128 key!!");
/// let (ct, tag) = gcm_encrypt(&key, b"unique nonce", b"hdr", b"hello");
/// let pt = gcm_decrypt(&key, b"unique nonce", b"hdr", &ct, tag).unwrap();
/// assert_eq!(pt, b"hello");
/// ```
pub fn gcm_encrypt(
    key: &Aes128Key,
    iv: &[u8; 12],
    aad: &[u8],
    plaintext: &[u8],
) -> (Vec<u8>, Vec128) {
    let h = bitsliced::encrypt128(key, Vec128::ZERO);
    let j0 = j0_block(iv);

    // CTR keystream starting at inc32(J0).
    let mut ct = Vec::with_capacity(plaintext.len());
    apply_ctr_keystream(key, j0, plaintext, &mut ct);

    let s = ghash(h, aad, &ct);
    let tag = s ^ bitsliced::encrypt128(key, j0);
    (ct, tag)
}

/// XORs the CTR keystream (counters inc32(j0), inc32²(j0), …) over
/// `input`, appending to `out` — batching eight counter blocks per
/// bit-sliced kernel invocation (the wide lanes are the whole point of
/// the bit-sliced layout: one transpose pays for eight blocks).
fn apply_ctr_keystream(key: &Aes128Key, j0: Vec128, input: &[u8], out: &mut Vec<u8>) {
    let mut counter = j0;
    for octet in input.chunks(128) {
        let mut ctrs = [Vec128::ZERO; 8];
        for c in &mut ctrs {
            counter = inc32(counter);
            *c = counter;
        }
        let ks = bitsliced::encrypt128_x8(key, ctrs);
        for (i, &byte) in octet.iter().enumerate() {
            out.push(byte ^ ks[i / 16].to_bytes()[i % 16]);
        }
    }
}

/// AES-128-GCM authenticated decryption. Returns the plaintext or `None`
/// on tag mismatch.
pub fn gcm_decrypt(
    key: &Aes128Key,
    iv: &[u8; 12],
    aad: &[u8],
    ciphertext: &[u8],
    tag: Vec128,
) -> Option<Vec<u8>> {
    let h = bitsliced::encrypt128(key, Vec128::ZERO);
    let j0 = j0_block(iv);

    let expected = ghash(h, aad, ciphertext) ^ bitsliced::encrypt128(key, j0);
    // Constant-time comparison (the emulation path must not reintroduce a
    // tag-comparison oracle).
    if (expected ^ tag).count_ones() != 0 {
        return None;
    }

    let mut pt = Vec::with_capacity(ciphertext.len());
    apply_ctr_keystream(key, j0, ciphertext, &mut pt);
    Some(pt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zero_key() -> Aes128Key {
        Aes128Key::expand([0u8; 16])
    }

    /// NIST GCM test case 1: zero key, zero IV, empty everything.
    #[test]
    fn nist_test_case_1() {
        let (ct, tag) = gcm_encrypt(&zero_key(), &[0u8; 12], &[], &[]);
        assert!(ct.is_empty());
        assert_eq!(
            tag.to_bytes(),
            [
                0x58, 0xe2, 0xfc, 0xce, 0xfa, 0x7e, 0x30, 0x61, 0x36, 0x7f, 0x1d, 0x57, 0xa4, 0xe7,
                0x45, 0x5a
            ]
        );
    }

    /// NIST GCM test case 2: zero key/IV, one zero plaintext block.
    #[test]
    fn nist_test_case_2() {
        let (ct, tag) = gcm_encrypt(&zero_key(), &[0u8; 12], &[], &[0u8; 16]);
        assert_eq!(
            ct,
            vec![
                0x03, 0x88, 0xda, 0xce, 0x60, 0xb6, 0xa3, 0x92, 0xf3, 0x28, 0xc2, 0xb9, 0x71, 0xb2,
                0xfe, 0x78
            ]
        );
        assert_eq!(
            tag.to_bytes(),
            [
                0xab, 0x6e, 0x47, 0xd4, 0x2c, 0xec, 0x13, 0xbd, 0xf5, 0x3a, 0x67, 0xb2, 0x12, 0x57,
                0xbd, 0xdf
            ]
        );
    }

    #[test]
    fn ghash_clmul_matches_reference() {
        let mut x = Vec128::from_u128(1);
        let mut y = Vec128::from_u128(0x1234_5678_9abc_def0);
        for _ in 0..50 {
            assert_eq!(ghash_mul_clmul(x, y), ghash_mul_ref(x, y));
            // Evolve pseudo-randomly through the field itself.
            x = ghash_mul_ref(x, Vec128::from_u128(0x1b3));
            y = ghash_mul_ref(y, Vec128::from_u128(0x9e3779b9));
        }
    }

    #[test]
    fn ghash_identity_element() {
        // In reflected GCM order, the polynomial "1" is the MSB-first block
        // 0x80000…0.
        let one = from_be(1u128 << 127);
        let x = Vec128::from_u128(0xdead_beef_cafe_f00d);
        assert_eq!(ghash_mul_ref(x, one), x);
        assert_eq!(ghash_mul_clmul(x, one), x);
    }

    #[test]
    fn roundtrip_with_aad_and_partial_blocks() {
        let key = Aes128Key::expand(*b"sixteen byte key");
        let iv = *b"unique-nonce";
        let aad = b"header";
        let msg = b"The quick brown fox jumps over the lazy dog";
        let (ct, tag) = gcm_encrypt(&key, &iv, aad, msg);
        assert_eq!(ct.len(), msg.len());
        assert_ne!(&ct[..], &msg[..]);
        let pt = gcm_decrypt(&key, &iv, aad, &ct, tag).expect("tag verifies");
        assert_eq!(pt, msg);
    }

    #[test]
    fn tampering_is_detected() {
        let key = Aes128Key::expand([7u8; 16]);
        let iv = [9u8; 12];
        let (mut ct, tag) = gcm_encrypt(&key, &iv, b"", b"attack at dawn!!");
        ct[3] ^= 1;
        assert!(gcm_decrypt(&key, &iv, b"", &ct, tag).is_none());
        // Wrong AAD also fails.
        let (ct2, tag2) = gcm_encrypt(&key, &iv, b"a", b"attack at dawn!!");
        assert!(gcm_decrypt(&key, &iv, b"b", &ct2, tag2).is_none());
    }

    #[test]
    fn counter_increment_wraps_32_bits() {
        let mut block = [0u8; 16];
        block[12..].copy_from_slice(&u32::MAX.to_be_bytes());
        block[0] = 0xAA;
        let next = inc32(Vec128::from_bytes(block)).to_bytes();
        assert_eq!(&next[12..], &[0, 0, 0, 0]);
        assert_eq!(next[0], 0xAA, "upper 96 bits untouched");
    }
}
