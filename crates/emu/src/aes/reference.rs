//! Table-driven reference AES (the correctness oracle).
//!
//! This implementation follows FIPS-197 directly: SubBytes through a
//! 256-entry lookup table, ShiftRows as a byte permutation, MixColumns as
//! the usual GF(2⁸) matrix product. It is *not* side-channel resilient —
//! S-box lookups index memory with secret data — which is exactly why the
//! paper's emulation path uses the bit-sliced variant instead. The
//! reference version exists as the oracle the bit-sliced implementation is
//! verified against, and as the baseline in the emulation cost benches.

use super::{encrypt128_with, Aes128Key, SHIFT_ROWS_SRC};
use crate::gf;
use std::sync::OnceLock;
use suit_isa::Vec128;

/// The AES S-box as a lookup table (computed once from the arithmetic
/// definition, then used with plain indexing).
fn sbox_table() -> &'static [u8; 256] {
    static TABLE: OnceLock<[u8; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u8; 256];
        for (i, e) in t.iter_mut().enumerate() {
            *e = gf::sbox(i as u8);
        }
        t
    })
}

/// SubBytes over all 16 state bytes.
fn sub_bytes(state: [u8; 16]) -> [u8; 16] {
    let sbox = sbox_table();
    let mut out = [0u8; 16];
    for (o, s) in out.iter_mut().zip(state) {
        *o = sbox[s as usize];
    }
    out
}

/// ShiftRows as a byte permutation.
fn shift_rows(state: [u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for (b, o) in out.iter_mut().enumerate() {
        *o = state[SHIFT_ROWS_SRC[b]];
    }
    out
}

/// MixColumns over all four columns.
fn mix_columns(state: [u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for c in 0..4 {
        let col = &state[4 * c..4 * c + 4];
        let x2 = |v: u8| gf::gf_mul(v, 2);
        let x3 = |v: u8| gf::gf_mul(v, 3);
        out[4 * c] = x2(col[0]) ^ x3(col[1]) ^ col[2] ^ col[3];
        out[4 * c + 1] = col[0] ^ x2(col[1]) ^ x3(col[2]) ^ col[3];
        out[4 * c + 2] = col[0] ^ col[1] ^ x2(col[2]) ^ x3(col[3]);
        out[4 * c + 3] = x3(col[0]) ^ col[1] ^ col[2] ^ x2(col[3]);
    }
    out
}

/// One middle AES round: exactly the architectural semantics of
/// `AESENC state, round_key`.
pub fn aesenc(state: Vec128, round_key: Vec128) -> Vec128 {
    let s = mix_columns(sub_bytes(shift_rows(state.to_bytes())));
    Vec128::from_bytes(s) ^ round_key
}

/// The final AES round (`AESENCLAST`): like [`aesenc`] but without
/// MixColumns.
pub fn aesenclast(state: Vec128, round_key: Vec128) -> Vec128 {
    let s = sub_bytes(shift_rows(state.to_bytes()));
    Vec128::from_bytes(s) ^ round_key
}

/// Full AES-128 block encryption composed from [`aesenc`]/[`aesenclast`],
/// as AES-NI software does.
pub fn encrypt128(key: &Aes128Key, block: Vec128) -> Vec128 {
    encrypt128_with(key, block, aesenc, aesenclast)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix C.1: key 000102...0f, plaintext 00112233...ff.
    #[test]
    fn fips197_c1_vector() {
        let key = Aes128Key::expand([
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ]);
        let pt = Vec128::from_bytes([
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ]);
        let ct = encrypt128(&key, pt);
        assert_eq!(
            ct.to_bytes(),
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a
            ]
        );
    }

    /// NIST SP 800-38A ECB-AES128 KAT, first block.
    #[test]
    fn sp800_38a_ecb_vector() {
        let key = Aes128Key::expand([
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ]);
        let pt = Vec128::from_bytes([
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a,
        ]);
        let ct = encrypt128(&key, pt);
        assert_eq!(
            ct.to_bytes(),
            [
                0x3a, 0xd7, 0x7b, 0xb4, 0x0d, 0x7a, 0x36, 0x60, 0xa8, 0x9e, 0xca, 0xf3, 0x24, 0x66,
                0xef, 0x97
            ]
        );
    }

    #[test]
    fn aesenc_with_zero_key_is_pure_round() {
        // With a zero round key, AESENC is just the round function; applying
        // it to the zero state gives MixColumns(0x63 everywhere) — every
        // column identical, and rows repeat with the column-major layout.
        let out = aesenc(Vec128::ZERO, Vec128::ZERO).to_bytes();
        for c in 1..4 {
            assert_eq!(out[4 * c..4 * c + 4], out[0..4]);
        }
        // MixColumns of a uniform column [s,s,s,s] gives (2⊕3⊕1⊕1)·s = s.
        assert_eq!(out[0], 0x63);
    }

    #[test]
    fn mix_columns_fixed_point_uniform_column() {
        // A uniform column is a MixColumns fixed point.
        let st = [0xAB; 16];
        assert_eq!(mix_columns(st), st);
    }
}
