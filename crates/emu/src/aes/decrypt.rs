//! AES decryption — the `AESDEC`/`AESDECLAST` counterparts.
//!
//! The faultable set of Table 1 names `AESENC`, but a real OS emulation
//! library must cover the whole AES-NI family: a server that decrypts TLS
//! records executes `AESDEC` just as often as it encrypts. The inverse
//! round primitives follow the Intel SDM:
//!
//! ```text
//! AESDEC:     state = InvMixColumns(AddRoundKey⁻¹-ordered state)
//!             — precisely: InvShiftRows → InvSubBytes → InvMixColumns →
//!               XOR round key
//! AESDECLAST: the same without InvMixColumns
//! ```
//!
//! Decryption uses the *equivalent inverse cipher* key schedule: round
//! keys in reverse order with `InvMixColumns` applied to the middle ones
//! (SDM `AESIMC`), so `AESDEC` chains mirror `AESENC` chains.

use super::{Aes128Key, SHIFT_ROWS_SRC};
use crate::gf;
use suit_isa::Vec128;

/// The inverse ShiftRows byte permutation: output byte index → input byte
/// index (row r rotates *right* by r columns).
pub const INV_SHIFT_ROWS_SRC: [usize; 16] = inv_shift_rows_table();

const fn inv_shift_rows_table() -> [usize; 16] {
    // Invert SHIFT_ROWS_SRC: if ShiftRows reads new[b] = old[src[b]], then
    // InvShiftRows reads new[src[b]] = old[b], i.e. inv[src[b]] = b… as a
    // source table: inv_src[dst] = s where src[s] = dst.
    let mut inv = [0usize; 16];
    let mut b = 0;
    while b < 16 {
        inv[SHIFT_ROWS_SRC[b]] = b;
        b += 1;
    }
    inv
}

fn inv_shift_rows(state: [u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    let mut b = 0;
    while b < 16 {
        out[b] = state[INV_SHIFT_ROWS_SRC[b]];
        b += 1;
    }
    out
}

fn inv_sub_bytes(state: [u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for (o, s) in out.iter_mut().zip(state) {
        *o = gf::inv_sbox(s);
    }
    out
}

/// InvMixColumns over one 16-byte state (matrix {0e,0b,0d,09}).
pub fn inv_mix_columns(state: [u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for c in 0..4 {
        let col = &state[4 * c..4 * c + 4];
        let m = |v: u8, k: u8| gf::gf_mul(v, k);
        out[4 * c] = m(col[0], 0x0e) ^ m(col[1], 0x0b) ^ m(col[2], 0x0d) ^ m(col[3], 0x09);
        out[4 * c + 1] = m(col[0], 0x09) ^ m(col[1], 0x0e) ^ m(col[2], 0x0b) ^ m(col[3], 0x0d);
        out[4 * c + 2] = m(col[0], 0x0d) ^ m(col[1], 0x09) ^ m(col[2], 0x0e) ^ m(col[3], 0x0b);
        out[4 * c + 3] = m(col[0], 0x0b) ^ m(col[1], 0x0d) ^ m(col[2], 0x09) ^ m(col[3], 0x0e);
    }
    out
}

/// `AESIMC`: InvMixColumns of a round key, used to build the equivalent
/// inverse-cipher schedule.
pub fn aesimc(key: Vec128) -> Vec128 {
    Vec128::from_bytes(inv_mix_columns(key.to_bytes()))
}

/// One middle inverse round — the architectural semantics of
/// `AESDEC state, round_key`.
pub fn aesdec(state: Vec128, round_key: Vec128) -> Vec128 {
    let s = inv_mix_columns(inv_sub_bytes(inv_shift_rows(state.to_bytes())));
    Vec128::from_bytes(s) ^ round_key
}

/// The final inverse round (`AESDECLAST`): like [`aesdec`] without
/// InvMixColumns.
pub fn aesdeclast(state: Vec128, round_key: Vec128) -> Vec128 {
    let s = inv_sub_bytes(inv_shift_rows(state.to_bytes()));
    Vec128::from_bytes(s) ^ round_key
}

/// Full AES-128 block decryption via the equivalent inverse cipher:
/// `AddRoundKey(k10); 9 × AESDEC(imc(k9..k1)); AESDECLAST(k0)`.
pub fn decrypt128(key: &Aes128Key, block: Vec128) -> Vec128 {
    let mut s = block ^ key.round_key(10);
    for r in (1..=9).rev() {
        s = aesdec(s, aesimc(key.round_key(r)));
    }
    aesdeclast(s, key.round_key(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::reference;

    #[test]
    fn inv_shift_rows_inverts_shift_rows() {
        let mut state = [0u8; 16];
        for (i, b) in state.iter_mut().enumerate() {
            *b = i as u8;
        }
        let shifted: [u8; 16] = {
            let mut out = [0u8; 16];
            for b in 0..16 {
                out[b] = state[SHIFT_ROWS_SRC[b]];
            }
            out
        };
        assert_eq!(inv_shift_rows(shifted), state);
    }

    #[test]
    fn inv_mix_columns_inverts_mix_columns() {
        // MixColumns of a uniform column is a fixed point; use AESENC and
        // AESDEC round-tripping instead for full coverage below. Here:
        // spot-check the {0e,0b,0d,09} matrix against FIPS-197 math.
        let st = [0xdb, 0x13, 0x53, 0x45, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        // MixColumns([db,13,53,45]) = [8e,4d,a1,bc] (FIPS-197 example);
        // so InvMixColumns([8e,4d,a1,bc]) must give back the original.
        let mixed = [0x8e, 0x4d, 0xa1, 0xbc, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(inv_mix_columns(mixed)[..4], st[..4]);
    }

    #[test]
    fn aesdec_inverts_aesenc_with_transformed_key() {
        // SDM identity: AESDEC(AESENC(s, k) , imc(k')) undoes the round
        // when keys line up in the equivalent-inverse-cipher order. The
        // most direct check is the full-cipher round trip below; here,
        // verify a single round against its algebraic inverse.
        let s = Vec128::from_u128(0x00112233_44556677_8899aabb_ccddeeff);
        let k = Vec128::from_u128(0x0f0e0d0c_0b0a0908_07060504_03020100);
        let enc = reference::aesenc(s, k);
        // Invert manually: XOR key, InvMixColumns, InvSubBytes/InvShiftRows.
        let x = (enc ^ k).to_bytes();
        let undone = inv_shift_rows(inv_sub_bytes(inv_mix_columns(x)));
        assert_eq!(Vec128::from_bytes(undone), s);
    }

    #[test]
    fn decrypt_inverts_encrypt_fips_vector() {
        let key = Aes128Key::expand([
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ]);
        let ct = Vec128::from_bytes([
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ]);
        let pt = decrypt128(&key, ct);
        assert_eq!(
            pt.to_bytes(),
            [
                0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
                0xee, 0xff
            ]
        );
    }

    #[test]
    fn decrypt_round_trips_many_blocks() {
        let key = Aes128Key::expand([0x5a; 16]);
        for i in 0..50u128 {
            let pt = Vec128::from_u128(i.wrapping_mul(0x9e3779b97f4a7c15_9e3779b97f4a7c15));
            let ct = reference::encrypt128(&key, pt);
            assert_eq!(decrypt128(&key, ct), pt, "block {i}");
        }
    }

    #[test]
    fn aesimc_matches_inv_mix_columns() {
        let k = Vec128::from_u128(0x0123456789abcdef_fedcba9876543210);
        assert_eq!(aesimc(k).to_bytes(), inv_mix_columns(k.to_bytes()));
    }
}
