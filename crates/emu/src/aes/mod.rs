//! AES primitives for `AESENC` emulation.
//!
//! x86's `AESENC xmm1, xmm2` computes one middle round of AES:
//!
//! ```text
//! state  = ShiftRows(state)
//! state  = SubBytes(state)
//! state  = MixColumns(state)
//! result = state XOR round_key
//! ```
//!
//! and `AESENCLAST` the same without `MixColumns`. The SUIT OS emulates a
//! trapped `AESENC` in software; the paper prescribes a *bit-sliced*
//! implementation so the emulation does not reintroduce the cache
//! side channels AES-NI was designed to remove.
//!
//! Two interchangeable implementations are provided:
//!
//! * [`mod@reference`] — a straightforward table-driven implementation used as
//!   the correctness oracle and as the "fast but leaky" baseline in the
//!   emulation-cost ablation bench.
//! * [`bitsliced`] — the constant-time implementation actually used by the
//!   emulation handler. State bytes are transposed into eight bit-planes
//!   and the S-box is evaluated as GF(2⁸) inversion (x²⁵⁴) with pure
//!   AND/XOR plane operations; four (`u64` planes) or eight (`u128`
//!   planes) blocks are processed in parallel.
//!
//! The byte layout follows the Intel SDM: byte *i* of the 128-bit operand
//! is the AES state entry at row *i* mod 4, column *i* / 4 (column-major,
//! as in FIPS-197).

pub mod aes256;
pub mod bitsliced;
pub mod decrypt;
pub mod reference;

use crate::gf;
use suit_isa::Vec128;

/// Number of round keys for AES-128 (initial key + 10 rounds).
pub const AES128_ROUND_KEYS: usize = 11;

/// An expanded AES-128 key schedule.
///
/// The schedule is computed with the constant-time arithmetic S-box from
/// [`crate::gf`], so expanding a secret key is itself side-channel
/// resilient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aes128Key {
    round_keys: [Vec128; AES128_ROUND_KEYS],
}

impl Aes128Key {
    /// Expands a 16-byte AES-128 cipher key into 11 round keys (FIPS-197
    /// §5.2).
    pub fn expand(key: [u8; 16]) -> Self {
        // Round constants rcon[i] = x^(i-1) in GF(2^8).
        const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

        let mut w = [[0u8; 4]; 44]; // 44 words of 4 bytes
        for (i, word) in w.iter_mut().take(4).enumerate() {
            word.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                // RotWord then SubWord then Rcon.
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = gf::sbox(*b);
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }

        let mut round_keys = [Vec128::ZERO; AES128_ROUND_KEYS];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            let mut bytes = [0u8; 16];
            for c in 0..4 {
                bytes[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
            *rk = Vec128::from_bytes(bytes);
        }
        Aes128Key { round_keys }
    }

    /// The round keys, index 0 being the whitening key.
    pub fn round_keys(&self) -> &[Vec128; AES128_ROUND_KEYS] {
        &self.round_keys
    }

    /// Round key `r` (0 ..= 10).
    pub fn round_key(&self, r: usize) -> Vec128 {
        self.round_keys[r]
    }
}

/// The ShiftRows byte permutation: output byte index → input byte index.
///
/// With column-major layout (byte `i` at row `i % 4`, column `i / 4`),
/// row `r` rotates left by `r` columns:
/// `new[r + 4c] = old[r + 4·((c + r) mod 4)]`.
pub const SHIFT_ROWS_SRC: [usize; 16] = shift_rows_table();

const fn shift_rows_table() -> [usize; 16] {
    let mut t = [0usize; 16];
    let mut b = 0;
    while b < 16 {
        let r = b % 4;
        let c = b / 4;
        t[b] = r + 4 * ((c + r) % 4);
        b += 1;
    }
    t
}

/// Encrypts a single block under `key` using the supplied round functions.
/// This is the canonical composition `AddRoundKey; 9×AESENC; AESENCLAST`
/// used by both implementations and validated against FIPS-197.
pub(crate) fn encrypt128_with(
    key: &Aes128Key,
    block: Vec128,
    enc: impl Fn(Vec128, Vec128) -> Vec128,
    enc_last: impl Fn(Vec128, Vec128) -> Vec128,
) -> Vec128 {
    let mut s = block ^ key.round_key(0);
    for r in 1..=9 {
        s = enc(s, key.round_key(r));
    }
    enc_last(s, key.round_key(10))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_expansion_fips197_appendix_a() {
        // FIPS-197 Appendix A.1 key: 2b7e151628aed2a6abf7158809cf4f3c.
        let key = Aes128Key::expand([
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ]);
        // w[4] = a0fafe17 (first word of round key 1).
        let rk1 = key.round_key(1).to_bytes();
        assert_eq!(&rk1[0..4], &[0xa0, 0xfa, 0xfe, 0x17]);
        // w[43] = b6630ca6 (last word of round key 10).
        let rk10 = key.round_key(10).to_bytes();
        assert_eq!(&rk10[12..16], &[0xb6, 0x63, 0x0c, 0xa6]);
    }

    #[test]
    fn shift_rows_row0_fixed_row1_rotates() {
        // Row 0 is untouched.
        for c in 0..4 {
            assert_eq!(SHIFT_ROWS_SRC[4 * c], 4 * c);
        }
        // Row 1 shifts left by one column: new (1, 0) takes old (1, 1).
        assert_eq!(SHIFT_ROWS_SRC[1], 1 + 4);
        // Row 3 shifts left by three: new (3, 0) takes old (3, 3).
        assert_eq!(SHIFT_ROWS_SRC[3], 3 + 12);
    }

    #[test]
    fn shift_rows_is_a_permutation() {
        let mut seen = [false; 16];
        for &s in &SHIFT_ROWS_SRC {
            assert!(!seen[s]);
            seen[s] = true;
        }
    }
}
