//! AES-256 key schedule and block encryption (FIPS-197 §5.2, Nk = 8).
//!
//! TLS 1.3's mandatory `TLS_AES_256_GCM_SHA384` suite means an HTTPS
//! server's trapped `AESENC` instructions run 14-round schedules at least
//! as often as 10-round ones; the emulation library supports both.

use crate::gf;
use suit_isa::Vec128;

use super::{bitsliced, reference};

/// Number of round keys for AES-256 (initial + 14 rounds).
pub const AES256_ROUND_KEYS: usize = 15;

/// An expanded AES-256 key schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aes256Key {
    round_keys: [Vec128; AES256_ROUND_KEYS],
}

impl Aes256Key {
    /// Expands a 32-byte AES-256 cipher key (FIPS-197 §5.2 with Nk = 8:
    /// every 8th word takes RotWord∘SubWord⊕Rcon, and the half-way word
    /// takes SubWord alone).
    pub fn expand(key: [u8; 32]) -> Self {
        const RCON: [u8; 7] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40];
        let mut w = [[0u8; 4]; 60];
        for (i, word) in w.iter_mut().take(8).enumerate() {
            word.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        for i in 8..60 {
            let mut temp = w[i - 1];
            if i % 8 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = gf::sbox(*b);
                }
                temp[0] ^= RCON[i / 8 - 1];
            } else if i % 8 == 4 {
                for b in &mut temp {
                    *b = gf::sbox(*b);
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - 8][j] ^ temp[j];
            }
        }
        let mut round_keys = [Vec128::ZERO; AES256_ROUND_KEYS];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            let mut bytes = [0u8; 16];
            for c in 0..4 {
                bytes[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
            *rk = Vec128::from_bytes(bytes);
        }
        Aes256Key { round_keys }
    }

    /// Round key `r` (0 ..= 14).
    pub fn round_key(&self, r: usize) -> Vec128 {
        self.round_keys[r]
    }

    /// Encrypts one block through the table-based round functions.
    pub fn encrypt(&self, block: Vec128) -> Vec128 {
        let mut s = block ^ self.round_keys[0];
        for r in 1..=13 {
            s = reference::aesenc(s, self.round_keys[r]);
        }
        reference::aesenclast(s, self.round_keys[14])
    }

    /// Encrypts one block through the constant-time bit-sliced rounds —
    /// the side-channel-resilient path the `#DO` handler uses.
    pub fn encrypt_ct(&self, block: Vec128) -> Vec128 {
        let mut s = block ^ self.round_keys[0];
        for r in 1..=13 {
            s = bitsliced::aesenc(s, self.round_keys[r]);
        }
        bitsliced::aesenclast(s, self.round_keys[14])
    }

    /// Encrypts four blocks in parallel through the bit-sliced kernel.
    pub fn encrypt_ct_x4(&self, blocks: [Vec128; 4]) -> [Vec128; 4] {
        let mut s = blocks;
        for b in &mut s {
            *b = *b ^ self.round_keys[0];
        }
        for r in 1..=13 {
            s = bitsliced::aesenc4(s, self.round_keys[r]);
        }
        bitsliced::aesenclast4(s, self.round_keys[14])
    }

    /// Encrypts eight blocks in parallel through the wide bit-sliced
    /// kernel (`u128` planes) — double the blocks per round pass.
    pub fn encrypt_ct_x8(&self, blocks: [Vec128; 8]) -> [Vec128; 8] {
        let mut s = blocks;
        for b in &mut s {
            *b = *b ^ self.round_keys[0];
        }
        for r in 1..=13 {
            s = bitsliced::aesenc8(s, self.round_keys[r]);
        }
        bitsliced::aesenclast8(s, self.round_keys[14])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix C.3: AES-256, key 000102…1f,
    /// plaintext 00112233445566778899aabbccddeeff
    /// → ciphertext 8ea2b7ca516745bfeafc49904b496089.
    #[test]
    fn fips197_c3_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let k = Aes256Key::expand(key);
        let pt = Vec128::from_bytes([
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ]);
        let expect = [
            0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
            0x60, 0x89,
        ];
        assert_eq!(k.encrypt(pt).to_bytes(), expect);
    }

    #[test]
    fn bitsliced_path_matches_reference() {
        let k = Aes256Key::expand([0x77; 32]);
        for i in 0..20u128 {
            let pt = Vec128::from_u128(i * 0x1111_2222_3333_4444);
            assert_eq!(k.encrypt_ct(pt), k.encrypt(pt), "block {i}");
        }
    }

    #[test]
    fn four_wide_matches_single() {
        let k = Aes256Key::expand([0x11; 32]);
        let blocks = [
            Vec128::from_u128(1),
            Vec128::from_u128(2),
            Vec128::from_u128(3),
            Vec128::from_u128(4),
        ];
        let out = k.encrypt_ct_x4(blocks);
        for i in 0..4 {
            assert_eq!(out[i], k.encrypt(blocks[i]), "lane {i}");
        }
    }

    #[test]
    fn eight_wide_matches_single() {
        let k = Aes256Key::expand([0x33; 32]);
        let blocks: [Vec128; 8] = std::array::from_fn(|i| Vec128::from_u128(1 + i as u128));
        let out = k.encrypt_ct_x8(blocks);
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(out[i], k.encrypt(*b), "lane {i}");
        }
    }

    /// FIPS-197 Appendix C.3 through every lane of the 8-wide path.
    #[test]
    fn fips197_c3_vector_x8() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let k = Aes256Key::expand(key);
        let pt = Vec128::from_bytes([
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ]);
        let expect = [
            0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
            0x60, 0x89,
        ];
        let wide = k.encrypt_ct_x8([pt; 8]);
        for (i, out) in wide.iter().enumerate() {
            assert_eq!(out.to_bytes(), expect, "lane {i}");
        }
    }

    #[test]
    fn different_keys_differ() {
        let a = Aes256Key::expand([0x00; 32]);
        let b = Aes256Key::expand([0x01; 32]);
        let pt = Vec128::from_u128(42);
        assert_ne!(a.encrypt(pt), b.encrypt(pt));
    }
}
