//! Constant-time bit-sliced AES — the emulation the paper prescribes.
//!
//! §3.4: *"SUIT emulates … AESENC with a side-channel-resilient bit-sliced
//! AES implementation."* This module is that implementation.
//!
//! ## Representation
//!
//! A [`BsState`] holds **four** AES states transposed into eight `u64`
//! bit-planes; a [`BsState8`] holds **eight** states in `u128` planes
//! (the batch the CTR keystream and the `#DO` handler's block queue
//! drain through). In both, bit `16·blk + b` of `planes[i]` is bit `i`
//! of byte `b` of block `blk`. In this form:
//!
//! * `SubBytes` is GF(2⁸) inversion (x²⁵⁴ by an addition chain of
//!   plane-parallel polynomial multiplications) plus a linear affine layer —
//!   only AND/XOR/shift operations, identical work for every input;
//! * `ShiftRows` is a compile-time byte permutation of plane bits;
//! * `MixColumns` is a handful of plane rotations and XORs.
//!
//! There are no secret-indexed table lookups and no secret-dependent
//! branches anywhere on the encryption path.
//!
//! The two widths share one kernel: [`plane_kernel!`] instantiates the
//! identical round-function algebra over `u64` (4 lanes) and `u128`
//! (8 lanes), so the widths cannot drift apart — and the differential
//! suite (`tests/emulation_equivalence.rs`) pins x8 ≡ x4 ≡ the
//! table-based reference anyway.

use super::{encrypt128_with, Aes128Key, SHIFT_ROWS_SRC};
use suit_isa::Vec128;

/// Byte rotation within each column by one row:
/// `new[r + 4c] = old[(r + 1) mod 4 + 4c]`.
const ROT_ROWS_1: [usize; 16] = rot_rows_table();

const fn rot_rows_table() -> [usize; 16] {
    let mut t = [0usize; 16];
    let mut b = 0;
    while b < 16 {
        let r = b % 4;
        let c = b / 4;
        t[b] = (r + 1) % 4 + 4 * c;
        b += 1;
    }
    t
}

/// Instantiates the bit-plane round-function kernel for one plane width.
///
/// `$t` is the plane word (`u64` = 4 blocks, `u128` = 8 blocks), `$lanes`
/// the block count, `$lsb` the mask with bit 0 of every 16-bit block
/// group set. Everything downstream of the transpose — the GF(2⁸)
/// algebra, SubBytes, ShiftRows, MixColumns, the round-key broadcast —
/// is generated from this single definition, so the 4- and 8-wide paths
/// are the same code at different widths.
macro_rules! plane_kernel {
    ($mod_name:ident, $t:ty, $lanes:expr, $lsb:expr) => {
        mod $mod_name {
            use super::{ROT_ROWS_1, SHIFT_ROWS_SRC};
            use suit_isa::Vec128;

            /// Bit 0 of each block's 16-bit group.
            pub(super) const LSB: $t = $lsb;

            /// Transposes blocks into bit-plane form.
            pub(super) fn pack(blocks: &[Vec128; $lanes]) -> [$t; 8] {
                let mut planes = [0 as $t; 8];
                for (blk, block) in blocks.iter().enumerate() {
                    let bytes = block.to_bytes();
                    for (b, &byte) in bytes.iter().enumerate() {
                        let pos = 16 * blk + b;
                        for (i, plane) in planes.iter_mut().enumerate() {
                            *plane |= (((byte >> i) & 1) as $t) << pos;
                        }
                    }
                }
                planes
            }

            /// Transposes back to ordinary blocks.
            pub(super) fn unpack(planes: [$t; 8]) -> [Vec128; $lanes] {
                let mut blocks = [Vec128::ZERO; $lanes];
                for (blk, block) in blocks.iter_mut().enumerate() {
                    let mut bytes = [0u8; 16];
                    for (b, byte) in bytes.iter_mut().enumerate() {
                        let pos = 16 * blk + b;
                        for (i, plane) in planes.iter().enumerate() {
                            *byte |= (((plane >> pos) & 1) as u8) << i;
                        }
                    }
                    *block = Vec128::from_bytes(bytes);
                }
                blocks
            }

            /// XORs a (public) round key into every block.
            pub(super) fn xor_round_key(planes: &mut [$t; 8], rk: Vec128) {
                let bytes = rk.to_bytes();
                for (b, &byte) in bytes.iter().enumerate() {
                    for (i, plane) in planes.iter_mut().enumerate() {
                        // Broadcast bit i of key byte b to the block groups.
                        let bit = ((byte >> i) & 1) as $t;
                        *plane ^= (bit * LSB) << b;
                    }
                }
            }

            /// Applies a byte-index permutation to a plane: output byte
            /// position `b` takes the bits of input byte position `src[b]`,
            /// simultaneously in all block groups.
            pub(super) fn permute_bytes(plane: $t, src: &[usize; 16]) -> $t {
                let mut out = 0 as $t;
                for (b, &s) in src.iter().enumerate() {
                    out |= ((plane >> s) & LSB) << b;
                }
                out
            }

            pub(super) fn map_planes(planes: [$t; 8], f: impl Fn($t) -> $t) -> [$t; 8] {
                let mut out = [0 as $t; 8];
                for (o, p) in out.iter_mut().zip(planes) {
                    *o = f(p);
                }
                out
            }

            /// Plane-parallel multiplication by x (`xtime`): shift the
            /// bit-planes up by one and reduce by x⁸ + x⁴ + x³ + x + 1.
            pub(super) fn xtime(a: [$t; 8]) -> [$t; 8] {
                [
                    a[7],
                    a[0] ^ a[7],
                    a[1],
                    a[2] ^ a[7],
                    a[3] ^ a[7],
                    a[4],
                    a[5],
                    a[6],
                ]
            }

            /// Plane-parallel GF(2⁸) multiplication: schoolbook polynomial
            /// product followed by reduction modulo x⁸ + x⁴ + x³ + x + 1.
            pub(super) fn gf_mul(a: [$t; 8], b: [$t; 8]) -> [$t; 8] {
                let mut prod = [0 as $t; 15];
                for i in 0..8 {
                    for j in 0..8 {
                        prod[i + j] ^= a[i] & b[j];
                    }
                }
                // x^k ≡ x^(k-4) + x^(k-5) + x^(k-7) + x^(k-8)  (for k ≥ 8)
                for k in (8..15).rev() {
                    let v = prod[k];
                    prod[k - 4] ^= v;
                    prod[k - 5] ^= v;
                    prod[k - 7] ^= v;
                    prod[k - 8] ^= v;
                }
                let mut out = [0 as $t; 8];
                out.copy_from_slice(&prod[..8]);
                out
            }

            /// Plane-parallel squaring (multiplication with itself;
            /// squaring is linear but reusing the multiplier keeps the
            /// code small and obviously correct).
            pub(super) fn gf_square(a: [$t; 8]) -> [$t; 8] {
                gf_mul(a, a)
            }

            /// Plane-parallel GF(2⁸) inversion as a²⁵⁴ (with 0 ↦ 0, as AES
            /// requires), using the addition chain 2, 3, 6, 12, 15, 240,
            /// 252, 254.
            pub(super) fn gf_inv(a: [$t; 8]) -> [$t; 8] {
                let x2 = gf_square(a);
                let x3 = gf_mul(x2, a);
                let x6 = gf_square(x3);
                let x12 = gf_square(x6);
                let x15 = gf_mul(x12, x3);
                let mut x240 = x15;
                for _ in 0..4 {
                    x240 = gf_square(x240);
                }
                let x252 = gf_mul(x240, x12);
                gf_mul(x252, x2)
            }

            /// SubBytes: constant-time bit-parallel GF(2⁸) inversion +
            /// affine map.
            pub(super) fn sub_bytes(planes: [$t; 8]) -> [$t; 8] {
                let inv = gf_inv(planes);
                // Affine: y_j = x_j ⊕ x_{j-1} ⊕ x_{j-2} ⊕ x_{j-3} ⊕ x_{j-4} ⊕ c_j
                // (indices mod 8), with c = 0x63.
                let mut out = [0 as $t; 8];
                for (j, o) in out.iter_mut().enumerate() {
                    *o = inv[j]
                        ^ inv[(j + 7) % 8]
                        ^ inv[(j + 6) % 8]
                        ^ inv[(j + 5) % 8]
                        ^ inv[(j + 4) % 8];
                    if (0x63 >> j) & 1 == 1 {
                        *o ^= <$t>::MAX;
                    }
                }
                out
            }

            /// ShiftRows: the byte permutation applied inside every plane.
            pub(super) fn shift_rows(planes: [$t; 8]) -> [$t; 8] {
                map_planes(planes, |p| permute_bytes(p, &SHIFT_ROWS_SRC))
            }

            /// MixColumns over the planes:
            /// `out = xtime(a ⊕ rot1(a)) ⊕ rot1(a) ⊕ rot2(a) ⊕ rot3(a)`
            /// where `rotₖ` rotates each column's bytes up by k rows.
            pub(super) fn mix_columns(a: [$t; 8]) -> [$t; 8] {
                let r1 = map_planes(a, |p| permute_bytes(p, &ROT_ROWS_1));
                let r2 = map_planes(r1, |p| permute_bytes(p, &ROT_ROWS_1));
                let r3 = map_planes(r2, |p| permute_bytes(p, &ROT_ROWS_1));
                let mut t = [0 as $t; 8];
                for i in 0..8 {
                    t[i] = a[i] ^ r1[i];
                }
                let t2 = xtime(t);
                let mut out = [0 as $t; 8];
                for i in 0..8 {
                    out[i] = t2[i] ^ r1[i] ^ r2[i] ^ r3[i];
                }
                out
            }
        }
    };
}

plane_kernel!(p64, u64, 4, 0x0001_0001_0001_0001);
plane_kernel!(p128, u128, 8, 0x0001_0001_0001_0001_0001_0001_0001_0001);

/// Four AES states in `u64` bit-plane representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BsState {
    planes: [u64; 8],
}

impl BsState {
    /// Transposes four blocks into bit-plane form.
    pub fn pack(blocks: [Vec128; 4]) -> Self {
        BsState {
            planes: p64::pack(&blocks),
        }
    }

    /// Transposes back to four ordinary blocks.
    pub fn unpack(self) -> [Vec128; 4] {
        p64::unpack(self.planes)
    }

    /// XORs a (public) round key into all four blocks.
    pub fn xor_round_key(&mut self, rk: Vec128) {
        p64::xor_round_key(&mut self.planes, rk);
    }

    /// SubBytes: constant-time bit-parallel GF(2⁸) inversion + affine map.
    pub fn sub_bytes(&mut self) {
        self.planes = p64::sub_bytes(self.planes);
    }

    /// ShiftRows: the byte permutation applied inside every plane.
    pub fn shift_rows(&mut self) {
        self.planes = p64::shift_rows(self.planes);
    }

    /// MixColumns over the planes.
    pub fn mix_columns(&mut self) {
        self.planes = p64::mix_columns(self.planes);
    }

    /// Raw plane access (for tests and the fault model).
    pub fn planes(&self) -> &[u64; 8] {
        &self.planes
    }
}

/// Eight AES states in `u128` bit-plane representation — the wide batch
/// the CTR keystream drains through. Same layout as [`BsState`] with
/// eight 16-bit block groups per plane instead of four; the transpose is
/// paid once per eight blocks instead of once per four.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BsState8 {
    planes: [u128; 8],
}

impl BsState8 {
    /// Transposes eight blocks into bit-plane form.
    pub fn pack(blocks: [Vec128; 8]) -> Self {
        BsState8 {
            planes: p128::pack(&blocks),
        }
    }

    /// Transposes back to eight ordinary blocks.
    pub fn unpack(self) -> [Vec128; 8] {
        p128::unpack(self.planes)
    }

    /// XORs a (public) round key into all eight blocks.
    pub fn xor_round_key(&mut self, rk: Vec128) {
        p128::xor_round_key(&mut self.planes, rk);
    }

    /// SubBytes: constant-time bit-parallel GF(2⁸) inversion + affine map.
    pub fn sub_bytes(&mut self) {
        self.planes = p128::sub_bytes(self.planes);
    }

    /// ShiftRows: the byte permutation applied inside every plane.
    pub fn shift_rows(&mut self) {
        self.planes = p128::shift_rows(self.planes);
    }

    /// MixColumns over the planes.
    pub fn mix_columns(&mut self) {
        self.planes = p128::mix_columns(self.planes);
    }

    /// Raw plane access (for tests and the fault model).
    pub fn planes(&self) -> &[u128; 8] {
        &self.planes
    }
}

/// `AESENC` on four blocks in parallel, constant time.
pub fn aesenc4(states: [Vec128; 4], round_key: Vec128) -> [Vec128; 4] {
    let mut s = BsState::pack(states);
    s.shift_rows();
    s.sub_bytes();
    s.mix_columns();
    s.xor_round_key(round_key);
    s.unpack()
}

/// `AESENCLAST` on four blocks in parallel, constant time.
pub fn aesenclast4(states: [Vec128; 4], round_key: Vec128) -> [Vec128; 4] {
    let mut s = BsState::pack(states);
    s.shift_rows();
    s.sub_bytes();
    s.xor_round_key(round_key);
    s.unpack()
}

/// `AESENC` on eight blocks in parallel, constant time.
pub fn aesenc8(states: [Vec128; 8], round_key: Vec128) -> [Vec128; 8] {
    let mut s = BsState8::pack(states);
    s.shift_rows();
    s.sub_bytes();
    s.mix_columns();
    s.xor_round_key(round_key);
    s.unpack()
}

/// `AESENCLAST` on eight blocks in parallel, constant time.
pub fn aesenclast8(states: [Vec128; 8], round_key: Vec128) -> [Vec128; 8] {
    let mut s = BsState8::pack(states);
    s.shift_rows();
    s.sub_bytes();
    s.xor_round_key(round_key);
    s.unpack()
}

/// Single-block `AESENC` (runs the 4-wide kernel with one live lane —
/// exactly what the `#DO` handler does for a lone trapped instruction).
pub fn aesenc(state: Vec128, round_key: Vec128) -> Vec128 {
    aesenc4([state; 4], round_key)[0]
}

/// Single-block `AESENCLAST`.
pub fn aesenclast(state: Vec128, round_key: Vec128) -> Vec128 {
    aesenclast4([state; 4], round_key)[0]
}

/// Full AES-128 block encryption through the bit-sliced round functions.
pub fn encrypt128(key: &Aes128Key, block: Vec128) -> Vec128 {
    encrypt128_with(key, block, aesenc, aesenclast)
}

/// Full AES-128 encryption of four blocks in parallel.
///
/// Packs into bit-plane form **once**, runs all ten rounds on the planes,
/// and unpacks once — the transpose (the expensive part) is amortised
/// over the whole cipher instead of paid per round.
pub fn encrypt128_x4(key: &Aes128Key, blocks: [Vec128; 4]) -> [Vec128; 4] {
    let mut s = BsState::pack(blocks);
    s.xor_round_key(key.round_key(0));
    for r in 1..=9 {
        s.shift_rows();
        s.sub_bytes();
        s.mix_columns();
        s.xor_round_key(key.round_key(r));
    }
    s.shift_rows();
    s.sub_bytes();
    s.xor_round_key(key.round_key(10));
    s.unpack()
}

/// Full AES-128 encryption of eight blocks in parallel.
///
/// The wide sibling of [`encrypt128_x4`]: one transpose each way, ten
/// rounds on `u128` planes, double the blocks per round-function pass.
pub fn encrypt128_x8(key: &Aes128Key, blocks: [Vec128; 8]) -> [Vec128; 8] {
    let mut s = BsState8::pack(blocks);
    s.xor_round_key(key.round_key(0));
    for r in 1..=9 {
        s.shift_rows();
        s.sub_bytes();
        s.mix_columns();
        s.xor_round_key(key.round_key(r));
    }
    s.shift_rows();
    s.sub_bytes();
    s.xor_round_key(key.round_key(10));
    s.unpack()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::reference;
    use crate::gf;

    #[test]
    fn pack_unpack_roundtrip() {
        let blocks = [
            Vec128::from_u128(0x0123_4567_89ab_cdef_0011_2233_4455_6677),
            Vec128::from_u128(0xdead_beef_dead_beef_dead_beef_dead_beef),
            Vec128::ZERO,
            Vec128::ONES,
        ];
        assert_eq!(BsState::pack(blocks).unpack(), blocks);
    }

    #[test]
    fn pack_unpack_roundtrip_x8() {
        let blocks: [Vec128; 8] = std::array::from_fn(|i| {
            Vec128::from_u128((i as u128).wrapping_mul(0x0123_4567_89ab_cdef_0011_2233) ^ !0u128)
        });
        assert_eq!(BsState8::pack(blocks).unpack(), blocks);
    }

    #[test]
    fn bitsliced_sbox_matches_arithmetic_sbox() {
        // Put all 256 byte values through the bit-sliced SubBytes, 64 at a
        // time (4 blocks × 16 bytes).
        for chunk in 0..4 {
            let mut blocks = [[0u8; 16]; 4];
            for (blk, block) in blocks.iter_mut().enumerate() {
                for (b, byte) in block.iter_mut().enumerate() {
                    *byte = (chunk * 64 + blk * 16 + b) as u8;
                }
            }
            let mut st = BsState::pack(blocks.map(Vec128::from_bytes));
            st.sub_bytes();
            let out = st.unpack().map(|v| v.to_bytes());
            for blk in 0..4 {
                for b in 0..16 {
                    assert_eq!(out[blk][b], gf::sbox(blocks[blk][b]));
                }
            }
        }
    }

    #[test]
    fn wide_sbox_matches_arithmetic_sbox() {
        // All 256 byte values through the 8-wide SubBytes, 128 at a time
        // (8 blocks × 16 bytes).
        for chunk in 0..2 {
            let mut blocks = [[0u8; 16]; 8];
            for (blk, block) in blocks.iter_mut().enumerate() {
                for (b, byte) in block.iter_mut().enumerate() {
                    *byte = (chunk * 128 + blk * 16 + b) as u8;
                }
            }
            let mut st = BsState8::pack(blocks.map(Vec128::from_bytes));
            st.sub_bytes();
            let out = st.unpack().map(|v| v.to_bytes());
            for blk in 0..8 {
                for b in 0..16 {
                    assert_eq!(out[blk][b], gf::sbox(blocks[blk][b]));
                }
            }
        }
    }

    #[test]
    fn fips197_c1_vector_bitsliced() {
        let key = Aes128Key::expand([
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ]);
        let pt = Vec128::from_bytes([
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ]);
        let expect = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(encrypt128(&key, pt).to_bytes(), expect);
        // The same vector through every lane of the 8-wide path.
        let wide = encrypt128_x8(&key, [pt; 8]);
        for (i, out) in wide.iter().enumerate() {
            assert_eq!(out.to_bytes(), expect, "lane {i}");
        }
    }

    #[test]
    fn aesenc_matches_reference_on_fixed_cases() {
        let cases = [
            (Vec128::ZERO, Vec128::ZERO),
            (Vec128::ONES, Vec128::ZERO),
            (
                Vec128::from_u128(0x0001_0203_0405_0607_0809_0a0b_0c0d_0e0f),
                Vec128::from_u128(0xffee_ddcc_bbaa_9988_7766_5544_3322_1100),
            ),
        ];
        for (state, rk) in cases {
            assert_eq!(aesenc(state, rk), reference::aesenc(state, rk));
            assert_eq!(aesenclast(state, rk), reference::aesenclast(state, rk));
        }
    }

    #[test]
    fn four_lanes_are_independent() {
        let blocks = [
            Vec128::from_u128(1),
            Vec128::from_u128(2),
            Vec128::from_u128(3),
            Vec128::from_u128(4),
        ];
        let rk = Vec128::from_u128(0x1234);
        let out4 = aesenc4(blocks, rk);
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(out4[i], reference::aesenc(*b, rk), "lane {i}");
        }
    }

    #[test]
    fn eight_lanes_are_independent() {
        let blocks: [Vec128; 8] = std::array::from_fn(|i| Vec128::from_u128(1 + i as u128));
        let rk = Vec128::from_u128(0x5678);
        let out8 = aesenc8(blocks, rk);
        let last8 = aesenclast8(blocks, rk);
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(out8[i], reference::aesenc(*b, rk), "enc lane {i}");
            assert_eq!(last8[i], reference::aesenclast(*b, rk), "last lane {i}");
        }
    }

    #[test]
    fn x4_encrypt_matches_single() {
        let key = Aes128Key::expand([0x42; 16]);
        let blocks = [
            Vec128::from_u128(10),
            Vec128::from_u128(20),
            Vec128::from_u128(30),
            Vec128::from_u128(40),
        ];
        let out = encrypt128_x4(&key, blocks);
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(out[i], reference::encrypt128(&key, *b), "lane {i}");
        }
    }

    #[test]
    fn x8_encrypt_matches_x4_and_single() {
        let key = Aes128Key::expand([0x42; 16]);
        let blocks: [Vec128; 8] = std::array::from_fn(|i| Vec128::from_u128(10 * (1 + i as u128)));
        let out = encrypt128_x8(&key, blocks);
        let lo = encrypt128_x4(&key, [blocks[0], blocks[1], blocks[2], blocks[3]]);
        let hi = encrypt128_x4(&key, [blocks[4], blocks[5], blocks[6], blocks[7]]);
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(out[i], reference::encrypt128(&key, *b), "lane {i}");
            let narrow = if i < 4 { lo[i] } else { hi[i - 4] };
            assert_eq!(out[i], narrow, "x4/x8 lane {i}");
        }
    }
}
