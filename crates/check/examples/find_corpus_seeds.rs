//! Corpus-seed miner: brute-forces case seeds whose generated decoder
//! input exercises the 15-byte instruction-length cap (the bug class the
//! `decode_fuzz::total` property originally caught — before the cap, the
//! decoder happily returned 16+-byte instructions that real hardware
//! would refuse with #GP).
//!
//! Run with `cargo run -p suit-check --example find_corpus_seeds`, then
//! commit the printed seeds under `tests/corpus/` to pin the regression.

use suit_check::{gens, Source};
use suit_isa::decode::{decode, DecodeError};

fn main() {
    let gen = gens::decoder_input();
    let mut found = 0u32;
    for seed in 0u64..2_000_000 {
        let bytes = gen.sample(&mut Source::fresh(seed));
        if decode(&bytes) == Err(DecodeError::TooLong) {
            println!("seed {seed:#018x}  ({} bytes: {bytes:02x?})", bytes.len());
            found += 1;
            if found >= 8 {
                return;
            }
        }
    }
    eprintln!("only {found} seeds found in the scanned range");
}
