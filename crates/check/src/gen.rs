//! Composable value generators.
//!
//! A [`Gen<T>`] is a pure function from a [`Source`] choice stream to a
//! `T`. All structure — maps, binds, collection loops — lives in the
//! closure; shrinking operates on the underlying choice list, so every
//! combinator is shrink-transparent. Primitives are arranged so that
//! *smaller choices mean simpler values* (zero choices give the range
//! minimum, empty collections, the first alternative), which is what
//! drives shrunk counterexamples toward minimal form.

use std::ops::RangeInclusive;
use std::sync::Arc;

use crate::source::Source;

/// A composable generator: a pure function from a choice stream to `T`.
///
/// Generators are `Send + Sync` (the sampling closure is shared behind
/// an `Arc`), so one `Gen` can drive [`Checker`](crate::Checker)'s
/// parallel exploration mode — every worker samples through the same
/// generator from its own per-case [`Source`].
pub struct Gen<T> {
    f: Arc<dyn Fn(&mut Source) -> T + Send + Sync>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen { f: self.f.clone() }
    }
}

impl<T: 'static> Gen<T> {
    /// Wraps a raw sampling function.
    pub fn new(f: impl Fn(&mut Source) -> T + Send + Sync + 'static) -> Self {
        Gen { f: Arc::new(f) }
    }

    /// Draws one value from `src`.
    pub fn sample(&self, src: &mut Source) -> T {
        (self.f)(src)
    }

    /// Applies `f` to every generated value. Shrinks through `f` because
    /// shrinking happens on the choice stream, not on the output.
    pub fn map<U: 'static>(&self, f: impl Fn(T) -> U + Send + Sync + 'static) -> Gen<U> {
        let g = self.clone();
        Gen::new(move |src| f(g.sample(src)))
    }

    /// Monadic bind: the generated value selects the next generator.
    pub fn bind<U: 'static>(&self, f: impl Fn(T) -> Gen<U> + Send + Sync + 'static) -> Gen<U> {
        let g = self.clone();
        Gen::new(move |src| f(g.sample(src)).sample(src))
    }

    /// A vector of up to `max_len` elements, using a continue/stop coin
    /// before each element so that zeroing a single choice truncates the
    /// collection and deleting a choice block drops one element.
    pub fn vec_up_to(&self, max_len: usize) -> Gen<Vec<T>> {
        let g = self.clone();
        Gen::new(move |src| {
            let mut out = Vec::new();
            while out.len() < max_len && src.choice(2) == 1 {
                out.push(g.sample(src));
            }
            out
        })
    }

    /// A vector of exactly `len` elements.
    pub fn vec_of(&self, len: usize) -> Gen<Vec<T>> {
        let g = self.clone();
        Gen::new(move |src| (0..len).map(|_| g.sample(src)).collect())
    }

    /// An array of exactly `N` elements.
    pub fn array<const N: usize>(&self) -> Gen<[T; N]> {
        let g = self.clone();
        Gen::new(move |src| std::array::from_fn(|_| g.sample(src)))
    }
}

/// Always generates a clone of `v` (consumes no choices).
pub fn constant<T: Clone + Send + Sync + 'static>(v: T) -> Gen<T> {
    Gen::new(move |_| v.clone())
}

/// Uniform `u64` in an inclusive range; shrinks toward the range start.
pub fn u64_in(range: RangeInclusive<u64>) -> Gen<u64> {
    let (lo, hi) = (*range.start(), *range.end());
    assert!(lo <= hi, "empty range");
    Gen::new(move |src| {
        if hi - lo == u64::MAX {
            src.word()
        } else {
            lo + src.choice(hi - lo + 1)
        }
    })
}

/// Uniform `usize` in an inclusive range; shrinks toward the start.
pub fn usize_in(range: RangeInclusive<usize>) -> Gen<usize> {
    u64_in(*range.start() as u64..=*range.end() as u64).map(|v| v as usize)
}

/// Uniform `u32` in an inclusive range; shrinks toward the start.
pub fn u32_in(range: RangeInclusive<u32>) -> Gen<u32> {
    u64_in(u64::from(*range.start())..=u64::from(*range.end())).map(|v| v as u32)
}

/// Any `u64` (shrinks toward 0).
pub fn u64_any() -> Gen<u64> {
    Gen::new(|src| src.word())
}

/// Any `u128` from two words (shrinks toward 0).
pub fn u128_any() -> Gen<u128> {
    Gen::new(|src| (u128::from(src.word()) << 64) | u128::from(src.word()))
}

/// Any `i32` (bit pattern from a choice; shrinks toward 0).
pub fn i32_any() -> Gen<i32> {
    u64_in(0..=u64::from(u32::MAX)).map(|v| v as u32 as i32)
}

/// One byte (shrinks toward 0).
pub fn byte() -> Gen<u8> {
    u64_in(0..=255).map(|v| v as u8)
}

/// A byte blob of up to `max_len` bytes.
pub fn bytes_up_to(max_len: usize) -> Gen<Vec<u8>> {
    byte().vec_up_to(max_len)
}

/// A boolean (shrinks toward `false`).
pub fn bool_any() -> Gen<bool> {
    Gen::new(|src| src.choice(2) == 1)
}

/// Uniform `f64` in `[lo, hi)` with 53-bit resolution; shrinks toward
/// `lo`.
pub fn f64_in(lo: f64, hi: f64) -> Gen<f64> {
    assert!(lo < hi, "empty range");
    const BITS: u64 = 1 << 53;
    Gen::new(move |src| lo + (src.choice(BITS) as f64 / BITS as f64) * (hi - lo))
}

/// One element of `items`, cloned; shrinks toward the first element.
pub fn from_slice<T: Clone + Send + Sync + 'static>(items: &[T]) -> Gen<T> {
    let items: Vec<T> = items.to_vec();
    assert!(!items.is_empty(), "empty choice slice");
    Gen::new(move |src| items[src.choice(items.len() as u64) as usize].clone())
}

/// Delegates to one of `gens`; shrinks toward the first alternative.
pub fn one_of<T: 'static>(gens: Vec<Gen<T>>) -> Gen<T> {
    assert!(!gens.is_empty(), "empty alternative list");
    Gen::new(move |src| gens[src.choice(gens.len() as u64) as usize].sample(src))
}

/// A pair drawn from two generators.
pub fn pair<A: 'static, B: 'static>(a: &Gen<A>, b: &Gen<B>) -> Gen<(A, B)> {
    let (a, b) = (a.clone(), b.clone());
    Gen::new(move |src| (a.sample(src), b.sample(src)))
}

/// A triple drawn from three generators.
pub fn triple<A: 'static, B: 'static, C: 'static>(
    a: &Gen<A>,
    b: &Gen<B>,
    c: &Gen<C>,
) -> Gen<(A, B, C)> {
    let (a, b, c) = (a.clone(), b.clone(), c.clone());
    Gen::new(move |src| (a.sample(src), b.sample(src), c.sample(src)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn take<T: 'static>(gen: &Gen<T>, seed: u64) -> T {
        gen.sample(&mut Source::fresh(seed))
    }

    #[test]
    fn ranges_respect_bounds_and_cover() {
        let g = u64_in(10..=13);
        let mut seen = [false; 4];
        for seed in 0..200 {
            let v = take(&g, seed);
            assert!((10..=13).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn zero_choices_give_minimal_values() {
        let mut src = Source::replay(&[]);
        assert_eq!(u64_in(7..=20).sample(&mut src), 7);
        assert_eq!(bytes_up_to(8).sample(&mut src), Vec::<u8>::new());
        assert!(!bool_any().sample(&mut src));
        assert_eq!(f64_in(-3.0, 5.0).sample(&mut src), -3.0);
        assert_eq!(from_slice(&[5, 6, 7]).sample(&mut src), 5);
    }

    #[test]
    fn map_and_bind_compose() {
        let g = u64_in(0..=9).map(|v| v * 2).bind(|v| u64_in(v..=v + 1));
        for seed in 0..50 {
            let v = take(&g, seed);
            assert!(v <= 19 && (v / 2) * 2 <= v);
        }
    }

    #[test]
    fn vec_up_to_respects_cap() {
        let g = byte().vec_up_to(5);
        for seed in 0..100 {
            assert!(take(&g, seed).len() <= 5);
        }
        // With all-ones coins the vector reaches the cap.
        let mut src = Source::replay(&[1, 9, 1, 9, 1, 9, 1, 9, 1, 9, 1, 9]);
        assert_eq!(g.sample(&mut src).len(), 5);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = pair(&u128_any(), &bytes_up_to(16));
        for seed in [0, 1, 0xDEAD] {
            assert_eq!(take(&g, seed), take(&g, seed));
        }
    }

    #[test]
    fn replaying_a_recording_reproduces_the_value() {
        let g = triple(&u64_in(0..=1000), &bytes_up_to(10), &bool_any());
        let mut fresh = Source::fresh(99);
        let v = g.sample(&mut fresh);
        let mut replay = Source::replay(fresh.recorded());
        assert_eq!(g.sample(&mut replay), v);
    }
}
