//! The choice stream generators draw from.
//!
//! Every random decision a [`crate::Gen`] makes goes through a
//! [`Source`], which records the sequence of *choices* (bounded integers)
//! the generation consumed. Shrinking never touches generated values
//! directly — it edits the recorded choice sequence and replays the
//! generator over it, so any combinator stack (`map`, `bind`, collection
//! loops) shrinks for free and every candidate is a pure function of the
//! choice list.

use suit_rng::{Rng, SuitRng};

/// A recording choice stream: either *fresh* (drawing from a seeded
/// [`SuitRng`]) or *replay* (reading an edited choice list back, padding
/// with zeros when it runs out).
pub struct Source {
    rng: Option<SuitRng>,
    replay: Vec<u64>,
    pos: usize,
    recorded: Vec<u64>,
}

impl Source {
    /// A fresh stream: choices are drawn from a [`SuitRng`] seeded with
    /// `seed` and recorded as they are made.
    pub fn fresh(seed: u64) -> Self {
        Source {
            rng: Some(SuitRng::seed_from_u64(seed)),
            replay: Vec::new(),
            pos: 0,
            recorded: Vec::new(),
        }
    }

    /// A replay stream over an explicit choice list (a shrink candidate).
    /// Reads past the end yield 0 — the simplest choice — so every
    /// candidate is deterministic with no hidden randomness.
    pub fn replay(choices: &[u64]) -> Self {
        Source {
            rng: None,
            replay: choices.to_vec(),
            pos: 0,
            recorded: Vec::new(),
        }
    }

    /// Draws one choice in `[0, n)`. In replay mode, out-of-range
    /// recorded values are clamped to `n - 1` (monotone: a smaller
    /// recorded word can only give a smaller choice).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn choice(&mut self, n: u64) -> u64 {
        assert!(n > 0, "choice bound must be positive");
        let v = match (self.replay.get(self.pos), &mut self.rng) {
            (Some(&w), _) => w.min(n - 1),
            (None, Some(rng)) => rng.gen_range(0..n),
            (None, None) => 0,
        };
        self.pos += 1;
        self.recorded.push(v);
        v
    }

    /// Draws one unbounded 64-bit choice.
    pub fn word(&mut self) -> u64 {
        let v = match (self.replay.get(self.pos), &mut self.rng) {
            (Some(&w), _) => w,
            (None, Some(rng)) => rng.u64(),
            (None, None) => 0,
        };
        self.pos += 1;
        self.recorded.push(v);
        v
    }

    /// The effective choices this run has made so far.
    pub fn recorded(&self) -> &[u64] {
        &self.recorded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_records_what_it_draws() {
        let mut a = Source::fresh(1);
        let drawn: Vec<u64> = (0..8).map(|_| a.choice(100)).collect();
        assert_eq!(a.recorded(), &drawn[..]);
        // Replaying the record reproduces the values exactly.
        let mut b = Source::replay(a.recorded());
        let replayed: Vec<u64> = (0..8).map(|_| b.choice(100)).collect();
        assert_eq!(drawn, replayed);
    }

    #[test]
    fn replay_clamps_and_pads() {
        let mut s = Source::replay(&[500, 3]);
        assert_eq!(s.choice(10), 9, "out-of-range clamps to n-1");
        assert_eq!(s.choice(10), 3);
        assert_eq!(s.choice(10), 0, "exhausted list pads with zero");
        assert_eq!(s.word(), 0);
    }

    #[test]
    fn choices_are_in_range() {
        let mut s = Source::fresh(42);
        for _ in 0..1000 {
            assert!(s.choice(7) < 7);
            let _ = s.choice(1);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_panics() {
        Source::fresh(0).choice(0);
    }
}
