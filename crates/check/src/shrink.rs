//! Choice-sequence shrinking.
//!
//! Given the recorded choices of a failing run and an oracle that says
//! whether an edited choice list still fails, [`shrink`] greedily
//! minimises the sequence with three passes, iterated to a fixpoint:
//!
//! 1. **block deletion** — remove spans of 8/4/2/1 choices scanning from
//!    the tail (drops collection elements and whole sub-structures);
//! 2. **zeroing** — set individual choices to 0 (the minimal choice);
//! 3. **binary search** — minimise each choice value individually.
//!
//! The algorithm is fully deterministic: the same initial choices and the
//! same oracle produce the identical accepted-step trace, which the
//! runner prints so that a failure's shrink history can be diffed across
//! runs.

/// The outcome of shrinking a failing choice sequence.
pub struct Shrunk {
    /// The minimised choice sequence (still failing).
    pub choices: Vec<u64>,
    /// One line per *accepted* shrink step, in order.
    pub trace: Vec<String>,
    /// Total candidates evaluated (accepted + rejected).
    pub candidates: u64,
}

/// Hard cap on oracle evaluations, so pathological properties terminate.
const CANDIDATE_BUDGET: u64 = 20_000;

/// Minimises `initial` under `still_fails` (which must return `true` for
/// `initial` itself; candidates are arbitrary edited choice lists).
pub fn shrink(initial: &[u64], mut still_fails: impl FnMut(&[u64]) -> bool) -> Shrunk {
    let mut cur = initial.to_vec();
    let mut trace = Vec::new();
    let mut candidates = 0u64;

    // Tries one candidate; on success commits it and logs `step`.
    let attempt = |cur: &mut Vec<u64>,
                   cand: Vec<u64>,
                   step: String,
                   trace: &mut Vec<String>,
                   candidates: &mut u64,
                   still_fails: &mut dyn FnMut(&[u64]) -> bool|
     -> bool {
        if *candidates >= CANDIDATE_BUDGET {
            return false;
        }
        *candidates += 1;
        if still_fails(&cand) {
            *cur = cand;
            trace.push(step);
            true
        } else {
            false
        }
    };

    loop {
        let mut improved = false;

        // Pass 1: delete blocks of choices, largest blocks first, tail
        // to head so element indices stay stable while scanning.
        for block in [8usize, 4, 2, 1] {
            let mut i = cur.len().saturating_sub(block);
            loop {
                if cur.len() >= block && i + block <= cur.len() {
                    let mut cand = cur.clone();
                    cand.drain(i..i + block);
                    let step = format!("delete [{i}..{}) -> len {}", i + block, cand.len());
                    if attempt(
                        &mut cur,
                        cand,
                        step,
                        &mut trace,
                        &mut candidates,
                        &mut still_fails,
                    ) {
                        improved = true;
                        i = i.min(cur.len().saturating_sub(block));
                        continue;
                    }
                }
                if i == 0 {
                    break;
                }
                i -= 1;
            }
        }

        // Pass 2: zero individual choices, head to tail.
        for i in 0..cur.len() {
            if cur[i] == 0 {
                continue;
            }
            let mut cand = cur.clone();
            cand[i] = 0;
            let step = format!("zero [{i}] ({} -> 0)", cur[i]);
            if attempt(
                &mut cur,
                cand,
                step,
                &mut trace,
                &mut candidates,
                &mut still_fails,
            ) {
                improved = true;
            }
        }

        // Pass 3: binary-search each remaining choice toward 0.
        for i in 0..cur.len() {
            if cur[i] == 0 {
                continue;
            }
            let original = cur[i];
            let (mut lo, mut hi) = (0u64, cur[i]); // hi is known to fail
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let mut cand = cur.clone();
                cand[i] = mid;
                let step = format!("min [{i}] ({} -> {mid})", cur[i]);
                if attempt(
                    &mut cur,
                    cand,
                    step,
                    &mut trace,
                    &mut candidates,
                    &mut still_fails,
                ) {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            if cur[i] < original {
                improved = true;
            }
        }

        if !improved || candidates >= CANDIDATE_BUDGET {
            break;
        }
    }

    Shrunk {
        choices: cur,
        trace,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_a_scalar_to_the_boundary() {
        // "fails iff choice[0] >= 1000": minimum failing value is 1000.
        let s = shrink(&[87_654], |c| c.first().copied().unwrap_or(0) >= 1000);
        assert_eq!(s.choices, vec![1000]);
        assert!(!s.trace.is_empty());
    }

    #[test]
    fn deletes_irrelevant_choices() {
        // Only the first choice matters; the other nine get deleted.
        let init: Vec<u64> = (0..10).map(|i| 5000 + i).collect();
        let s = shrink(&init, |c| c.first().copied().unwrap_or(0) >= 1000);
        assert_eq!(s.choices, vec![1000]);
    }

    #[test]
    fn respects_multi_element_predicates() {
        // Fails iff at least 3 nonzero choices exist.
        let init = vec![9, 9, 9, 9, 9, 9];
        let s = shrink(&init, |c| c.iter().filter(|&&v| v > 0).count() >= 3);
        assert_eq!(s.choices.len(), 3);
        assert!(s.choices.iter().all(|&v| v == 1), "{:?}", s.choices);
    }

    #[test]
    fn is_deterministic() {
        let init: Vec<u64> = (0..20).map(|i| (i * 7919) % 5000).collect();
        let oracle = |c: &[u64]| c.iter().sum::<u64>() >= 4000;
        let a = shrink(&init, oracle);
        let b = shrink(&init, oracle);
        assert_eq!(a.choices, b.choices);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.candidates, b.candidates);
    }

    #[test]
    fn empty_sequence_is_already_minimal() {
        let s = shrink(&[], |_| true);
        assert!(s.choices.is_empty());
        assert!(s.trace.is_empty());
    }
}
