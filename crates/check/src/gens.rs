//! Domain generators for the SUIT workspace: 128-bit vectors,
//! instruction descriptors, and structure-aware fuzz inputs for the
//! `#DO` byte decoder.

use suit_isa::encode::{EncodeSpec, Rm, SIMD_FORMS};
use suit_isa::{Inst, Opcode, Vec128, TABLE1};

use crate::gen::{
    bool_any, byte, bytes_up_to, from_slice, one_of, pair, u128_any, u64_in, usize_in, Gen,
};

/// Any 128-bit vector (shrinks toward zero).
pub fn vec128() -> Gen<Vec128> {
    u128_any().map(Vec128::from_u128)
}

/// A pair of 128-bit vectors — the operand shape of every two-source
/// SIMD emulation.
pub fn vec128_pair() -> Gen<(Vec128, Vec128)> {
    pair(&vec128(), &vec128())
}

/// One faultable opcode (Table 1 order; shrinks toward `IMUL`).
pub fn faultable_opcode() -> Gen<Opcode> {
    usize_in(0..=TABLE1.len() - 1).map(|i| TABLE1[i].opcode)
}

/// An abstract decoded instruction descriptor over the faultable set,
/// as consumed by the pipeline models.
pub fn inst() -> Gen<Inst> {
    let regs = u64_in(0..=63).map(|r| r as u8);
    faultable_opcode().bind(move |op| {
        regs.array::<3>()
            .map(move |[dst, src1, src2]| Inst::new(op, dst, src1, src2))
    })
}

/// A ModRM r/m operand: register forms (including REX-extended) plus
/// every memory addressing shape the decoder must length-match.
pub fn rm_operand() -> Gen<Rm> {
    // Legal mod=0 bases avoid rm=4 (SIB) and rm=5 (RIP); disp forms
    // avoid rm=4 only.
    const BASES_MOD0: [u8; 6] = [0, 1, 2, 3, 6, 7];
    const BASES_DISP: [u8; 7] = [0, 1, 2, 3, 5, 6, 7];
    one_of(vec![
        u64_in(0..=15).map(|r| Rm::Reg(r as u8)),
        from_slice(&BASES_MOD0).map(Rm::Base),
        pair(&from_slice(&BASES_DISP), &byte()).map(|(b, d)| Rm::Disp8(b, d)),
        pair(&from_slice(&BASES_DISP), &u64_in(0..=u64::from(u32::MAX)))
            .map(|(b, d)| Rm::Disp32(b, d as u32)),
        u64_in(0..=u64::from(u32::MAX)).map(|d| Rm::Rip(d as u32)),
        Gen::new(|_| Rm::Sib),
    ])
}

/// A valid faultable-instruction encoding spec covering every SIMD/AES
/// form (legacy and VEX) and all four `IMUL`/`MUL` encodings.
pub fn encode_spec() -> Gen<EncodeSpec> {
    let reg = u64_in(0..=15).map(|r| r as u8);
    let simd = {
        let form = usize_in(0..=SIMD_FORMS.len() - 1);
        let parts = pair(&pair(&form, &bool_any()), &pair(&reg, &rm_operand()));
        pair(&parts, &pair(&reg, &byte())).map(|(((form, vex), (reg, rm)), (vvvv, imm8))| {
            EncodeSpec::Simd {
                form,
                vex,
                reg,
                rm,
                vvvv,
                imm8,
            }
        })
    };
    let imul_reg = pair(&reg, &rm_operand()).map(|(reg, rm)| EncodeSpec::ImulRegRm { reg, rm });
    let imul_imm = pair(&pair(&reg, &rm_operand()), &pair(&bool_any(), &u128_any())).map(
        |((reg, rm), (is_imm8, imm))| EncodeSpec::ImulImm {
            reg,
            rm,
            imm8: is_imm8.then_some(imm as u8),
            imm32: imm as u32,
        },
    );
    let group3 = pair(&bool_any(), &rm_operand()).map(|(signed, rm)| {
        // Group-3 encodings carry no REX here, so clamp register rm
        // operands to the low bank.
        let rm = match rm {
            Rm::Reg(r) => Rm::Reg(r & 7),
            other => other,
        };
        EncodeSpec::MulGroup3 { signed, rm }
    });
    one_of(vec![simd, imul_reg, imul_imm, group3])
}

/// The bytes of one valid faultable encoding.
pub fn valid_encoding() -> Gen<Vec<u8>> {
    encode_spec().map(|spec| spec.encode())
}

/// Structure-aware decoder fuzz input: raw byte soup, pristine valid
/// encodings, bit-flipped / truncated / extended mutants of valid
/// encodings, and legal-prefix padding (which probes the 15-byte limit).
pub fn decoder_input() -> Gen<Vec<u8>> {
    const PREFIXES: [u8; 8] = [0x66, 0xF2, 0xF3, 0x2E, 0x3E, 0x26, 0x64, 0x65];
    let mutated = valid_encoding().bind(|bytes| {
        mutation().vec_up_to(4).map(move |muts| {
            let mut b = bytes.clone();
            for m in muts {
                m.apply(&mut b);
            }
            b
        })
    });
    let padded = pair(&usize_in(0..=14), &valid_encoding()).bind(move |(n, bytes)| {
        from_slice(&PREFIXES).vec_of(n).map(move |pad| {
            let mut out = pad;
            out.extend_from_slice(&bytes);
            out
        })
    });
    one_of(vec![bytes_up_to(18), valid_encoding(), mutated, padded])
}

/// One byte-level mutation applied to a valid encoding.
#[derive(Clone, Copy)]
enum Mutation {
    FlipBit(usize),
    Truncate(usize),
    Overwrite(usize, u8),
    Insert(usize, u8),
}

impl Mutation {
    fn apply(self, bytes: &mut Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        let len = bytes.len();
        match self {
            Mutation::FlipBit(pos) => bytes[(pos / 8) % len] ^= 1 << (pos % 8),
            Mutation::Truncate(keep) => bytes.truncate(keep % (len + 1)),
            Mutation::Overwrite(pos, v) => bytes[pos % len] = v,
            Mutation::Insert(pos, v) => bytes.insert(pos % (len + 1), v),
        }
    }
}

fn mutation() -> Gen<Mutation> {
    let pos = usize_in(0..=127);
    one_of(vec![
        pos.map(Mutation::FlipBit),
        pos.map(Mutation::Truncate),
        pair(&pos, &byte()).map(|(p, v)| Mutation::Overwrite(p, v)),
        pair(&pos, &byte()).map(|(p, v)| Mutation::Insert(p, v)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Source;
    use suit_isa::decode::decode;

    #[test]
    fn every_generated_spec_is_decodable() {
        let g = encode_spec();
        for seed in 0..500 {
            let spec = g.sample(&mut Source::fresh(seed));
            let bytes = spec.encode();
            let d = decode(&bytes).unwrap_or_else(|e| panic!("seed {seed} {spec:?}: {e}"));
            assert_eq!(d, spec.expected(), "seed {seed}");
        }
    }

    #[test]
    fn decoder_inputs_cover_valid_and_garbage() {
        let g = decoder_input();
        let (mut ok, mut err) = (0, 0);
        for seed in 0..500 {
            match decode(&g.sample(&mut Source::fresh(seed))) {
                Ok(_) => ok += 1,
                Err(_) => err += 1,
            }
        }
        assert!(ok > 50, "only {ok} valid decodes");
        assert!(err > 50, "only {err} rejections");
    }

    #[test]
    fn inst_descriptors_are_faultable() {
        let g = inst();
        for seed in 0..100 {
            assert!(g.sample(&mut Source::fresh(seed)).opcode.is_faultable());
        }
    }
}
