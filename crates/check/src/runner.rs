//! The property runner: corpus replay, random exploration, shrinking,
//! and failure reporting.

use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use suit_exec::Threads;
use suit_rng::SuitRng;

use crate::gen::Gen;
use crate::shrink::shrink;
use crate::source::Source;

/// What a property body may return. `()` passes unless the body panics;
/// `bool` fails on `false`; `Result` fails on `Err` with its message.
pub trait Outcome {
    /// `Some(reason)` if the property failed.
    fn failure(self) -> Option<String>;
}

impl Outcome for () {
    fn failure(self) -> Option<String> {
        None
    }
}

impl Outcome for bool {
    fn failure(self) -> Option<String> {
        if self {
            None
        } else {
            Some("property returned false".into())
        }
    }
}

impl Outcome for Result<(), String> {
    fn failure(self) -> Option<String> {
        self.err()
    }
}

/// A minimised property failure: everything needed to report, replay and
/// regression-pin it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// The property name.
    pub property: String,
    /// The case seed that produced the failure. Re-running the property
    /// with this seed (via corpus or [`Checker::seed`]) re-fails
    /// standalone and re-shrinks identically.
    pub seed: u64,
    /// `Debug` form of the originally generated counterexample.
    pub original_debug: String,
    /// Failure message of the original case.
    pub original_msg: String,
    /// `Debug` form of the shrunk, minimal counterexample.
    pub minimal_debug: String,
    /// Failure message of the minimal counterexample.
    pub minimal_msg: String,
    /// The accepted shrink steps, in order (deterministic per seed).
    pub trace: Vec<String>,
    /// Total shrink candidates evaluated.
    pub candidates: u64,
}

impl Failure {
    /// The full human-readable report the runner panics with.
    pub fn report(&self) -> String {
        format!(
            "suit-check: property '{}' failed\n\
             \x20 replay seed: {:#018x} (set SUIT_CHECK_SEED or commit a corpus .seed file)\n\
             \x20 original: {}\n\
             \x20   reason: {}\n\
             \x20 minimal:  {}\n\
             \x20   reason: {}\n\
             \x20 shrink: {} accepted steps / {} candidates\n{}",
            self.property,
            self.seed,
            self.original_debug,
            self.original_msg,
            self.minimal_debug,
            self.minimal_msg,
            self.trace.len(),
            self.candidates,
            self.trace
                .iter()
                .map(|s| format!("    {s}\n"))
                .collect::<String>()
        )
    }
}

/// Serialises shrinking (and its panic-hook silencing) across test
/// threads so concurrent failing properties do not interleave hooks.
static SHRINK_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the global panic hook silenced (shrinking evaluates
/// hundreds of intentionally panicking candidates).
fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let _guard = SHRINK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let out = f();
    panic::set_hook(prev);
    out
}

/// One case evaluation: sample, run the property, catch panics.
/// Returns the value's `Debug` form (if the generator completed) and the
/// failure message (if any).
fn run_case<T: Debug + 'static>(
    gen: &Gen<T>,
    prop: &dyn Fn(&T) -> Option<String>,
    src: &mut Source,
) -> (Option<String>, Option<String>) {
    // The value's Debug form is stashed outside the unwind boundary so a
    // panicking property still reports what input triggered it.
    let debug_cell = std::cell::RefCell::new(None);
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        let value = gen.sample(src);
        *debug_cell.borrow_mut() = Some(format!("{value:?}"));
        prop(&value)
    }));
    let debug = debug_cell.into_inner();
    match result {
        Ok(failure) => (debug, failure),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "panicked with a non-string payload".into());
            (debug, Some(format!("panic: {msg}")))
        }
    }
}

/// A named property check: replays its regression corpus, explores random
/// cases, and shrinks + reports the first failure.
///
/// ```
/// use suit_check::{gen, Checker};
///
/// Checker::new("arith::add_commutes").cases(200).check(
///     &gen::pair(&gen::u64_any(), &gen::u64_any()),
///     |&(a, b)| a.wrapping_add(b) == b.wrapping_add(a),
/// );
/// ```
pub struct Checker {
    name: String,
    cases: u64,
    seed: u64,
    corpus: Option<PathBuf>,
    workers: Threads,
}

/// Default number of random cases per property.
const DEFAULT_CASES: u64 = 256;
/// Default base seed for exploration (overridden by `SUIT_CHECK_SEED`).
const DEFAULT_SEED: u64 = 0x5017_C43C_0000_0001;

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    parsed.ok()
}

impl Checker {
    /// A checker for the property `name` (used in reports and corpus file
    /// names). The base seed honours `SUIT_CHECK_SEED` when set.
    pub fn new(name: &str) -> Self {
        Checker {
            name: name.to_string(),
            cases: DEFAULT_CASES,
            seed: env_u64("SUIT_CHECK_SEED").unwrap_or(DEFAULT_SEED),
            corpus: None,
            workers: Threads::Fixed(1),
        }
    }

    /// Sets the number of random cases to explore.
    pub fn cases(mut self, n: u64) -> Self {
        self.cases = n;
        self
    }

    /// Sets the case count to `SUIT_CHECK_CASES` when that is set (the CI
    /// fuzz-smoke dial), else `default_n`.
    pub fn cases_from_env_or(mut self, default_n: u64) -> Self {
        self.cases = env_u64("SUIT_CHECK_CASES").unwrap_or(default_n);
        self
    }

    /// Overrides the base exploration seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Opts into parallel random exploration with the given worker
    /// policy (default: sequential, `Threads::Fixed(1)`).
    ///
    /// Exploration scans cases in blocks; every case seed is still
    /// `root.fork(case)`, so which case fails does not depend on the
    /// worker count, and the *lowest* failing case index wins the block.
    /// Shrinking always runs sequentially from that seed, so the whole
    /// [`Failure`] — seed, minimal counterexample, shrink trace — is
    /// byte-identical to what a sequential run reports.
    pub fn workers(mut self, threads: Threads) -> Self {
        self.workers = threads;
        self
    }

    /// Attaches a regression corpus directory. Seeds committed there as
    /// `<name>-<seed>.seed` are replayed *before* random exploration, and
    /// new failures found by [`Checker::check`] are persisted to it.
    pub fn corpus(mut self, dir: impl AsRef<Path>) -> Self {
        self.corpus = Some(dir.as_ref().to_path_buf());
        self
    }

    /// Runs the property; on failure, shrinks it, persists the failing
    /// seed to the corpus (if configured) and panics with the report.
    pub fn check<T: Debug + 'static, R: Outcome>(
        &self,
        gen: &Gen<T>,
        prop: impl Fn(&T) -> R + Sync,
    ) {
        if let Some(failure) = self.check_report(gen, prop) {
            self.persist(failure.seed);
            panic!("{}", failure.report());
        }
    }

    /// Differential oracle: generates inputs and requires `impl_a` and
    /// `impl_b` to agree exactly; mismatches shrink like any failure.
    pub fn check_diff<T: Debug + 'static, O: Debug + PartialEq>(
        &self,
        gen: &Gen<T>,
        impl_a: impl Fn(&T) -> O + Sync,
        impl_b: impl Fn(&T) -> O + Sync,
    ) {
        self.check(gen, move |v| {
            let (a, b) = (impl_a(v), impl_b(v));
            if a == b {
                Ok(())
            } else {
                Err(format!("implementations disagree: a={a:?} vs b={b:?}"))
            }
        });
    }

    /// Like [`Checker::check`] but returns the failure instead of
    /// panicking and never writes to the corpus — for meta-tests that
    /// assert on shrink behaviour itself.
    pub fn check_report<T: Debug + 'static, R: Outcome>(
        &self,
        gen: &Gen<T>,
        prop: impl Fn(&T) -> R + Sync,
    ) -> Option<Failure> {
        let prop = move |v: &T| prop(v).failure();
        // Regression corpus first: committed seeds replay before any
        // random exploration.
        for seed in self.corpus_seeds() {
            if let Some(f) = self.run_seed(gen, &prop, seed) {
                return Some(f);
            }
        }
        // Random exploration: per-case seeds are forked from the base
        // seed so any single case replays standalone from its own seed.
        let root = SuitRng::seed_from_u64(self.seed);
        let workers = self.workers.count();
        if workers > 1 {
            return self.explore_parallel(gen, &prop, &root, workers);
        }
        for case in 0..self.cases {
            let case_seed = root.fork(case).root_seed();
            if let Some(f) = self.run_seed(gen, &prop, case_seed) {
                return Some(f);
            }
        }
        None
    }

    /// Parallel exploration: scans cases in index-ordered blocks of
    /// `workers * 16`, fanning each block out over the executor. A block
    /// reports the lowest failing case index it contains, so the winning
    /// seed — and therefore the sequentially re-run shrink — matches what
    /// a one-worker scan would find.
    fn explore_parallel<T: Debug + 'static>(
        &self,
        gen: &Gen<T>,
        prop: &(dyn Fn(&T) -> Option<String> + Sync),
        root: &SuitRng,
        workers: usize,
    ) -> Option<Failure> {
        let block = (workers as u64) * 16;
        let mut start = 0u64;
        while start < self.cases {
            let n = block.min(self.cases - start);
            // Failing cases panic inside run_case; quiet the hook for the
            // whole block so a failure does not spam per-worker traces.
            let fails = with_quiet_panics(|| {
                suit_exec::run(n as usize, Threads::Fixed(workers), |j| {
                    let case_seed = root.fork(start + j as u64).root_seed();
                    let mut src = Source::fresh(case_seed);
                    run_case(gen, prop, &mut src)
                        .1
                        .is_some()
                        .then_some(case_seed)
                })
            });
            // Lowest failing index in the block wins; shrink it
            // sequentially so the Failure is byte-identical to the
            // sequential path.
            if let Some(seed) = fails.into_iter().flatten().next() {
                return self.run_seed(gen, prop, seed);
            }
            start += n;
        }
        None
    }

    /// Replays exactly one seed (no corpus, no exploration).
    pub fn replay<T: Debug + 'static, R: Outcome>(
        &self,
        gen: &Gen<T>,
        prop: impl Fn(&T) -> R,
        seed: u64,
    ) -> Option<Failure> {
        let prop = move |v: &T| prop(v).failure();
        self.run_seed(gen, &prop, seed)
    }

    fn run_seed<T: Debug + 'static>(
        &self,
        gen: &Gen<T>,
        prop: &dyn Fn(&T) -> Option<String>,
        seed: u64,
    ) -> Option<Failure> {
        let mut src = Source::fresh(seed);
        let (debug, failure) = run_case(gen, prop, &mut src);
        let original_msg = failure?;
        let recorded = src.recorded().to_vec();

        let shrunk = with_quiet_panics(|| {
            shrink(&recorded, |choices| {
                let mut replay = Source::replay(choices);
                run_case(gen, prop, &mut replay).1.is_some()
            })
        });

        // Re-run the minimal candidate once to name it in the report.
        let mut replay = Source::replay(&shrunk.choices);
        let (min_debug, min_failure) = with_quiet_panics(|| run_case(gen, prop, &mut replay));
        Some(Failure {
            property: self.name.clone(),
            seed,
            original_debug: debug.unwrap_or_else(|| "<generator panicked>".into()),
            original_msg,
            minimal_debug: min_debug.unwrap_or_else(|| "<generator panicked>".into()),
            minimal_msg: min_failure.unwrap_or_else(|| "property passed on re-run".into()),
            trace: shrunk.trace,
            candidates: shrunk.candidates,
        })
    }

    /// Seeds committed for this property, in sorted file order.
    fn corpus_seeds(&self) -> Vec<u64> {
        let Some(dir) = &self.corpus else {
            return Vec::new();
        };
        let prefix = format!("{}-", sanitise(&self.name));
        let Ok(entries) = std::fs::read_dir(dir) else {
            return Vec::new();
        };
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with(&prefix) && n.ends_with(".seed"))
            .collect();
        names.sort();
        names
            .iter()
            .filter_map(|n| {
                let path = dir.join(n);
                let text = std::fs::read_to_string(path).ok()?;
                text.lines()
                    .map(str::trim)
                    .find(|l| !l.is_empty() && !l.starts_with('#'))
                    .and_then(|l| {
                        l.strip_prefix("0x")
                            .and_then(|h| u64::from_str_radix(h, 16).ok())
                            .or_else(|| l.parse().ok())
                    })
            })
            .collect()
    }

    /// Best-effort persistence of a failing seed to the corpus.
    fn persist(&self, seed: u64) {
        let Some(dir) = &self.corpus else { return };
        let name = format!("{}-{seed:016x}.seed", sanitise(&self.name));
        let body = format!(
            "# suit-check regression seed for property '{}'\n\
             # auto-replayed before random exploration; commit to pin the regression\n\
             {seed:#018x}\n",
            self.name
        );
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(dir.join(name), body);
    }
}

/// Maps a property name onto a filesystem-safe corpus file stem.
fn sanitise(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn passing_property_reports_nothing() {
        let ok = Checker::new("meta::tautology")
            .cases(64)
            .check_report(&gen::u64_any(), |_| true);
        assert!(ok.is_none());
    }

    #[test]
    fn failure_shrinks_to_the_boundary() {
        let f = Checker::new("meta::ge_1000")
            .cases(64)
            .check_report(&gen::u64_in(0..=100_000), |&v| v < 1_000)
            .expect("property must fail");
        assert_eq!(f.minimal_debug, "1000");
        assert!(f.minimal_msg.contains("false"));
    }

    #[test]
    fn shrinking_is_deterministic_and_replayable() {
        let run = || {
            Checker::new("meta::sum")
                .cases(128)
                .check_report(&gen::u64_in(0..=500).vec_up_to(12), |v| {
                    v.iter().sum::<u64>() < 700
                })
                .expect("property must fail")
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "same seed must give a byte-identical failure");
        assert!(!a.trace.is_empty());
        // The failing seed re-fails standalone, with the same shrink.
        let replayed = Checker::new("meta::sum")
            .replay(
                &gen::u64_in(0..=500).vec_up_to(12),
                |v: &Vec<u64>| v.iter().sum::<u64>() < 700,
                a.seed,
            )
            .expect("seed must re-fail");
        assert_eq!(replayed, a);
    }

    #[test]
    fn panics_are_caught_and_shrunk() {
        let f = Checker::new("meta::panics")
            .cases(64)
            .check_report(&gen::u64_in(0..=9999), |&v| {
                assert!(v < 500, "too big: {v}");
            })
            .expect("property must fail");
        assert!(f.original_msg.starts_with("panic:"), "{}", f.original_msg);
        assert_eq!(f.minimal_debug, "500");
    }

    #[test]
    fn check_diff_finds_the_divergence_point() {
        let f =
            Checker::new("meta::diff")
                .cases(64)
                .check_report(&gen::u64_in(0..=100_000), |&v| {
                    let broken = if v >= 4_321 { v + 1 } else { v };
                    let reference = v;
                    if broken == reference {
                        Ok(())
                    } else {
                        Err(format!("implementations disagree: {broken} vs {reference}"))
                    }
                });
        assert_eq!(f.expect("must fail").minimal_debug, "4321");
    }

    #[test]
    fn parallel_exploration_reports_the_sequential_failure() {
        let run = |threads: Threads| {
            Checker::new("meta::parallel")
                .cases(256)
                .workers(threads)
                .check_report(&gen::u64_in(0..=100_000), |&v| v < 1_000)
                .expect("property must fail")
        };
        let sequential = run(Threads::Fixed(1));
        for workers in [2, 4, 8] {
            assert_eq!(
                run(Threads::Fixed(workers)),
                sequential,
                "{workers} workers must report the same Failure as sequential"
            );
        }
    }

    #[test]
    fn corpus_roundtrip() {
        let dir = std::env::temp_dir().join(format!("suit-check-test-{}", std::process::id()));
        let checker = Checker::new("meta::corpus").cases(0).corpus(&dir);
        checker.persist(0xABCD);
        assert_eq!(checker.corpus_seeds(), vec![0xABCD]);
        // cases(0) means only the corpus is replayed.
        let f = checker.check_report(&gen::u64_any(), |_| false);
        assert_eq!(f.expect("corpus seed must fail").seed, 0xABCD);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
