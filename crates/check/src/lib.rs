//! # suit-check
//!
//! Deterministic property-testing and differential fuzzing for the SUIT
//! workspace — zero external dependencies, every failure replayable from
//! a single `u64` seed.
//!
//! SUIT's security argument rests on exact equivalences: the emulated
//! `AESENC`/GCM paths must be bit-identical to the hardware semantics,
//! and the `#DO` decoder must agree with the encoder on every faultable
//! encoding. This crate provides the correctness substrate those claims
//! are checked against:
//!
//! * [`Gen`] — composable generators over a recorded *choice stream*
//!   ([`Source`]): ints, byte blobs, `Vec128`, instruction descriptors,
//!   plus `map`/`bind`/collection combinators.
//! * **Integrated shrinking** — failures are minimised by editing the
//!   recorded choice sequence (block deletion, zeroing, per-choice
//!   binary search), so every combinator stack shrinks for free and the
//!   shrink trace is byte-identical across runs of the same seed.
//! * [`Checker`] — the runner: replays the committed regression corpus
//!   (`tests/corpus/*.seed`) before random exploration, persists new
//!   failing seeds, and reports a minimal counterexample + replay seed.
//! * [`Checker::check_diff`] — the differential oracle for
//!   reference-vs-optimised implementation pairs.
//! * [`gens`] — SUIT-specific generators, including the structure-aware
//!   byte-mutation inputs for the `suit_isa::decode` fuzz target.
//!
//! ```
//! use suit_check::{gen, Checker};
//!
//! Checker::new("doc::xor_involution").cases(500).check(
//!     &gen::pair(&gen::u128_any(), &gen::u128_any()),
//!     |&(a, b)| a ^ b ^ b == a,
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod gens;
pub mod runner;
pub mod shrink;
pub mod source;

pub use gen::Gen;
pub use runner::{Checker, Failure, Outcome};
pub use source::Source;

/// The workspace regression-corpus directory (`tests/corpus` at the repo
/// root), resolved relative to the *calling* crate's manifest so test
/// binaries find it regardless of the working directory cargo picks.
#[macro_export]
macro_rules! corpus_dir {
    () => {
        ::std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
    };
}
