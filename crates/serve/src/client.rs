//! A minimal blocking HTTP/1.1 client for the service — enough for the
//! CLI `client` subcommand, the CI smoke step, and the loopback e2e
//! tests. One request per connection (`Connection: close`).

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use crate::http::{read_response, ClientResponse};

/// Issues one request and reads the full response.
///
/// `body: None` sends a bare request (use for `GET`); `Some(body)`
/// sends it with `content-length`. `timeout` bounds both connect and
/// each read/write syscall.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    request_with_headers(addr, method, path, body, &[], timeout)
}

/// [`request`] with caller-supplied extra headers (e.g.
/// `("if-none-match", "\"suit-…\"")` for conditional requests).
/// Header names and values must be free of CR/LF — this client is for
/// trusted in-tree callers, but refuse header injection anyway.
pub fn request_with_headers(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    headers: &[(&str, &str)],
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    request_raw(
        addr,
        method,
        path,
        body.map(|b| (b.as_bytes(), "application/json")),
        headers,
        timeout,
    )
}

/// Issues one request with a binary body (e.g. a packed `SUITTRC2`
/// container for `POST /v1/trace`), sent as `application/octet-stream`.
pub fn request_bytes(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    request_raw(
        addr,
        method,
        path,
        Some((body, "application/octet-stream")),
        &[],
        timeout,
    )
}

/// The shared transport: `body` is raw bytes plus the `content-type`
/// to declare for them.
fn request_raw(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<(&[u8], &str)>,
    headers: &[(&str, &str)],
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    let sock_addr: std::net::SocketAddr = addr.parse().map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("invalid address '{addr}': {e}"),
        )
    })?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n");
    for (name, value) in headers {
        if name.contains(['\r', '\n', ':']) || value.contains(['\r', '\n']) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("invalid header '{name}'"),
            ));
        }
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    if let Some((b, content_type)) = body {
        head.push_str(&format!(
            "content-type: {content_type}\r\ncontent-length: {}\r\n",
            b.len()
        ));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if let Some((b, _)) = body {
        stream.write_all(b)?;
    }
    stream.flush()?;
    read_response(&mut stream).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// [`request`] with outcome folded to `Result<body, error-text>` —
/// non-2xx statuses become `Err` carrying the server's message.
pub fn request_text(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> Result<String, String> {
    let resp = request(addr, method, path, body, timeout).map_err(|e| e.to_string())?;
    let text = resp.text()?.to_string();
    if (200..300).contains(&resp.status) {
        Ok(text)
    } else {
        Err(format!("HTTP {}: {text}", resp.status))
    }
}
