//! A strict, total HTTP/1.1 request parser and response writer.
//!
//! Hand-rolled in the spirit of the in-tree JSON parser in
//! `suit-telemetry`: small, allocation-light, and — above all — *total*.
//! [`parse_request`] is a pure function over a byte buffer that either
//! asks for more bytes, yields a complete request, or returns a typed
//! error that maps onto an HTTP status. It never panics on any input;
//! `tests/serve_fuzz.rs` throws arbitrary and mutated bytes at it to pin
//! that, with regression seeds committed under `tests/corpus/`.
//!
//! Scope is deliberately narrow: `GET`/`POST`, `HTTP/1.0`/`1.1`,
//! `Content-Length` bodies only (no chunked transfer), explicit header
//! and body size limits. Everything outside that scope is a *clean*
//! error response, not undefined behaviour.

use std::io::{Read, Write};

/// Size limits enforced while parsing. Oversized inputs fail with
/// [`ParseError::HeadTooLarge`] / [`ParseError::BodyTooLarge`] before
/// the server buffers unbounded data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum byte length of the request line plus all headers
    /// (including the terminating blank line).
    pub max_head: usize,
    /// Maximum `Content-Length` accepted.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head: 8 * 1024,
            max_body: 1024 * 1024,
        }
    }
}

/// Request method. Anything other than `GET`/`POST` parses as [`Method::Other`]
/// so the router can answer `405` instead of the parser guessing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// A syntactically valid but unsupported method token.
    Other(String),
}

/// One parsed request. Header names are lowercased; values are trimmed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// The request target (always starts with `/`).
    pub path: String,
    /// `(name, value)` pairs in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (exactly `Content-Length` bytes; empty without one).
    pub body: Vec<u8>,
    /// Whether the request used `HTTP/1.1` (governs keep-alive default).
    pub http11: bool,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the peer asked to close the connection after this
    /// exchange (`Connection: close`, or HTTP/1.0 without keep-alive).
    ///
    /// `Connection` is a *comma-separated token list* (RFC 9112 §9.6) —
    /// `Connection: close, TE` asks to close just as plainly as
    /// `Connection: close` — so membership is decided per token, with
    /// `close` winning over `keep-alive` when a peer sends both.
    pub fn wants_close(&self) -> bool {
        if self.has_connection_token("close") {
            true
        } else if self.has_connection_token("keep-alive") {
            false
        } else {
            !self.http11
        }
    }

    /// Whether any `connection` header lists `token` (case-insensitive,
    /// optional whitespace around each list element).
    fn has_connection_token(&self, token: &str) -> bool {
        self.headers
            .iter()
            .filter(|(k, _)| k == "connection")
            .flat_map(|(_, v)| v.split(','))
            .any(|t| t.trim_matches([' ', '\t']).eq_ignore_ascii_case(token))
    }

    /// Evaluates `If-None-Match` against a response's entity tag
    /// (`etag` in its quoted wire form). Per RFC 9110 §13.1.2: `*`
    /// matches any current representation, otherwise the field is a
    /// comma-separated list of entity-tags compared with the *weak*
    /// comparison (a `W/` prefix on either side is ignored). Absent
    /// header → no match. Total over arbitrary header bytes — malformed
    /// lists simply fail to match.
    pub fn if_none_match(&self, etag: &str) -> bool {
        let strong = etag.strip_prefix("W/").unwrap_or(etag);
        self.headers
            .iter()
            .filter(|(k, _)| k == "if-none-match")
            .flat_map(|(_, v)| v.split(','))
            .map(|t| t.trim_matches([' ', '\t']))
            .any(|t| t == "*" || t.strip_prefix("W/").unwrap_or(t) == strong)
    }
}

/// Outcome of a parse attempt over the bytes received so far.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parse {
    /// The buffer does not yet hold a full request; read more bytes.
    Partial,
    /// A complete request, plus how many buffer bytes it consumed.
    Complete(Request, usize),
}

/// A request that can never become valid. Each kind maps onto the HTTP
/// status the server answers with before closing the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Head (request line + headers) exceeds [`Limits::max_head`] → 431.
    HeadTooLarge,
    /// Declared `Content-Length` exceeds [`Limits::max_body`] → 413.
    BodyTooLarge,
    /// Unsupported HTTP version → 505.
    BadVersion(String),
    /// Syntactically invalid request → 400, with a reason.
    Malformed(String),
}

impl ParseError {
    /// The HTTP status code this error is answered with.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::HeadTooLarge => 431,
            ParseError::BodyTooLarge => 413,
            ParseError::BadVersion(_) => 505,
            ParseError::Malformed(_) => 400,
        }
    }

    /// Human-readable reason, used in the structured JSON error body.
    pub fn message(&self) -> String {
        match self {
            ParseError::HeadTooLarge => "request head exceeds the header size limit".into(),
            ParseError::BodyTooLarge => "request body exceeds the body size limit".into(),
            ParseError::BadVersion(v) => format!("unsupported HTTP version '{v}'"),
            ParseError::Malformed(m) => format!("malformed request: {m}"),
        }
    }
}

/// Finds `\r\n\r\n` in `buf`, returning the index *after* it.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Attempts to parse one request from the front of `buf`.
///
/// Total over arbitrary input: returns [`Parse::Partial`] when more
/// bytes could complete the request, [`Parse::Complete`] with the
/// consumed length otherwise, and [`ParseError`] when no continuation
/// of `buf` can be a valid request within `limits`. Re-parsing the
/// consumed prefix of a `Complete` yields the identical request (the
/// fuzz target pins this).
pub fn parse_request(buf: &[u8], limits: &Limits) -> Result<Parse, ParseError> {
    let Some(end) = head_end(buf) else {
        // No blank line yet. If the head already overflows the limit it
        // never will fit; otherwise ask for more bytes.
        if buf.len() > limits.max_head {
            return Err(ParseError::HeadTooLarge);
        }
        return Ok(Parse::Partial);
    };
    if end > limits.max_head {
        return Err(ParseError::HeadTooLarge);
    }
    let head = std::str::from_utf8(&buf[..end - 4])
        .map_err(|_| ParseError::Malformed("head is not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let (method, path, http11) = parse_request_line(request_line)?;

    let mut headers = Vec::new();
    let mut content_length: Option<u64> = None;
    for line in lines {
        let (name, value) = parse_header_line(line)?;
        if name == "content-length" {
            if content_length.is_some() {
                return Err(ParseError::Malformed("duplicate content-length".into()));
            }
            let n: u64 = value
                .parse()
                .map_err(|_| ParseError::Malformed(format!("bad content-length '{value}'")))?;
            content_length = Some(n);
        }
        if name == "transfer-encoding" {
            return Err(ParseError::Malformed(
                "transfer-encoding is not supported; use content-length".into(),
            ));
        }
        headers.push((name, value));
    }

    let body_len = content_length.unwrap_or(0);
    if body_len > limits.max_body as u64 {
        return Err(ParseError::BodyTooLarge);
    }
    let body_len = body_len as usize;
    let total = end + body_len;
    if buf.len() < total {
        return Ok(Parse::Partial);
    }
    Ok(Parse::Complete(
        Request {
            method,
            path,
            headers,
            body: buf[end..total].to_vec(),
            http11,
        },
        total,
    ))
}

fn parse_request_line(line: &str) -> Result<(Method, String, bool), ParseError> {
    let mut parts = line.split(' ');
    let (Some(method), Some(path), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::Malformed(format!(
            "request line needs 'METHOD PATH VERSION', got '{line}'"
        )));
    };
    if method.is_empty() || method.len() > 16 || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ParseError::Malformed(format!("bad method '{method}'")));
    }
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        other => Method::Other(other.into()),
    };
    if !path.starts_with('/') || !path.bytes().all(|b| (0x21..=0x7e).contains(&b)) {
        return Err(ParseError::Malformed(format!("bad request path '{path}'")));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return Err(ParseError::BadVersion(other.into())),
    };
    Ok((method, path.into(), http11))
}

fn parse_header_line(line: &str) -> Result<(String, String), ParseError> {
    let Some((name, value)) = line.split_once(':') else {
        return Err(ParseError::Malformed(format!(
            "header line without ':': '{line}'"
        )));
    };
    if name.is_empty()
        || !name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
    {
        return Err(ParseError::Malformed(format!("bad header name '{name}'")));
    }
    let value = value.trim_matches([' ', '\t']);
    // RFC 9110 §5.5: field values are visible ASCII / obs-text plus SP
    // and HTAB; all other control bytes are refused.
    if value.bytes().any(|b| (b < 0x20 && b != b'\t') || b == 0x7f) {
        return Err(ParseError::Malformed(format!(
            "control byte in header '{name}'"
        )));
    }
    Ok((name.to_ascii_lowercase(), value.to_string()))
}

/// An outgoing response: status, JSON body, and optional extras.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (always JSON in this service; empty on `304`).
    pub body: String,
    /// `Retry-After` seconds, sent on `429` backpressure responses.
    pub retry_after: Option<u32>,
    /// Strong entity tag (quoted wire form), sent on cacheable
    /// responses and on the `304`s they validate against.
    pub etag: Option<String>,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn ok(body: impl Into<String>) -> Self {
        Response {
            status: 200,
            body: body.into(),
            retry_after: None,
            etag: None,
        }
    }

    /// A structured JSON error: `{"error":{"status":...,"message":...}}`.
    pub fn error(status: u16, message: &str) -> Self {
        Response {
            status,
            body: format!(
                "{{\"error\":{{\"status\":{status},\"message\":{}}}}}",
                suit_telemetry::json::escape(message)
            ),
            retry_after: None,
            etag: None,
        }
    }

    /// A `429` whose honest `Retry-After` estimate rides in both the
    /// header and the JSON body (`retry_after_s`), so clients that only
    /// read bodies can still back off correctly.
    pub fn too_many_requests(message: &str, retry_after_s: u32) -> Self {
        Response {
            status: 429,
            body: format!(
                "{{\"error\":{{\"status\":429,\"message\":{},\"retry_after_s\":{retry_after_s}}}}}",
                suit_telemetry::json::escape(message)
            ),
            retry_after: Some(retry_after_s),
            etag: None,
        }
    }

    /// A bodiless `304 Not Modified` carrying the entity tag the
    /// client's `If-None-Match` revalidated.
    pub fn not_modified(etag: String) -> Self {
        Response {
            status: 304,
            body: String::new(),
            retry_after: None,
            etag: Some(etag),
        }
    }

    /// The standard reason phrase for this status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            304 => "Not Modified",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            505 => "HTTP Version Not Supported",
            _ => "Unknown",
        }
    }

    /// Serialises the response head + body. `keep_alive` controls the
    /// `Connection` header the server advertises back.
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            self.reason(),
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        if let Some(secs) = self.retry_after {
            out.push_str(&format!("retry-after: {secs}\r\n"));
        }
        if let Some(etag) = &self.etag {
            out.push_str(&format!("etag: {etag}\r\n"));
        }
        out.push_str("\r\n");
        let mut bytes = out.into_bytes();
        bytes.extend_from_slice(self.body.as_bytes());
        bytes
    }

    /// Writes the response to `w` (best-effort; peers may vanish).
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        w.write_all(&self.to_bytes(keep_alive))
    }
}

/// A response as the in-tree client sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn text(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|e| format!("response body is not UTF-8: {e}"))
    }
}

/// Reads and parses one HTTP response from `r` (client side). Requires a
/// `content-length` header (the in-tree server always sends one).
pub fn read_response(r: &mut impl Read) -> Result<ClientResponse, String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let end = loop {
        if let Some(end) = head_end(&buf) {
            break end;
        }
        if buf.len() > 64 * 1024 {
            return Err("response head too large".into());
        }
        match r.read(&mut chunk) {
            Ok(0) => return Err("connection closed before response head".into()),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(format!("read: {e}")),
        }
    };
    let head = std::str::from_utf8(&buf[..end - 4])
        .map_err(|_| "response head is not UTF-8".to_string())?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let mut parts = status_line.splitn(3, ' ');
    let (Some(version), Some(code), _) = (parts.next(), parts.next(), parts.next()) else {
        return Err(format!("bad status line '{status_line}'"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(format!("bad status line '{status_line}'"));
    }
    let status: u16 = code
        .parse()
        .map_err(|_| format!("bad status code '{code}'"))?;
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) =
            parse_header_line(line).map_err(|e| format!("bad response header: {}", e.message()))?;
        headers.push((name, value));
    }
    let len: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .ok_or("response without content-length")?
        .1
        .parse()
        .map_err(|_| "bad response content-length".to_string())?;
    let mut body = buf[end..].to_vec();
    while body.len() < len {
        match r.read(&mut chunk) {
            Ok(0) => return Err("connection closed mid-body".into()),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(format!("read: {e}")),
        }
    }
    body.truncate(len);
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(bytes: &[u8]) -> (Request, usize) {
        match parse_request(bytes, &Limits::default()) {
            Ok(Parse::Complete(r, n)) => (r, n),
            other => panic!("expected complete parse, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_get_without_body() {
        let (r, n) = parse_ok(b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.path, "/v1/healthz");
        assert!(r.http11);
        assert_eq!(r.header("host"), Some("x"));
        assert!(r.body.is_empty());
        assert_eq!(n, b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n".len());
    }

    #[test]
    fn parses_a_post_with_content_length_body() {
        let raw = b"POST /v1/simulate HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"extra";
        let (r, n) = parse_ok(raw);
        assert_eq!(r.method, Method::Post);
        assert_eq!(r.body, b"{\"a\"");
        // Trailing bytes beyond the body belong to the next request.
        assert_eq!(n, raw.len() - 5);
    }

    #[test]
    fn partial_until_blank_line_and_body_complete() {
        let limits = Limits::default();
        assert_eq!(
            parse_request(b"POST /x HTTP/1.1\r\nContent-", &limits),
            Ok(Parse::Partial)
        );
        assert_eq!(
            parse_request(
                b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc",
                &limits
            ),
            Ok(Parse::Partial)
        );
    }

    #[test]
    fn enforces_head_and_body_limits() {
        let limits = Limits {
            max_head: 64,
            max_body: 8,
        };
        let long_head = format!("GET /x HTTP/1.1\r\nh: {}\r\n\r\n", "a".repeat(100));
        assert_eq!(
            parse_request(long_head.as_bytes(), &limits),
            Err(ParseError::HeadTooLarge)
        );
        // Oversized heads are refused even before the blank line arrives.
        assert_eq!(
            parse_request(&[b'a'; 100], &limits),
            Err(ParseError::HeadTooLarge)
        );
        assert_eq!(
            parse_request(b"POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\n", &limits),
            Err(ParseError::BodyTooLarge)
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        let limits = Limits::default();
        for bad in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /x HTTP/2\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon\r\n\r\n",
            b"GET /x HTTP/1.1\r\n: empty\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: two\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 1\r\n\r\n",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"\xff\xfe\r\n\r\n",
        ] {
            assert!(
                parse_request(bad, &limits).is_err(),
                "accepted {:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn connection_semantics_follow_version_and_header() {
        let (r, _) = parse_ok(b"GET / HTTP/1.1\r\n\r\n");
        assert!(!r.wants_close());
        let (r, _) = parse_ok(b"GET / HTTP/1.0\r\n\r\n");
        assert!(r.wants_close());
        let (r, _) = parse_ok(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(r.wants_close());
        let (r, _) = parse_ok(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(!r.wants_close());
    }

    #[test]
    fn connection_is_a_token_list_not_a_literal() {
        // RFC 9112 §9.6: `close` anywhere in the comma-separated list
        // closes the connection — the old literal match missed these.
        for head in [
            &b"GET / HTTP/1.1\r\nConnection: close, TE\r\n\r\n"[..],
            b"GET / HTTP/1.1\r\nConnection: TE, close\r\n\r\n",
            b"GET / HTTP/1.1\r\nConnection: TE ,\tClOsE , upgrade\r\n\r\n",
            b"GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n",
            b"GET / HTTP/1.0\r\nConnection: keep-alive, close\r\n\r\n",
        ] {
            let (r, _) = parse_ok(head);
            assert!(r.wants_close(), "{:?}", String::from_utf8_lossy(head));
        }
        let (r, _) = parse_ok(b"GET / HTTP/1.0\r\nConnection: Keep-Alive, TE\r\n\r\n");
        assert!(!r.wants_close(), "keep-alive inside a list must count");
        // Unrelated tokens fall back to the version default…
        let (r, _) = parse_ok(b"GET / HTTP/1.1\r\nConnection: upgrade\r\n\r\n");
        assert!(!r.wants_close());
        // …and a token merely *containing* `close` is not `close`.
        let (r, _) = parse_ok(b"GET / HTTP/1.1\r\nConnection: closet, disclose\r\n\r\n");
        assert!(!r.wants_close());
    }

    #[test]
    fn if_none_match_handles_lists_weak_tags_and_star() {
        let req = |header: &str| {
            let head = format!("GET / HTTP/1.1\r\nIf-None-Match: {header}\r\n\r\n");
            parse_ok(head.as_bytes()).0
        };
        let etag = "\"suit-abc\"";
        assert!(req("\"suit-abc\"").if_none_match(etag));
        assert!(req("\"other\", \"suit-abc\"").if_none_match(etag));
        assert!(req("W/\"suit-abc\"").if_none_match(etag), "weak comparison");
        assert!(req("*").if_none_match(etag));
        assert!(!req("\"other\"").if_none_match(etag));
        assert!(!req("suit-abc").if_none_match(etag), "unquoted ≠ quoted");
        assert!(!req("").if_none_match(etag));
        let (no_header, _) = parse_ok(b"GET / HTTP/1.1\r\n\r\n");
        assert!(!no_header.if_none_match(etag));
    }

    #[test]
    fn not_modified_is_bodiless_with_the_etag() {
        let resp = Response::not_modified("\"suit-123\"".into());
        let got = read_response(&mut &resp.to_bytes(true)[..]).unwrap();
        assert_eq!(got.status, 304);
        assert!(got.body.is_empty());
        assert_eq!(got.header("etag"), Some("\"suit-123\""));
        assert_eq!(got.header("content-length"), Some("0"));
    }

    #[test]
    fn retry_after_rides_in_header_and_body() {
        let resp = Response::too_many_requests("queue full", 7);
        let got = read_response(&mut &resp.to_bytes(false)[..]).unwrap();
        assert_eq!(got.status, 429);
        assert_eq!(got.header("retry-after"), Some("7"));
        let v = suit_telemetry::json::parse(got.text().unwrap()).expect("valid JSON");
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("retry_after_s"))
                .and_then(|s| s.as_f64()),
            Some(7.0)
        );
    }

    #[test]
    fn response_round_trips_through_the_client_reader() {
        let resp = Response::ok("{\"status\":\"ok\"}");
        let bytes = resp.to_bytes(true);
        let got = read_response(&mut &bytes[..]).unwrap();
        assert_eq!(got.status, 200);
        assert_eq!(got.body, resp.body.as_bytes());
        assert_eq!(got.header("connection"), Some("keep-alive"));

        let err = Response::error(429, "queue full");
        let err = Response {
            retry_after: Some(1),
            ..err
        };
        let got = read_response(&mut &err.to_bytes(false)[..]).unwrap();
        assert_eq!(got.status, 429);
        assert_eq!(got.header("retry-after"), Some("1"));
        assert!(got.text().unwrap().contains("queue full"));
    }

    #[test]
    fn error_bodies_are_valid_json() {
        let r = Response::error(400, "bad \"quoted\" thing\n");
        let v = suit_telemetry::json::parse(&r.body).expect("valid JSON");
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("status"))
                .and_then(|s| s.as_f64()),
            Some(400.0)
        );
    }
}
