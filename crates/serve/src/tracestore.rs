//! The bounded, content-addressed server-side trace store behind
//! `POST /v1/trace`.
//!
//! Uploaded `SUITTRC2` containers are kept in memory under a **hard**
//! double bound — at most `max_traces` entries and `max_bytes` of
//! container bytes. Unlike the result cache there is no eviction: a
//! stored trace is an input other requests depend on (a client that
//! uploaded a trace expects `/v1/simulate-trace` to find it), so
//! silently dropping one would turn a previously valid request into a
//! `404`. A full store refuses new uploads with a structured `413`
//! instead; `DELETE` semantics can be layered on later if needed.
//!
//! Identity is content-addressed with the same FNV-1a 128 hash the
//! result cache uses ([`crate::cache::content_hash`]): the trace ID is
//! the 32-hex-digit digest of the container bytes, so re-uploading the
//! same bytes is idempotent — it answers with the existing entry (even
//! when the store is full) and never stores a second copy. Correctness
//! does not ride on the hash alone: an insert whose ID collides with a
//! stored entry holding *different* bytes is refused rather than
//! aliased.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::cache::content_hash;

/// One stored trace: the exact uploaded container bytes plus the
/// summary the upload response and `GET /v1/trace/<id>` report.
#[derive(Debug, Clone)]
pub struct StoredTrace {
    /// The container bytes (shared so queued replay jobs clone cheaply).
    pub bytes: Arc<Vec<u8>>,
    /// Workload name from the container header.
    pub workload: String,
    /// Instructions per cycle from the container header.
    pub ipc: f64,
    /// Virtual trace length in instructions.
    pub total_insts: u64,
    /// Bursts across all chunks.
    pub bursts: u64,
    /// Chunk count.
    pub chunks: u64,
}

/// Outcome of an insert attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inserted {
    /// The trace was stored; this upload created the entry.
    Created,
    /// The identical trace was already stored (idempotent re-upload).
    Existing,
    /// The store is full (entries or bytes) and the trace is new → `413`.
    Full,
    /// The ID is taken by an entry with different bytes (a content-hash
    /// collision) → refused, never aliased.
    IdCollision,
}

struct Inner {
    map: HashMap<String, StoredTrace>,
    bytes: usize,
}

/// The bounded trace store. Both bounds are enforced on every insert;
/// either bound at zero disables uploads entirely (every new trace is
/// [`Inserted::Full`]).
pub struct TraceStore {
    max_traces: usize,
    max_bytes: usize,
    inner: Mutex<Inner>,
}

impl TraceStore {
    /// A store bounded by `max_traces` entries and `max_bytes` of
    /// container bytes.
    pub fn new(max_traces: usize, max_bytes: usize) -> TraceStore {
        TraceStore {
            max_traces,
            max_bytes,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                bytes: 0,
            }),
        }
    }

    /// The content-addressed ID for `bytes`: 32 lowercase hex digits of
    /// the FNV-1a 128 digest.
    pub fn id_for(bytes: &[u8]) -> String {
        format!("{:032x}", content_hash(bytes))
    }

    /// Inserts a validated trace under its content ID. Idempotent: the
    /// same bytes answer [`Inserted::Existing`] even when the store is
    /// full. Never evicts.
    pub fn insert(&self, id: &str, trace: StoredTrace) -> Inserted {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = inner.map.get(id) {
            return if *existing.bytes == *trace.bytes {
                Inserted::Existing
            } else {
                Inserted::IdCollision
            };
        }
        if inner.map.len() >= self.max_traces
            || inner.bytes.saturating_add(trace.bytes.len()) > self.max_bytes
        {
            return Inserted::Full;
        }
        inner.bytes += trace.bytes.len();
        inner.map.insert(id.to_string(), trace);
        Inserted::Created
    }

    /// Looks a stored trace up by ID.
    pub fn get(&self, id: &str) -> Option<StoredTrace> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.map.get(id).cloned()
    }

    /// Current entry count and container-byte total (for `/v1/metrics`).
    pub fn usage(&self) -> (usize, usize) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        (inner.map.len(), inner.bytes)
    }

    /// The configured bounds, `(traces, bytes)`.
    pub fn capacity(&self) -> (usize, usize) {
        (self.max_traces, self.max_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(bytes: &[u8]) -> StoredTrace {
        StoredTrace {
            bytes: Arc::new(bytes.to_vec()),
            workload: "w".into(),
            ipc: 1.0,
            total_insts: 1,
            bursts: 1,
            chunks: 1,
        }
    }

    #[test]
    fn insert_is_content_addressed_and_idempotent() {
        let store = TraceStore::new(4, 1 << 20);
        let bytes = b"container".to_vec();
        let id = TraceStore::id_for(&bytes);
        assert_eq!(store.insert(&id, trace(&bytes)), Inserted::Created);
        assert_eq!(store.insert(&id, trace(&bytes)), Inserted::Existing);
        assert_eq!(store.usage().0, 1, "re-upload must not store a copy");
        assert_eq!(*store.get(&id).unwrap().bytes, bytes);
    }

    #[test]
    fn bounds_refuse_new_traces_but_not_reuploads() {
        let store = TraceStore::new(1, 1 << 20);
        let a = b"aaaa".to_vec();
        let b = b"bbbb".to_vec();
        assert_eq!(
            store.insert(&TraceStore::id_for(&a), trace(&a)),
            Inserted::Created
        );
        assert_eq!(
            store.insert(&TraceStore::id_for(&b), trace(&b)),
            Inserted::Full
        );
        // Idempotent re-upload still answers Existing at capacity.
        assert_eq!(
            store.insert(&TraceStore::id_for(&a), trace(&a)),
            Inserted::Existing
        );

        let tight = TraceStore::new(8, 6);
        assert_eq!(
            tight.insert(&TraceStore::id_for(&a), trace(&a)),
            Inserted::Created
        );
        assert_eq!(
            tight.insert(&TraceStore::id_for(&b), trace(&b)),
            Inserted::Full,
            "byte budget must hold"
        );
    }

    #[test]
    fn colliding_ids_with_different_bytes_are_refused() {
        let store = TraceStore::new(4, 1 << 20);
        let id = TraceStore::id_for(b"one");
        assert_eq!(store.insert(&id, trace(b"one")), Inserted::Created);
        assert_eq!(store.insert(&id, trace(b"two")), Inserted::IdCollision);
        assert_eq!(*store.get(&id).unwrap().bytes, b"one".to_vec());
    }

    #[test]
    fn zero_bounds_disable_uploads() {
        let store = TraceStore::new(0, 1 << 20);
        let id = TraceStore::id_for(b"x");
        assert_eq!(store.insert(&id, trace(b"x")), Inserted::Full);
    }
}
