//! The resident service: acceptor, bounded admission queue, worker pool,
//! keep-alive connections with an idle reaper, and graceful shutdown.
//!
//! ## Threading model
//!
//! * **Acceptor** — the thread inside [`Server::run`] polls the listener
//!   (non-blocking accept + short sleep so the shutdown flag is always
//!   observed) and spawns one scoped thread per connection, capped at
//!   [`ServeConfig::max_connections`] (`503` beyond the cap).
//! * **Connection threads** — own the socket: read with short timeouts
//!   (accumulating idle time so stale keep-alive connections are reaped
//!   after [`ServeConfig::idle_timeout`]), parse with [`crate::http`]'s
//!   strict limits, answer control endpoints inline, and hand compute
//!   jobs to the admission queue.
//! * **Worker pool** — [`ServeConfig::threads`] workers pop jobs from the
//!   bounded queue and run them; sweeps inside a job fan out over
//!   [`suit_exec`] with the same thread policy, which is what keeps every
//!   response byte-identical at any worker count.
//!
//! ## Backpressure and deadlines
//!
//! The admission queue holds at most [`ServeConfig::queue_depth`] jobs.
//! A request arriving while the queue is full is answered `429` with a
//! `Retry-After` header *immediately* — the server never buffers
//! unbounded work. Each job may carry a deadline (`deadline_ms` body
//! field, else [`ServeConfig::default_deadline_ms`]): expired jobs are
//! answered `408` without running, and batch jobs re-check the deadline
//! between fan-out points.
//!
//! ## Graceful shutdown
//!
//! `POST /v1/shutdown` (or [`Server::shutdown_handle`]) flips one atomic
//! flag. The acceptor stops accepting, workers drain every queued job,
//! connection threads finish their in-flight exchange with
//! `Connection: close`, and [`Server::run`] joins them all before
//! returning — in-flight work completes, nothing is dropped.

use std::collections::VecDeque;
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use suit_exec::Threads;
use suit_telemetry::{Counter, Hist, Telemetry};

use crate::api::{self, Deadline, ExecError};
use crate::cache::{self, Cache, FlightTable, Role};
use crate::http::{parse_request, Limits, Method, Parse, Request, Response};
use crate::tracestore::{Inserted, StoredTrace, TraceStore};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker-pool size; also the `suit-exec` fan-out policy inside
    /// batch jobs (responses are byte-identical at every value).
    pub threads: Threads,
    /// Bounded admission-queue capacity (≥ 1); a full queue answers
    /// `429` + `Retry-After`.
    pub queue_depth: usize,
    /// Request parse limits (max head / body bytes).
    pub limits: Limits,
    /// Keep-alive connections idle longer than this are reaped.
    pub idle_timeout: Duration,
    /// Default per-request deadline when the body names none.
    pub default_deadline_ms: Option<u64>,
    /// Maximum concurrent connections (`503` beyond).
    pub max_connections: usize,
    /// Result-cache entry bound (`--cache-entries`); `0` disables the
    /// cache *and* request coalescing — every request computes.
    pub cache_entries: usize,
    /// Result-cache byte budget over stored response bodies
    /// (`--cache-bytes`); `0` disables the cache like `cache_entries`.
    pub cache_bytes: usize,
    /// Trace-store entry bound (`--trace-entries`): at most this many
    /// uploaded trace containers; a full store answers `413`.
    pub trace_entries: usize,
    /// Trace-store byte budget over stored container bytes
    /// (`--trace-bytes`); `0` (like `trace_entries: 0`) refuses every
    /// upload.
    pub trace_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: Threads::Fixed(1),
            queue_depth: 32,
            limits: Limits::default(),
            idle_timeout: Duration::from_secs(5),
            default_deadline_ms: None,
            max_connections: 64,
            cache_entries: 256,
            cache_bytes: 16 * 1024 * 1024,
            trace_entries: 16,
            trace_bytes: 64 * 1024 * 1024,
        }
    }
}

/// How often blocked reads/accepts re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// One queued compute job.
struct QueuedJob {
    job: api::Job,
    endpoint: Endpoint,
    deadline: Deadline,
    accepted: Instant,
    tx: SyncSender<Response>,
}

/// The compute endpoints (indexes the per-endpoint latency histograms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    Simulate,
    Batch,
    Faults,
    SimulateTrace,
    Scenario,
}

impl Endpoint {
    fn latency_hist(self) -> Hist {
        match self {
            Endpoint::Simulate => Hist::ServeSimulateUs,
            Endpoint::Batch => Hist::ServeBatchUs,
            Endpoint::Faults => Hist::ServeFaultsUs,
            Endpoint::SimulateTrace => Hist::ServeSimulateTraceUs,
            Endpoint::Scenario => Hist::ServeScenarioUs,
        }
    }
}

/// Shared server state.
struct State {
    cfg: ServeConfig,
    tele: Telemetry,
    queue: Mutex<VecDeque<QueuedJob>>,
    job_ready: Condvar,
    inflight: AtomicUsize,
    conns: AtomicUsize,
    shutdown: AtomicBool,
    /// Content-addressed result cache (canonical request → response
    /// bytes + ETag), bounded by `cache_entries`/`cache_bytes`.
    cache: Cache,
    /// Coalescing table: identical in-flight requests share one
    /// computation.
    flights: FlightTable,
    /// Bounded store of uploaded trace containers, content-addressed
    /// by `POST /v1/trace`.
    traces: TraceStore,
}

/// A handle that requests graceful shutdown from outside the server —
/// the programmatic equivalent of `POST /v1/shutdown` (e.g. a signal
/// handler flipping the flag).
#[derive(Clone)]
pub struct ShutdownHandle(Arc<State>);

impl ShutdownHandle {
    /// Begins graceful shutdown: stop accepting, drain, then return
    /// from [`Server::run`].
    pub fn shutdown(&self) {
        self.0.begin_shutdown();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.0.shutdown.load(Ordering::SeqCst)
    }
}

impl State {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake every idle worker so it can observe the flag and drain.
        let _guard = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        self.job_ready.notify_all();
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// The bound, not-yet-running service.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind(addr: &str, cfg: ServeConfig) -> std::io::Result<Server> {
        assert!(cfg.queue_depth >= 1, "queue depth must be at least 1");
        let listener = TcpListener::bind(addr)?;
        let cache = Cache::new(cfg.cache_entries, cfg.cache_bytes);
        let traces = TraceStore::new(cfg.trace_entries, cfg.trace_bytes);
        Ok(Server {
            listener,
            state: Arc::new(State {
                cfg,
                tele: Telemetry::with_capacity(16),
                queue: Mutex::new(VecDeque::new()),
                job_ready: Condvar::new(),
                inflight: AtomicUsize::new(0),
                conns: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
                cache,
                flights: FlightTable::new(),
                traces,
            }),
        })
    }

    /// The bound local address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can request graceful shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.state))
    }

    /// Serves until shutdown is requested, then drains queued and
    /// in-flight jobs and joins every thread before returning.
    pub fn run(self) -> std::io::Result<()> {
        let state = &self.state;
        self.listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            for _ in 0..state.cfg.threads.count() {
                scope.spawn(|| worker_loop(state));
            }
            while !state.shutting_down() {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        if state.conns.load(Ordering::SeqCst) >= state.cfg.max_connections {
                            let mut s = stream;
                            let _ = Response::error(503, "connection limit reached")
                                .write_to(&mut s, false);
                            continue;
                        }
                        state.conns.fetch_add(1, Ordering::SeqCst);
                        scope.spawn(move || {
                            handle_connection(state, stream);
                            state.conns.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        state.begin_shutdown();
                        return Err(e);
                    }
                }
            }
            Ok(())
        })
        // All scoped threads (workers drained the queue, connections
        // finished their in-flight exchange) have joined here.
    }
}

/// Worker: pop jobs until the queue is empty *and* shutdown was
/// requested — queued jobs are drained, never dropped.
fn worker_loop(state: &State) {
    loop {
        let queued = {
            let mut q = state.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if state.shutting_down() {
                    return;
                }
                q = state.job_ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        state.inflight.fetch_add(1, Ordering::SeqCst);
        let response = run_job(state, &queued);
        state.inflight.fetch_sub(1, Ordering::SeqCst);
        state
            .tele
            .observe(queued.endpoint.latency_hist(), elapsed_us(queued.accepted));
        // The connection thread may have given up (deadline, peer gone);
        // a dead receiver is fine.
        let _ = queued.tx.send(response);
    }
}

fn elapsed_us(since: Instant) -> u64 {
    since.elapsed().as_micros().min(u64::MAX as u128) as u64
}

fn run_job(state: &State, queued: &QueuedJob) -> Response {
    if queued.deadline.expired() {
        state.tele.count(Counter::ServeDeadlineExpired);
        return Response::error(408, "deadline expired while queued");
    }
    let threads = state.cfg.threads;
    let job = queued.job.clone();
    let deadline = queued.deadline;
    // Robustness boundary: a panicking engine must cost one request, not
    // a worker thread (and therefore, eventually, the whole pool).
    match catch_unwind(AssertUnwindSafe(|| api::execute(&job, threads, deadline))) {
        Ok(Ok(body)) => Response::ok(body),
        Ok(Err(ExecError::DeadlineExpired)) => {
            state.tele.count(Counter::ServeDeadlineExpired);
            Response::error(408, "deadline expired during execution")
        }
        Err(_) => Response::error(500, "internal error while executing the job"),
    }
}

/// Connection thread: keep-alive request loop with idle reaping.
fn handle_connection(state: &State, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut idle = Duration::ZERO;
    loop {
        match parse_request(&buf, &state.cfg.limits) {
            Err(e) => {
                state.tele.count(Counter::ServeBadRequests);
                let _ = Response::error(e.status(), &e.message()).write_to(&mut stream, false);
                return;
            }
            Ok(Parse::Complete(request, consumed)) => {
                buf.drain(..consumed);
                idle = Duration::ZERO;
                let response = dispatch(state, &request);
                let keep = !request.wants_close() && !state.shutting_down();
                if response.write_to(&mut stream, keep).is_err() || !keep {
                    return;
                }
            }
            Ok(Parse::Partial) => {
                // Reap connections that sit idle (or stall mid-request)
                // past the idle timeout; drop idle keep-alives at
                // shutdown so the drain is not held up by open sockets.
                if idle >= state.cfg.idle_timeout || (state.shutting_down() && buf.is_empty()) {
                    if !buf.is_empty() {
                        let _ = Response::error(408, "timed out waiting for a complete request")
                            .write_to(&mut stream, false);
                    }
                    return;
                }
                match stream.read(&mut chunk) {
                    Ok(0) => return,
                    Ok(n) => {
                        buf.extend_from_slice(&chunk[..n]);
                        idle = Duration::ZERO;
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        idle += POLL;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => return,
                }
            }
        }
    }
}

/// Routes one parsed request. Control endpoints answer inline;
/// compute endpoints go through the admission queue.
fn dispatch(state: &State, request: &Request) -> Response {
    let started = Instant::now();
    match (&request.method, request.path.as_str()) {
        (Method::Get, "/v1/healthz") => {
            state.tele.count(Counter::ServeRequests);
            let status = if state.shutting_down() {
                "draining"
            } else {
                "ok"
            };
            Response::ok(format!("{{\"status\":\"{status}\"}}"))
        }
        (Method::Get, "/v1/metrics") => {
            state.tele.count(Counter::ServeRequests);
            let body = metrics_json(state);
            state
                .tele
                .observe(Hist::ServeMetricsUs, elapsed_us(started));
            Response::ok(body)
        }
        (Method::Post, "/v1/shutdown") => {
            state.tele.count(Counter::ServeRequests);
            state.begin_shutdown();
            Response::ok("{\"status\":\"draining\"}")
        }
        // The upload body is the raw binary container — no UTF-8 pass.
        (Method::Post, "/v1/trace") => trace_upload(state, &request.body, started),
        (Method::Get, path) if path.starts_with("/v1/trace/") => {
            let id = &path["/v1/trace/".len()..];
            match state.traces.get(id) {
                Some(t) => {
                    state.tele.count(Counter::ServeRequests);
                    Response::ok(format!("{{\"trace\":{}}}", api::trace_info_json(id, &t)))
                }
                None => {
                    state.tele.count(Counter::ServeBadRequests);
                    Response::error(404, &format!("no stored trace '{id}'"))
                }
            }
        }
        (Method::Post, "/v1/simulate-trace") => {
            let body = match std::str::from_utf8(&request.body) {
                Ok(s) => s,
                Err(_) => {
                    state.tele.count(Counter::ServeBadRequests);
                    return Response::error(400, "request body is not valid UTF-8");
                }
            };
            match api::parse_simulate_trace(body) {
                Err(api::BadRequest(msg)) => {
                    state.tele.count(Counter::ServeBadRequests);
                    Response::error(400, &msg)
                }
                Ok((spec, deadline_ms)) => match state.traces.get(&spec.trace) {
                    None => {
                        state.tele.count(Counter::ServeBadRequests);
                        Response::error(
                            404,
                            &format!(
                                "no stored trace '{}' (upload it with POST /v1/trace)",
                                spec.trace
                            ),
                        )
                    }
                    Some(stored) => {
                        let deadline =
                            Deadline::after_ms(deadline_ms.or(state.cfg.default_deadline_ms));
                        let job = api::Job::SimulateTrace(Box::new(api::TraceJob { spec, stored }));
                        submit_cached(
                            state,
                            request,
                            job,
                            Endpoint::SimulateTrace,
                            deadline,
                            started,
                        )
                    }
                },
            }
        }
        (Method::Post, path @ ("/v1/simulate" | "/v1/batch" | "/v1/faults" | "/v1/scenario")) => {
            let body = match std::str::from_utf8(&request.body) {
                Ok(s) => s,
                Err(_) => {
                    state.tele.count(Counter::ServeBadRequests);
                    return Response::error(400, "request body is not valid UTF-8");
                }
            };
            let (endpoint, parsed) = match path {
                "/v1/simulate" => (Endpoint::Simulate, api::parse_simulate(body)),
                "/v1/batch" => (Endpoint::Batch, api::parse_batch(body)),
                "/v1/scenario" => (Endpoint::Scenario, api::parse_scenario(body)),
                _ => (Endpoint::Faults, api::parse_faults(body)),
            };
            match parsed {
                Err(api::BadRequest(msg)) => {
                    state.tele.count(Counter::ServeBadRequests);
                    Response::error(400, &msg)
                }
                Ok((job, deadline_ms)) => {
                    let deadline =
                        Deadline::after_ms(deadline_ms.or(state.cfg.default_deadline_ms));
                    submit_cached(state, request, job, endpoint, deadline, started)
                }
            }
        }
        (Method::Get | Method::Post, path)
            if matches!(
                path,
                "/v1/healthz"
                    | "/v1/metrics"
                    | "/v1/shutdown"
                    | "/v1/simulate"
                    | "/v1/batch"
                    | "/v1/faults"
                    | "/v1/scenario"
                    | "/v1/trace"
                    | "/v1/simulate-trace"
            ) || path.starts_with("/v1/trace/") =>
        {
            state.tele.count(Counter::ServeBadRequests);
            Response::error(405, &format!("wrong method for {path}"))
        }
        (Method::Other(m), _) => {
            state.tele.count(Counter::ServeBadRequests);
            Response::error(405, &format!("unsupported method '{m}'"))
        }
        (_, path) => {
            state.tele.count(Counter::ServeBadRequests);
            Response::error(404, &format!("no such endpoint '{path}'"))
        }
    }
}

/// `POST /v1/trace`: validate the uploaded container end to end, then
/// insert it into the bounded store under its content-addressed ID.
///
/// Validation streams every chunk through the decoder once — index,
/// chunk CRCs, every burst record — so replay jobs can trust stored
/// bytes unconditionally (`replay_trace` opens them infallibly).
/// Corrupt or truncated uploads are a structured `400`, a full store is
/// `413`, and re-uploading identical bytes is idempotent (`200` with
/// `"created":false`) even when the store is full.
fn trace_upload(state: &State, bytes: &[u8], started: Instant) -> Response {
    let resp = trace_upload_inner(state, bytes);
    state
        .tele
        .observe(Hist::ServeTraceUploadUs, elapsed_us(started));
    resp
}

fn trace_upload_inner(state: &State, bytes: &[u8]) -> Response {
    let reader = match suit_store::open_bytes(bytes) {
        Ok(r) => r,
        Err(e) => {
            state.tele.count(Counter::ServeBadRequests);
            return Response::error(400, &format!("invalid trace container: {e}"));
        }
    };
    // Full decode pass: every chunk is decompressed and CRC-checked,
    // every burst record validated.
    let mut bursts = reader.bursts();
    for _ in bursts.by_ref() {}
    let reader = match bursts.finish() {
        Ok(r) => r,
        Err(e) => {
            state.tele.count(Counter::ServeBadRequests);
            return Response::error(400, &format!("invalid trace container: {e}"));
        }
    };
    let info = reader.info();
    if info.bursts == 0 || info.meta.total_insts == 0 {
        state.tele.count(Counter::ServeBadRequests);
        return Response::error(400, "trace is empty (no bursts or zero virtual length)");
    }
    let id = TraceStore::id_for(bytes);
    let stored = StoredTrace {
        bytes: Arc::new(bytes.to_vec()),
        workload: info.meta.name.clone(),
        ipc: info.meta.ipc,
        total_insts: info.meta.total_insts,
        bursts: info.bursts,
        chunks: info.chunks,
    };
    let body = |created: bool, t: &StoredTrace| {
        format!(
            "{{\"created\":{created},\"trace\":{}}}",
            api::trace_info_json(&id, t)
        )
    };
    match state.traces.insert(&id, stored.clone()) {
        Inserted::Created => {
            state.tele.count(Counter::ServeRequests);
            state.tele.count(Counter::ServeTraceUploads);
            Response::ok(body(true, &stored))
        }
        Inserted::Existing => {
            state.tele.count(Counter::ServeRequests);
            state.tele.count(Counter::ServeTraceDedup);
            Response::ok(body(false, &stored))
        }
        Inserted::Full => {
            state.tele.count(Counter::ServeBadRequests);
            state.tele.count(Counter::ServeTraceStoreFull);
            let (entries, used) = state.traces.usage();
            let (cap_entries, cap_bytes) = state.traces.capacity();
            Response::error(
                413,
                &format!(
                    "trace store is full ({entries}/{cap_entries} traces, \
                     {used}/{cap_bytes} bytes); raise --trace-entries/--trace-bytes"
                ),
            )
        }
        Inserted::IdCollision => {
            state.tele.count(Counter::ServeBadRequests);
            Response::error(
                500,
                "trace ID collision: different bytes hash to a stored ID",
            )
        }
    }
}

/// The cache-aware front of the compute path.
///
/// Order matters for the determinism contract: a **hit** returns the
/// exact stored bytes (byte-identical to a fresh computation, because
/// the engines are pure functions of the canonical request); a **miss**
/// either *leads* — runs the job through the admission queue, stores a
/// `200` body, and publishes the outcome — or *follows* an identical
/// in-flight request and receives the leader's outcome verbatim,
/// including `429`/`408`/`500` failures. `If-None-Match` revalidation
/// happens per request (each waiter compares its own header), so a
/// coalesced client with a fresh copy gets its `304` while the others
/// get the body. With the cache disabled this is a pass-through to
/// [`submit`].
fn submit_cached(
    state: &State,
    request: &Request,
    job: api::Job,
    endpoint: Endpoint,
    deadline: Deadline,
    accepted: Instant,
) -> Response {
    if !state.cache.enabled() {
        return submit(state, job, endpoint, deadline, accepted);
    }
    let key = cache::canonical_job(&job);
    if let Some(hit) = state.cache.get(&key) {
        state.tele.count(Counter::ServeRequests);
        state.tele.count(Counter::ServeCacheHits);
        let resp = revalidate(state, request, hit);
        state
            .tele
            .observe(Hist::ServeCacheHitUs, elapsed_us(accepted));
        return resp;
    }
    match state.flights.join(&key) {
        Role::Leader(flight) => {
            state.tele.count(Counter::ServeCacheMisses);
            let mut resp = submit(state, job, endpoint, deadline, accepted);
            if resp.status == 200 {
                let etag = cache::etag_for(&key);
                resp.etag = Some(etag.clone());
                let evicted = state.cache.insert(&key, etag, resp.body.clone());
                for _ in 0..evicted {
                    state.tele.count(Counter::ServeCacheEvictions);
                }
            }
            // Retire the flight before answering so late arrivals hit
            // the cache instead of a finished flight.
            state.flights.publish(&key, &flight, resp.clone());
            conditional(state, request, resp)
        }
        Role::Follower(flight) => {
            state.tele.count(Counter::ServeRequests);
            state.tele.count(Counter::ServeCacheCoalesced);
            let resp = flight.wait();
            conditional(state, request, resp)
        }
    }
}

/// Converts a freshly cached hit into this request's answer: `304` when
/// its `If-None-Match` revalidates, the stored bytes otherwise.
fn revalidate(state: &State, request: &Request, hit: cache::CachedResponse) -> Response {
    if request.if_none_match(&hit.etag) {
        state.tele.count(Counter::ServeNotModified);
        return Response::not_modified(hit.etag);
    }
    let mut resp = Response::ok(hit.body);
    resp.etag = Some(hit.etag);
    resp
}

/// Applies conditional-request semantics to a computed `200`.
fn conditional(state: &State, request: &Request, resp: Response) -> Response {
    if resp.status == 200 {
        if let Some(etag) = &resp.etag {
            if request.if_none_match(etag) {
                state.tele.count(Counter::ServeNotModified);
                return Response::not_modified(etag.clone());
            }
        }
    }
    resp
}

/// An honest `Retry-After` for a full queue: the time to drain what is
/// queued at the endpoint's recently observed pace — queue depth × p50
/// job latency — clamped to `1..=60` seconds. Before any job has
/// completed there is no observed rate, so fall back to 1 s.
fn retry_after_s(state: &State, endpoint: Endpoint, queued: usize) -> u32 {
    let snap = state.tele.snapshot();
    let hist = snap.hist(endpoint.latency_hist());
    if hist.count() == 0 {
        return 1;
    }
    let p50_us = hist.quantile(0.5);
    let drain_us = (queued as u64).saturating_add(1).saturating_mul(p50_us);
    drain_us.div_ceil(1_000_000).clamp(1, 60) as u32
}

/// Admission: enqueue within the bound or answer `429` immediately.
fn submit(
    state: &State,
    job: api::Job,
    endpoint: Endpoint,
    deadline: Deadline,
    accepted: Instant,
) -> Response {
    if state.shutting_down() {
        return Response::error(503, "server is draining");
    }
    let (tx, rx): (SyncSender<Response>, Receiver<Response>) = std::sync::mpsc::sync_channel(1);
    {
        let mut q = state.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() >= state.cfg.queue_depth {
            let queued = q.len();
            drop(q);
            state.tele.count(Counter::ServeRejected);
            return Response::too_many_requests(
                "admission queue is full; retry later",
                retry_after_s(state, endpoint, queued),
            );
        }
        q.push_back(QueuedJob {
            job,
            endpoint,
            deadline,
            accepted,
            tx,
        });
        state.job_ready.notify_one();
    }
    state.tele.count(Counter::ServeRequests);
    match rx.recv() {
        Ok(response) => response,
        // The worker died mid-job (it never drops the sender otherwise).
        Err(_) => Response::error(500, "worker failed while executing the job"),
    }
}

/// The live `/v1/metrics` document: request counters, per-endpoint
/// latency histograms (p50/p90/p99/max over log₂ buckets), and queue
/// gauges.
fn metrics_json(state: &State) -> String {
    let snap = state.tele.snapshot();
    let lat = |h: Hist| {
        let s = snap.hist(h);
        format!(
            "{{\"count\":{},\"mean_us\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"max_us\":{}}}",
            s.count(),
            api::json_num(s.mean()),
            s.quantile(0.5),
            s.quantile(0.9),
            s.quantile(0.99),
            s.max,
        )
    };
    let queued = state.queue.lock().unwrap_or_else(|e| e.into_inner()).len();
    let (cache_entries, cache_bytes) = state.cache.usage();
    let (cap_entries, cap_bytes) = state.cache.capacity();
    let (trace_entries, trace_bytes) = state.traces.usage();
    let (trace_cap_entries, trace_cap_bytes) = state.traces.capacity();
    format!(
        "{{\"requests\":{{\"accepted\":{},\"rejected\":{},\"bad\":{},\"deadline_expired\":{}}},\
         \"latency_us\":{{\"simulate\":{},\"batch\":{},\"faults\":{},\"scenario\":{},\
         \"metrics\":{},\"trace_upload\":{},\"simulate_trace\":{}}},\
         \"cache\":{{\"enabled\":{},\"hits\":{},\"misses\":{},\"coalesced\":{},\"evictions\":{},\
         \"not_modified\":{},\"entries\":{},\"bytes\":{},\"capacity_entries\":{},\
         \"capacity_bytes\":{},\"hit_latency_us\":{}}},\
         \"traces\":{{\"entries\":{},\"bytes\":{},\"capacity_entries\":{},\"capacity_bytes\":{},\
         \"uploads\":{},\"dedup\":{},\"store_full\":{}}},\
         \"queue\":{{\"depth\":{},\"capacity\":{},\"inflight\":{}}},\
         \"workers\":{},\"draining\":{}}}",
        snap.counter(Counter::ServeRequests),
        snap.counter(Counter::ServeRejected),
        snap.counter(Counter::ServeBadRequests),
        snap.counter(Counter::ServeDeadlineExpired),
        lat(Hist::ServeSimulateUs),
        lat(Hist::ServeBatchUs),
        lat(Hist::ServeFaultsUs),
        lat(Hist::ServeScenarioUs),
        lat(Hist::ServeMetricsUs),
        lat(Hist::ServeTraceUploadUs),
        lat(Hist::ServeSimulateTraceUs),
        state.cache.enabled(),
        snap.counter(Counter::ServeCacheHits),
        snap.counter(Counter::ServeCacheMisses),
        snap.counter(Counter::ServeCacheCoalesced),
        snap.counter(Counter::ServeCacheEvictions),
        snap.counter(Counter::ServeNotModified),
        cache_entries,
        cache_bytes,
        cap_entries,
        cap_bytes,
        lat(Hist::ServeCacheHitUs),
        trace_entries,
        trace_bytes,
        trace_cap_entries,
        trace_cap_bytes,
        snap.counter(Counter::ServeTraceUploads),
        snap.counter(Counter::ServeTraceDedup),
        snap.counter(Counter::ServeTraceStoreFull),
        queued,
        state.cfg.queue_depth,
        state.inflight.load(Ordering::SeqCst),
        state.cfg.threads.count(),
        state.shutting_down(),
    )
}
