//! Endpoint schemas: strict validation of JSON request bodies into typed
//! job specs, execution over the workspace engines, and deterministic
//! JSON serialisation of the results.
//!
//! Validation is strict in the same spirit as `suit-cli`'s argument
//! handling: unknown fields, wrong types, unknown workload/CPU/strategy
//! names and zero instruction budgets are all `400` errors with a
//! structured message — never silently ignored, never a panic.
//!
//! Serialisation is a pure function of the result values: floats are
//! written with Rust's shortest round-trip `Display` (deterministic
//! across platforms) and non-finite values map to `null`, so a batch
//! response is byte-identical to serialising the equivalent direct
//! `suit-sim` API call — the loopback e2e test pins this at several
//! worker-thread counts.

use std::time::Instant;

use suit_core::strategy::StrategyParams;
use suit_core::{AdaptiveConfig, OperatingStrategy};
use suit_exec::Threads;
use suit_faults::inject::Campaign;
use suit_faults::vmin::ChipVminModel;
use suit_hw::{CpuKind, CpuModel, UndervoltLevel};
use suit_isa::TABLE1;
use suit_rng::SuitRng;
use suit_scenarios::ScenarioConfig;
use suit_sim::analytic::simulate_emulation;
use suit_sim::engine::{run_stream, simulate, SimConfig};
use suit_sim::experiment::{run_table6, RowResult};
use suit_sim::result::RunResult;
use suit_telemetry::json::{escape, parse, Value};
use suit_trace::profile;

use crate::tracestore::StoredTrace;

/// A request that failed validation (`400`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadRequest(pub String);

/// Why a job did not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The request's deadline expired before or during execution (`408`).
    DeadlineExpired,
}

/// A wall-clock deadline, cooperatively checked between simulation
/// bursts (batch points, campaign shards). `None` never expires.
#[derive(Debug, Clone, Copy)]
pub struct Deadline(pub Option<Instant>);

impl Deadline {
    /// A deadline `ms` milliseconds from now (`None` → never expires).
    pub fn after_ms(ms: Option<u64>) -> Self {
        Deadline(ms.map(|m| Instant::now() + std::time::Duration::from_millis(m)))
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.0.is_some_and(|t| Instant::now() >= t)
    }
}

/// One validated compute job, ready to run on a worker.
#[derive(Debug, Clone)]
pub enum Job {
    /// `POST /v1/simulate`: a single workload point (boxed to keep the
    /// enum variants close in size).
    Simulate(Box<SimPoint>),
    /// `POST /v1/batch`: a sweep fanned out over `suit-exec`.
    Batch(BatchSpec),
    /// `POST /v1/faults`: a fault-injection campaign.
    Faults(FaultsSpec),
    /// `POST /v1/simulate-trace`: streamed replay of a stored trace,
    /// one point per strategy fanned out over `suit-exec`.
    SimulateTrace(Box<TraceJob>),
    /// `POST /v1/scenario`: an SRAM fault-domain or Scrooge
    /// attacker-economics campaign over `suit-scenarios`.
    Scenario(Box<ScenarioConfig>),
}

/// A single simulation point (the CLI `simulate` surface as JSON).
#[derive(Debug, Clone)]
pub struct SimPoint {
    /// Workload name (see `suit-cli list`).
    pub workload: String,
    /// CPU model key: `a` | `b` | `c`.
    pub cpu: CpuModel,
    /// Strategy key: `fv` | `f` | `v` | `e` | `adaptive`.
    pub strategy: String,
    /// Undervolt level.
    pub level: UndervoltLevel,
    /// Cores sharing the DVFS domain.
    pub cores: usize,
    /// Optional instruction cap.
    pub insts: Option<u64>,
    /// Simulation seed.
    pub seed: u64,
}

/// A batch sweep: either the full Table 6 harness or a workload list.
#[derive(Debug, Clone)]
pub enum BatchSpec {
    /// The full Table 6 sweep (`{"sweep":"table6"}`), optionally capped.
    Table6 {
        /// Per-workload instruction cap.
        max_insts: Option<u64>,
    },
    /// An explicit workload list sharing one configuration template.
    /// Job `i` simulates `workloads[i]` with seed `fork(i)` of `seed`,
    /// so the response is byte-identical at any worker-thread count.
    Workloads {
        /// Workload names (or the expansion of `"all"`).
        workloads: Vec<String>,
        /// The shared configuration template (its `workload` is unused;
        /// boxed to keep the enum variants close in size).
        template: Box<SimPoint>,
    },
}

/// The validated body of `POST /v1/simulate-trace` — everything but the
/// stored trace itself, which the server resolves from the trace store
/// by ID before queueing a [`TraceJob`].
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Content-addressed trace ID from `POST /v1/trace` (32 hex digits).
    pub trace: String,
    /// CPU model key: `a` | `b` | `c`.
    pub cpu: CpuModel,
    /// Strategy keys to replay, one engine run each. `e` (closed-form
    /// emulation) needs an analytic workload profile and is rejected.
    pub strategies: Vec<String>,
    /// Undervolt level.
    pub level: UndervoltLevel,
    /// Optional instruction cap per replay.
    pub insts: Option<u64>,
    /// Root seed; replay `i` runs with `fork(i)`.
    pub seed: u64,
}

/// A queued trace replay: the validated spec plus the stored container
/// it resolved to (shared bytes, so queue clones are cheap).
#[derive(Debug, Clone)]
pub struct TraceJob {
    /// The validated request.
    pub spec: TraceSpec,
    /// The stored trace the ID resolved to.
    pub stored: StoredTrace,
}

/// A fault-campaign request (the Table 1 sweep surface as JSON).
#[derive(Debug, Clone)]
pub struct FaultsSpec {
    /// Cores in the sampled chip.
    pub cores: usize,
    /// Per-core Vmin variation sigma, mV.
    pub sigma_mv: f64,
    /// Campaign seed (also seeds the chip sample).
    pub seed: u64,
    /// Executions per (combination, instruction).
    pub executions: u32,
}

/// Parses a request body and rejects any non-finite number anywhere in
/// it. The in-tree JSON parser maps overflow literals like `1e999` onto
/// ±∞ (as `f64::from_str` does), and JSON has no representation for
/// NaN/Infinity — so a body smuggling one can never round-trip and is a
/// structured `400` here, before any field validation sees it.
fn parse_body(body: &str) -> Result<Value, BadRequest> {
    let v = parse(body).map_err(|e| BadRequest(format!("invalid JSON body: {e}")))?;
    reject_non_finite(&v)?;
    Ok(v)
}

fn reject_non_finite(v: &Value) -> Result<(), BadRequest> {
    match v {
        Value::Num(n) if !n.is_finite() => Err(BadRequest(
            "non-finite number in request body (JSON cannot represent NaN or Infinity)".into(),
        )),
        Value::Arr(items) => items.iter().try_for_each(reject_non_finite),
        Value::Obj(pairs) => pairs.iter().try_for_each(|(_, v)| reject_non_finite(v)),
        _ => Ok(()),
    }
}

fn obj<'a>(v: &'a Value, allowed: &[&str]) -> Result<&'a [(String, Value)], BadRequest> {
    let Value::Obj(pairs) = v else {
        return Err(BadRequest("request body must be a JSON object".into()));
    };
    for (k, _) in pairs {
        if !allowed.contains(&k.as_str()) {
            return Err(BadRequest(format!(
                "unknown field '{k}' (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(pairs)
}

fn get_str(v: &Value, key: &str) -> Result<Option<String>, BadRequest> {
    match v.get(key) {
        None => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(BadRequest(format!("field '{key}' must be a string"))),
    }
}

fn get_u64(v: &Value, key: &str) -> Result<Option<u64>, BadRequest> {
    match v.get(key) {
        None => Ok(None),
        Some(Value::Num(n)) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => {
            Ok(Some(*n as u64))
        }
        Some(_) => Err(BadRequest(format!(
            "field '{key}' must be a non-negative integer"
        ))),
    }
}

fn get_f64(v: &Value, key: &str) -> Result<Option<f64>, BadRequest> {
    match v.get(key) {
        None => Ok(None),
        Some(Value::Num(n)) => Ok(Some(*n)),
        Some(_) => Err(BadRequest(format!("field '{key}' must be a number"))),
    }
}

fn parse_cpu(key: Option<String>) -> Result<CpuModel, BadRequest> {
    match key.as_deref().unwrap_or("c") {
        "a" => Ok(CpuModel::i9_9900k()),
        "b" => Ok(CpuModel::ryzen_7700x()),
        "c" => Ok(CpuModel::xeon_4208()),
        other => Err(BadRequest(format!(
            "unknown cpu '{other}' (expected a, b or c)"
        ))),
    }
}

fn parse_level(offset: Option<u64>) -> Result<UndervoltLevel, BadRequest> {
    match offset.unwrap_or(97) {
        70 => Ok(UndervoltLevel::Mv70),
        97 => Ok(UndervoltLevel::Mv97),
        other => Err(BadRequest(format!(
            "unknown offset '{other}' (expected 70 or 97)"
        ))),
    }
}

const STRATEGIES: [&str; 5] = ["fv", "f", "v", "e", "adaptive"];

/// Fields shared by `/v1/simulate` and the batch template.
const POINT_FIELDS: [&str; 8] = [
    "workload",
    "cpu",
    "strategy",
    "offset",
    "cores",
    "insts",
    "seed",
    "deadline_ms",
];

fn parse_point(v: &Value, require_workload: bool) -> Result<SimPoint, BadRequest> {
    let workload = match get_str(v, "workload")? {
        Some(name) => {
            profile::by_name(&name).ok_or_else(|| {
                BadRequest(format!("unknown workload '{name}' (see `suit-cli list`)"))
            })?;
            name
        }
        None if require_workload => {
            return Err(BadRequest("missing field 'workload'".into()));
        }
        None => String::new(),
    };
    let strategy = get_str(v, "strategy")?.unwrap_or_else(|| "fv".into());
    if !STRATEGIES.contains(&strategy.as_str()) {
        return Err(BadRequest(format!(
            "unknown strategy '{strategy}' (expected {})",
            STRATEGIES.join(", ")
        )));
    }
    let insts = get_u64(v, "insts")?;
    if insts == Some(0) {
        return Err(BadRequest("field 'insts' must be at least 1".into()));
    }
    let cores = get_u64(v, "cores")?.unwrap_or(1);
    if cores == 0 {
        return Err(BadRequest("field 'cores' must be at least 1".into()));
    }
    Ok(SimPoint {
        workload,
        cpu: parse_cpu(get_str(v, "cpu")?)?,
        strategy,
        level: parse_level(get_u64(v, "offset")?)?,
        cores: cores as usize,
        insts,
        seed: get_u64(v, "seed")?.unwrap_or(0x5017),
    })
}

/// Validates the body of `POST /v1/simulate`.
pub fn parse_simulate(body: &str) -> Result<(Job, Option<u64>), BadRequest> {
    let v = parse_body(body)?;
    obj(&v, &POINT_FIELDS)?;
    let deadline_ms = get_u64(&v, "deadline_ms")?;
    Ok((Job::Simulate(Box::new(parse_point(&v, true)?)), deadline_ms))
}

/// Validates the body of `POST /v1/batch`.
pub fn parse_batch(body: &str) -> Result<(Job, Option<u64>), BadRequest> {
    let v = parse_body(body)?;
    let mut fields = vec!["sweep", "max_insts", "workloads"];
    fields.extend(POINT_FIELDS);
    obj(&v, &fields)?;
    let deadline_ms = get_u64(&v, "deadline_ms")?;
    match get_str(&v, "sweep")? {
        Some(sweep) if sweep == "table6" => {
            if v.get("workloads").is_some() {
                return Err(BadRequest(
                    "'sweep' and 'workloads' are mutually exclusive".into(),
                ));
            }
            let max_insts = get_u64(&v, "max_insts")?;
            if max_insts == Some(0) {
                return Err(BadRequest("field 'max_insts' must be at least 1".into()));
            }
            Ok((Job::Batch(BatchSpec::Table6 { max_insts }), deadline_ms))
        }
        Some(other) => Err(BadRequest(format!(
            "unknown sweep '{other}' (expected table6)"
        ))),
        None => {
            let workloads: Vec<String> = match v.get("workloads") {
                Some(Value::Str(s)) if s == "all" => {
                    profile::all().iter().map(|p| p.name.to_string()).collect()
                }
                Some(Value::Arr(items)) => {
                    let mut names = Vec::with_capacity(items.len());
                    for item in items {
                        let Value::Str(name) = item else {
                            return Err(BadRequest(
                                "field 'workloads' must be an array of names".into(),
                            ));
                        };
                        if profile::by_name(name).is_none() {
                            return Err(BadRequest(format!("unknown workload '{name}'")));
                        }
                        names.push(name.clone());
                    }
                    names
                }
                Some(_) => {
                    return Err(BadRequest(
                        "field 'workloads' must be an array of names or \"all\"".into(),
                    ))
                }
                None => {
                    return Err(BadRequest(
                        "missing field 'workloads' (or \"sweep\":\"table6\")".into(),
                    ))
                }
            };
            if workloads.is_empty() {
                return Err(BadRequest("field 'workloads' must not be empty".into()));
            }
            let template = Box::new(parse_point(&v, false)?);
            Ok((
                Job::Batch(BatchSpec::Workloads {
                    workloads,
                    template,
                }),
                deadline_ms,
            ))
        }
    }
}

/// Validates the body of `POST /v1/simulate-trace` into a [`TraceSpec`].
/// The trace ID is syntax-checked here; resolving it against the store
/// (and the `404` for an unknown ID) is the server's job.
pub fn parse_simulate_trace(body: &str) -> Result<(TraceSpec, Option<u64>), BadRequest> {
    let v = parse_body(body)?;
    obj(
        &v,
        &[
            "trace",
            "cpu",
            "strategy",
            "strategies",
            "offset",
            "insts",
            "seed",
            "deadline_ms",
        ],
    )?;
    let deadline_ms = get_u64(&v, "deadline_ms")?;
    let trace = get_str(&v, "trace")?.ok_or_else(|| BadRequest("missing field 'trace'".into()))?;
    if trace.len() != 32
        || !trace
            .bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
    {
        return Err(BadRequest(
            "field 'trace' must be a 32-hex-digit trace ID (from POST /v1/trace)".into(),
        ));
    }
    let check_strategy = |s: &str| -> Result<(), BadRequest> {
        if s == "e" {
            return Err(BadRequest(
                "strategy 'e' is closed-form over an analytic profile; recorded traces replay \
                 with fv, f, v or adaptive"
                    .into(),
            ));
        }
        if !STRATEGIES.contains(&s) {
            return Err(BadRequest(format!(
                "unknown strategy '{s}' (expected fv, f, v or adaptive)"
            )));
        }
        Ok(())
    };
    let strategies = match (get_str(&v, "strategy")?, v.get("strategies")) {
        (Some(_), Some(_)) => {
            return Err(BadRequest(
                "'strategy' and 'strategies' are mutually exclusive".into(),
            ));
        }
        (Some(one), None) => {
            check_strategy(&one)?;
            vec![one]
        }
        (None, Some(Value::Arr(items))) => {
            let mut keys = Vec::with_capacity(items.len());
            for item in items {
                let Value::Str(key) = item else {
                    return Err(BadRequest(
                        "field 'strategies' must be an array of strategy keys".into(),
                    ));
                };
                check_strategy(key)?;
                if keys.contains(key) {
                    return Err(BadRequest(format!(
                        "duplicate strategy '{key}' in 'strategies'"
                    )));
                }
                keys.push(key.clone());
            }
            if keys.is_empty() {
                return Err(BadRequest("field 'strategies' must not be empty".into()));
            }
            keys
        }
        (None, Some(_)) => {
            return Err(BadRequest(
                "field 'strategies' must be an array of strategy keys".into(),
            ));
        }
        (None, None) => vec!["fv".into()],
    };
    let insts = get_u64(&v, "insts")?;
    if insts == Some(0) {
        return Err(BadRequest("field 'insts' must be at least 1".into()));
    }
    Ok((
        TraceSpec {
            trace,
            cpu: parse_cpu(get_str(&v, "cpu")?)?,
            strategies,
            level: parse_level(get_u64(&v, "offset")?)?,
            insts,
            seed: get_u64(&v, "seed")?.unwrap_or(0x5017),
        },
        deadline_ms,
    ))
}

/// Validates the body of `POST /v1/faults`.
pub fn parse_faults(body: &str) -> Result<(Job, Option<u64>), BadRequest> {
    let v = parse_body(body)?;
    obj(
        &v,
        &["cores", "sigma_mv", "seed", "executions", "deadline_ms"],
    )?;
    let deadline_ms = get_u64(&v, "deadline_ms")?;
    let cores = get_u64(&v, "cores")?.unwrap_or(4);
    if cores == 0 || cores > 256 {
        return Err(BadRequest("field 'cores' must be in 1..=256".into()));
    }
    let sigma_mv = get_f64(&v, "sigma_mv")?.unwrap_or(5.0);
    if !sigma_mv.is_finite() || sigma_mv < 0.0 {
        return Err(BadRequest(
            "field 'sigma_mv' must be a non-negative number".into(),
        ));
    }
    let executions = get_u64(&v, "executions")?.unwrap_or(10_000);
    if executions == 0 || executions > 10_000_000 {
        return Err(BadRequest(
            "field 'executions' must be in 1..=10000000".into(),
        ));
    }
    Ok((
        Job::Faults(FaultsSpec {
            cores: cores as usize,
            sigma_mv,
            seed: get_u64(&v, "seed")?.unwrap_or(0x5017),
            executions: executions as u32,
        }),
        deadline_ms,
    ))
}

/// Validates the body of `POST /v1/scenario`. Field validation lives in
/// `suit-scenarios` itself (the CLI and the service share one config
/// document, discriminated by the required `"scenario"` key); only the
/// service-level `deadline_ms` field is peeled off here.
pub fn parse_scenario(body: &str) -> Result<(Job, Option<u64>), BadRequest> {
    let v = parse_body(body)?;
    let deadline_ms = get_u64(&v, "deadline_ms")?;
    let cfg = ScenarioConfig::from_value(&v, &["deadline_ms"]).map_err(BadRequest)?;
    Ok((Job::Scenario(Box::new(cfg)), deadline_ms))
}

/// Runs a validated job. Fan-out inside batch jobs goes over
/// [`suit_exec`] with `threads`; the deadline is checked cooperatively
/// between simulation bursts (each fan-out point checks before it
/// starts), so an expired request aborts with [`ExecError::DeadlineExpired`]
/// instead of holding a worker for the rest of the sweep.
pub fn execute(job: &Job, threads: Threads, deadline: Deadline) -> Result<String, ExecError> {
    if deadline.expired() {
        return Err(ExecError::DeadlineExpired);
    }
    match job {
        Job::Simulate(point) => Ok(format!(
            "{{\"result\":{}}}",
            run_result_json(&simulate_point(point, &point.workload, point.seed))
        )),
        Job::Batch(BatchSpec::Table6 { max_insts }) => {
            let rows = run_table6(threads, *max_insts);
            if deadline.expired() {
                return Err(ExecError::DeadlineExpired);
            }
            Ok(batch_table6_json(&rows))
        }
        Job::Batch(BatchSpec::Workloads {
            workloads,
            template,
        }) => {
            let root = SuitRng::seed_from_u64(template.seed);
            let results = suit_exec::run(workloads.len(), threads, |i| {
                if deadline.expired() {
                    return None;
                }
                Some(simulate_point(
                    template,
                    &workloads[i],
                    root.fork(i as u64).root_seed(),
                ))
            });
            let results: Option<Vec<RunResult>> = results.into_iter().collect();
            match results {
                None => Err(ExecError::DeadlineExpired),
                Some(results) => Ok(batch_workloads_json(&results)),
            }
        }
        Job::Faults(spec) => {
            let chip = ChipVminModel::sample(spec.cores, spec.sigma_mv, spec.seed);
            let mut campaign = Campaign::standard(chip, spec.seed);
            campaign.executions = spec.executions;
            let report = campaign.run_with_threads(threads.count());
            if deadline.expired() {
                return Err(ExecError::DeadlineExpired);
            }
            let table1: Vec<String> = TABLE1
                .iter()
                .map(|row| {
                    let op = row.opcode;
                    let first = report.first_fault_offset_mv(op);
                    format!(
                        "{{\"opcode\":{},\"faults\":{},\"first_fault_mv\":{}}}",
                        escape(op.mnemonic()),
                        report.faults(op),
                        json_num(first)
                    )
                })
                .collect();
            let ranking: Vec<String> = report
                .ranking()
                .iter()
                .map(|op| escape(op.mnemonic()))
                .collect();
            Ok(format!(
                "{{\"cores\":{},\"executions\":{},\"table1\":[{}],\"ranking\":[{}]}}",
                spec.cores,
                spec.executions,
                table1.join(","),
                ranking.join(",")
            ))
        }
        Job::Scenario(cfg) => {
            let tele = suit_telemetry::Telemetry::off();
            let out = match cfg.as_ref() {
                ScenarioConfig::Sram(c) => {
                    suit_scenarios::sram::run(c, threads.count(), &tele).to_json()
                }
                ScenarioConfig::Scrooge(c) => {
                    suit_scenarios::scrooge::search(c, threads.count(), &tele)
                        .expect("scenario config validated at parse time")
                        .to_json()
                }
            };
            if deadline.expired() {
                return Err(ExecError::DeadlineExpired);
            }
            Ok(out)
        }
        Job::SimulateTrace(tj) => {
            let root = SuitRng::seed_from_u64(tj.spec.seed);
            let results = suit_exec::run(tj.spec.strategies.len(), threads, |i| {
                if deadline.expired() {
                    return None;
                }
                Some(replay_trace(
                    tj,
                    &tj.spec.strategies[i],
                    root.fork(i as u64).root_seed(),
                ))
            });
            let results: Option<Vec<RunResult>> = results.into_iter().collect();
            match results {
                None => Err(ExecError::DeadlineExpired),
                Some(results) => {
                    let items: Vec<String> = tj
                        .spec
                        .strategies
                        .iter()
                        .zip(&results)
                        .map(|(s, r)| {
                            format!(
                                "{{\"strategy\":{},\"result\":{}}}",
                                escape(s),
                                run_result_json(r)
                            )
                        })
                        .collect();
                    Ok(format!(
                        "{{\"trace\":{},\"results\":[{}]}}",
                        trace_info_json(&tj.spec.trace, &tj.stored),
                        items.join(",")
                    ))
                }
            }
        }
    }
}

/// Replays one stored trace under one strategy, streaming bursts out of
/// the container through [`run_stream`] — replay memory is O(chunk),
/// never O(trace). The container was fully decoded once at upload, so
/// opening and streaming it again cannot fail.
fn replay_trace(tj: &TraceJob, strategy: &str, seed: u64) -> RunResult {
    let reader = suit_store::open_bytes(&tj.stored.bytes).expect("trace validated at upload");
    let meta = reader.meta().clone();
    let (strategy, adaptive) = match strategy {
        "fv" => (OperatingStrategy::FreqVolt, None),
        "f" => (OperatingStrategy::Frequency, None),
        "v" => (OperatingStrategy::Voltage, None),
        "adaptive" => (
            OperatingStrategy::FreqVolt,
            Some(AdaptiveConfig::for_cpu(&tj.spec.cpu.delays)),
        ),
        other => unreachable!("strategy '{other}' validated at parse time"),
    };
    let params = match tj.spec.cpu.kind {
        CpuKind::AmdRyzen7700X => StrategyParams::amd(),
        _ => StrategyParams::intel(),
    };
    let cfg = SimConfig {
        strategy,
        params,
        level: tj.spec.level,
        cores: 1,
        seed,
        max_insts: tj.spec.insts,
        record_timeline: false,
        adaptive,
    };
    run_stream(&tj.spec.cpu, &meta, reader.bursts(), &cfg)
}

/// The deterministic trace summary shared by the upload response,
/// `GET /v1/trace/<id>` and the `/v1/simulate-trace` envelope.
pub fn trace_info_json(id: &str, t: &StoredTrace) -> String {
    format!(
        "{{\"id\":{},\"workload\":{},\"ipc\":{},\"total_insts\":{},\"bursts\":{},\"chunks\":{},\
         \"bytes\":{}}}",
        escape(id),
        escape(&t.workload),
        json_num(t.ipc),
        t.total_insts,
        t.bursts,
        t.chunks,
        t.bytes.len()
    )
}

/// Simulates one point of the template for `workload` with `seed` —
/// exactly the engine calls `suit-cli simulate` makes.
fn simulate_point(template: &SimPoint, workload: &str, seed: u64) -> RunResult {
    let p = profile::by_name(workload).expect("workload validated at parse time");
    if template.strategy == "e" {
        return simulate_emulation(&template.cpu, p, template.level, seed, template.insts);
    }
    let (strategy, adaptive) = match template.strategy.as_str() {
        "fv" => (OperatingStrategy::FreqVolt, None),
        "f" => (OperatingStrategy::Frequency, None),
        "v" => (OperatingStrategy::Voltage, None),
        "adaptive" => (
            OperatingStrategy::FreqVolt,
            Some(AdaptiveConfig::for_cpu(&template.cpu.delays)),
        ),
        other => unreachable!("strategy '{other}' validated at parse time"),
    };
    let params = match template.cpu.kind {
        CpuKind::AmdRyzen7700X => StrategyParams::amd(),
        _ => StrategyParams::intel(),
    };
    let cfg = SimConfig {
        strategy,
        params,
        level: template.level,
        cores: template.cores,
        seed,
        max_insts: template.insts,
        record_timeline: false,
        adaptive,
    };
    simulate(&template.cpu, p, &cfg)
}

/// A JSON number: shortest round-trip `Display` for finite values,
/// `null` for NaN/±∞ (JSON has no encoding for them).
pub fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Serialises one [`RunResult`] — raw aggregates plus the paper's
/// derived metrics — deterministically.
pub fn run_result_json(r: &RunResult) -> String {
    format!(
        "{{\"workload\":{},\"perf\":{},\"power\":{},\"efficiency\":{},\"residency\":{},\
         \"duration_ps\":{},\"baseline_ps\":{},\"energy_rel\":{},\"time_e_ps\":{},\
         \"time_cf_ps\":{},\"time_cv_ps\":{},\"time_stall_ps\":{},\"events\":{},\
         \"exceptions\":{},\"timer_fires\":{},\"thrash_hits\":{}}}",
        escape(&r.workload),
        json_num(r.perf()),
        json_num(r.power()),
        json_num(r.efficiency()),
        json_num(r.residency()),
        r.duration.as_picos(),
        r.baseline_duration.as_picos(),
        json_num(r.energy_rel),
        r.time_e.as_picos(),
        r.time_cf.as_picos(),
        r.time_cv.as_picos(),
        r.time_stall.as_picos(),
        r.events,
        r.exceptions,
        r.timer_fires,
        r.thrash_hits
    )
}

/// Serialises a list of per-workload results (`/v1/batch` workloads mode).
pub fn batch_workloads_json(results: &[RunResult]) -> String {
    let items: Vec<String> = results.iter().map(run_result_json).collect();
    format!("{{\"results\":[{}]}}", items.join(","))
}

/// Serialises the Table 6 sweep (`/v1/batch` `"sweep":"table6"` mode) —
/// the byte-identity anchor for the loopback e2e test against a direct
/// [`run_table6`] call.
pub fn batch_table6_json(rows: &[RowResult]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|row| {
            let per: Vec<String> = row.per_workload.iter().map(run_result_json).collect();
            let no_simd: Vec<String> = row.no_simd.iter().map(run_result_json).collect();
            format!(
                "{{\"label\":{},\"offset_mv\":{},\"per_workload\":[{}],\"no_simd\":[{}]}}",
                escape(row.label),
                json_num(row.level.offset_mv()),
                per.join(","),
                no_simd.join(",")
            )
        })
        .collect();
    format!("{{\"sweep\":\"table6\",\"rows\":[{}]}}", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulate_body_validates_strictly() {
        for bad in [
            "",
            "not json",
            "[1,2]",
            "{}",
            "{\"workload\":\"no-such\"}",
            "{\"workload\":\"557.xz\",\"bogus\":1}",
            "{\"workload\":\"557.xz\",\"cpu\":\"z\"}",
            "{\"workload\":\"557.xz\",\"offset\":80}",
            "{\"workload\":\"557.xz\",\"strategy\":\"warp\"}",
            "{\"workload\":\"557.xz\",\"insts\":0}",
            "{\"workload\":\"557.xz\",\"insts\":-3}",
            "{\"workload\":\"557.xz\",\"seed\":1.5}",
            "{\"workload\":[\"557.xz\"]}",
        ] {
            assert!(parse_simulate(bad).is_err(), "accepted {bad:?}");
        }
        let (job, deadline) =
            parse_simulate("{\"workload\":\"557.xz\",\"insts\":1000000,\"deadline_ms\":50}")
                .unwrap();
        assert_eq!(deadline, Some(50));
        match job {
            Job::Simulate(p) => {
                assert_eq!(p.workload, "557.xz");
                assert_eq!(p.insts, Some(1_000_000));
                assert_eq!(p.seed, 0x5017);
            }
            other => panic!("wrong job {other:?}"),
        }
    }

    #[test]
    fn batch_body_accepts_both_modes() {
        let (job, _) = parse_batch("{\"sweep\":\"table6\",\"max_insts\":1000}").unwrap();
        assert!(matches!(
            job,
            Job::Batch(BatchSpec::Table6 {
                max_insts: Some(1000)
            })
        ));
        let (job, _) = parse_batch("{\"workloads\":[\"557.xz\",\"Nginx\"],\"insts\":5}").unwrap();
        match job {
            Job::Batch(BatchSpec::Workloads { workloads, .. }) => {
                assert_eq!(workloads, ["557.xz", "Nginx"]);
            }
            other => panic!("wrong job {other:?}"),
        }
        let (job, _) = parse_batch("{\"workloads\":\"all\"}").unwrap();
        match job {
            Job::Batch(BatchSpec::Workloads { workloads, .. }) => {
                assert_eq!(workloads.len(), profile::all().len());
            }
            other => panic!("wrong job {other:?}"),
        }
        for bad in [
            "{\"sweep\":\"table9\"}",
            "{\"sweep\":\"table6\",\"workloads\":[\"557.xz\"]}",
            "{\"workloads\":[]}",
            "{\"workloads\":[\"no-such\"]}",
            "{\"workloads\":[1]}",
            "{}",
        ] {
            assert!(parse_batch(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn workload_batch_is_thread_count_invariant_and_forked() {
        let (job, _) = parse_batch(
            "{\"workloads\":[\"557.xz\",\"Nginx\",\"502.gcc\"],\"insts\":20000000,\"seed\":7}",
        )
        .unwrap();
        let one = execute(&job, Threads::Fixed(1), Deadline(None)).unwrap();
        let four = execute(&job, Threads::Fixed(4), Deadline(None)).unwrap();
        assert_eq!(one, four, "batch diverged across thread counts");
        // And it really is per-job fork(i) seeding: job 0 must match a
        // direct engine call with the forked seed.
        let root = SuitRng::seed_from_u64(7);
        let (Job::Batch(BatchSpec::Workloads { template, .. }), _) =
            parse_batch("{\"workloads\":[\"557.xz\"],\"insts\":20000000,\"seed\":7}").unwrap()
        else {
            unreachable!()
        };
        let direct = simulate_point(&template, "557.xz", root.fork(0).root_seed());
        assert!(one.contains(&run_result_json(&direct)));
    }

    #[test]
    fn simulate_trace_body_validates_strictly() {
        let id = "0123456789abcdef0123456789abcdef";
        for bad in [
            "".to_string(),
            "{}".to_string(),
            "{\"trace\":\"short\"}".to_string(),
            format!("{{\"trace\":\"{}\"}}", id.to_uppercase()),
            format!("{{\"trace\":\"{id}\",\"strategy\":\"e\"}}"),
            format!("{{\"trace\":\"{id}\",\"strategy\":\"warp\"}}"),
            format!("{{\"trace\":\"{id}\",\"strategies\":[]}}"),
            format!("{{\"trace\":\"{id}\",\"strategies\":[\"fv\",\"fv\"]}}"),
            format!("{{\"trace\":\"{id}\",\"strategies\":[\"fv\"],\"strategy\":\"f\"}}"),
            format!("{{\"trace\":\"{id}\",\"strategies\":[1]}}"),
            format!("{{\"trace\":\"{id}\",\"insts\":0}}"),
            format!("{{\"trace\":\"{id}\",\"cores\":2}}"),
            format!("{{\"trace\":\"{id}\",\"cpu\":\"z\"}}"),
        ] {
            assert!(parse_simulate_trace(&bad).is_err(), "accepted {bad:?}");
        }
        let (spec, deadline) = parse_simulate_trace(&format!(
            "{{\"trace\":\"{id}\",\"strategies\":[\"fv\",\"adaptive\"],\"seed\":9,\
             \"deadline_ms\":50}}"
        ))
        .unwrap();
        assert_eq!(deadline, Some(50));
        assert_eq!(spec.trace, id);
        assert_eq!(spec.strategies, ["fv", "adaptive"]);
        assert_eq!(spec.seed, 9);
        // Defaults: single fv replay, paper seed.
        let (spec, _) = parse_simulate_trace(&format!("{{\"trace\":\"{id}\"}}")).unwrap();
        assert_eq!(spec.strategies, ["fv"]);
        assert_eq!(spec.seed, 0x5017);
    }

    #[test]
    fn expired_deadline_aborts_before_work() {
        let (job, _) = parse_simulate("{\"workload\":\"557.xz\",\"insts\":1000000}").unwrap();
        let expired = Deadline(Some(Instant::now() - std::time::Duration::from_millis(1)));
        assert_eq!(
            execute(&job, Threads::Fixed(1), expired),
            Err(ExecError::DeadlineExpired)
        );
    }

    #[test]
    fn faults_response_lists_table1() {
        let (job, _) =
            parse_faults("{\"cores\":2,\"executions\":500,\"seed\":3,\"sigma_mv\":4.0}").unwrap();
        let body = execute(&job, Threads::Fixed(2), Deadline(None)).unwrap();
        let v = parse(&body).expect("valid JSON");
        let table = v.get("table1").and_then(Value::as_arr).unwrap();
        assert_eq!(table.len(), TABLE1.len());
        assert_eq!(
            table[0].get("opcode").and_then(Value::as_str),
            Some(TABLE1[0].opcode.mnemonic())
        );
        // Determinism across thread counts.
        let again = execute(&job, Threads::Fixed(1), Deadline(None)).unwrap();
        assert_eq!(body, again);
    }

    #[test]
    fn scenario_body_validates_and_is_thread_count_invariant() {
        for bad in [
            "",
            "{}",
            "[1,2]",
            "{\"scenario\":\"warp\"}",
            "{\"scenario\":\"sram\",\"bogus\":1}",
            "{\"scenario\":\"sram\",\"reads\":0}",
            "{\"scenario\":\"sram\",\"cache_banks\":99999999}",
            "{\"scenario\":\"scrooge\",\"offset_steps\":1}",
            "{\"scenario\":\"scrooge\",\"workload\":\"no-such\"}",
        ] {
            assert!(parse_scenario(bad).is_err(), "accepted {bad:?}");
        }
        let (job, deadline) = parse_scenario(
            "{\"scenario\":\"sram\",\"cache_banks\":2,\"rob_banks\":1,\"reads\":64,\
             \"offsets_mv\":[-120,-160],\"audit_len\":200,\"deadline_ms\":5000}",
        )
        .unwrap();
        assert_eq!(deadline, Some(5000));
        let one = execute(&job, Threads::Fixed(1), Deadline(None)).unwrap();
        let four = execute(&job, Threads::Fixed(4), Deadline(None)).unwrap();
        assert_eq!(one, four, "scenario diverged across thread counts");
        let v = parse(&one).expect("valid JSON");
        assert_eq!(v.get("scenario").and_then(Value::as_str), Some("sram"));
    }

    #[test]
    fn json_num_maps_non_finite_to_null() {
        assert_eq!(json_num(1.5), "1.5");
        assert_eq!(json_num(f64::NEG_INFINITY), "null");
        assert_eq!(json_num(f64::NAN), "null");
    }

    #[test]
    fn smuggled_non_finite_numbers_are_rejected_at_parse() {
        // `1e999` overflows f64 parsing to +∞; every validator must
        // refuse it with a structured 400 wherever it hides.
        for bad in [
            "{\"workload\":\"557.xz\",\"seed\":1e999}",
            "{\"workload\":\"557.xz\",\"insts\":-1e999}",
            "{\"workloads\":[\"557.xz\"],\"seed\":1e999}",
            "{\"sigma_mv\":1e999}",
            "{\"sigma_mv\":-1e999}",
        ] {
            let err = parse_simulate(bad)
                .err()
                .or_else(|| parse_batch(bad).err())
                .or_else(|| parse_faults(bad).err())
                .unwrap_or_else(|| panic!("accepted {bad:?}"));
            assert!(
                err.0.contains("non-finite") || err.0.contains("must be"),
                "wrong error for {bad:?}: {}",
                err.0
            );
        }
        // And the dedicated walker catches nesting the field checks miss.
        assert!(parse_faults("{\"sigma_mv\":1e999}").is_err());
        assert!(reject_non_finite(&parse("{\"a\":[1,[2,1e999]]}").unwrap()).is_err());
        assert!(reject_non_finite(&parse("{\"a\":[1,2.5]}").unwrap()).is_ok());
    }
}
