//! Deterministic result cache and request coalescing.
//!
//! Every compute endpoint is a *pure function* of its validated request:
//! per-point seeding is `fork(i)` by index and `suit_exec` returns
//! results in index order, so the same request body always produces the
//! same response bytes — at any worker-thread count. That property makes
//! content-addressed caching trivially correct: cache the exact response
//! bytes of the first computation and every later hit is byte-identical
//! to what a fresh run would have produced (`tests/serve_e2e.rs` pins
//! cache-on == cache-off at 1 and 4 workers).
//!
//! Three pieces live here:
//!
//! * **Canonicalization** ([`canonical_job`]) — maps every *accepted*
//!   request body onto a single canonical JSON form: validated fields
//!   only, defaults filled in, keys sorted, floats in Rust's shortest
//!   round-trip form. Two bodies that differ in key order, whitespace,
//!   or spelled-out defaults canonicalize identically and share a cache
//!   entry. The request deadline is deliberately excluded: it bounds
//!   *when* a job may run, never *what* it computes.
//! * **Content hash** ([`content_hash`] / [`etag_for`]) — FNV-1a 128
//!   over the canonical bytes, zero dependencies. The hex digest is the
//!   strong `ETag` advertised on cacheable responses; the cache itself
//!   is keyed by the canonical string, so a (vanishingly unlikely) hash
//!   collision can never serve the wrong body — it could only make an
//!   `If-None-Match` revalidation spuriously succeed.
//! * **Bounded LRU store + in-flight coalescing** ([`Cache`],
//!   [`FlightTable`]) — response bytes are retained under both an entry
//!   count and a byte budget (strict LRU eviction, oldest access first),
//!   and N concurrent identical requests trigger exactly *one*
//!   computation whose outcome — including `429`/`408`/`500` failures —
//!   fans out to every waiter.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Condvar, Mutex};

use crate::api::{BatchSpec, Job, SimPoint};
use crate::http::Response;
use suit_hw::{CpuKind, UndervoltLevel};
use suit_scenarios::ScenarioConfig;
use suit_telemetry::json::escape;

// ---------------------------------------------------------------------------
// Canonicalization
// ---------------------------------------------------------------------------

/// The canonical JSON form of a validated job: sorted keys, all defaults
/// filled, canonical float formatting, and an `endpoint` discriminator so
/// the three endpoints can never alias. This string *is* the cache key.
pub fn canonical_job(job: &Job) -> String {
    match job {
        Job::Simulate(point) => format!(
            "{{\"endpoint\":\"simulate\",{}}}",
            canonical_point(point, Some(&point.workload))
        ),
        Job::Batch(BatchSpec::Table6 { max_insts }) => format!(
            "{{\"endpoint\":\"batch\",\"max_insts\":{},\"sweep\":\"table6\"}}",
            canonical_opt_u64(*max_insts)
        ),
        Job::Batch(BatchSpec::Workloads {
            workloads,
            template,
        }) => {
            let names: Vec<String> = workloads.iter().map(|w| escape(w)).collect();
            format!(
                "{{\"endpoint\":\"batch\",{},\"workloads\":[{}]}}",
                canonical_point(template, None),
                names.join(",")
            )
        }
        Job::Faults(spec) => format!(
            "{{\"cores\":{},\"endpoint\":\"faults\",\"executions\":{},\"seed\":{},\"sigma_mv\":{}}}",
            spec.cores,
            spec.executions,
            spec.seed,
            canonical_f64(spec.sigma_mv)
        ),
        // The trace ID is itself content-addressed over the container
        // bytes, so `(id, config)` fully determines the response and the
        // stored bytes never need to enter the key.
        Job::SimulateTrace(tj) => {
            let strategies: Vec<String> = tj.spec.strategies.iter().map(|s| escape(s)).collect();
            format!(
                "{{\"cpu\":\"{}\",\"endpoint\":\"simulate-trace\",\"insts\":{},\"offset\":{},\
                 \"seed\":{},\"strategies\":[{}],\"trace\":{}}}",
                cpu_key(tj.spec.cpu.kind),
                canonical_opt_u64(tj.spec.insts),
                offset_key(tj.spec.level),
                tj.spec.seed,
                strategies.join(","),
                escape(&tj.spec.trace)
            )
        }
        Job::Scenario(cfg) => canonical_scenario(cfg),
    }
}

/// The shared point fields, sorted, without the surrounding braces so
/// callers can splice endpoint-specific keys around them.
fn canonical_point(p: &SimPoint, workload: Option<&str>) -> String {
    let workload = match workload {
        Some(w) => format!(",\"workload\":{}", escape(w)),
        None => String::new(),
    };
    format!(
        "\"cores\":{},\"cpu\":\"{}\",\"insts\":{},\"offset\":{},\"seed\":{},\"strategy\":{}{}",
        p.cores,
        cpu_key(p.cpu.kind),
        canonical_opt_u64(p.insts),
        offset_key(p.level),
        p.seed,
        escape(&p.strategy),
        workload
    )
}

/// Canonical form of a scenario config: every field spelled out, keys
/// sorted, so bodies relying on defaults and bodies naming them share a
/// cache entry.
fn canonical_scenario(cfg: &ScenarioConfig) -> String {
    match cfg {
        ScenarioConfig::Sram(c) => {
            let offsets: Vec<String> = c.offsets_mv.iter().map(|o| canonical_f64(*o)).collect();
            format!(
                "{{\"audit_len\":{},\"cache_banks\":{},\"cores\":{},\"endpoint\":\"scenario\",\
                 \"offsets_mv\":[{}],\"reads\":{},\"rob_banks\":{},\"scenario\":\"sram\",\
                 \"seed\":{},\"sigma_mv\":{}}}",
                c.audit_len,
                c.cache_banks,
                c.cores,
                offsets.join(","),
                c.reads,
                c.rob_banks,
                c.seed,
                canonical_f64(c.sigma_mv)
            )
        }
        ScenarioConfig::Scrooge(c) => format!(
            "{{\"audit_len\":{},\"cache_banks\":{},\"cores_per_domain\":{},\"crash_cost\":{},\
             \"domain_power_w\":{},\"domains_per_rack\":{},\"endpoint\":\"scenario\",\
             \"energy_price\":{},\"epoch_insts\":{},\"epochs\":{},\"freq_min\":{},\
             \"freq_steps\":{},\"horizon_hours\":{},\"offset_min_mv\":{},\"offset_steps\":{},\
             \"racks\":{},\"refine_rounds\":{},\"rob_banks\":{},\"scenario\":\"scrooge\",\
             \"sdc_cost\":{},\"seed\":{},\"sigma_mv\":{},\"sla_cost\":{},\"workload\":{}}}",
            c.audit_len,
            c.cache_banks,
            c.cores_per_domain,
            canonical_f64(c.crash_cost),
            canonical_f64(c.domain_power_w),
            c.domains_per_rack,
            canonical_f64(c.energy_price),
            c.epoch_insts,
            c.epochs,
            canonical_f64(c.freq_min),
            c.freq_steps,
            canonical_f64(c.horizon_hours),
            canonical_f64(c.offset_min_mv),
            c.offset_steps,
            c.racks,
            c.refine_rounds,
            c.rob_banks,
            canonical_f64(c.sdc_cost),
            c.seed,
            canonical_f64(c.sigma_mv),
            canonical_f64(c.sla_cost),
            escape(&c.workload)
        ),
    }
}

fn canonical_opt_u64(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".into(),
    }
}

/// Canonical float text: Rust's shortest round-trip `Display`, which is
/// deterministic across platforms. Only finite values can reach here —
/// the validators reject non-finite numbers with a `400` — so this is a
/// hard assertion, not a silent `null`.
fn canonical_f64(v: f64) -> String {
    assert!(v.is_finite(), "non-finite float escaped validation");
    format!("{v}")
}

fn cpu_key(kind: CpuKind) -> &'static str {
    match kind {
        CpuKind::IntelI9_9900K => "a",
        CpuKind::AmdRyzen7700X => "b",
        CpuKind::IntelXeon4208 => "c",
        // Not reachable from the API today, but keep the mapping total.
        CpuKind::IntelI5_1035G1 => "d",
    }
}

fn offset_key(level: UndervoltLevel) -> u32 {
    match level {
        UndervoltLevel::Mv70 => 70,
        UndervoltLevel::Mv97 => 97,
    }
}

// ---------------------------------------------------------------------------
// Content hash → ETag
// ---------------------------------------------------------------------------

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// FNV-1a 128-bit over `bytes` — the in-tree content hash. Not
/// cryptographic; it addresses cache entries and names ETags, while
/// correctness is anchored on full-key comparison in [`Cache`].
pub fn content_hash(bytes: &[u8]) -> u128 {
    let mut h = FNV128_OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV128_PRIME);
    }
    h
}

/// The strong entity tag for a canonical request: `"suit-<32 hex>"`,
/// quotes included (an ETag *is* a quoted string on the wire).
pub fn etag_for(canonical: &str) -> String {
    format!("\"suit-{:032x}\"", content_hash(canonical.as_bytes()))
}

// ---------------------------------------------------------------------------
// Bounded LRU store
// ---------------------------------------------------------------------------

/// One cached response: the exact body bytes of the first computation
/// plus the strong ETag minted for its canonical request.
#[derive(Debug, Clone)]
pub struct CachedResponse {
    /// The entity tag (quoted form).
    pub etag: String,
    /// The response body bytes.
    pub body: String,
}

struct Entry {
    etag: String,
    body: String,
    tick: u64,
}

struct LruInner {
    map: HashMap<String, Entry>,
    /// Access order: tick → key. Ticks are unique (monotonic counter),
    /// so this is a strict LRU index; the smallest tick is the coldest.
    order: BTreeMap<u64, String>,
    tick: u64,
    bytes: usize,
}

/// A bounded, content-addressed LRU store of response bytes.
///
/// Both bounds are enforced on every insert: at most `max_entries`
/// entries and at most `max_bytes` of body bytes (keys and ETags ride
/// along for free — the budget tracks the dominant cost). An entry
/// larger than the whole byte budget is simply not cached. Either bound
/// at zero disables the cache (`enabled()` is false and the server
/// bypasses this module entirely).
pub struct Cache {
    max_entries: usize,
    max_bytes: usize,
    inner: Mutex<LruInner>,
}

impl Cache {
    /// A cache bounded by `max_entries` entries and `max_bytes` of body.
    pub fn new(max_entries: usize, max_bytes: usize) -> Cache {
        Cache {
            max_entries,
            max_bytes,
            inner: Mutex::new(LruInner {
                map: HashMap::new(),
                order: BTreeMap::new(),
                tick: 0,
                bytes: 0,
            }),
        }
    }

    /// Whether caching is enabled at all (both bounds nonzero).
    pub fn enabled(&self) -> bool {
        self.max_entries > 0 && self.max_bytes > 0
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<CachedResponse> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.map.get_mut(key)?;
        let old = std::mem::replace(&mut entry.tick, tick);
        let found = CachedResponse {
            etag: entry.etag.clone(),
            body: entry.body.clone(),
        };
        inner.order.remove(&old);
        inner.order.insert(tick, key.to_string());
        Some(found)
    }

    /// Inserts a response, evicting least-recently-used entries until
    /// both bounds hold. Returns how many entries were evicted. Bodies
    /// larger than the byte budget are not cached (returns 0, no state
    /// change); re-inserting an existing key refreshes it in place.
    pub fn insert(&self, key: &str, etag: String, body: String) -> u64 {
        if !self.enabled() || body.len() > self.max_bytes {
            return 0;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.remove(key) {
            inner.order.remove(&old.tick);
            inner.bytes -= old.body.len();
        }
        inner.bytes += body.len();
        inner
            .map
            .insert(key.to_string(), Entry { etag, body, tick });
        inner.order.insert(tick, key.to_string());
        let mut evicted = 0;
        while inner.map.len() > self.max_entries || inner.bytes > self.max_bytes {
            // The freshly inserted entry has the largest tick, so the
            // bounds always become satisfiable before it would go.
            let (&coldest, _) = inner
                .order
                .iter()
                .next()
                .expect("bounds exceeded ⇒ nonempty");
            let key = inner.order.remove(&coldest).expect("index entry");
            let entry = inner.map.remove(&key).expect("map entry");
            inner.bytes -= entry.body.len();
            evicted += 1;
        }
        evicted
    }

    /// Current entry count and body-byte total (for `/v1/metrics`).
    pub fn usage(&self) -> (usize, usize) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        (inner.map.len(), inner.bytes)
    }

    /// The configured bounds, `(entries, bytes)`.
    pub fn capacity(&self) -> (usize, usize) {
        (self.max_entries, self.max_bytes)
    }
}

// ---------------------------------------------------------------------------
// In-flight coalescing
// ---------------------------------------------------------------------------

/// One in-flight computation. The leader publishes exactly one
/// [`Response`] — success *or* failure (`429`/`408`/`500`) — and every
/// follower blocks on [`Flight::wait`] until it lands.
pub struct Flight {
    slot: Mutex<Option<Response>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    /// Blocks until the leader publishes, then returns a clone of the
    /// outcome.
    pub fn wait(&self) -> Response {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(resp) = slot.as_ref() {
                return resp.clone();
            }
            slot = self.done.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn publish(&self, resp: Response) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(resp);
        self.done.notify_all();
    }
}

/// The role [`FlightTable::join`] assigned to a request.
pub enum Role {
    /// First in: run the computation, then [`FlightTable::publish`].
    Leader(Arc<Flight>),
    /// An identical request is already in flight: wait on it.
    Follower(Arc<Flight>),
}

/// The coalescing table: canonical key → in-flight computation.
#[derive(Default)]
pub struct FlightTable {
    flights: Mutex<HashMap<String, Arc<Flight>>>,
}

impl FlightTable {
    /// An empty table.
    pub fn new() -> FlightTable {
        FlightTable::default()
    }

    /// Joins the flight for `key`, creating it (→ [`Role::Leader`]) if
    /// none is in progress.
    pub fn join(&self, key: &str) -> Role {
        let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
        match flights.get(key) {
            Some(flight) => Role::Follower(Arc::clone(flight)),
            None => {
                let flight = Arc::new(Flight::new());
                flights.insert(key.to_string(), Arc::clone(&flight));
                Role::Leader(flight)
            }
        }
    }

    /// Leader only: retires the flight *before* waking the waiters, so a
    /// request arriving after publication starts a fresh computation (or
    /// hits the cache) instead of latching onto a finished flight.
    pub fn publish(&self, key: &str, flight: &Arc<Flight>, resp: Response) {
        {
            let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
            flights.remove(key);
        }
        flight.publish(resp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{parse_batch, parse_scenario, parse_simulate};

    fn canon(body: &str) -> String {
        let (job, _) = parse_simulate(body).expect("valid body");
        canonical_job(&job)
    }

    #[test]
    fn scenario_canonicalization_fills_defaults_and_separates_kinds() {
        let (a, _) = parse_scenario("{\"scenario\":\"sram\"}").unwrap();
        let (b, _) = parse_scenario(
            "{\"scenario\":\"sram\",\"seed\":20503,\"cache_banks\":8,\"rob_banks\":4,\
             \"deadline_ms\":75}",
        )
        .unwrap();
        assert_eq!(
            canonical_job(&a),
            canonical_job(&b),
            "defaults spelled out (and deadlines) must canonicalize identically"
        );
        let (s, _) = parse_scenario("{\"scenario\":\"scrooge\"}").unwrap();
        assert_ne!(canonical_job(&a), canonical_job(&s));
        for key in [canonical_job(&a), canonical_job(&s)] {
            assert!(key.contains("\"endpoint\":\"scenario\""), "{key}");
        }
    }

    #[test]
    fn canonicalization_ignores_key_order_whitespace_and_spelled_defaults() {
        let a = canon("{\"workload\":\"557.xz\"}");
        let b = canon(
            " { \"seed\" : 20503 , \"cpu\" : \"c\" , \"strategy\" : \"fv\" ,\
             \"cores\" : 1 , \"offset\" : 97 , \"workload\" : \"557.xz\" } ",
        );
        assert_eq!(a, b, "defaults spelled out must canonicalize identically");
        // deadline_ms bounds scheduling, not the result: same cache key.
        let c = canon("{\"workload\":\"557.xz\",\"deadline_ms\":5000}");
        assert_eq!(a, c);
        // ...and a different seed is a different key.
        let d = canon("{\"workload\":\"557.xz\",\"seed\":9}");
        assert_ne!(a, d);
    }

    #[test]
    fn canonical_form_separates_endpoints_and_modes() {
        let (sim, _) = parse_simulate("{\"workload\":\"557.xz\"}").unwrap();
        let (batch, _) = parse_batch("{\"workloads\":[\"557.xz\"]}").unwrap();
        let (table6, _) = parse_batch("{\"sweep\":\"table6\"}").unwrap();
        let keys = [
            canonical_job(&sim),
            canonical_job(&batch),
            canonical_job(&table6),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn etags_are_stable_quoted_and_content_addressed() {
        let e1 = etag_for("{\"endpoint\":\"simulate\"}");
        let e2 = etag_for("{\"endpoint\":\"simulate\"}");
        let e3 = etag_for("{\"endpoint\":\"faults\"}");
        assert_eq!(e1, e2);
        assert_ne!(e1, e3);
        assert!(e1.starts_with("\"suit-") && e1.ends_with('"'));
        assert_eq!(e1.len(), "\"suit-\"".len() + 32);
        // Pin the FNV-1a 128 constants: the empty hash is the offset.
        assert_eq!(content_hash(b""), FNV128_OFFSET);
    }

    #[test]
    fn lru_evicts_by_entry_count_in_recency_order() {
        let cache = Cache::new(2, 1 << 20);
        assert_eq!(cache.insert("a", "ea".into(), "1".into()), 0);
        assert_eq!(cache.insert("b", "eb".into(), "2".into()), 0);
        // Touch `a` so `b` is the coldest…
        assert!(cache.get("a").is_some());
        assert_eq!(cache.insert("c", "ec".into(), "3".into()), 1);
        assert!(cache.get("b").is_none(), "b was LRU and must be gone");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn lru_enforces_the_byte_budget() {
        let cache = Cache::new(16, 10);
        cache.insert("a", "e".into(), "aaaa".into()); // 4 bytes
        cache.insert("b", "e".into(), "bbbb".into()); // 8 bytes total
        let evicted = cache.insert("c", "e".into(), "cccc".into()); // would be 12
        assert_eq!(evicted, 1);
        let (entries, bytes) = cache.usage();
        assert_eq!((entries, bytes), (2, 8));
        // A body over the whole budget is refused outright.
        assert_eq!(cache.insert("huge", "e".into(), "x".repeat(11)), 0);
        assert!(cache.get("huge").is_none());
    }

    #[test]
    fn reinserting_a_key_replaces_in_place() {
        let cache = Cache::new(4, 100);
        cache.insert("k", "e1".into(), "1234".into());
        cache.insert("k", "e2".into(), "56".into());
        let (entries, bytes) = cache.usage();
        assert_eq!((entries, bytes), (1, 2));
        assert_eq!(cache.get("k").unwrap().etag, "e2");
    }

    #[test]
    fn zero_bounds_disable_the_cache() {
        for cache in [Cache::new(0, 100), Cache::new(4, 0)] {
            assert!(!cache.enabled());
            cache.insert("k", "e".into(), "body".into());
            assert!(cache.get("k").is_none());
        }
    }

    #[test]
    fn coalescing_fans_one_outcome_to_all_waiters() {
        let table = Arc::new(FlightTable::new());
        let Role::Leader(flight) = table.join("k") else {
            panic!("first join must lead");
        };
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let table = Arc::clone(&table);
                std::thread::spawn(move || match table.join("k") {
                    Role::Follower(f) => f.wait().status,
                    Role::Leader(_) => panic!("joined an in-flight key as leader"),
                })
            })
            .collect();
        // Give the waiters a moment to block, then publish a failure —
        // errors propagate to every coalesced waiter too.
        std::thread::sleep(std::time::Duration::from_millis(20));
        table.publish("k", &flight, Response::error(429, "queue full"));
        for w in waiters {
            assert_eq!(w.join().expect("waiter"), 429);
        }
        // The flight retired: the next join leads again.
        assert!(matches!(table.join("k"), Role::Leader(_)));
    }
}
