//! `suit-serve` — a zero-dependency HTTP/1.1 service in front of the
//! SUIT simulation stack.
//!
//! The paper's experiments (undervolt sweeps, fault-injection
//! campaigns) are batch jobs; this crate turns them into a resident
//! service so a dashboard or sweep driver can submit work over
//! loopback instead of forking the CLI per point. Everything is
//! hand-rolled on `std::net` in the same spirit as the in-tree JSON
//! parser in `suit-telemetry`: no external crates, no async runtime,
//! no unsafe code.
//!
//! Endpoints:
//!
//! | endpoint              | method | body                                    |
//! |-----------------------|--------|-----------------------------------------|
//! | `/v1/simulate`        | POST   | one simulation point                    |
//! | `/v1/batch`           | POST   | a sweep fanned over [`suit_exec`]       |
//! | `/v1/faults`          | POST   | a fault-injection campaign              |
//! | `/v1/trace`           | POST   | a binary `SUITTRC2` container to store  |
//! | `/v1/trace/<id>`      | GET    | summary of one stored trace             |
//! | `/v1/simulate-trace`  | POST   | streamed replay of a stored trace       |
//! | `/v1/metrics`         | GET    | request counters + latency histograms   |
//! | `/v1/healthz`         | GET    | liveness / drain state                  |
//! | `/v1/shutdown`        | POST   | begin graceful drain                    |
//!
//! `POST /v1/trace` uploads a packed trace (see `suit-store`) into a
//! **bounded** in-memory store — content-addressed IDs, idempotent
//! re-upload, structured `413` when full — and `/v1/simulate-trace`
//! replays it through the engine's streaming entry point, one strategy
//! per `suit_exec` fan-out lane, without ever materialising the burst
//! vector.
//!
//! Determinism is the load-bearing property: batch jobs seed each point
//! with `rng.fork(i)` and collect results in index order through
//! [`suit_exec::run`], so a response is byte-identical to the
//! equivalent CLI invocation at any worker-thread count. The loopback
//! e2e test pins this.
//!
//! Determinism also powers the **result cache**: every compute endpoint
//! is a pure function of its canonicalized request, so responses are
//! content-addressed — repeated identical requests are served from a
//! bounded LRU in microseconds with a strong `ETag` (`If-None-Match` →
//! `304`), and N concurrent identical requests coalesce onto a single
//! computation. See [`cache`].
//!
//! Module map: [`http`] (strict request parser + response writer),
//! [`api`] (body validation, job execution, deterministic JSON
//! serialization), [`cache`] (request canonicalization, content-hash
//! ETags, bounded LRU, in-flight coalescing), [`server`] (acceptor,
//! bounded admission queue, worker pool, graceful shutdown), [`client`]
//! (blocking one-shot client for the CLI and tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod client;
pub mod http;
pub mod server;
pub mod tracestore;

pub use api::{BadRequest, Deadline};
pub use client::{request, request_bytes, request_text, request_with_headers};
pub use http::{ClientResponse, Limits, Request, Response};
pub use server::{ServeConfig, Server, ShutdownHandle};
pub use tracestore::{StoredTrace, TraceStore};
