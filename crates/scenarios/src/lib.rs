//! # suit-scenarios
//!
//! Scenario campaigns over the SUIT reproduction — the two axes the
//! ROADMAP names from the related-work corpus:
//!
//! * [`sram`] — the **SRAM fault domain** scenario (Soyturk et al.,
//!   "Hardware Versus Software Fault Injection of Modern Undervolted
//!   SRAMs"): sweep a sampled per-bank SRAM array over a set of
//!   undervolt offsets with the thread-count-invariant campaign from
//!   `suit-faults`, then run the extended §6.9 audit matrix over *both*
//!   fault classes (instruction-Vmin datapath faults and per-bank
//!   retention bit flips) at the deepest offset.
//! * [`scrooge`] — the **attacker-economics** scenario ("Scrooge Attack:
//!   Undervolting ARM Processors for Profit"): a deterministic seeded
//!   search — grid plus coordinate refinement over `suit-exec`,
//!   byte-identical at any thread count — for the cheapest stable
//!   operating point of a `FleetSim` fleet, balancing energy savings
//!   against expected crash/SDC penalties, followed by an evaluation of
//!   every defence configuration at the attacker's chosen point.
//! * [`config`] — the strict JSON configuration parser shared by the
//!   CLI (`suit-cli scenario`), the service (`POST /v1/scenario`) and
//!   the fuzz/property suites: byte soup, truncation and hostile counts
//!   come back as structured errors *before* any count-proportional
//!   allocation, and unknown keys are rejected so typos fail loudly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod scrooge;
pub mod sram;

pub use config::{ScenarioConfig, ScroogeConfig, SramScenarioConfig};
pub use scrooge::{search, PointEval, ScroogeReport};
pub use sram::{run, SramScenarioReport};

/// Canonical JSON float text shared by the report serializers: finite
/// values render with Rust's shortest round-trip `Display` (stable
/// across platforms), non-finite values as `null`.
pub(crate) fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}
