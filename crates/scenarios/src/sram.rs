//! The SRAM fault-domain scenario: campaign sweep + dual-class audit.
//!
//! One scenario run is (a) the thread-count-invariant
//! [`SramCampaign`](suit_faults::SramCampaign) sweep of a sampled
//! per-bank array over the configured offsets, and (b) the extended
//! §6.9 audit matrix at the *deepest* configured offset, covering both
//! fault classes: instruction-Vmin datapath faults (naive undervolt,
//! SUIT traps-only, SUIT with hardened `IMUL`) and per-bank SRAM
//! retention flips (naive vs the bank-quarantine guard). The SRAM-aware
//! invariant under audit is *no live bank operates below its bank-Vmin,
//! or its contents are treated as untrusted*.

use suit_faults::{
    audit_naive_undervolt, audit_sram_guarded, audit_sram_naive, audit_suit_system,
    audit_suit_traps_only, AuditOutcome, ChipVminModel, SramArrayModel, SramCampaign,
};
use suit_telemetry::{json::escape, Telemetry};

use crate::config::SramScenarioConfig;
use crate::json_num;

/// One bank of the report: its sampled parameters and sweep results.
#[derive(Debug, Clone, PartialEq)]
pub struct BankRow {
    /// `"cache"` or `"rob"`.
    pub kind: &'static str,
    /// Sampled retention margin, mV.
    pub margin_mv: f64,
    /// Offset points at which the bank flipped.
    pub faults: u32,
    /// Shallowest faulting offset, mV (`-inf` if the bank never flipped;
    /// serialized as `null`).
    pub first_fault_offset_mv: f64,
    /// Weak cells in the bank's fixed flip mask.
    pub weak_cells: u32,
}

/// One row of the dual-class audit matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRow {
    /// `"instruction"` or `"sram"`.
    pub fault_class: &'static str,
    /// Defence configuration label.
    pub defence: &'static str,
    /// The audit outcome.
    pub outcome: AuditOutcome,
}

/// Results of one SRAM scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct SramScenarioReport {
    /// Per-bank sweep results, cache banks first.
    pub banks: Vec<BankRow>,
    /// Total faulting (bank, offset) points.
    pub total_faults: u64,
    /// Total weak-cell bits flipped across the sweep.
    pub bits_flipped: u64,
    /// The deepest configured offset, mV — where the audits run.
    pub deepest_offset_mv: f64,
    /// The audit matrix: both fault classes × defence configurations.
    pub audits: Vec<AuditRow>,
}

/// Runs the scenario: campaign sweep over `threads` workers (recording
/// into `tele`), then the audit matrix at the deepest offset. The report
/// is byte-identical at every thread count.
///
/// # Panics
///
/// Panics if `threads` is zero or the config is invalid — validate with
/// [`SramScenarioConfig::validate`] first (the JSON parsers always do).
pub fn run(cfg: &SramScenarioConfig, threads: usize, tele: &Telemetry) -> SramScenarioReport {
    let array = SramArrayModel::sample(cfg.cache_banks, cfg.rob_banks, cfg.sigma_mv, cfg.seed);
    let campaign = SramCampaign {
        array: array.clone(),
        offsets_mv: cfg.offsets_mv.clone(),
        reads: cfg.reads,
        seed: cfg.seed,
    };
    let sweep = campaign.run_with_threads_telemetry(threads, tele);
    let banks = (0..array.bank_count())
        .map(|i| BankRow {
            kind: array.bank(i).kind.label(),
            margin_mv: array.margin_mv(i),
            faults: sweep.faults(i),
            first_fault_offset_mv: sweep.first_fault_offset_mv(i),
            weak_cells: array.bank(i).flip_mask.count_ones(),
        })
        .collect();

    let deepest = cfg.offsets_mv.iter().copied().fold(f64::INFINITY, f64::min);
    let chip = ChipVminModel::sample(cfg.cores, cfg.sigma_mv, cfg.seed);
    let len = cfg.audit_len;
    let audits = vec![
        AuditRow {
            fault_class: "instruction",
            defence: "naive",
            outcome: audit_naive_undervolt(&chip, 0, deepest, cfg.seed, len),
        },
        AuditRow {
            fault_class: "instruction",
            defence: "suit_traps",
            outcome: audit_suit_traps_only(&chip, 0, deepest, cfg.seed, len),
        },
        AuditRow {
            fault_class: "instruction",
            defence: "suit_hardened_imul",
            outcome: audit_suit_system(&chip, 0, deepest, cfg.seed, len),
        },
        AuditRow {
            fault_class: "sram",
            defence: "naive",
            outcome: audit_sram_naive(&array, deepest, cfg.seed, len),
        },
        AuditRow {
            fault_class: "sram",
            defence: "guarded",
            outcome: audit_sram_guarded(&array, deepest, cfg.seed, len),
        },
    ];

    SramScenarioReport {
        banks,
        total_faults: sweep.total_faults(),
        bits_flipped: sweep.bits_flipped(),
        deepest_offset_mv: deepest,
        audits,
    }
}

impl SramScenarioReport {
    /// Whether every SUIT-defended row (everything but the two `naive`
    /// rows) came back with zero silent errors.
    pub fn defended_rows_secure(&self) -> bool {
        self.audits
            .iter()
            .filter(|r| r.defence != "naive")
            .all(|r| r.outcome.is_secure())
    }

    /// Serializes the report as deterministic JSON (sorted keys).
    pub fn to_json(&self) -> String {
        let banks: Vec<String> = self
            .banks
            .iter()
            .map(|b| {
                format!(
                    "{{\"faults\":{},\"first_fault_offset_mv\":{},\"kind\":{},\
                     \"margin_mv\":{},\"weak_cells\":{}}}",
                    b.faults,
                    json_num(b.first_fault_offset_mv),
                    escape(b.kind),
                    json_num(b.margin_mv),
                    b.weak_cells
                )
            })
            .collect();
        let audits: Vec<String> = self.audits.iter().map(audit_row_json).collect();
        format!(
            "{{\"audits\":[{}],\"banks\":[{}],\"bits_flipped\":{},\
             \"deepest_offset_mv\":{},\"scenario\":\"sram\",\"total_faults\":{}}}",
            audits.join(","),
            banks.join(","),
            self.bits_flipped,
            json_num(self.deepest_offset_mv),
            self.total_faults
        )
    }

    /// Renders the report as human-readable text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "SRAM fault-domain scenario ({} banks, sweep to {} mV):\n",
            self.banks.len(),
            self.deepest_offset_mv
        ));
        for (i, b) in self.banks.iter().enumerate() {
            let first = if b.first_fault_offset_mv.is_finite() {
                format!("{:.0} mV", b.first_fault_offset_mv)
            } else {
                "never".to_string()
            };
            out.push_str(&format!(
                "  bank {i:>3} {:<5} margin {:>6.1} mV  faults {:>3}  first {:>8}  weak cells {}\n",
                b.kind, b.margin_mv, b.faults, first, b.weak_cells
            ));
        }
        out.push_str(&format!(
            "  total: {} faulting points, {} bits flipped\n",
            self.total_faults, self.bits_flipped
        ));
        out.push_str(&format!(
            "  audit matrix at {} mV (any silent error is a security failure):\n",
            self.deepest_offset_mv
        ));
        for r in &self.audits {
            out.push_str(&format!(
                "    {:<11} {:<18} executed {:>6}  trapped {:>6}  silent errors {:>4}  {}\n",
                r.fault_class,
                r.defence,
                r.outcome.executed,
                r.outcome.trapped,
                r.outcome.silent_errors,
                if r.outcome.is_secure() {
                    "secure"
                } else {
                    "INSECURE"
                }
            ));
        }
        out
    }
}

/// Shared audit-row serializer (also used by the Scrooge report).
pub(crate) fn audit_row_json(r: &AuditRow) -> String {
    format!(
        "{{\"defence\":{},\"executed\":{},\"fault_class\":{},\"secure\":{},\
         \"silent_errors\":{},\"trapped\":{}}}",
        escape(r.defence),
        r.outcome.executed,
        escape(r.fault_class),
        r.outcome.is_secure(),
        r.outcome.silent_errors,
        r.outcome.trapped
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_thread_count_invariant() {
        let cfg = SramScenarioConfig::default();
        let one = run(&cfg, 1, &Telemetry::off());
        for threads in [2, 4] {
            let many = run(&cfg, threads, &Telemetry::off());
            assert_eq!(one, many, "{threads} threads diverged");
            assert_eq!(one.to_json(), many.to_json());
        }
    }

    #[test]
    fn default_scenario_faults_naive_and_clears_defences() {
        // One seed can be lucky; the property test sweeps more. Here,
        // pin the default: the sweep reaches −180 mV, far below every
        // bank margin, so the naive SRAM audit must corrupt.
        let r = run(&SramScenarioConfig::default(), 2, &Telemetry::off());
        assert!(r.total_faults > 0);
        assert!(r.defended_rows_secure(), "{:#?}", r.audits);
        let sram_naive = r
            .audits
            .iter()
            .find(|a| a.fault_class == "sram" && a.defence == "naive")
            .unwrap();
        assert!(sram_naive.outcome.silent_errors > 0);
    }

    #[test]
    fn json_is_valid_and_discriminated() {
        let r = run(&SramScenarioConfig::default(), 1, &Telemetry::off());
        let doc = suit_telemetry::json::parse(&r.to_json()).expect("valid JSON");
        assert_eq!(doc.get("scenario").and_then(|s| s.as_str()), Some("sram"));
        assert_eq!(
            doc.get("banks").and_then(|b| b.as_arr()).map(|a| a.len()),
            Some(12)
        );
        assert!(!r.render().is_empty());
    }
}
