//! Strict JSON configuration for the scenario campaigns.
//!
//! Same contract as `FleetConfig::from_json` and the `SUITTRC` readers:
//! arbitrary byte soup, truncation, and hostile counts must come back as
//! a structured `Err`, never a panic — every count is bounds-checked
//! here *before* any count-proportional allocation happens in the
//! runners, and unknown keys are rejected so typos fail loudly.
//!
//! The same document shape is accepted everywhere a scenario enters the
//! stack: `suit-cli scenario sram|scrooge --config <file>` (the
//! `"scenario"` discriminator is optional — the subcommand names it) and
//! `POST /v1/scenario` (the discriminator is required; service-level
//! keys like `deadline_ms` are passed through `skip`).

use suit_hw::UndervoltLevel;
use suit_sim::fleet::FleetConfig;
use suit_telemetry::json;

/// Upper bound on banks of either kind in a sampled SRAM array.
pub const MAX_BANKS: usize = 4096;
/// Upper bound on offsets in an SRAM sweep.
pub const MAX_OFFSETS: usize = 256;
/// Upper bound on accesses per (bank, offset) point.
pub const MAX_READS: u32 = 1 << 20;
/// Upper bound on audit sequence length.
pub const MAX_AUDIT_LEN: usize = 1_000_000;
/// Upper bound on audited cores in the SRAM scenario.
pub const MAX_CORES: usize = 1024;
/// Upper bound on grid steps along either search axis.
pub const MAX_STEPS: usize = 64;
/// Upper bound on coordinate-refinement rounds.
pub const MAX_REFINE_ROUNDS: usize = 16;

/// Configuration of the SRAM fault-domain scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SramScenarioConfig {
    /// Cache banks in the sampled array.
    pub cache_banks: usize,
    /// Reorder-buffer banks in the sampled array.
    pub rob_banks: usize,
    /// Datapath process-variation sigma, mV (the SRAM family scales it
    /// down internally).
    pub sigma_mv: f64,
    /// Undervolt offsets to sweep, mV (non-positive).
    pub offsets_mv: Vec<f64>,
    /// Accesses per (bank, offset) point.
    pub reads: u32,
    /// Instructions / accesses per audit run.
    pub audit_len: usize,
    /// Cores in the instruction-class audit chip.
    pub cores: usize,
    /// Root seed for the array, the chip and every audit.
    pub seed: u64,
}

impl Default for SramScenarioConfig {
    fn default() -> Self {
        SramScenarioConfig {
            cache_banks: 8,
            rob_banks: 4,
            sigma_mv: 12.0,
            offsets_mv: (10..=18).map(|i| -10.0 * i as f64).collect(),
            reads: 4096,
            audit_len: 2000,
            cores: 2,
            seed: 0x5017,
        }
    }
}

impl SramScenarioConfig {
    /// Validates every field; counts are bounds-checked before anything
    /// is allocated from them.
    pub fn validate(&self) -> Result<(), String> {
        if self.cache_banks > MAX_BANKS || self.rob_banks > MAX_BANKS {
            return Err(format!("bank counts must be at most {MAX_BANKS}"));
        }
        if self.cache_banks + self.rob_banks == 0 {
            return Err("need at least one bank (cache_banks + rob_banks >= 1)".to_string());
        }
        if !(self.sigma_mv.is_finite() && (0.0..=200.0).contains(&self.sigma_mv)) {
            return Err("sigma_mv must be finite, in 0..=200".to_string());
        }
        if self.offsets_mv.is_empty() || self.offsets_mv.len() > MAX_OFFSETS {
            return Err(format!("offsets_mv must list 1..={MAX_OFFSETS} offsets"));
        }
        for o in &self.offsets_mv {
            if !(o.is_finite() && (-1000.0..=0.0).contains(o)) {
                return Err("offsets_mv entries must be finite, in -1000..=0".to_string());
            }
        }
        if self.reads == 0 || self.reads > MAX_READS {
            return Err(format!("reads must be in 1..={MAX_READS}"));
        }
        if self.audit_len == 0 || self.audit_len > MAX_AUDIT_LEN {
            return Err(format!("audit_len must be in 1..={MAX_AUDIT_LEN}"));
        }
        if self.cores == 0 || self.cores > MAX_CORES {
            return Err(format!("cores must be in 1..={MAX_CORES}"));
        }
        Ok(())
    }

    /// Parses a config from a JSON document.
    pub fn from_json(src: &str) -> Result<SramScenarioConfig, String> {
        Self::from_value(&json::parse(src)?, &[])
    }

    /// Parses a config from an already-parsed document, ignoring the
    /// keys in `skip` (service-level fields such as `deadline_ms`). A
    /// `"scenario"` key, if present, must name this scenario.
    pub fn from_value(v: &json::Value, skip: &[&str]) -> Result<SramScenarioConfig, String> {
        let json::Value::Obj(pairs) = v else {
            return Err("scenario config must be a JSON object".to_string());
        };
        let mut cfg = SramScenarioConfig::default();
        for (key, value) in pairs {
            if skip.contains(&key.as_str()) {
                continue;
            }
            match key.as_str() {
                "scenario" => {
                    if value.as_str() != Some("sram") {
                        return Err("'scenario' must be \"sram\" here".to_string());
                    }
                }
                "cache_banks" => cfg.cache_banks = json_count(value, key)? as usize,
                "rob_banks" => cfg.rob_banks = json_count(value, key)? as usize,
                "sigma_mv" => {
                    cfg.sigma_mv = value
                        .as_f64()
                        .ok_or_else(|| "'sigma_mv' must be a number".to_string())?;
                }
                "offsets_mv" => cfg.offsets_mv = json_numbers(value, key)?,
                "reads" => cfg.reads = json_count(value, key)? as u32,
                "audit_len" => cfg.audit_len = json_count(value, key)? as usize,
                "cores" => cfg.cores = json_count(value, key)? as usize,
                "seed" => cfg.seed = json_count(value, key)?,
                other => return Err(format!("unknown key '{other}'")),
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

/// Configuration of the Scrooge attacker-economics scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScroogeConfig {
    /// Racks in the attacked fleet.
    pub racks: usize,
    /// DVFS domains per rack.
    pub domains_per_rack: usize,
    /// Cores per domain.
    pub cores_per_domain: usize,
    /// Thermal epochs of the validation fleet run.
    pub epochs: usize,
    /// Instructions per epoch of the validation fleet run.
    pub epoch_insts: u64,
    /// Workload every domain runs.
    pub workload: String,
    /// Datapath process-variation sigma, mV.
    pub sigma_mv: f64,
    /// Cache banks per domain's SRAM array.
    pub cache_banks: usize,
    /// ROB banks per domain's SRAM array.
    pub rob_banks: usize,
    /// Deepest voltage offset the search may choose, mV (negative).
    pub offset_min_mv: f64,
    /// Grid steps along the offset axis (0 → `offset_min_mv`).
    pub offset_steps: usize,
    /// Lowest frequency scale the search may choose, in (0, 1].
    pub freq_min: f64,
    /// Grid steps along the frequency axis (1 → `freq_min`).
    pub freq_steps: usize,
    /// Coordinate-refinement rounds after the grid pass.
    pub refine_rounds: usize,
    /// Energy price, $ per MWh.
    pub energy_price: f64,
    /// Expected cost of one crash over the horizon, $ per domain.
    pub crash_cost: f64,
    /// Expected cost of one silent data corruption, $ per domain.
    pub sdc_cost: f64,
    /// SLA penalty per unit of lost throughput, $ per domain-hour.
    pub sla_cost: f64,
    /// Nominal power per domain, W.
    pub domain_power_w: f64,
    /// Attack horizon, hours.
    pub horizon_hours: f64,
    /// Instructions / accesses per defence audit.
    pub audit_len: usize,
    /// Root seed: per-domain chips and arrays fork from it.
    pub seed: u64,
}

impl Default for ScroogeConfig {
    fn default() -> Self {
        ScroogeConfig {
            racks: 2,
            domains_per_rack: 2,
            cores_per_domain: 2,
            epochs: 2,
            epoch_insts: 1_000_000,
            workload: "502.gcc".to_string(),
            sigma_mv: 12.0,
            cache_banks: 4,
            rob_banks: 2,
            offset_min_mv: -180.0,
            offset_steps: 13,
            freq_min: 0.7,
            freq_steps: 7,
            refine_rounds: 3,
            energy_price: 80.0,
            crash_cost: 50.0,
            sdc_cost: 500.0,
            sla_cost: 0.02,
            domain_power_w: 350.0,
            horizon_hours: 720.0,
            audit_len: 1500,
            seed: 0x5017,
        }
    }
}

impl ScroogeConfig {
    /// The validation fleet this scenario attacks, at `level`. The fleet
    /// shape (racks, domains, cores, epochs, workload) is validated by
    /// `FleetConfig::validate`, so the Scrooge scenario inherits every
    /// fleet bound.
    pub fn fleet_config(&self, level: UndervoltLevel) -> FleetConfig {
        FleetConfig {
            level,
            racks: self.racks,
            domains_per_rack: self.domains_per_rack,
            cores_per_domain: self.cores_per_domain,
            epochs: self.epochs,
            epoch_insts: self.epoch_insts,
            seed: self.seed,
            workloads: vec![self.workload.clone()],
            ..FleetConfig::default()
        }
    }

    /// Validates every field (fleet shape through `FleetConfig`).
    pub fn validate(&self) -> Result<(), String> {
        self.fleet_config(UndervoltLevel::Mv97).validate()?;
        if !(self.sigma_mv.is_finite() && (0.0..=200.0).contains(&self.sigma_mv)) {
            return Err("sigma_mv must be finite, in 0..=200".to_string());
        }
        if self.cache_banks > MAX_BANKS || self.rob_banks > MAX_BANKS {
            return Err(format!("bank counts must be at most {MAX_BANKS}"));
        }
        if self.cache_banks + self.rob_banks == 0 {
            return Err("need at least one bank (cache_banks + rob_banks >= 1)".to_string());
        }
        if !(self.offset_min_mv.is_finite() && (-400.0..0.0).contains(&self.offset_min_mv)) {
            return Err("offset_min_mv must be finite, in -400..<0".to_string());
        }
        if !(2..=MAX_STEPS).contains(&self.offset_steps)
            || !(2..=MAX_STEPS).contains(&self.freq_steps)
        {
            return Err(format!("grid steps must be in 2..={MAX_STEPS}"));
        }
        if !(self.freq_min.is_finite() && self.freq_min > 0.0 && self.freq_min <= 1.0) {
            return Err("freq_min must be in (0, 1]".to_string());
        }
        if self.refine_rounds > MAX_REFINE_ROUNDS {
            return Err(format!("refine_rounds must be at most {MAX_REFINE_ROUNDS}"));
        }
        for (field, v) in [
            ("energy_price", self.energy_price),
            ("crash_cost", self.crash_cost),
            ("sdc_cost", self.sdc_cost),
            ("sla_cost", self.sla_cost),
        ] {
            if !(v.is_finite() && (0.0..=1e9).contains(&v)) {
                return Err(format!("{field} must be finite, in 0..=1e9"));
            }
        }
        if !(self.domain_power_w.is_finite() && (0.0..=100_000.0).contains(&self.domain_power_w))
            || self.domain_power_w == 0.0
        {
            return Err("domain_power_w must be finite, in (0, 100000]".to_string());
        }
        if !(self.horizon_hours.is_finite() && (0.0..=1_000_000.0).contains(&self.horizon_hours))
            || self.horizon_hours == 0.0
        {
            return Err("horizon_hours must be finite, in (0, 1000000]".to_string());
        }
        if self.audit_len == 0 || self.audit_len > MAX_AUDIT_LEN {
            return Err(format!("audit_len must be in 1..={MAX_AUDIT_LEN}"));
        }
        Ok(())
    }

    /// Parses a config from a JSON document.
    pub fn from_json(src: &str) -> Result<ScroogeConfig, String> {
        Self::from_value(&json::parse(src)?, &[])
    }

    /// Parses a config from an already-parsed document, ignoring the
    /// keys in `skip`. A `"scenario"` key, if present, must name this
    /// scenario.
    pub fn from_value(v: &json::Value, skip: &[&str]) -> Result<ScroogeConfig, String> {
        let json::Value::Obj(pairs) = v else {
            return Err("scenario config must be a JSON object".to_string());
        };
        let mut cfg = ScroogeConfig::default();
        for (key, value) in pairs {
            if skip.contains(&key.as_str()) {
                continue;
            }
            match key.as_str() {
                "scenario" => {
                    if value.as_str() != Some("scrooge") {
                        return Err("'scenario' must be \"scrooge\" here".to_string());
                    }
                }
                "racks" => cfg.racks = json_count(value, key)? as usize,
                "domains_per_rack" => cfg.domains_per_rack = json_count(value, key)? as usize,
                "cores_per_domain" => cfg.cores_per_domain = json_count(value, key)? as usize,
                "epochs" => cfg.epochs = json_count(value, key)? as usize,
                "epoch_insts" => cfg.epoch_insts = json_count(value, key)?,
                "workload" => {
                    cfg.workload = value
                        .as_str()
                        .ok_or_else(|| "'workload' must be a string".to_string())?
                        .to_string();
                }
                "sigma_mv" => cfg.sigma_mv = json_number(value, key)?,
                "cache_banks" => cfg.cache_banks = json_count(value, key)? as usize,
                "rob_banks" => cfg.rob_banks = json_count(value, key)? as usize,
                "offset_min_mv" => cfg.offset_min_mv = json_number(value, key)?,
                "offset_steps" => cfg.offset_steps = json_count(value, key)? as usize,
                "freq_min" => cfg.freq_min = json_number(value, key)?,
                "freq_steps" => cfg.freq_steps = json_count(value, key)? as usize,
                "refine_rounds" => cfg.refine_rounds = json_count(value, key)? as usize,
                "energy_price" => cfg.energy_price = json_number(value, key)?,
                "crash_cost" => cfg.crash_cost = json_number(value, key)?,
                "sdc_cost" => cfg.sdc_cost = json_number(value, key)?,
                "sla_cost" => cfg.sla_cost = json_number(value, key)?,
                "domain_power_w" => cfg.domain_power_w = json_number(value, key)?,
                "horizon_hours" => cfg.horizon_hours = json_number(value, key)?,
                "audit_len" => cfg.audit_len = json_count(value, key)? as usize,
                "seed" => cfg.seed = json_count(value, key)?,
                other => return Err(format!("unknown key '{other}'")),
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

/// A parsed scenario request: the `"scenario"` discriminator plus the
/// matching config. This is what `POST /v1/scenario` and the fuzz suite
/// parse.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioConfig {
    /// The SRAM fault-domain scenario.
    Sram(SramScenarioConfig),
    /// The Scrooge attacker-economics scenario.
    Scrooge(ScroogeConfig),
}

impl ScenarioConfig {
    /// Parses a discriminated scenario document.
    pub fn from_json(src: &str) -> Result<ScenarioConfig, String> {
        Self::from_value(&json::parse(src)?, &[])
    }

    /// Parses a discriminated scenario document that is already a JSON
    /// value, ignoring the keys in `skip`.
    pub fn from_value(v: &json::Value, skip: &[&str]) -> Result<ScenarioConfig, String> {
        let json::Value::Obj(_) = v else {
            return Err("scenario config must be a JSON object".to_string());
        };
        match v.get("scenario").and_then(|s| s.as_str()) {
            Some("sram") => Ok(ScenarioConfig::Sram(SramScenarioConfig::from_value(
                v, skip,
            )?)),
            Some("scrooge") => Ok(ScenarioConfig::Scrooge(ScroogeConfig::from_value(v, skip)?)),
            Some(other) => Err(format!(
                "unknown scenario '{other}' (expected \"sram\" or \"scrooge\")"
            )),
            None => Err("missing 'scenario' (\"sram\" or \"scrooge\")".to_string()),
        }
    }
}

/// Extracts a non-negative integer count from a JSON number, rejecting
/// fractions, negatives, and anything beyond exact-f64 range.
fn json_count(v: &json::Value, key: &str) -> Result<u64, String> {
    let n = v
        .as_f64()
        .ok_or_else(|| format!("'{key}' must be a number"))?;
    if !n.is_finite() || n.fract() != 0.0 || !(0.0..=9_007_199_254_740_992.0).contains(&n) {
        return Err(format!("'{key}' must be a non-negative integer"));
    }
    Ok(n as u64)
}

/// Extracts a finite number (range checks happen in `validate`).
fn json_number(v: &json::Value, key: &str) -> Result<f64, String> {
    v.as_f64()
        .filter(|n| n.is_finite())
        .ok_or_else(|| format!("'{key}' must be a finite number"))
}

/// Extracts an array of finite numbers.
fn json_numbers(v: &json::Value, key: &str) -> Result<Vec<f64>, String> {
    let arr = v
        .as_arr()
        .ok_or_else(|| format!("'{key}' must be an array"))?;
    arr.iter()
        .map(|x| {
            x.as_f64()
                .filter(|n| n.is_finite())
                .ok_or_else(|| format!("'{key}' entries must be finite numbers"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        SramScenarioConfig::default().validate().unwrap();
        ScroogeConfig::default().validate().unwrap();
    }

    #[test]
    fn empty_objects_parse_to_defaults() {
        assert_eq!(
            SramScenarioConfig::from_json("{}").unwrap(),
            SramScenarioConfig::default()
        );
        assert_eq!(
            ScroogeConfig::from_json("{}").unwrap(),
            ScroogeConfig::default()
        );
    }

    #[test]
    fn discriminator_routes_and_is_required() {
        let sram = ScenarioConfig::from_json("{\"scenario\":\"sram\",\"cache_banks\":2}").unwrap();
        assert!(matches!(sram, ScenarioConfig::Sram(ref c) if c.cache_banks == 2));
        let scrooge = ScenarioConfig::from_json("{\"scenario\":\"scrooge\",\"racks\":1}").unwrap();
        assert!(matches!(scrooge, ScenarioConfig::Scrooge(ref c) if c.racks == 1));
        assert!(ScenarioConfig::from_json("{}")
            .unwrap_err()
            .contains("scenario"));
        assert!(ScenarioConfig::from_json("{\"scenario\":\"x\"}")
            .unwrap_err()
            .contains("unknown scenario"));
        // The per-type parsers reject a mismatched discriminator.
        assert!(SramScenarioConfig::from_json("{\"scenario\":\"scrooge\"}").is_err());
    }

    #[test]
    fn unknown_keys_and_hostile_counts_are_rejected() {
        assert!(SramScenarioConfig::from_json("{\"cache_bankz\":1}")
            .unwrap_err()
            .contains("unknown key"));
        assert!(ScroogeConfig::from_json("{\"racks\":1e30}").is_err());
        assert!(ScroogeConfig::from_json("{\"racks\":-1}").is_err());
        assert!(SramScenarioConfig::from_json("{\"reads\":2.5}").is_err());
        assert!(SramScenarioConfig::from_json("{\"cache_banks\":99999999}").is_err());
        assert!(SramScenarioConfig::from_json("{\"offsets_mv\":[1e999]}").is_err());
        assert!(SramScenarioConfig::from_json("not json").is_err());
        assert!(SramScenarioConfig::from_json("[1,2]").is_err());
    }

    #[test]
    fn skip_keys_pass_through() {
        let v = json::parse("{\"scenario\":\"sram\",\"deadline_ms\":50,\"seed\":7}").unwrap();
        let cfg = ScenarioConfig::from_value(&v, &["deadline_ms"]).unwrap();
        assert!(matches!(cfg, ScenarioConfig::Sram(ref c) if c.seed == 7));
        // ...but without skip, the service-level key is unknown.
        assert!(ScenarioConfig::from_value(&v, &[]).is_err());
    }

    #[test]
    fn scrooge_inherits_fleet_bounds() {
        assert!(ScroogeConfig::from_json("{\"workload\":\"no-such\"}")
            .unwrap_err()
            .contains("unknown workload"));
        assert!(ScroogeConfig::from_json("{\"racks\":0}").is_err());
        assert!(ScroogeConfig::from_json("{\"epoch_insts\":0}").is_err());
    }

    #[test]
    fn search_space_bounds_hold() {
        assert!(ScroogeConfig::from_json("{\"offset_min_mv\":5}").is_err());
        assert!(ScroogeConfig::from_json("{\"offset_steps\":1}").is_err());
        assert!(ScroogeConfig::from_json("{\"freq_min\":0}").is_err());
        assert!(ScroogeConfig::from_json("{\"freq_min\":1.5}").is_err());
        assert!(ScroogeConfig::from_json("{\"refine_rounds\":99}").is_err());
    }
}
