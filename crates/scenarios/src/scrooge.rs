//! The Scrooge attacker-economics scenario.
//!
//! A Scrooge attacker ("Scrooge Attack: Undervolting ARM Processors for
//! Profit") operates someone else's fleet below spec and pockets the
//! energy difference, accepting some risk of crashes and silent data
//! corruption. This module makes that attacker executable: a
//! deterministic seeded search over the fleet's voltage/frequency space
//! for the operating point with the best *net profit*
//!
//! ```text
//! net = energy saved · price  −  E[SDC] · sdc_cost  −  E[crash] · crash_cost
//!       −  throughput lost · sla_cost
//! ```
//!
//! where the fault expectations come from the same per-domain
//! [`ChipVminModel`] / [`SramArrayModel`] instances the §6.9 audits use
//! (per-domain process variation forked from the root seed). Lowering
//! frequency buys back voltage margin ([`FREQ_MARGIN_MV_PER_UNIT`]), so
//! the offset and frequency axes genuinely trade off.
//!
//! The search is a grid pass plus coordinate refinement, fanned out over
//! [`suit_exec`] — every point is a pure function of its index, so the
//! chosen point (and the whole report) is byte-identical at any thread
//! count. The chosen point is then validated with a [`FleetSim`] run and
//! the defence matrix (naive, SUIT traps, SUIT + hardened `IMUL`,
//! SRAM-guarded) is audited *at the attacker's chosen point*.

use suit_exec::Threads;
use suit_faults::{
    audit_naive_undervolt, audit_sram_guarded, audit_sram_naive, audit_suit_system,
    audit_suit_traps_only, ChipVminModel, SramArrayModel,
};
use suit_hw::UndervoltLevel;
use suit_isa::{Opcode, TABLE1};
use suit_rng::SuitRng;
use suit_sim::fleet::FleetSim;
use suit_telemetry::{Counter, Telemetry};

use crate::config::ScroogeConfig;
use crate::json_num;
use crate::sram::{audit_row_json, AuditRow};

/// Voltage margin bought back per unit of frequency scaling, mV: at
/// `freq_scale = 0.8` every path has 25 % more time, worth ≈ 50 mV of
/// the 250 mV guardband between the conservative curve and the deepest
/// modeled margins.
pub const FREQ_MARGIN_MV_PER_UNIT: f64 = 250.0;

/// Nominal supply voltage, mV — converts offsets into relative voltage.
pub const V_NOM_MV: f64 = 1000.0;

/// Modeled faultable-instruction executions (per core/op) and bank
/// accesses over the horizon when composing survival probabilities.
const EXECUTIONS_PER_POINT: i32 = 10_000;

/// One evaluated operating point of the search space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointEval {
    /// Voltage offset, mV (non-positive).
    pub offset_mv: f64,
    /// Frequency scale in `(0, 1]`.
    pub freq_scale: f64,
    /// Energy cost saved over the horizon, $.
    pub savings: f64,
    /// Expected crash/SDC/SLA penalty over the horizon, $.
    pub penalty: f64,
    /// `savings − penalty`, $ — the attacker's objective.
    pub net: f64,
}

/// One fleet domain's fault models, forked from the root seed.
struct DomainModels {
    chip: ChipVminModel,
    array: SramArrayModel,
}

/// Results of one Scrooge search.
#[derive(Debug, Clone, PartialEq)]
pub struct ScroogeReport {
    /// The attacker's chosen operating point.
    pub chosen: PointEval,
    /// Operating points evaluated (grid + refinement).
    pub points_evaluated: u64,
    /// Domains in the attacked fleet.
    pub domains: usize,
    /// Undervolt level of the validation fleet run, mV (70 or 97).
    pub level_mv: u32,
    /// Fleet performance delta at the chosen level.
    pub fleet_perf: f64,
    /// Fleet power delta at the chosen level.
    pub fleet_power: f64,
    /// Fleet efficiency delta at the chosen level.
    pub fleet_efficiency: f64,
    /// The defence matrix at the chosen point: for each defence
    /// configuration, the instruction-class and SRAM-class audits.
    pub defences: Vec<AuditRow>,
}

/// Runs the Scrooge search over `threads` workers, recording the
/// evaluated-points counter into `tele`. The report is byte-identical at
/// every thread count. Errors only if the fleet config is rejected —
/// [`ScroogeConfig::validate`] beforehand makes that unreachable.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn search(
    cfg: &ScroogeConfig,
    threads: usize,
    tele: &Telemetry,
) -> Result<ScroogeReport, String> {
    assert!(threads >= 1, "need at least one worker");
    let domains = cfg.racks * cfg.domains_per_rack;
    let root = SuitRng::seed_from_u64(cfg.seed);
    let models: Vec<DomainModels> = (0..domains)
        .map(|d| DomainModels {
            chip: ChipVminModel::sample(
                cfg.cores_per_domain,
                cfg.sigma_mv,
                root.fork(2 * d as u64).root_seed(),
            ),
            array: SramArrayModel::sample(
                cfg.cache_banks,
                cfg.rob_banks,
                cfg.sigma_mv,
                root.fork(2 * d as u64 + 1).root_seed(),
            ),
        })
        .collect();

    // Grid pass: every point is a pure function of its index, so the
    // fan-out is thread-count invariant; the arg-max scan is serial and
    // keeps the *first* best point (index order) on ties.
    let grid_points = cfg.offset_steps * cfg.freq_steps;
    let grid = suit_exec::run(grid_points, Threads::Fixed(threads), |k| {
        let (i, j) = (k / cfg.freq_steps, k % cfg.freq_steps);
        let offset = cfg.offset_min_mv * i as f64 / (cfg.offset_steps - 1) as f64;
        let freq = 1.0 - (1.0 - cfg.freq_min) * j as f64 / (cfg.freq_steps - 1) as f64;
        eval_point(cfg, &models, offset, freq)
    });
    let mut best = grid[0];
    for p in &grid[1..] {
        if p.net > best.net {
            best = *p;
        }
    }
    let mut points_evaluated = grid_points as u64;

    // Coordinate refinement: probe the four axis neighbours at halving
    // deltas, moving only on strict improvement.
    let base_doff = -cfg.offset_min_mv / (cfg.offset_steps - 1) as f64;
    let base_dfreq = (1.0 - cfg.freq_min) / (cfg.freq_steps - 1) as f64;
    for round in 0..cfg.refine_rounds {
        let scale = 0.5f64.powi(round as i32 + 1);
        let (doff, dfreq) = (base_doff * scale, base_dfreq * scale);
        let candidates = [
            (
                (best.offset_mv - doff).max(cfg.offset_min_mv),
                best.freq_scale,
            ),
            ((best.offset_mv + doff).min(0.0), best.freq_scale),
            (best.offset_mv, (best.freq_scale - dfreq).max(cfg.freq_min)),
            (best.offset_mv, (best.freq_scale + dfreq).min(1.0)),
        ];
        let evals = suit_exec::run(candidates.len(), Threads::Fixed(threads), |k| {
            let (offset, freq) = candidates[k];
            eval_point(cfg, &models, offset, freq)
        });
        points_evaluated += candidates.len() as u64;
        for e in &evals {
            if e.net > best.net {
                best = *e;
            }
        }
    }
    tele.add(Counter::ScroogePointsEvaluated, points_evaluated);

    // Validate the chosen point with a fleet run at the nearest modeled
    // undervolt level, then audit every defence configuration at the
    // effective offset the attacker's point exposes the circuits to.
    let level = if best.offset_mv <= -83.5 {
        UndervoltLevel::Mv97
    } else {
        UndervoltLevel::Mv70
    };
    let fleet = FleetSim::new(cfg.fleet_config(level))?.run(Threads::Fixed(threads));
    let eff_offset = (best.offset_mv + (1.0 - best.freq_scale) * FREQ_MARGIN_MV_PER_UNIT).min(0.0);
    let m0 = &models[0];
    let len = cfg.audit_len;
    let defences = vec![
        AuditRow {
            fault_class: "instruction",
            defence: "naive",
            outcome: audit_naive_undervolt(&m0.chip, 0, eff_offset, cfg.seed, len),
        },
        AuditRow {
            fault_class: "sram",
            defence: "naive",
            outcome: audit_sram_naive(&m0.array, eff_offset, cfg.seed, len),
        },
        AuditRow {
            fault_class: "instruction",
            defence: "suit_traps",
            outcome: audit_suit_traps_only(&m0.chip, 0, eff_offset, cfg.seed, len),
        },
        AuditRow {
            fault_class: "sram",
            defence: "suit_traps",
            outcome: audit_sram_naive(&m0.array, eff_offset, cfg.seed, len),
        },
        AuditRow {
            fault_class: "instruction",
            defence: "suit_hardened_imul",
            outcome: audit_suit_system(&m0.chip, 0, eff_offset, cfg.seed, len),
        },
        AuditRow {
            fault_class: "sram",
            defence: "suit_hardened_imul",
            outcome: audit_sram_naive(&m0.array, eff_offset, cfg.seed, len),
        },
        AuditRow {
            fault_class: "instruction",
            defence: "sram_guarded",
            outcome: audit_suit_system(&m0.chip, 0, eff_offset, cfg.seed, len),
        },
        AuditRow {
            fault_class: "sram",
            defence: "sram_guarded",
            outcome: audit_sram_guarded(&m0.array, eff_offset, cfg.seed, len),
        },
    ];

    Ok(ScroogeReport {
        chosen: best,
        points_evaluated,
        domains,
        level_mv: match level {
            UndervoltLevel::Mv70 => 70,
            UndervoltLevel::Mv97 => 97,
        },
        fleet_perf: fleet.perf(),
        fleet_power: fleet.power(),
        fleet_efficiency: fleet.efficiency(),
        defences,
    })
}

/// The attacker's objective at one `(offset, freq)` point: pure f64
/// arithmetic over the pre-sampled models, evaluated in a fixed order —
/// deterministic for any parallel schedule.
fn eval_point(
    cfg: &ScroogeConfig,
    models: &[DomainModels],
    offset_mv: f64,
    freq: f64,
) -> PointEval {
    // Frequency scaling relaxes every timing path: the circuits behave
    // as if the offset were this much shallower (never above nominal).
    let eff_offset = (offset_mv + (1.0 - freq) * FREQ_MARGIN_MV_PER_UNIT).min(0.0);
    let v_rel = (V_NOM_MV + offset_mv) / V_NOM_MV;
    let rel_power = freq * v_rel * v_rel; // P ∝ f·V²
    let mwh_per_domain = cfg.domain_power_w * cfg.horizon_hours / 1e6;
    let savings = (1.0 - rel_power) * mwh_per_domain * cfg.energy_price * models.len() as f64;

    let mut penalty = 0.0;
    for m in models {
        // Survival against silent data corruption: every faultable
        // instruction on every core, plus every SRAM bank, must hold.
        let mut sdc_survive = 1.0f64;
        for core in 0..m.chip.core_count() {
            for row in TABLE1.iter() {
                let p = m.chip.fault_probability(core, row.opcode, eff_offset);
                if p > 0.0 {
                    sdc_survive *= (1.0 - p).powi(EXECUTIONS_PER_POINT);
                }
            }
        }
        for bank in 0..m.array.bank_count() {
            let p = m.array.fault_probability(bank, eff_offset);
            if p > 0.0 {
                sdc_survive *= (1.0 - p).powi(EXECUTIONS_PER_POINT);
            }
        }
        // Crashes: the non-faultable scalar core logic giving out.
        let mut crash_survive = 1.0f64;
        for core in 0..m.chip.core_count() {
            let p = m.chip.fault_probability(core, Opcode::Alu, eff_offset);
            if p > 0.0 {
                crash_survive *= (1.0 - p).powi(EXECUTIONS_PER_POINT);
            }
        }
        penalty += (1.0 - sdc_survive) * cfg.sdc_cost + (1.0 - crash_survive) * cfg.crash_cost;
    }
    // Lost throughput is an SLA cost: 1/freq − 1 extra hours per hour.
    penalty += (1.0 / freq - 1.0) * cfg.sla_cost * cfg.horizon_hours * models.len() as f64;

    PointEval {
        offset_mv,
        freq_scale: freq,
        savings,
        penalty,
        net: savings - penalty,
    }
}

impl ScroogeReport {
    /// Whether every SUIT-defended row (everything but the `naive`
    /// defence) survived both fault classes at the chosen point.
    pub fn defended_rows_secure(&self) -> bool {
        self.defences
            .iter()
            .filter(|r| r.defence != "naive")
            .all(|r| r.outcome.is_secure())
    }

    /// Serializes the report as deterministic JSON (sorted keys).
    pub fn to_json(&self) -> String {
        let defences: Vec<String> = self.defences.iter().map(audit_row_json).collect();
        format!(
            "{{\"chosen\":{{\"freq_scale\":{},\"net\":{},\"offset_mv\":{},\"penalty\":{},\
             \"savings\":{}}},\"defences\":[{}],\"domains\":{},\
             \"fleet\":{{\"efficiency\":{},\"perf\":{},\"power\":{}}},\"level_mv\":{},\
             \"points_evaluated\":{},\"scenario\":\"scrooge\"}}",
            json_num(self.chosen.freq_scale),
            json_num(self.chosen.net),
            json_num(self.chosen.offset_mv),
            json_num(self.chosen.penalty),
            json_num(self.chosen.savings),
            defences.join(","),
            self.domains,
            json_num(self.fleet_efficiency),
            json_num(self.fleet_perf),
            json_num(self.fleet_power),
            self.level_mv,
            self.points_evaluated
        )
    }

    /// Renders the report as human-readable text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Scrooge attack on a {}-domain fleet ({} points evaluated):\n",
            self.domains, self.points_evaluated
        ));
        out.push_str(&format!(
            "  chosen point : {:.1} mV at {:.3}x frequency\n",
            self.chosen.offset_mv, self.chosen.freq_scale
        ));
        out.push_str(&format!(
            "  economics    : ${:.2} saved − ${:.2} expected penalty = ${:.2} net\n",
            self.chosen.savings, self.chosen.penalty, self.chosen.net
        ));
        out.push_str(&format!(
            "  fleet check  : −{} mV level, perf {:+.2}%  power {:+.2}%  efficiency {:+.2}%\n",
            self.level_mv,
            self.fleet_perf * 100.0,
            self.fleet_power * 100.0,
            self.fleet_efficiency * 100.0
        ));
        out.push_str("  defences at the chosen point:\n");
        for r in &self.defences {
            out.push_str(&format!(
                "    {:<18} {:<11} executed {:>6}  trapped {:>6}  silent errors {:>4}  {}\n",
                r.defence,
                r.fault_class,
                r.outcome.executed,
                r.outcome.trapped,
                r.outcome.silent_errors,
                if r.outcome.is_secure() {
                    "secure"
                } else {
                    "INSECURE"
                }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_is_thread_count_invariant() {
        let cfg = ScroogeConfig::default();
        let one = search(&cfg, 1, &Telemetry::off()).unwrap();
        for threads in [2, 4] {
            let many = search(&cfg, threads, &Telemetry::off()).unwrap();
            assert_eq!(one.to_json(), many.to_json(), "{threads} threads diverged");
        }
    }

    #[test]
    fn chosen_point_is_in_bounds_and_profitable() {
        let cfg = ScroogeConfig::default();
        let r = search(&cfg, 2, &Telemetry::off()).unwrap();
        assert!((cfg.offset_min_mv..=0.0).contains(&r.chosen.offset_mv));
        assert!((cfg.freq_min..=1.0).contains(&r.chosen.freq_scale));
        // The grid contains the do-nothing point (offset 0, freq 1, net
        // 0), so the optimum can never be negative — and with the
        // default economics the attacker actually profits.
        assert!(r.chosen.net > 0.0, "{:?}", r.chosen);
        assert!(r.chosen.offset_mv < 0.0, "attacker must undervolt");
        assert_eq!(
            r.points_evaluated,
            (cfg.offset_steps * cfg.freq_steps + 4 * cfg.refine_rounds) as u64
        );
    }

    #[test]
    fn objective_prefers_safe_depths() {
        let cfg = ScroogeConfig::default();
        let root = SuitRng::seed_from_u64(cfg.seed);
        let models: Vec<DomainModels> = (0..2)
            .map(|d| DomainModels {
                chip: ChipVminModel::sample(2, cfg.sigma_mv, root.fork(2 * d).root_seed()),
                array: SramArrayModel::sample(4, 2, cfg.sigma_mv, root.fork(2 * d + 1).root_seed()),
            })
            .collect();
        let shallow = eval_point(&cfg, &models, -40.0, 1.0);
        let reckless = eval_point(&cfg, &models, -180.0, 1.0);
        assert!(shallow.net > 0.0, "{shallow:?}");
        assert!(reckless.net < shallow.net, "{reckless:?} vs {shallow:?}");
        // Frequency scaling trades SLA cost for margin: at −120 mV the
        // fleet is past its IMUL margins at full speed, but freq_min
        // buys back (1 − 0.7) · 250 = 75 mV, pulling the effective
        // offset back inside them — the penalty must drop.
        let risky = eval_point(&cfg, &models, -120.0, 1.0);
        let slowed = eval_point(&cfg, &models, -120.0, cfg.freq_min);
        assert!(slowed.penalty < risky.penalty, "{slowed:?} vs {risky:?}");
    }

    #[test]
    fn defences_hold_at_the_chosen_point_and_telemetry_counts() {
        let tele = Telemetry::recording();
        let r = search(&ScroogeConfig::default(), 2, &tele).unwrap();
        assert!(r.defended_rows_secure(), "{:#?}", r.defences);
        assert_eq!(
            tele.snapshot().counter(Counter::ScroogePointsEvaluated),
            r.points_evaluated
        );
        let doc = suit_telemetry::json::parse(&r.to_json()).expect("valid JSON");
        assert_eq!(
            doc.get("scenario").and_then(|s| s.as_str()),
            Some("scrooge")
        );
        assert!(!r.render().is_empty());
    }
}
