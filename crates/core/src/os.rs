//! The SUIT operating-system component — Listing 1 in Rust.
//!
//! [`SuitOs`] holds the policy state (strategy, parameters, thrashing
//! guard) and drives an abstract [`CpuControl`] — in the simulator that is
//! the simulated core; on real SUIT silicon it would be the MSR writes of
//! [`crate::msr`]. The two entry points mirror the paper's pseudo code:
//!
//! * [`SuitOs::on_disabled_opcode`] — the `#DO` exception handler;
//! * [`SuitOs::on_timer_interrupt`] — the deadline-timer handler.
//!
//! The hardware-side deadline *reset* on every faultable execution (§4.1)
//! does not involve the OS; the simulator performs it directly on its
//! [`crate::deadline::DeadlineTimer`].

use suit_isa::{SimDuration, SimTime};
use suit_telemetry::{Counter, EventKind, Telemetry};

use crate::adaptive::{AdaptiveChooser, AdaptiveConfig};
use crate::exception::DisabledOpcode;
use crate::strategy::{OperatingStrategy, StrategyParams};
use crate::thrash::ThrashGuard;

/// The p-state targets of Fig. 4 as the OS names them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CurveTarget {
    /// The efficient curve.
    E,
    /// Conservative by frequency: efficient voltage, reduced clock.
    Cf,
    /// Conservative by voltage: nominal voltage, full clock.
    Cv,
}

/// The hardware controls the OS drives — the `cpu.*` calls of Listing 1.
pub trait CpuControl {
    /// Current time (the OS reads the clock for thrashing detection).
    fn now(&self) -> SimTime;

    /// Requests a p-state change and blocks until it takes effect
    /// (`cpu.change_pstate_wait`).
    fn change_pstate_wait(&mut self, target: CurveTarget);

    /// Requests a p-state change and returns immediately
    /// (`cpu.change_pstate_async`). A later request supersedes a pending
    /// one — §4.3: returning to `E` "cancels the voltage change".
    fn change_pstate_async(&mut self, target: CurveTarget);

    /// Writes the disable-opcode MSR for the whole vendor faultable set
    /// (`cpu.set_instructions_disabled`).
    fn set_instructions_disabled(&mut self, disabled: bool);

    /// Arms the deadline timer (`cpu.set_timer_interrupt`).
    fn set_timer_interrupt(&mut self, deadline: SimDuration);
}

/// What the `#DO` handler decided, so the caller can charge the right cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandlerAction {
    /// The instruction set was re-enabled on the conservative curve; the
    /// faulting instruction re-executes natively.
    SwitchedToConservative,
    /// The instruction was emulated in user space; execution continues
    /// after it, still on the efficient curve.
    Emulated,
}

/// Counters the OS keeps (reported by the `residency` experiment and used
/// by the thrashing ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OsStats {
    /// `#DO` exceptions handled.
    pub exceptions: u64,
    /// Deadline-timer interrupts handled.
    pub timer_fires: u64,
    /// Instructions emulated.
    pub emulated: u64,
    /// Exceptions handled while thrashing was detected.
    pub thrash_hits: u64,
}

/// The SUIT OS policy: strategy + parameters + thrashing state.
#[derive(Debug, Clone)]
pub struct SuitOs {
    strategy: OperatingStrategy,
    params: StrategyParams,
    thrash: ThrashGuard,
    stats: OsStats,
    current_deadline: SimDuration,
    chooser: Option<AdaptiveChooser>,
    tele: Telemetry,
}

/// The telemetry payload identifying an operating strategy in
/// `strategy_decision` events.
fn strategy_arg(s: OperatingStrategy) -> u64 {
    match s {
        OperatingStrategy::Frequency => 0,
        OperatingStrategy::Voltage => 1,
        OperatingStrategy::FreqVolt => 2,
        OperatingStrategy::Emulation => 3,
    }
}

impl SuitOs {
    /// Creates the OS policy.
    pub fn new(strategy: OperatingStrategy, params: StrategyParams) -> Self {
        SuitOs {
            strategy,
            params,
            thrash: ThrashGuard::new(params.timespan, params.max_exceptions),
            current_deadline: params.deadline,
            stats: OsStats::default(),
            chooser: None,
            tele: Telemetry::off(),
        }
    }

    /// Attaches a telemetry handle: the handlers record `#DO` entries and
    /// exits, MSR disable-mask writes, deadline fires, thrash lockouts,
    /// and adaptive-chooser activity through it. The default is
    /// [`Telemetry::off`], which costs one branch per hook.
    pub fn with_telemetry(mut self, tele: Telemetry) -> Self {
        self.tele = tele;
        self
    }

    /// Creates the OS policy with the §6.8 dynamic strategy chooser: it
    /// starts in emulation mode and flips between emulation and 𝑓𝑉 based
    /// on the observed `#DO` traffic.
    pub fn new_adaptive(params: StrategyParams, adaptive: AdaptiveConfig) -> Self {
        let mut os = Self::new(OperatingStrategy::Emulation, params);
        os.chooser = Some(AdaptiveChooser::new(adaptive));
        os
    }

    /// The adaptive chooser, when dynamic selection is active.
    pub fn chooser(&self) -> Option<&AdaptiveChooser> {
        self.chooser.as_ref()
    }

    /// The configured strategy.
    pub fn strategy(&self) -> OperatingStrategy {
        self.strategy
    }

    /// The configured parameters.
    pub fn params(&self) -> &StrategyParams {
        &self.params
    }

    /// The deadline currently in force (p_dl, or p_dl · p_df while
    /// thrashing) — the value hardware resets the timer to on faultable
    /// executions.
    pub fn current_deadline(&self) -> SimDuration {
        self.current_deadline
    }

    /// OS statistics so far.
    pub fn stats(&self) -> OsStats {
        self.stats
    }

    /// The `#DO` exception handler (Listing 1,
    /// `disabled_instruction_exception_handler`).
    pub fn on_disabled_opcode(
        &mut self,
        cpu: &mut impl CpuControl,
        exception: &DisabledOpcode,
    ) -> HandlerAction {
        self.stats.exceptions += 1;
        self.tele.count(Counter::DoTraps);
        self.tele
            .instant(EventKind::DoTrap, cpu.now(), exception.core as u64);

        // §6.8: dynamic strategy selection re-evaluates on every trap.
        if let Some(chooser) = &mut self.chooser {
            let was_probing = chooser.is_probing();
            let prev_mode = chooser.mode();
            self.strategy = chooser.on_exception(cpu.now());
            if chooser.is_probing() && !was_probing {
                self.tele.count(Counter::AdaptiveProbes);
            }
            if chooser.mode() != prev_mode {
                self.tele.count(Counter::AdaptiveFlips);
            }
        }

        self.tele.count(Counter::StrategyDecisions);
        self.tele.instant(
            EventKind::StrategyDecision,
            cpu.now(),
            strategy_arg(self.strategy),
        );

        if self.strategy == OperatingStrategy::Emulation {
            // No curve change: the handler returns into mapped user-space
            // emulation code (§3.4). Instructions stay disabled.
            self.stats.emulated += 1;
            self.tele.count(Counter::Emulations);
            self.tele.instant(EventKind::DoTrapExit, cpu.now(), 0);
            return HandlerAction::Emulated;
        }

        // Switch to the conservative curve; we wait for the part of the
        // p-state that makes execution safe.
        match self.strategy {
            OperatingStrategy::Frequency => cpu.change_pstate_wait(CurveTarget::Cf),
            OperatingStrategy::Voltage => cpu.change_pstate_wait(CurveTarget::Cv),
            OperatingStrategy::FreqVolt => {
                // Listing 1: wait for the (fast) frequency change, request
                // the (slow) voltage change asynchronously.
                cpu.change_pstate_wait(CurveTarget::Cf);
                cpu.change_pstate_async(CurveTarget::Cv);
            }
            OperatingStrategy::Emulation => unreachable!("handled above"),
        }

        cpu.set_instructions_disabled(false);
        self.tele.count(Counter::MsrDisableWrites);

        // Thrashing prevention (Listing 1, lines 10-14).
        let now = cpu.now();
        let thrashing = self.thrash.record_exception(now);
        self.current_deadline = if thrashing {
            self.stats.thrash_hits += 1;
            self.tele.count(Counter::ThrashLockouts);
            self.tele.instant(EventKind::ThrashLockout, now, 0);
            self.params.extended_deadline()
        } else {
            self.params.deadline
        };
        cpu.set_timer_interrupt(self.current_deadline);

        self.tele.instant(EventKind::DoTrapExit, cpu.now(), 0);
        HandlerAction::SwitchedToConservative
    }

    /// The deadline-timer handler (Listing 1, `timer_interrupt_handler`).
    pub fn on_timer_interrupt(&mut self, cpu: &mut impl CpuControl) {
        self.stats.timer_fires += 1;
        self.tele.count(Counter::DeadlineFires);
        self.tele.instant(EventKind::DeadlineFire, cpu.now(), 0);
        cpu.set_instructions_disabled(true);
        self.tele.count(Counter::MsrDisableWrites);
        cpu.change_pstate_async(CurveTarget::E);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suit_isa::Opcode;

    /// Records the call sequence the OS makes.
    #[derive(Debug, Default)]
    struct MockCpu {
        now: SimTime,
        calls: Vec<String>,
    }

    impl CpuControl for MockCpu {
        fn now(&self) -> SimTime {
            self.now
        }
        fn change_pstate_wait(&mut self, t: CurveTarget) {
            self.calls.push(format!("wait:{t:?}"));
        }
        fn change_pstate_async(&mut self, t: CurveTarget) {
            self.calls.push(format!("async:{t:?}"));
        }
        fn set_instructions_disabled(&mut self, d: bool) {
            self.calls.push(format!("disable:{d}"));
        }
        fn set_timer_interrupt(&mut self, d: SimDuration) {
            self.calls
                .push(format!("timer:{}us", d.as_micros_f64().round()));
        }
    }

    fn exception(at_us: u64) -> DisabledOpcode {
        DisabledOpcode::new(
            Opcode::Aesenc,
            0,
            SimTime::ZERO + SimDuration::from_micros(at_us),
        )
    }

    #[test]
    fn fv_handler_follows_listing_1() {
        let mut os = SuitOs::new(OperatingStrategy::FreqVolt, StrategyParams::intel());
        let mut cpu = MockCpu::default();
        let act = os.on_disabled_opcode(&mut cpu, &exception(0));
        assert_eq!(act, HandlerAction::SwitchedToConservative);
        assert_eq!(
            cpu.calls,
            vec!["wait:Cf", "async:Cv", "disable:false", "timer:30us"],
            "exact Listing 1 order"
        );
    }

    #[test]
    fn timer_handler_follows_listing_1() {
        let mut os = SuitOs::new(OperatingStrategy::FreqVolt, StrategyParams::intel());
        let mut cpu = MockCpu::default();
        os.on_timer_interrupt(&mut cpu);
        assert_eq!(cpu.calls, vec!["disable:true", "async:E"]);
        assert_eq!(os.stats().timer_fires, 1);
    }

    #[test]
    fn frequency_strategy_skips_voltage() {
        let mut os = SuitOs::new(OperatingStrategy::Frequency, StrategyParams::amd());
        let mut cpu = MockCpu::default();
        os.on_disabled_opcode(&mut cpu, &exception(0));
        assert_eq!(cpu.calls, vec!["wait:Cf", "disable:false", "timer:700us"]);
    }

    #[test]
    fn voltage_strategy_waits_for_voltage() {
        let mut os = SuitOs::new(OperatingStrategy::Voltage, StrategyParams::intel());
        let mut cpu = MockCpu::default();
        os.on_disabled_opcode(&mut cpu, &exception(0));
        assert_eq!(cpu.calls, vec!["wait:Cv", "disable:false", "timer:30us"]);
    }

    #[test]
    fn emulation_strategy_touches_nothing() {
        let mut os = SuitOs::new(OperatingStrategy::Emulation, StrategyParams::intel());
        let mut cpu = MockCpu::default();
        let act = os.on_disabled_opcode(&mut cpu, &exception(0));
        assert_eq!(act, HandlerAction::Emulated);
        assert!(cpu.calls.is_empty(), "no curve or MSR activity");
        assert_eq!(os.stats().emulated, 1);
    }

    #[test]
    fn thrashing_extends_the_deadline() {
        let mut os = SuitOs::new(OperatingStrategy::FreqVolt, StrategyParams::intel());
        let mut cpu = MockCpu::default();
        // Three exceptions within 450 µs trip the guard (p_ec = 3).
        for t in [0u64, 100, 200] {
            cpu.now = SimTime::ZERO + SimDuration::from_micros(t);
            os.on_disabled_opcode(&mut cpu, &exception(t));
        }
        assert_eq!(
            os.current_deadline(),
            SimDuration::from_micros(420),
            "30 µs · 14"
        );
        assert_eq!(os.stats().thrash_hits, 1);
        let last = cpu.calls.last().unwrap();
        assert_eq!(last, "timer:420us");
    }

    #[test]
    fn deadline_recovers_after_quiet_period() {
        let mut os = SuitOs::new(OperatingStrategy::FreqVolt, StrategyParams::intel());
        let mut cpu = MockCpu::default();
        for t in [0u64, 100, 200] {
            cpu.now = SimTime::ZERO + SimDuration::from_micros(t);
            os.on_disabled_opcode(&mut cpu, &exception(t));
        }
        assert_eq!(os.current_deadline(), SimDuration::from_micros(420));
        // A lone exception long after the storm uses the normal deadline.
        cpu.now = SimTime::ZERO + SimDuration::from_micros(10_000);
        os.on_disabled_opcode(&mut cpu, &exception(10_000));
        assert_eq!(os.current_deadline(), SimDuration::from_micros(30));
    }

    #[test]
    fn telemetry_hooks_record_handler_activity() {
        let tele = Telemetry::recording();
        let mut os = SuitOs::new(OperatingStrategy::FreqVolt, StrategyParams::intel())
            .with_telemetry(tele.clone());
        let mut cpu = MockCpu::default();
        os.on_disabled_opcode(&mut cpu, &exception(0));
        os.on_timer_interrupt(&mut cpu);
        let snap = tele.snapshot();
        assert_eq!(snap.counter(Counter::DoTraps), 1);
        assert_eq!(snap.counter(Counter::StrategyDecisions), 1);
        assert_eq!(snap.counter(Counter::DeadlineFires), 1);
        // One disable-mask write per handler (re-enable, then re-disable).
        assert_eq!(snap.counter(Counter::MsrDisableWrites), 2);
        assert_eq!(snap.event_count(EventKind::DoTrap), 1);
        assert_eq!(snap.event_count(EventKind::DoTrapExit), 1);
        assert_eq!(snap.event_count(EventKind::DeadlineFire), 1);
        // The default handle records nothing and changes no behaviour.
        let mut quiet = SuitOs::new(OperatingStrategy::FreqVolt, StrategyParams::intel());
        let mut cpu2 = MockCpu::default();
        quiet.on_disabled_opcode(&mut cpu2, &exception(0));
        assert_eq!(cpu.calls[..4], cpu2.calls[..]);
    }

    #[test]
    fn stats_accumulate() {
        let mut os = SuitOs::new(OperatingStrategy::FreqVolt, StrategyParams::intel());
        let mut cpu = MockCpu::default();
        os.on_disabled_opcode(&mut cpu, &exception(0));
        os.on_timer_interrupt(&mut cpu);
        os.on_disabled_opcode(&mut cpu, &exception(1));
        let s = os.stats();
        assert_eq!(s.exceptions, 2);
        assert_eq!(s.timer_fires, 1);
        assert_eq!(s.emulated, 0);
    }
}
