//! The deadline mechanism (§4.1).
//!
//! After a `#DO` trap moves the CPU to the conservative curve, SUIT must
//! decide when to go back. The deadline timer counts down from `p_dl`;
//! every execution of an instruction that *would* be disabled on the
//! efficient curve resets it. When it reaches zero, an interrupt fires and
//! the OS switches back to the efficient curve. This self-adjusts to any
//! burst cadence and avoids most thrashing.

use suit_isa::{SimDuration, SimTime};

/// A count-down deadline timer, hardware-armed by the OS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeadlineTimer {
    /// Absolute expiry time, if armed.
    expires_at: Option<SimTime>,
    /// The countdown the timer was last armed with (used by resets).
    deadline: SimDuration,
}

impl DeadlineTimer {
    /// A disarmed timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the timer to fire `deadline` after `now`. Subsequent
    /// [`reset`](Self::reset) calls reuse this deadline.
    pub fn arm(&mut self, now: SimTime, deadline: SimDuration) {
        self.deadline = deadline;
        self.expires_at = Some(now + deadline);
    }

    /// Disarms the timer.
    pub fn disarm(&mut self) {
        self.expires_at = None;
    }

    /// Restarts the countdown from `now` with the armed deadline — the
    /// hardware action on every faultable-instruction execution. No-op if
    /// disarmed.
    pub fn reset(&mut self, now: SimTime) {
        if self.expires_at.is_some() {
            self.expires_at = Some(now + self.deadline);
        }
    }

    /// Whether the timer is armed.
    pub fn is_armed(&self) -> bool {
        self.expires_at.is_some()
    }

    /// The absolute expiry time, if armed.
    pub fn expires_at(&self) -> Option<SimTime> {
        self.expires_at
    }

    /// The deadline the timer was last armed with.
    pub fn deadline(&self) -> SimDuration {
        self.deadline
    }

    /// If the timer has expired by `now`, disarms it and returns `true` —
    /// the simulator calls this to deliver the timer interrupt.
    pub fn take_expired(&mut self, now: SimTime) -> bool {
        match self.expires_at {
            Some(t) if t <= now => {
                self.expires_at = None;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn arm_and_expire() {
        let mut t = DeadlineTimer::new();
        assert!(!t.is_armed());
        t.arm(SimTime::ZERO, us(30));
        assert!(t.is_armed());
        assert!(!t.take_expired(SimTime::ZERO + us(29)));
        assert!(t.take_expired(SimTime::ZERO + us(30)));
        assert!(!t.is_armed(), "expiry disarms");
        assert!(!t.take_expired(SimTime::ZERO + us(100)), "fires once");
    }

    #[test]
    fn reset_pushes_expiry_out() {
        let mut t = DeadlineTimer::new();
        t.arm(SimTime::ZERO, us(30));
        // A faultable instruction at t = 25 restarts the countdown.
        t.reset(SimTime::ZERO + us(25));
        assert!(!t.take_expired(SimTime::ZERO + us(54)));
        assert!(t.take_expired(SimTime::ZERO + us(55)));
    }

    #[test]
    fn reset_when_disarmed_is_noop() {
        let mut t = DeadlineTimer::new();
        t.reset(SimTime::ZERO + us(5));
        assert!(!t.is_armed());
    }

    #[test]
    fn rearm_overrides_deadline() {
        let mut t = DeadlineTimer::new();
        t.arm(SimTime::ZERO, us(30));
        // Thrashing prevention re-arms with p_dl · p_df.
        t.arm(SimTime::ZERO + us(10), us(420));
        assert_eq!(t.deadline(), us(420));
        assert!(!t.take_expired(SimTime::ZERO + us(100)));
        assert!(t.take_expired(SimTime::ZERO + us(430)));
    }

    #[test]
    fn disarm() {
        let mut t = DeadlineTimer::new();
        t.arm(SimTime::ZERO, us(30));
        t.disarm();
        assert!(!t.take_expired(SimTime::ZERO + us(1000)));
    }
}
