//! Dynamic strategy selection (§6.8).
//!
//! §4.1 observes that "for single instructions, emulation is faster than
//! switching DVFS curves" and that emulation is beneficial for 65 % of
//! tested applications — yet catastrophically wrong for burst-heavy ones
//! (Nginx: −98 %). §6.8 concludes: "due to the hardware-software
//! co-design of SUIT, the operating system can dynamically choose the
//! best operating strategy for each workload". This module implements
//! that chooser as a per-burst cost comparison:
//!
//! * emulating a burst costs `events × emu_call` (§5.3's 0.77 µs round
//!   trip each);
//! * switching costs one conservative episode, ≈ `episode_cost` (~90 µs
//!   of stalls + deadline tail on the Intel CPUs).
//!
//! The chooser clusters `#DO` traps into bursts by gap, learns the
//! events-per-burst size with an EWMA while it emulates, and picks the
//! cheaper mode with hysteresis. Two practical details:
//!
//! * **mid-burst escape**: if the burst being emulated has already cost
//!   more than an episode would, it flips to 𝑓𝑉 immediately instead of
//!   finishing the burst in software;
//! * **probe bursts**: in 𝑓𝑉 mode only the first instruction of a burst
//!   traps, so burst sizes are unobservable; every `probe_interval`-th
//!   burst is deliberately emulated to refresh the estimate, which lets
//!   the chooser fall back to emulation when a workload quiets down.

use suit_isa::{SimDuration, SimTime};

use crate::strategy::OperatingStrategy;

/// Configuration of the adaptive chooser.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Cost of one user-space emulation round trip (§5.3).
    pub emu_call: SimDuration,
    /// Cost of one conservative episode under 𝑓𝑉 (switch stalls +
    /// deadline tail; ≈ 90 µs on the Intel CPUs).
    pub episode_cost: SimDuration,
    /// Gap that separates bursts when clustering traps (the deadline).
    pub burst_gap: SimDuration,
    /// Hysteresis factor: mode flips require the alternative to be this
    /// much cheaper (≥ 1).
    pub hysteresis: f64,
    /// In 𝑓𝑉 mode, emulate every N-th burst to refresh the size estimate.
    pub probe_interval: u32,
    /// EWMA weight of the newest burst size (0, 1].
    pub ewma_alpha: f64,
}

impl AdaptiveConfig {
    /// Sensible defaults for the Intel CPUs 𝒜/𝒞.
    pub fn intel() -> Self {
        AdaptiveConfig {
            emu_call: SimDuration::from_micros_f64(0.77),
            episode_cost: SimDuration::from_micros(90),
            burst_gap: SimDuration::from_micros(30),
            hysteresis: 1.5,
            probe_interval: 32,
            ewma_alpha: 0.3,
        }
    }

    /// Defaults for CPU ℬ: the cheap 0.27 µs emulation call against the
    /// very expensive 668 µs switch episode — emulation wins far more
    /// often there (§6.6/§6.8).
    pub fn amd() -> Self {
        AdaptiveConfig {
            emu_call: SimDuration::from_micros_f64(0.27),
            episode_cost: SimDuration::from_micros(1400), // 668 µs in + deadline + return
            burst_gap: SimDuration::from_micros(700),
            hysteresis: 1.5,
            probe_interval: 32,
            ewma_alpha: 0.3,
        }
    }

    /// The configuration matching a CPU's measured delays and Table 7
    /// parameters.
    pub fn for_cpu(delays: &suit_hw::TransitionDelays) -> Self {
        if delays.emulation_call_us < 0.5 {
            Self::amd()
        } else {
            Self::intel()
        }
    }
}

/// The adaptive chooser state.
#[derive(Debug, Clone)]
pub struct AdaptiveChooser {
    cfg: AdaptiveConfig,
    mode: OperatingStrategy,
    last_event: Option<SimTime>,
    /// Events seen in the burst currently in progress.
    burst_events: u64,
    /// Whether every event of the current burst was emulated (so its size
    /// is fully observed and may train the estimator).
    burst_observed: bool,
    /// EWMA of events per burst, trained on emulated bursts.
    est_events_per_burst: f64,
    bursts_since_probe: u32,
    probing: bool,
    switches: u64,
}

impl AdaptiveChooser {
    /// Creates a chooser starting in emulation mode (cheapest for the
    /// sparse default case).
    ///
    /// # Panics
    ///
    /// Panics on degenerate configuration (hysteresis < 1, alpha outside
    /// (0, 1], zero probe interval).
    pub fn new(cfg: AdaptiveConfig) -> Self {
        assert!(
            cfg.hysteresis >= 1.0,
            "hysteresis must not invert the comparison"
        );
        assert!(
            cfg.ewma_alpha > 0.0 && cfg.ewma_alpha <= 1.0,
            "alpha in (0, 1]"
        );
        assert!(cfg.probe_interval >= 1, "probe interval must be positive");
        AdaptiveChooser {
            cfg,
            mode: OperatingStrategy::Emulation,
            last_event: None,
            burst_events: 0,
            burst_observed: true,
            est_events_per_burst: 1.0,
            bursts_since_probe: 0,
            probing: false,
            switches: 0,
        }
    }

    /// The currently selected steady mode (ignoring in-flight probes).
    pub fn mode(&self) -> OperatingStrategy {
        self.mode
    }

    /// Mode switches so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Whether the current burst is a deliberate probe (emulated to
    /// refresh the size estimate while the steady mode is 𝑓𝑉).
    pub fn is_probing(&self) -> bool {
        self.probing
    }

    /// The learned events-per-burst estimate.
    pub fn events_per_burst(&self) -> f64 {
        self.est_events_per_burst
    }

    fn emu_cost(&self, events: f64) -> f64 {
        events * self.cfg.emu_call.as_secs_f64()
    }

    fn episode_cost(&self) -> f64 {
        self.cfg.episode_cost.as_secs_f64()
    }

    fn set_mode(&mut self, mode: OperatingStrategy) {
        if self.mode != mode {
            self.mode = mode;
            self.switches += 1;
        }
    }

    /// Decides the steady mode from the current estimate (with hysteresis).
    fn decide(&mut self) {
        let emu = self.emu_cost(self.est_events_per_burst);
        match self.mode {
            OperatingStrategy::Emulation => {
                if emu > self.episode_cost() * self.cfg.hysteresis {
                    self.set_mode(OperatingStrategy::FreqVolt);
                }
            }
            _ => {
                if emu * self.cfg.hysteresis < self.episode_cost() {
                    self.set_mode(OperatingStrategy::Emulation);
                }
            }
        }
    }

    /// Records one `#DO` exception at `now` and returns the strategy to
    /// apply to it.
    pub fn on_exception(&mut self, now: SimTime) -> OperatingStrategy {
        let new_burst = match self.last_event {
            Some(prev) => now.saturating_since(prev) > self.cfg.burst_gap,
            None => true,
        };
        self.last_event = Some(now);

        if new_burst {
            // Close the previous burst: train the estimator if we saw all
            // of it, then re-decide and schedule probes.
            if self.burst_observed && self.burst_events > 0 {
                let a = self.cfg.ewma_alpha;
                self.est_events_per_burst =
                    (1.0 - a) * self.est_events_per_burst + a * self.burst_events as f64;
            }
            self.decide();
            self.probing = false;
            if self.mode == OperatingStrategy::FreqVolt {
                self.bursts_since_probe += 1;
                if self.bursts_since_probe >= self.cfg.probe_interval {
                    self.bursts_since_probe = 0;
                    self.probing = true;
                }
            } else {
                self.bursts_since_probe = 0;
            }
            self.burst_events = 0;
            self.burst_observed = self.mode == OperatingStrategy::Emulation || self.probing;
        }

        self.burst_events += 1;

        let effective = if self.probing || self.mode == OperatingStrategy::Emulation {
            // Mid-burst escape: if this burst alone already out-costs an
            // episode, stop emulating it right now.
            if self.emu_cost(self.burst_events as f64) > self.episode_cost() * self.cfg.hysteresis {
                self.set_mode(OperatingStrategy::FreqVolt);
                self.probing = false;
                self.burst_observed = false;
                // The escape itself is strong evidence of large bursts.
                self.est_events_per_burst = self.est_events_per_burst.max(self.burst_events as f64);
                OperatingStrategy::FreqVolt
            } else {
                OperatingStrategy::Emulation
            }
        } else {
            self.mode
        };
        if effective != OperatingStrategy::Emulation {
            self.burst_observed = false;
        }
        effective
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn sparse_singletons_stay_on_emulation() {
        // One lone instruction every 500 µs: emulation at 0.77 µs each is
        // far cheaper than 90 µs episodes.
        let mut c = AdaptiveChooser::new(AdaptiveConfig::intel());
        for i in 0..200 {
            let mode = c.on_exception(at(i * 500));
            assert_eq!(mode, OperatingStrategy::Emulation, "exception {i}");
        }
        assert_eq!(c.switches(), 0);
        assert!(c.events_per_burst() < 1.5);
    }

    #[test]
    fn dense_burst_escapes_mid_burst() {
        // A crypto burst: events 0.1 µs apart. Emulating the whole burst
        // would cost milliseconds; the chooser must bail out after roughly
        // episode_cost / emu_call ≈ 175 events.
        let mut c = AdaptiveChooser::new(AdaptiveConfig::intel());
        let mut switched_at = None;
        for i in 0..5_000u64 {
            let now = SimTime::ZERO + SimDuration::from_nanos(i * 100);
            if c.on_exception(now) == OperatingStrategy::FreqVolt {
                switched_at = Some(i);
                break;
            }
        }
        let s = switched_at.expect("must escape to fV");
        assert!((100..400).contains(&s), "escaped after {s} events");
        assert_eq!(c.mode(), OperatingStrategy::FreqVolt);
    }

    #[test]
    fn returns_to_emulation_when_bursts_shrink() {
        let mut cfg = AdaptiveConfig::intel();
        cfg.probe_interval = 4; // probe often so the test converges fast
        let mut c = AdaptiveChooser::new(cfg);
        // Phase 1: big bursts (1 000 events, 0.1 µs apart) until fV.
        let mut t_ns: u64 = 0;
        for _burst in 0..3 {
            for _ in 0..1_000 {
                t_ns += 100;
                c.on_exception(SimTime::ZERO + SimDuration::from_nanos(t_ns));
            }
            t_ns += 200_000; // 200 µs gap
        }
        assert_eq!(c.mode(), OperatingStrategy::FreqVolt);
        // Phase 2: singleton bursts far apart; probes re-learn the size
        // and the chooser falls back to emulation.
        let mut back = false;
        for i in 0..200u64 {
            t_ns += 500_000;
            let m = c.on_exception(SimTime::ZERO + SimDuration::from_nanos(t_ns));
            if m == OperatingStrategy::Emulation && c.mode() == OperatingStrategy::Emulation {
                back = true;
                assert!(i >= 3, "needs a few probes, flipped at {i}");
                break;
            }
        }
        assert!(
            back,
            "must fall back to emulation; est {}",
            c.events_per_burst()
        );
    }

    #[test]
    fn probes_fire_on_schedule() {
        let mut cfg = AdaptiveConfig::intel();
        cfg.probe_interval = 5;
        let mut c = AdaptiveChooser::new(cfg);
        // Force fV with one huge burst.
        for i in 0..1_000u64 {
            c.on_exception(SimTime::ZERO + SimDuration::from_nanos(i * 100));
        }
        assert_eq!(c.mode(), OperatingStrategy::FreqVolt);
        // Medium bursts (100 events): probes must emulate one burst in
        // five even though the steady mode stays fV (100 × 0.77 µs < 90 µs
        // is false → stays fV… 77 µs vs 90 µs with hysteresis stays fV).
        let mut t_ns = 1_000_000_000;
        let mut emulated_bursts = 0;
        let mut fv_bursts = 0;
        for _burst in 0..20 {
            t_ns += 1_000_000; // 1 ms gap
            let first = c.on_exception(SimTime::ZERO + SimDuration::from_nanos(t_ns));
            if first == OperatingStrategy::Emulation {
                emulated_bursts += 1;
            } else {
                fv_bursts += 1;
            }
            for _ in 0..99 {
                t_ns += 100;
                c.on_exception(SimTime::ZERO + SimDuration::from_nanos(t_ns));
            }
        }
        assert!(
            emulated_bursts >= 2,
            "probes must sample ({emulated_bursts})"
        );
        assert!(fv_bursts > emulated_bursts, "steady mode must dominate");
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn rejects_inverting_hysteresis() {
        let mut cfg = AdaptiveConfig::intel();
        cfg.hysteresis = 0.5;
        let _ = AdaptiveChooser::new(cfg);
    }
}
