//! The Disabled Opcode (`#DO`) CPU exception (§3.3).
//!
//! SUIT repurposes a reserved x86 interrupt vector for a new fault-class
//! exception raised when a disabled instruction reaches execution. Like
//! other CPU exceptions it preserves the register state so the program can
//! resume: after the handler re-enables the instruction (curve switch) or
//! computes its result (emulation), execution continues at — or
//! respectively after — the faulting instruction.
//!
//! §8 ("Speculative Execution") requires that disabled instructions are
//! *not* executed speculatively; the exception must be taken no later than
//! dispatch. The out-of-order model in `suit-ooo` honours that.

use suit_isa::{Opcode, SimTime};

/// The interrupt vector SUIT assigns to `#DO`. Vector 30 is in the range
/// Intel reserves for future architectural exceptions (vectors 22–31,
/// SDM Vol. 3 §6.2); 21 (#CP) and below are taken.
pub const DO_VECTOR: u8 = 30;

/// A pending `#DO` exception record, as pushed to the OS handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisabledOpcode {
    /// The disabled opcode that was fetched.
    pub opcode: Opcode,
    /// The core that raised the exception.
    pub core: usize,
    /// When the exception was raised.
    pub at: SimTime,
}

impl DisabledOpcode {
    /// Creates an exception record.
    ///
    /// # Panics
    ///
    /// Panics if `opcode` is not faultable: hardware only checks disabled
    /// opcodes, which are always drawn from the faultable set.
    pub fn new(opcode: Opcode, core: usize, at: SimTime) -> Self {
        assert!(
            opcode.is_faultable(),
            "#DO can only be raised for faultable opcodes"
        );
        DisabledOpcode { opcode, core, at }
    }
}

impl core::fmt::Display for DisabledOpcode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "#DO(vector {DO_VECTOR}): {} on core {} at {}",
            self.opcode, self.core, self.at
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_fields() {
        let e = DisabledOpcode::new(Opcode::Aesenc, 2, SimTime::ZERO);
        assert_eq!(e.opcode, Opcode::Aesenc);
        assert_eq!(e.core, 2);
        assert!(e.to_string().contains("AESENC"));
        assert!(e.to_string().contains("vector 30"));
    }

    #[test]
    #[should_panic(expected = "faultable")]
    fn rejects_non_faultable() {
        let _ = DisabledOpcode::new(Opcode::Alu, 0, SimTime::ZERO);
    }
}
