//! Thrashing prevention (§4.3).
//!
//! If the gap between disabled instructions is a bit longer than the
//! deadline, the CPU would constantly bounce between DVFS curves, paying
//! the switch delay every time. The OS detects this by counting `#DO`
//! exceptions over a sliding look-back window of `p_ts`; at `p_ec` or more
//! it multiplies the deadline by `p_df` for the next stable period, which
//! keeps the CPU parked on the conservative curve.

use std::collections::VecDeque;

use suit_isa::{SimDuration, SimTime};

/// Sliding-window `#DO` exception counter implementing the §4.3 policy.
#[derive(Debug, Clone)]
pub struct ThrashGuard {
    /// Look-back window p_ts.
    window: SimDuration,
    /// Threshold p_ec.
    threshold: u32,
    /// Exception timestamps inside the window.
    events: VecDeque<SimTime>,
    /// How many times thrashing was detected (statistics).
    activations: u64,
}

impl ThrashGuard {
    /// Creates a guard with look-back `window` (p_ts) and exception-count
    /// threshold (p_ec).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero or `window` is zero.
    pub fn new(window: SimDuration, threshold: u32) -> Self {
        assert!(threshold > 0, "p_ec must be at least 1");
        assert!(!window.is_zero(), "p_ts must be positive");
        ThrashGuard {
            window,
            threshold,
            events: VecDeque::new(),
            activations: 0,
        }
    }

    /// Records a `#DO` exception at `now` and reports whether thrashing is
    /// detected, i.e. whether at least p_ec exceptions (including this
    /// one) fall within the last p_ts.
    pub fn record_exception(&mut self, now: SimTime) -> bool {
        self.events.push_back(now);
        self.evict(now);
        let thrashing = self.events.len() as u32 >= self.threshold;
        if thrashing {
            self.activations += 1;
        }
        thrashing
    }

    /// Exceptions currently inside the window ending at `now`.
    pub fn count_in_window(&mut self, now: SimTime) -> u32 {
        self.evict(now);
        self.events.len() as u32
    }

    /// Total thrashing detections so far.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    fn evict(&mut self, now: SimTime) {
        while let Some(&front) = self.events.front() {
            if now.saturating_since(front) > self.window {
                self.events.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    fn at(v: u64) -> SimTime {
        SimTime::ZERO + us(v)
    }

    #[test]
    fn detects_burst_of_exceptions() {
        // Table 7 parameters for 𝒜/𝒞: p_ts = 450 µs, p_ec = 3.
        let mut g = ThrashGuard::new(us(450), 3);
        assert!(!g.record_exception(at(0)));
        assert!(!g.record_exception(at(100)));
        assert!(g.record_exception(at(200)), "third exception within 450 µs");
        assert_eq!(g.activations(), 1);
    }

    #[test]
    fn old_exceptions_age_out() {
        let mut g = ThrashGuard::new(us(450), 3);
        assert!(!g.record_exception(at(0)));
        assert!(!g.record_exception(at(100)));
        // 600 µs later the first two are outside the window.
        assert!(!g.record_exception(at(700)));
        assert_eq!(g.count_in_window(at(700)), 1);
    }

    #[test]
    fn boundary_is_inclusive() {
        let mut g = ThrashGuard::new(us(450), 2);
        assert!(!g.record_exception(at(0)));
        // Exactly p_ts later: still inside the window.
        assert!(g.record_exception(at(450)));
    }

    #[test]
    fn slow_cadence_never_triggers() {
        let mut g = ThrashGuard::new(us(450), 3);
        for i in 0..50 {
            assert!(!g.record_exception(at(i * 500)), "exception {i}");
        }
        assert_eq!(g.activations(), 0);
    }

    #[test]
    #[should_panic(expected = "p_ec")]
    fn rejects_zero_threshold() {
        let _ = ThrashGuard::new(us(450), 0);
    }
}
