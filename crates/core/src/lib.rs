//! # suit-core
//!
//! The paper's primary contribution: the SUIT hardware–software interface
//! and operating-system policy (§3, §4).
//!
//! SUIT extends a CPU with:
//!
//! * a **disable-opcode MSR** ([`msr::DisableOpcodeMsr`]) with which the OS
//!   disables the faultable instruction set per DVFS domain (§3.3);
//! * a **DVFS-curve MSR** ([`msr::DvfsCurveMsr`]) selecting the
//!   conservative or efficient curve, with the hardware-enforced invariant
//!   that the efficient curve is only selectable while the faultable
//!   instructions are disabled (§3.2) — the property the security argument
//!   of §6.9 rests on;
//! * a **`#DO` (Disabled Opcode) exception** ([`exception`]) raised when a
//!   disabled instruction reaches the pipeline, using a reserved interrupt
//!   vector (§3.3);
//! * a **deadline timer** ([`deadline::DeadlineTimer`]) that counts down
//!   from `p_dl` and is reset by every faultable-instruction execution;
//!   its expiry tells the OS the burst is over (§4.1);
//! * **thrashing prevention** ([`thrash::ThrashGuard`]): if `p_ec`
//!   exceptions occur within `p_ts`, the deadline is multiplied by `p_df`
//!   (§4.3).
//!
//! Beyond the paper's static offsets, [`governor`] adds a temperature- and
//! aging-aware offset governor (Table 3 + §3.1 budgets combined at run
//! time) and [`adaptive`] the §6.8 dynamic strategy chooser.
//!
//! The OS side is [`os::SuitOs`]: a faithful Rust rendering of the paper's
//! Listing 1 driving an abstract [`os::CpuControl`] (the simulator, or —
//! in a real deployment — the actual MSR writes). The four operating
//! strategies of §4.3 are [`strategy::OperatingStrategy`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod deadline;
pub mod exception;
pub mod frontend;
pub mod governor;
pub mod msr;
pub mod os;
pub mod strategy;
pub mod thrash;

pub use adaptive::{AdaptiveChooser, AdaptiveConfig};
pub use exception::{DisabledOpcode, DO_VECTOR};
pub use frontend::{MachineState, StepOutcome, SuitFrontend};
pub use governor::{GovernorConfig, OffsetGovernor};
pub use msr::{CurveSelect, DisableOpcodeMsr, DvfsCurveMsr, MsrError, SuitMsrs};
pub use os::{CpuControl, CurveTarget, HandlerAction, OsStats, SuitOs};
pub use strategy::{OperatingStrategy, StrategyParams};
