//! A temperature- and aging-aware offset governor.
//!
//! The paper's offsets are static (−70 mV from instruction variation,
//! −97 mV with 20 % of the aging guardband), but both underlying budgets
//! move at run time: Table 3 shows the safe offset shrinking from −90 mV
//! at 50 °C to −55 mV at 88 °C, and §3.1 ties the borrowable aging
//! guardband to deployment age and temperature history. This governor
//! combines the three constraints each control step:
//!
//! ```text
//! offset = shallowest of ( instruction-variation margin − aging borrow,
//!                          temperature limit(T_now) )
//! ```
//!
//! and quantises the result onto SUIT's evaluated curve levels (a vendor
//! ships finitely many qualified efficient curves, not a continuum).

use suit_hw::guardband::{max_undervolt_at_temp_mv, AgingModel};
use suit_hw::measured::INSTR_VARIATION_OFFSET_MV;
use suit_hw::thermal::ThermalModel;
use suit_hw::{DvfsCurve, UndervoltLevel};
use suit_isa::SimDuration;

/// Static configuration of the governor.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorConfig {
    /// How long the machine has been deployed, years (drives the consumed
    /// share of the aging guardband).
    pub deployment_years: f64,
    /// Fraction of the *unused* aging guardband held in reserve
    /// (§3.1 evaluates borrowing 20 %, i.e. a 0.8 reserve).
    pub reserve_frac: f64,
    /// The conservative DVFS curve (for the guardband size).
    pub curve: DvfsCurve,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            deployment_years: 0.0,
            reserve_frac: 0.8,
            curve: DvfsCurve::i9_9900k(),
        }
    }
}

/// The run-time governor: owns the thermal state, emits offset decisions.
#[derive(Debug, Clone)]
pub struct OffsetGovernor {
    cfg: GovernorConfig,
    aging: AgingModel,
    thermal: ThermalModel,
}

impl OffsetGovernor {
    /// Creates a governor with the package initially at ambient and the
    /// given fan speed.
    pub fn new(cfg: GovernorConfig, fan_rpm: f64) -> Self {
        OffsetGovernor {
            cfg,
            aging: AgingModel::default(),
            thermal: ThermalModel::new(fan_rpm),
        }
    }

    /// Current junction temperature, °C.
    pub fn temperature_c(&self) -> f64 {
        self.thermal.temperature_c()
    }

    /// Adjusts the fan.
    pub fn set_fan_rpm(&mut self, rpm: f64) {
        self.thermal.set_fan_rpm(rpm);
    }

    /// Advances thermals by `dt` under `watts` and returns the deepest
    /// safe offset right now, mV (≤ 0).
    pub fn step(&mut self, dt: SimDuration, watts: f64) -> f64 {
        self.thermal.step(dt, watts);
        self.current_offset_mv()
    }

    /// The deepest safe offset at the current state, mV.
    pub fn current_offset_mv(&self) -> f64 {
        let temp = self.thermal.temperature_c();
        // Budget 1: instruction variation plus the borrowable aging share.
        let borrow = self.aging.borrowable_mv(
            &self.cfg.curve,
            self.cfg.deployment_years,
            temp,
            self.cfg.reserve_frac,
        );
        let budget = INSTR_VARIATION_OFFSET_MV - borrow;
        // Budget 2: the Table 3 temperature limit.
        let thermal_limit = max_undervolt_at_temp_mv(temp);
        // The *shallowest* (largest, since offsets are negative) binds.
        budget.max(thermal_limit).min(0.0)
    }

    /// Quantises the current offset onto the evaluated curve levels:
    /// `Mv97` when −97 mV is safe, `Mv70` when −70 mV is, `None` when the
    /// package is too hot for either.
    pub fn level(&self) -> Option<UndervoltLevel> {
        let offset = self.current_offset_mv();
        if offset <= -97.0 {
            Some(UndervoltLevel::Mv97)
        } else if offset <= -70.0 {
            Some(UndervoltLevel::Mv70)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suit_hw::thermal::AMBIENT_C;

    fn settle(g: &mut OffsetGovernor, watts: f64) {
        for _ in 0..10_000 {
            g.step(SimDuration::from_millis(100), watts);
        }
    }

    #[test]
    fn cool_fresh_machine_gets_the_full_97() {
        let mut g = OffsetGovernor::new(GovernorConfig::default(), 1800.0);
        settle(&mut g, 93.0);
        assert!((g.temperature_c() - 50.0).abs() < 1.0);
        let offset = g.current_offset_mv();
        assert!(offset <= -90.0, "cool budget {offset}");
        // Table 3's own limit at 50 °C is −90 mV: the thermal constraint
        // binds just above the −97 mV aging-assisted budget.
        assert_eq!(g.level(), Some(UndervoltLevel::Mv70));
    }

    #[test]
    fn hot_machine_falls_back() {
        let mut g = OffsetGovernor::new(GovernorConfig::default(), 300.0);
        settle(&mut g, 93.0);
        assert!(g.temperature_c() > 85.0);
        let offset = g.current_offset_mv();
        // Table 3: only −55 mV is safe at 88 °C — neither level qualifies.
        assert!((-60.0..=-50.0).contains(&offset), "{offset}");
        assert_eq!(g.level(), None);
    }

    #[test]
    fn idle_machine_cools_back_into_the_deep_level() {
        let mut g = OffsetGovernor::new(GovernorConfig::default(), 1800.0);
        settle(&mut g, 93.0);
        settle(&mut g, 5.0); // near idle
        assert!(g.temperature_c() < AMBIENT_C + 5.0);
        // Cool silicon: the thermal limit extrapolates past −97 mV and the
        // full aging-assisted budget applies.
        assert_eq!(g.level(), Some(UndervoltLevel::Mv97));
    }

    #[test]
    fn older_machines_get_shallower_budgets() {
        let fresh = OffsetGovernor::new(GovernorConfig::default(), 1800.0);
        let aged = OffsetGovernor::new(
            GovernorConfig {
                deployment_years: 8.0,
                ..GovernorConfig::default()
            },
            1800.0,
        );
        assert!(
            aged.current_offset_mv() > fresh.current_offset_mv(),
            "aging consumes the borrowable share: {} vs {}",
            aged.current_offset_mv(),
            fresh.current_offset_mv()
        );
    }

    #[test]
    fn fan_control_recovers_the_level() {
        let mut g = OffsetGovernor::new(GovernorConfig::default(), 300.0);
        settle(&mut g, 93.0);
        assert_eq!(g.level(), None);
        g.set_fan_rpm(1800.0);
        settle(&mut g, 93.0);
        assert!(g.level().is_some(), "cooling restores an efficient curve");
    }
}
