//! The two new model-specific registers SUIT adds (§3.2, §3.3).
//!
//! The crucial hardware invariant lives here: *"The CPU ensures that the
//! efficient curve can only be used if the faultable instructions are
//! disabled"* (§3.2). [`DvfsCurveMsr`] rejects a write selecting the
//! efficient curve while the disable set does not cover the vendor's
//! faultable set, and [`DisableOpcodeMsr`] rejects re-enabling faultable
//! instructions while the efficient curve is selected. Together they make
//! the unsafe state (efficient curve + enabled faultable instruction)
//! unrepresentable — the reduction of §6.9.

use suit_isa::{FaultableSet, Opcode};

/// Which DVFS curve a domain runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CurveSelect {
    /// The conservative curve — today's vendor curve, safe for every
    /// instruction.
    #[default]
    Conservative,
    /// The efficient curve — determined by excluding the faultable set.
    Efficient,
}

/// Errors from MSR writes (a real CPU would raise `#GP`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsrError {
    /// Tried to select the efficient curve while one or more faultable
    /// instructions are still enabled.
    FaultableEnabledOnEfficient {
        /// The first offending opcode.
        opcode: Opcode,
    },
    /// Tried to re-enable a faultable instruction while the efficient
    /// curve is selected.
    EnableWhileEfficient {
        /// The opcode whose enablement was rejected.
        opcode: Opcode,
    },
}

impl core::fmt::Display for MsrError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MsrError::FaultableEnabledOnEfficient { opcode } => write!(
                f,
                "#GP: cannot select the efficient DVFS curve while {opcode} is enabled"
            ),
            MsrError::EnableWhileEfficient { opcode } => write!(
                f,
                "#GP: cannot enable {opcode} while the efficient DVFS curve is selected"
            ),
        }
    }
}

impl std::error::Error for MsrError {}

/// The per-domain disable-opcode MSR (§3.3): which instructions raise
/// `#DO` instead of executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DisableOpcodeMsr {
    disabled: FaultableSet,
}

/// The per-domain DVFS-curve select MSR (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DvfsCurveMsr {
    selected: CurveSelect,
}

/// The coupled MSR pair of one DVFS domain, enforcing the §3.2 invariant.
///
/// The vendor-determined faultable set is fixed at construction (on a SUIT
/// CPU it is Table 1 minus the hardened `IMUL`, i.e.
/// [`FaultableSet::suit`]).
///
/// ```
/// use suit_core::{CurveSelect, SuitMsrs};
///
/// let mut msrs = SuitMsrs::suit_cpu();
/// // Selecting the efficient curve with faultables enabled is a #GP:
/// assert!(msrs.write_curve(CurveSelect::Efficient).is_err());
/// // The legal order: disable first, then switch.
/// msrs.disable_faultable();
/// msrs.write_curve(CurveSelect::Efficient).unwrap();
/// assert!(msrs.invariant_holds());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuitMsrs {
    faultable: FaultableSet,
    disable: DisableOpcodeMsr,
    curve: DvfsCurveMsr,
}

impl SuitMsrs {
    /// Creates the MSR pair for a domain whose vendor faultable set is
    /// `faultable`. Boots with everything enabled on the conservative
    /// curve, like a CPU today.
    pub fn new(faultable: FaultableSet) -> Self {
        SuitMsrs {
            faultable,
            disable: DisableOpcodeMsr::default(),
            curve: DvfsCurveMsr::default(),
        }
    }

    /// The MSR pair of a production SUIT CPU: Table 1 minus `IMUL`.
    pub fn suit_cpu() -> Self {
        Self::new(FaultableSet::suit())
    }

    /// The vendor's faultable set for this domain.
    pub fn faultable_set(&self) -> FaultableSet {
        self.faultable
    }

    /// Currently disabled opcodes.
    pub fn disabled_set(&self) -> FaultableSet {
        self.disable.disabled
    }

    /// Currently selected curve.
    pub fn curve(&self) -> CurveSelect {
        self.curve.selected
    }

    /// Whether `op` would raise `#DO` right now.
    pub fn is_disabled(&self, op: Opcode) -> bool {
        self.disable.disabled.contains(op)
    }

    /// Writes the disable-opcode MSR: `set` becomes the disabled set.
    ///
    /// # Errors
    ///
    /// Rejects the write if it would enable a faultable instruction while
    /// the efficient curve is selected.
    pub fn write_disable(&mut self, set: FaultableSet) -> Result<(), MsrError> {
        if self.curve.selected == CurveSelect::Efficient {
            if let Some(op) = self.faultable.iter().find(|op| !set.contains(*op)) {
                return Err(MsrError::EnableWhileEfficient { opcode: op });
            }
        }
        self.disable.disabled = set;
        Ok(())
    }

    /// Convenience: disable the whole vendor faultable set.
    pub fn disable_faultable(&mut self) {
        self.disable.disabled = self.faultable;
    }

    /// Convenience: enable everything (only legal on the conservative
    /// curve).
    ///
    /// # Errors
    ///
    /// Fails with [`MsrError::EnableWhileEfficient`] on the efficient curve.
    pub fn enable_all(&mut self) -> Result<(), MsrError> {
        self.write_disable(FaultableSet::EMPTY)
    }

    /// Writes the curve-select MSR.
    ///
    /// # Errors
    ///
    /// Rejects selecting [`CurveSelect::Efficient`] unless every opcode of
    /// the vendor faultable set is disabled.
    pub fn write_curve(&mut self, curve: CurveSelect) -> Result<(), MsrError> {
        if curve == CurveSelect::Efficient {
            if let Some(op) = self
                .faultable
                .iter()
                .find(|op| !self.disable.disabled.contains(*op))
            {
                return Err(MsrError::FaultableEnabledOnEfficient { opcode: op });
            }
        }
        self.curve.selected = curve;
        Ok(())
    }

    /// The safety invariant of §3.2/§6.9: on the efficient curve, every
    /// vendor-faultable opcode is disabled. `SuitMsrs` maintains this by
    /// construction; the method exists for property tests and the security
    /// audit.
    pub fn invariant_holds(&self) -> bool {
        self.curve.selected == CurveSelect::Conservative
            || self
                .faultable
                .iter()
                .all(|op| self.disable.disabled.contains(op))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boots_like_a_cpu_today() {
        let m = SuitMsrs::suit_cpu();
        assert_eq!(m.curve(), CurveSelect::Conservative);
        assert!(m.disabled_set().is_empty());
        assert!(m.invariant_holds());
    }

    #[test]
    fn efficient_curve_requires_disabled_faultables() {
        let mut m = SuitMsrs::suit_cpu();
        let err = m.write_curve(CurveSelect::Efficient).unwrap_err();
        assert!(matches!(err, MsrError::FaultableEnabledOnEfficient { .. }));
        m.disable_faultable();
        assert!(m.write_curve(CurveSelect::Efficient).is_ok());
        assert!(m.invariant_holds());
    }

    #[test]
    fn cannot_reenable_on_efficient_curve() {
        let mut m = SuitMsrs::suit_cpu();
        m.disable_faultable();
        m.write_curve(CurveSelect::Efficient).unwrap();
        let err = m.enable_all().unwrap_err();
        assert!(matches!(err, MsrError::EnableWhileEfficient { .. }));
        // Switching back to conservative first makes it legal — the §4.3
        // exception-handler order (enable instructions only after the
        // curve change).
        m.write_curve(CurveSelect::Conservative).unwrap();
        m.enable_all().unwrap();
        assert!(m.invariant_holds());
    }

    #[test]
    fn partial_disable_set_is_insufficient() {
        let mut m = SuitMsrs::suit_cpu();
        let partial = FaultableSet::EMPTY.with(Opcode::Aesenc).with(Opcode::Vor);
        m.write_disable(partial).unwrap();
        assert!(m.write_curve(CurveSelect::Efficient).is_err());
    }

    #[test]
    fn imul_is_not_required_to_be_disabled_on_suit_cpu() {
        // §4.2: IMUL is hardened in hardware, so the vendor faultable set
        // excludes it and it may stay enabled on the efficient curve.
        let mut m = SuitMsrs::suit_cpu();
        m.disable_faultable();
        m.write_curve(CurveSelect::Efficient).unwrap();
        assert!(!m.is_disabled(Opcode::Imul));
        assert!(m.is_disabled(Opcode::Aesenc));
    }

    #[test]
    fn unhardened_cpu_must_disable_imul_too() {
        let mut m = SuitMsrs::new(FaultableSet::table1());
        m.write_disable(FaultableSet::suit()).unwrap();
        assert!(m.write_curve(CurveSelect::Efficient).is_err());
        m.write_disable(FaultableSet::table1()).unwrap();
        assert!(m.write_curve(CurveSelect::Efficient).is_ok());
    }

    #[test]
    fn error_display_mentions_opcode() {
        let mut m = SuitMsrs::suit_cpu();
        let err = m.write_curve(CurveSelect::Efficient).unwrap_err();
        assert!(err.to_string().contains("#GP"));
    }
}
