//! A functional model of the Fig. 3 front end: *"Check Opcode →
//! Not Disabled → Backend"* / *"Disabled → #DO exception"*.
//!
//! This is the architectural (value-level) counterpart of the timing
//! simulators: it fetches real x86-64 bytes, decodes them with
//! `suit-isa`'s decoder, consults the disable-opcode MSR, and either
//!
//! * **executes** the instruction against architectural state through the
//!   emulation library (which doubles as the functional ALU here), or
//! * **raises `#DO`** with the faulting RIP, exactly like the hardware of
//!   §3.3 — the instruction has *no* architectural effect, and the OS can
//!   resume after handling.
//!
//! [`SuitFrontend::run_with_emulation_os`] closes the loop of §3.4: on
//! every trap it plays the OS role, computes the result in software, and
//! resumes at the next instruction — so a program produces bit-identical
//! final state whether its faultable instructions execute "in hardware"
//! or through traps. That equivalence is the architectural contract the
//! paper's emulation strategy rests on, and it is tested here.

use suit_emu::aes::{bitsliced, decrypt};
use suit_emu::{emulate, EmuOperands};
use suit_isa::decode::{decode, AesVariant, DecodeError, Decoded};
use suit_isa::{Opcode, Vec128};

use crate::msr::SuitMsrs;

/// Architectural register state (XMM file + the GPRs IMUL touches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineState {
    /// XMM registers.
    pub xmm: [Vec128; 16],
    /// General-purpose registers.
    pub gpr: [u64; 16],
    /// Instruction pointer (byte offset into the program).
    pub rip: usize,
}

impl Default for MachineState {
    fn default() -> Self {
        MachineState {
            xmm: [Vec128::ZERO; 16],
            gpr: [0; 16],
            rip: 0,
        }
    }
}

/// Outcome of one fetch-decode-execute step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The instruction executed; RIP advanced.
    Retired {
        /// The executed opcode family.
        opcode: Opcode,
    },
    /// The instruction is disabled: `#DO` raised, no architectural effect,
    /// RIP still points at the faulting instruction.
    DisabledOpcode {
        /// The trapped opcode family.
        opcode: Opcode,
        /// The faulting RIP.
        rip: usize,
    },
    /// End of program.
    Done,
}

/// Errors a step can surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepError {
    /// The bytes at RIP did not decode to a supported instruction.
    Decode(DecodeError),
    /// The instruction uses a memory operand, which this register-level
    /// model does not implement.
    MemoryOperand,
}

impl From<DecodeError> for StepError {
    fn from(e: DecodeError) -> Self {
        StepError::Decode(e)
    }
}

impl core::fmt::Display for StepError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StepError::Decode(e) => write!(f, "decode failed: {e}"),
            StepError::MemoryOperand => write!(f, "memory operands are not modelled"),
        }
    }
}

impl std::error::Error for StepError {}

/// The SUIT front end: MSRs + architectural state.
#[derive(Debug, Clone)]
pub struct SuitFrontend {
    /// The disable-opcode / curve-select MSR pair.
    pub msrs: SuitMsrs,
    /// Architectural registers.
    pub state: MachineState,
    /// `#DO` exceptions raised so far.
    pub traps: u64,
    /// Instructions emulated by the OS path.
    pub emulated: u64,
}

impl SuitFrontend {
    /// A front end booted like a current CPU: conservative curve,
    /// everything enabled.
    pub fn new() -> Self {
        SuitFrontend {
            msrs: SuitMsrs::suit_cpu(),
            state: MachineState::default(),
            traps: 0,
            emulated: 0,
        }
    }

    fn operands(&self, d: &Decoded) -> Result<EmuOperands, StepError> {
        let rm = d.rm_reg.ok_or(StepError::MemoryOperand)? as usize;
        Ok(match d.opcode {
            Opcode::Imul => {
                // Two-operand form: reg ← reg × rm (GPR file).
                EmuOperands::new(
                    Vec128::from_u64x2([self.state.gpr[d.reg as usize & 15], 0]),
                    Vec128::from_u64x2([self.state.gpr[rm & 15], 0]),
                )
            }
            _ => {
                // SSE: dst is also first source. VEX: first source is vvvv.
                let a = match d.vvvv {
                    Some(v) if d.vex => self.state.xmm[v as usize & 15],
                    _ => self.state.xmm[d.reg as usize & 15],
                };
                EmuOperands::with_imm(a, self.state.xmm[rm & 15], d.imm8.unwrap_or(0))
            }
        })
    }

    /// Computes the architectural result of a decoded instruction —
    /// dispatching AES decodes on their round variant (the four AES-NI
    /// rounds share a Table 1 family but compute different functions) and
    /// handling PSRAD's register-count form (`0F E2` takes the shift count
    /// from the source operand's low quadword, not an immediate).
    fn compute(&self, d: &Decoded) -> Result<Vec128, StepError> {
        let operands = self.operands(d)?;
        if d.opcode == Opcode::Aesenc {
            let (a, b) = (operands.a, operands.b);
            return Ok(match d.aes.expect("AES decodes carry a variant") {
                AesVariant::Enc => bitsliced::aesenc(a, b),
                AesVariant::EncLast => bitsliced::aesenclast(a, b),
                AesVariant::Dec => decrypt::aesdec(a, b),
                AesVariant::DecLast => decrypt::aesdeclast(a, b),
            });
        }
        if d.opcode == Opcode::Vpsrad && d.imm8.is_none() {
            // SDM: count = low 64 bits of the source; ≥ 32 saturates.
            let count = operands.b.to_u64x2()[0].min(255) as u8;
            return Ok(suit_emu::simd::vpsrad(operands.a, count));
        }
        Ok(emulate(d.opcode, operands)
            .expect("faultable decode set is emulatable")
            .value)
    }

    fn writeback(&mut self, d: &Decoded, value: Vec128) {
        match d.opcode {
            Opcode::Imul => {
                // Two-operand IMUL keeps the low 64 bits.
                self.state.gpr[d.reg as usize & 15] = value.to_u64x2()[0];
            }
            _ => self.state.xmm[d.reg as usize & 15] = value,
        }
    }

    /// Fetch-decode-execute one instruction of `program` at RIP.
    pub fn step(&mut self, program: &[u8]) -> Result<StepOutcome, StepError> {
        if self.state.rip >= program.len() {
            return Ok(StepOutcome::Done);
        }
        let d = decode(&program[self.state.rip..])?;

        if self.msrs.is_disabled(d.opcode) {
            // The Fig. 3 check: disabled opcodes never reach the backend.
            self.traps += 1;
            return Ok(StepOutcome::DisabledOpcode {
                opcode: d.opcode,
                rip: self.state.rip,
            });
        }

        self.execute(&d)?;
        Ok(StepOutcome::Retired { opcode: d.opcode })
    }

    /// Computes, writes back, and advances RIP for one decoded
    /// instruction — shared by direct execution and the OS emulation
    /// handler, so the trap-equals-direct invariant holds by construction.
    fn execute(&mut self, d: &Decoded) -> Result<(), StepError> {
        let value = self.compute(d)?;
        self.writeback(d, value);
        self.state.rip += d.length;
        Ok(())
    }

    /// Runs `program` to completion with the §3.4 OS behaviour: every
    /// `#DO` is handled by emulating the instruction in software and
    /// resuming after it. Returns the retired-instruction count.
    pub fn run_with_emulation_os(&mut self, program: &[u8]) -> Result<u64, StepError> {
        let mut retired = 0;
        loop {
            match self.step(program)? {
                StepOutcome::Done => return Ok(retired),
                StepOutcome::Retired { .. } => retired += 1,
                StepOutcome::DisabledOpcode { .. } => {
                    // OS handler: decode at the faulting RIP, execute in
                    // software, resume after the instruction.
                    let d = decode(&program[self.state.rip..])?;
                    self.execute(&d)?;
                    self.emulated += 1;
                    retired += 1;
                }
            }
        }
    }
}

impl Default for SuitFrontend {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msr::CurveSelect;

    /// AESENC xmm0, xmm1; PXOR xmm2, xmm0; IMUL eax, ebx (0F AF C3);
    /// PCLMULQDQ xmm3, xmm2, 0x00.
    fn program() -> Vec<u8> {
        let mut p = Vec::new();
        p.extend_from_slice(&[0x66, 0x0F, 0x38, 0xDC, 0xC1]); // AESENC xmm0, xmm1
        p.extend_from_slice(&[0x66, 0x0F, 0xEF, 0xD0]); // PXOR xmm2, xmm0
        p.extend_from_slice(&[0x0F, 0xAF, 0xC3]); // IMUL eax, ebx
        p.extend_from_slice(&[0x66, 0x0F, 0x3A, 0x44, 0xDA, 0x00]); // PCLMULQDQ xmm3, xmm2, 0
        p
    }

    fn seeded() -> SuitFrontend {
        let mut f = SuitFrontend::new();
        f.state.xmm[0] = Vec128::from_u128(0x11111111_22222222_33333333_44444444);
        f.state.xmm[1] = Vec128::from_u128(0x55555555_66666666_77777777_88888888);
        f.state.xmm[2] = Vec128::from_u128(0x9999aaaa_bbbbcccc_ddddeeee_ffff0000);
        f.state.xmm[3] = Vec128::from_u128(0x12345678_9abcdef0_0fedcba9_87654321);
        f.state.gpr[0] = 123_456_789;
        f.state.gpr[3] = 987_654_321;
        f
    }

    #[test]
    fn enabled_front_end_retires_everything() {
        let mut f = seeded();
        let retired = f.run_with_emulation_os(&program()).unwrap();
        assert_eq!(retired, 4);
        assert_eq!(f.traps, 0);
        assert_eq!(f.emulated, 0);
        assert_eq!(f.state.gpr[0], 123_456_789u64.wrapping_mul(987_654_321));
    }

    #[test]
    fn disabled_opcodes_trap_without_side_effects() {
        let mut f = seeded();
        f.msrs.disable_faultable();
        f.msrs.write_curve(CurveSelect::Efficient).unwrap();
        let before = f.state.clone();
        let out = f.step(&program()).unwrap();
        assert_eq!(
            out,
            StepOutcome::DisabledOpcode {
                opcode: Opcode::Aesenc,
                rip: 0
            }
        );
        assert_eq!(f.state, before, "a trapped instruction has no effect");
        assert_eq!(f.traps, 1);
    }

    #[test]
    fn trap_plus_emulation_equals_direct_execution() {
        // The architectural contract of §3.4: identical final state.
        let prog = program();

        let mut direct = seeded();
        direct.run_with_emulation_os(&prog).unwrap();

        let mut trapped = seeded();
        trapped.msrs.disable_faultable();
        trapped.msrs.write_curve(CurveSelect::Efficient).unwrap();
        let retired = trapped.run_with_emulation_os(&prog).unwrap();

        assert_eq!(retired, 4);
        assert_eq!(trapped.state, direct.state);
        // AESENC, PXOR and PCLMULQDQ are in the SUIT disable set; the
        // hardened IMUL is not (§4.2) and executes natively.
        assert_eq!(trapped.traps, 3);
        assert_eq!(trapped.emulated, 3);
    }

    #[test]
    fn aes_round_variants_compute_their_own_functions() {
        use suit_emu::aes::{reference, Aes128Key};
        // AESENC, AESENCLAST, AESDEC, AESDECLAST xmm0, xmm1 in sequence,
        // each checked against its architectural reference.
        let key = Aes128Key::expand([0x3c; 16]);
        let rk = key.round_key(4);
        let start = Vec128::from_u128(0x0011_2233_4455_6677_8899_aabb_ccdd_eeff);
        for (byte, expect) in [
            (0xDCu8, reference::aesenc(start, rk)),
            (0xDD, reference::aesenclast(start, rk)),
            (0xDE, suit_emu::aes::decrypt::aesdec(start, rk)),
            (0xDF, suit_emu::aes::decrypt::aesdeclast(start, rk)),
        ] {
            let mut f = SuitFrontend::new();
            f.state.xmm[0] = start;
            f.state.xmm[1] = rk;
            let prog = vec![0x66, 0x0F, 0x38, byte, 0xC1];
            f.run_with_emulation_os(&prog).unwrap();
            assert_eq!(f.state.xmm[0], expect, "opcode byte {byte:#x}");
            // And identically through the trap path.
            let mut t = SuitFrontend::new();
            t.state.xmm[0] = start;
            t.state.xmm[1] = rk;
            t.msrs.disable_faultable();
            t.msrs.write_curve(CurveSelect::Efficient).unwrap();
            t.run_with_emulation_os(&prog).unwrap();
            assert_eq!(t.state.xmm[0], expect, "trapped {byte:#x}");
        }
    }

    #[test]
    fn vex_three_operand_form_reads_vvvv() {
        // VPOR xmm0, xmm1, xmm2 (C5 F1 EB C2): dst=0, src1=vvvv=1, src2=2.
        let prog = vec![0xC5, 0xF1, 0xEB, 0xC2];
        let mut f = seeded();
        f.step(&prog).unwrap();
        let a = seeded().state.xmm[1];
        let b = seeded().state.xmm[2];
        assert_eq!(f.state.xmm[0], a | b);
    }

    #[test]
    fn psrad_register_form_reads_count_from_source() {
        // 66 0F E2 C1 = PSRAD xmm0, xmm1 (count in xmm1's low quadword).
        let prog = vec![0x66, 0x0F, 0xE2, 0xC1];
        let mut f = SuitFrontend::new();
        f.state.xmm[0] = Vec128::from_i32x4([-8, 16, -1, 4]);
        f.state.xmm[1] = Vec128::from_u64x2([2, 0]);
        f.run_with_emulation_os(&prog).unwrap();
        assert_eq!(f.state.xmm[0].to_i32x4(), [-2, 4, -1, 1]);
        // Oversized counts saturate to sign fill.
        let mut g = SuitFrontend::new();
        g.state.xmm[0] = Vec128::from_i32x4([-8, 16, -1, 4]);
        g.state.xmm[1] = Vec128::from_u64x2([1000, 0]);
        g.run_with_emulation_os(&prog).unwrap();
        assert_eq!(g.state.xmm[0].to_i32x4(), [-1, 0, -1, 0]);
    }

    #[test]
    fn memory_operands_are_rejected_cleanly() {
        // PXOR xmm0, [rsp] — register-level model refuses.
        let prog = vec![0x66, 0x0F, 0xEF, 0x04, 0x24];
        let mut f = seeded();
        assert_eq!(f.step(&prog), Err(StepError::MemoryOperand));
    }

    #[test]
    fn decode_errors_surface() {
        let mut f = seeded();
        assert!(matches!(f.step(&[0x90]), Err(StepError::Decode(_))));
    }
}
