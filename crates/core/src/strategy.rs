//! Operating strategies and their parameters (§4.3, Table 7).
//!
//! The operating strategy is how the OS reacts to a `#DO` exception. Four
//! exist, built from the two curve-switching methods of Fig. 4 plus
//! software emulation:
//!
//! * **Emulation (𝑒)** — never switch; emulate the trapped instruction in
//!   user space. Cheap per single instruction, catastrophic for dense
//!   bursts, impossible inside TEEs.
//! * **Frequency (𝑓)** — switch `E ↔ C_f` by dropping the clock. Fast and
//!   power-frugal, but the CPU computes slower while conservative.
//! * **Voltage (𝑉)** — switch `E ↔ C_V` by raising the voltage. An order
//!   of magnitude slower to engage, full speed once there.
//! * **Combination (𝑓𝑉)** — Listing 1: drop the frequency immediately,
//!   request the voltage raise asynchronously; short bursts never pay the
//!   voltage delay, long bursts end up at `C_V` at full speed.

use suit_isa::SimDuration;

use suit_hw::measured::{params_amd, params_intel};

/// The four operating strategies of §4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatingStrategy {
    /// 𝑒 — emulate in the `#DO` handler, never leave the efficient curve.
    Emulation,
    /// 𝑓 — switch curves by changing frequency only (`E ↔ C_f`).
    Frequency,
    /// 𝑉 — switch curves by changing voltage only (`E ↔ C_V`).
    Voltage,
    /// 𝑓𝑉 — frequency first, voltage follows asynchronously
    /// (`E → C_f → C_V → E`).
    FreqVolt,
}

impl OperatingStrategy {
    /// Short label as used in Table 6 ("e", "f", "V", "fV").
    pub fn label(self) -> &'static str {
        match self {
            OperatingStrategy::Emulation => "e",
            OperatingStrategy::Frequency => "f",
            OperatingStrategy::Voltage => "V",
            OperatingStrategy::FreqVolt => "fV",
        }
    }
}

impl core::fmt::Display for OperatingStrategy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// The four tuning parameters of §4.3 (values: Table 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyParams {
    /// p_dl — the deadline: maximum time between two potentially faulting
    /// instructions before switching back to the efficient curve.
    pub deadline: SimDuration,
    /// p_ts — the thrashing-prevention look-back window.
    pub timespan: SimDuration,
    /// p_ec — maximum `#DO` count within p_ts before thrashing is declared.
    pub max_exceptions: u32,
    /// p_df — deadline multiplier while thrashing.
    pub deadline_factor: f64,
}

impl StrategyParams {
    /// Table 7 row for CPUs 𝒜 and 𝒞 (Intel): 30 µs / 450 µs / 3 / 14.
    pub fn intel() -> Self {
        StrategyParams {
            deadline: SimDuration::from_micros_f64(params_intel::P_DL_US),
            timespan: SimDuration::from_micros_f64(params_intel::P_TS_US),
            max_exceptions: params_intel::P_EC,
            deadline_factor: params_intel::P_DF,
        }
    }

    /// Table 7 row for CPU ℬ (AMD): 700 µs / 14 ms / 4 / 9.
    pub fn amd() -> Self {
        StrategyParams {
            deadline: SimDuration::from_micros_f64(params_amd::P_DL_US),
            timespan: SimDuration::from_micros_f64(params_amd::P_TS_US),
            max_exceptions: params_amd::P_EC,
            deadline_factor: params_amd::P_DF,
        }
    }

    /// The extended deadline applied while thrashing: `p_dl · p_df`.
    pub fn extended_deadline(&self) -> SimDuration {
        self.deadline.mul_f64(self.deadline_factor)
    }

    /// Returns a copy with a different deadline (for the Table 7 sweep).
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Returns a copy with a different deadline factor.
    pub fn with_deadline_factor(mut self, factor: f64) -> Self {
        self.deadline_factor = factor;
        self
    }

    /// Returns a copy with thrashing prevention effectively disabled
    /// (threshold out of reach) — the ablation of DESIGN.md §6 item 2.
    pub fn without_thrash_prevention(mut self) -> Self {
        self.max_exceptions = u32::MAX;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_intel_row() {
        let p = StrategyParams::intel();
        assert_eq!(p.deadline, SimDuration::from_micros(30));
        assert_eq!(p.timespan, SimDuration::from_micros(450));
        assert_eq!(p.max_exceptions, 3);
        assert_eq!(p.deadline_factor, 14.0);
        assert_eq!(p.extended_deadline(), SimDuration::from_micros(420));
    }

    #[test]
    fn table7_amd_row() {
        let p = StrategyParams::amd();
        assert_eq!(p.deadline, SimDuration::from_micros(700));
        assert_eq!(p.timespan, SimDuration::from_millis(14));
        assert_eq!(p.max_exceptions, 4);
        assert_eq!(p.deadline_factor, 9.0);
    }

    #[test]
    fn labels_match_table6_columns() {
        assert_eq!(OperatingStrategy::Emulation.to_string(), "e");
        assert_eq!(OperatingStrategy::Frequency.to_string(), "f");
        assert_eq!(OperatingStrategy::Voltage.to_string(), "V");
        assert_eq!(OperatingStrategy::FreqVolt.to_string(), "fV");
    }

    #[test]
    fn builder_tweaks() {
        let p = StrategyParams::intel()
            .with_deadline(SimDuration::from_micros(40))
            .with_deadline_factor(2.0);
        assert_eq!(p.deadline, SimDuration::from_micros(40));
        assert_eq!(p.extended_deadline(), SimDuration::from_micros(80));
        assert_eq!(p.without_thrash_prevention().max_exceptions, u32::MAX);
    }
}
