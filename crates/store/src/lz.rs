//! The in-tree LZSS codec compressing `SUITTRC2` chunks.
//!
//! Classic LZSS over a 4 KiB sliding window: a flag byte announces eight
//! items, each either a literal byte (bit set) or a 2-byte match token
//! (bit clear) packing a 12-bit distance and 4-bit length (3–18 bytes).
//! The matcher is greedy with a bounded hash chain — determinism and a
//! total, bounds-checked decoder matter here; ratio is secondary (varint
//! burst streams are repetitive enough that even greedy LZSS halves them).
//!
//! Both directions are pure functions of their input: same bytes in, same
//! bytes out, on every platform and at every call site.

/// Sliding-window size: match distances are 1..=4096.
const WINDOW: usize = 1 << 12;
/// Shortest match worth a 2-byte token.
const MIN_MATCH: usize = 3;
/// Longest match a 4-bit length field can express.
const MAX_MATCH: usize = MIN_MATCH + 15;
const HASH_BITS: u32 = 13;
const HASH_SIZE: usize = 1 << HASH_BITS;
/// Hash-chain probe depth: bounds worst-case compression time.
const CHAIN_DEPTH: usize = 16;
/// Sentinel for "no position" in the hash structures.
const NIL: u32 = u32::MAX;

/// Worst-case compressed size for `raw_len` input bytes: all literals
/// (1 byte each) plus one flag byte per 8 items.
pub fn max_compressed_len(raw_len: usize) -> usize {
    raw_len + raw_len / 8 + 2
}

fn hash3(b: &[u8]) -> usize {
    let v = u32::from(b[0]) | (u32::from(b[1]) << 8) | (u32::from(b[2]) << 16);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input` into a fresh token stream.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    // `head[h]` is the most recent position hashing to `h`; `prev[p]` the
    // previous position sharing `p`'s hash — a bounded-depth chain.
    let mut head = [NIL; HASH_SIZE];
    let mut prev = vec![NIL; input.len()];

    let insert = |head: &mut [u32; HASH_SIZE], prev: &mut [u32], pos: usize| {
        if pos + MIN_MATCH <= input.len() {
            let h = hash3(&input[pos..]);
            prev[pos] = head[h];
            head[h] = pos as u32;
        }
    };

    let mut i = 0;
    let mut flag_pos = 0;
    let mut flag = 0u8;
    let mut flag_bit = 8u32; // forces a fresh flag byte on the first item
    while i < input.len() {
        // Greedy longest-match search through the chain.
        let mut best_len = 0;
        let mut best_dist = 0;
        if i + MIN_MATCH <= input.len() {
            let mut cand = head[hash3(&input[i..])];
            let mut depth = 0;
            while cand != NIL && depth < CHAIN_DEPTH {
                let c = cand as usize;
                if i - c > WINDOW {
                    break; // chain is recency-ordered: older is farther
                }
                let cap = MAX_MATCH.min(input.len() - i);
                let mut l = 0;
                while l < cap && input[c + l] == input[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - c;
                    if l == MAX_MATCH {
                        break;
                    }
                }
                cand = prev[c];
                depth += 1;
            }
        }

        if flag_bit == 8 {
            flag_pos = out.len();
            out.push(0);
            flag = 0;
            flag_bit = 0;
        }
        if best_len >= MIN_MATCH {
            let token = ((best_dist - 1) as u16) | (((best_len - MIN_MATCH) as u16) << 12);
            out.extend_from_slice(&token.to_le_bytes());
            for pos in i..i + best_len {
                insert(&mut head, &mut prev, pos);
            }
            i += best_len;
        } else {
            flag |= 1 << flag_bit;
            out.push(input[i]);
            insert(&mut head, &mut prev, i);
            i += 1;
        }
        flag_bit += 1;
        out[flag_pos] = flag;
    }
    out
}

/// Decompresses a token stream produced by [`compress`] into exactly
/// `raw_len` bytes.
///
/// Total over arbitrary input: every malformed stream — truncated
/// literals, match distances reaching before the start, matches overrunning
/// the declared length, trailing garbage — returns an error, never panics,
/// and never allocates more than `raw_len` output bytes.
pub fn decompress(inp: &[u8], raw_len: usize) -> Result<Vec<u8>, &'static str> {
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 0;
    while out.len() < raw_len {
        if i >= inp.len() {
            return Err("compressed stream truncated");
        }
        let flag = inp[i];
        i += 1;
        for bit in 0..8 {
            if out.len() == raw_len {
                break;
            }
            if flag & (1 << bit) != 0 {
                if i >= inp.len() {
                    return Err("literal truncated");
                }
                out.push(inp[i]);
                i += 1;
            } else {
                if i + 2 > inp.len() {
                    return Err("match token truncated");
                }
                let token = u16::from_le_bytes([inp[i], inp[i + 1]]);
                i += 2;
                let dist = usize::from(token & 0x0FFF) + 1;
                let len = usize::from(token >> 12) + MIN_MATCH;
                if dist > out.len() {
                    return Err("match distance reaches before stream start");
                }
                if out.len() + len > raw_len {
                    return Err("match overruns declared length");
                }
                // Byte-at-a-time copy: overlapping matches (dist < len)
                // replicate the just-written bytes, RLE-style.
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    if i != inp.len() {
        return Err("trailing bytes after compressed stream");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let packed = compress(data);
        let back = decompress(&packed, data.len()).expect("roundtrip");
        assert_eq!(back, data);
        assert!(packed.len() <= max_compressed_len(data.len()));
    }

    #[test]
    fn roundtrips_structured_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abcabcabcabcabcabc");
        roundtrip(&[0u8; 10_000]);
        roundtrip(b"the quick brown fox jumps over the lazy dog");
        // Varint-like repetitive structure (the real workload).
        let mut v = Vec::new();
        for n in 0u64..4000 {
            v.extend_from_slice(&(n % 97).to_le_bytes());
        }
        roundtrip(&v);
    }

    #[test]
    fn roundtrips_pseudorandom_input() {
        // Worst case for ratio, but identity must still hold.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let data: Vec<u8> = (0..33_333)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn compresses_repetitive_data() {
        let data = vec![0xABu8; 65_536];
        let packed = compress(&data);
        assert!(packed.len() < data.len() / 4, "{} bytes", packed.len());
    }

    #[test]
    fn long_range_matches_stay_inside_the_window() {
        // A period-4097 pattern: matches must never claim distance > 4096.
        let mut data = Vec::new();
        for i in 0..20_000u32 {
            data.push((i % 4097) as u8);
        }
        roundtrip(&data);
    }

    #[test]
    fn decompress_is_total_over_corrupt_streams() {
        let packed = compress(b"abcabcabcabcabc");
        // Truncations.
        for cut in 0..packed.len() {
            let _ = decompress(&packed[..cut], 15);
        }
        // Wrong declared lengths.
        for raw_len in [0usize, 1, 14, 16, 1000] {
            let _ = decompress(&packed, raw_len);
        }
        // Bit flips.
        let mut copy = packed.clone();
        for i in 0..copy.len() {
            copy[i] ^= 0xFF;
            let _ = decompress(&copy, 15);
            copy[i] ^= 0xFF;
        }
    }

    #[test]
    fn rejects_distance_before_start() {
        // Flag byte 0 (match), token with dist 100 at output position 0.
        let stream = [0x00u8, 99, 0x00];
        assert!(decompress(&stream, 10).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut packed = compress(b"hello world hello world");
        packed.push(0xAA);
        assert!(decompress(&packed, 23).is_err());
    }

    #[test]
    fn deterministic() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 7 % 251) as u8).collect();
        assert_eq!(compress(&data), compress(&data));
    }
}
