//! # suit-store
//!
//! Out-of-core trace storage: the `SUITTRC2` chunked, compressed,
//! seekable container and its bounded-memory streaming reader.
//!
//! `suit-trace::io`'s `SUITTRC1` format is load-everything — the whole
//! burst vector must fit in memory before a single event replays. Real
//! trace-driven studies operate at 10¹¹-instruction / GiB scale (§5.1
//! records 25 applications once and replays them across every CPU ×
//! strategy × offset configuration), so this crate adds the storage layer
//! that makes replay out-of-core:
//!
//! * [`container::pack`] — streams bursts into fixed-size chunks, each
//!   independently compressed with the in-tree [`lz`] LZSS codec and
//!   checksummed with [`crc`] CRC-32, then appends a fixed-size per-chunk
//!   index footer (byte offset, burst count, first-burst virtual time,
//!   CRC) and a trailer. Packing is a pure function of its inputs.
//! * [`container::StreamingReader`] — validates the trailer, index
//!   checksum and every index record against the physical file size
//!   before trusting any length field, then yields [`suit_trace::Burst`]s
//!   through a window of at most N decoded chunks: replay memory is
//!   O(chunk), not O(trace), with the high-water mark observable via
//!   [`container::StreamingReader::peak_resident_bursts`].
//! * [`container::StreamingReader::seek_to_vtime`] — O(log chunks)
//!   binary search of the index to the burst covering any virtual
//!   instruction offset, decoding at most one chunk, with semantics
//!   identical to skipping from the start.
//!
//! Everything is deterministic and total: same bytes in, same bursts
//! out; corrupt or hostile input returns [`container::StoreError`],
//! never panics, and never allocates more than the physical input could
//! justify.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod container;
pub mod crc;
pub mod lz;

pub use container::{
    open_bytes, pack, pack_to_vec, read_all, Bursts, ChunkRecord, ContainerInfo, PackStats,
    StoreError, StreamingReader, DEFAULT_CHUNK_BURSTS, MAX_CHUNK_BURSTS,
};
