//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the per-chunk
//! and index checksums of the `SUITTRC2` container.
//!
//! A table-driven byte-at-a-time implementation is plenty: checksumming is
//! a small fraction of chunk decode cost next to LZ matching, and the
//! standard polynomial keeps the container verifiable with external tools.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
};

/// CRC-32 of `data` (initial value `0xFFFFFFFF`, final XOR `0xFFFFFFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let base = crc32(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() {
            for bit in 0..8 {
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip at byte {i} bit {bit}");
                copy[i] ^= 1 << bit;
            }
        }
    }
}
