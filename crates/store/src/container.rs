//! The `SUITTRC2` chunked container: pack, index, seek, stream.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header   magic "SUITTRC2"                                  8 bytes
//!          name varint len + UTF-8 bytes (≤ 4096)
//!          ipc f64 bits                                      8 bytes
//!          total varint (virtual instructions)
//!          chunk_bursts varint (bursts per full chunk)
//! chunks   chunk_count × LZSS(varint burst records), back to back
//! index    chunk_count × 32-byte record:
//!          { offset u64, comp_len u32, raw_len u32,
//!            bursts u32, crc32 u32, first_vtime u64 }
//! trailer  index_offset u64, index_crc32 u32,
//!          chunk_count u32, tail magic "2CRTTIUS"            24 bytes
//! ```
//!
//! Each chunk is independently compressed, so decoding one chunk costs
//! O(chunk) memory regardless of trace size, and the fixed-size index
//! footer supports O(log n) seeks by virtual time (`first_vtime` is the
//! cumulative instruction count at the chunk's first burst). The CRC
//! covers the *raw* (decompressed) chunk bytes: a checksum match proves
//! the whole decompression path, not just the stored bytes.
//!
//! Every length field read from a container is validated against the
//! physically available bytes before any allocation — a hostile header
//! can make the reader return `Corrupt`, never balloon memory.

use std::collections::VecDeque;
use std::io::{self, Read, Seek, SeekFrom, Write};

use suit_isa::Opcode;
use suit_trace::io::TraceMeta;
use suit_trace::Burst;

use crate::crc::crc32;
use crate::lz;

const MAGIC: &[u8; 8] = b"SUITTRC2";
/// Tail magic (the header magic reversed) closing the trailer.
const TAIL_MAGIC: &[u8; 8] = b"2CRTTIUS";
const INDEX_RECORD_BYTES: u64 = 32;
const TRAILER_BYTES: u64 = 24;
/// Shortest possible container: magic + empty name + ipc + two varints
/// + trailer.
const MIN_FILE_BYTES: u64 = 8 + 1 + 8 + 1 + 1 + TRAILER_BYTES;
const MAX_NAME_BYTES: usize = 4096;
/// A serialized burst is 3 varints (≥ 1 byte each) + 1 opcode byte.
const MIN_BURST_BYTES: u64 = 4;
/// …and at most 3 maximal varints + 1 opcode byte.
const MAX_BURST_BYTES: u64 = 31;

/// Default bursts per chunk: ~16–48 KiB raw per chunk for typical traces.
pub const DEFAULT_CHUNK_BURSTS: usize = 4096;
/// Upper bound on bursts per chunk, capping per-chunk decode memory.
pub const MAX_CHUNK_BURSTS: usize = 1 << 20;

/// Container failures: I/O, foreign bytes, or structural corruption.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not carry the `SUITTRC2` magic.
    BadMagic,
    /// A structural invariant does not hold (truncation, checksum
    /// mismatch, over-declared length, invalid burst, …).
    Corrupt(&'static str),
    /// Invalid arguments to a pack call (caller bug, not data corruption).
    Invalid(&'static str),
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "container I/O error: {e}"),
            StoreError::BadMagic => write!(f, "not a SUITTRC2 container (bad magic)"),
            StoreError::Corrupt(what) => write!(f, "corrupt container: {what}"),
            StoreError::Invalid(what) => write!(f, "invalid pack request: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

// ---------------------------------------------------------------- varints

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<usize> {
    let mut buf = [0u8; 10];
    let mut n = 0;
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf[n] = byte;
            n += 1;
            w.write_all(&buf[..n])?;
            return Ok(n);
        }
        buf[n] = byte | 0x80;
        n += 1;
    }
}

/// Reads a varint from a slice, returning the value and bytes consumed.
fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, StoreError> {
    let mut v: u64 = 0;
    for shift in (0..70).step_by(7) {
        let b = *buf
            .get(*pos)
            .ok_or(StoreError::Corrupt("varint truncated"))?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return Err(StoreError::Corrupt("varint overflow"));
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(StoreError::Corrupt("varint too long"))
}

// ---------------------------------------------------------------- packing

/// What a pack produced — the numbers `trace info` and the bench report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackStats {
    /// Bursts written.
    pub bursts: u64,
    /// Chunks written.
    pub chunks: u64,
    /// Raw (uncompressed) burst-record bytes across all chunks.
    pub raw_bytes: u64,
    /// Total container size including header, index and trailer.
    pub packed_bytes: u64,
}

fn encode_burst(buf: &mut Vec<u8>, b: &Burst) {
    let _ = write_varint(buf, b.gap_insts);
    let _ = write_varint(buf, u64::from(b.events));
    let _ = write_varint(buf, u64::from(b.within_gap_insts));
    buf.push(b.opcode.index() as u8);
}

/// Packs `bursts` into a `SUITTRC2` container on `w`, `chunk_bursts`
/// bursts per chunk (the last chunk may be short).
///
/// Packing is streaming: memory stays O(chunk) however long the input
/// iterator runs, and `w` only needs `Write` — offsets are tracked, not
/// sought. The output is a pure function of `(meta, bursts, chunk_bursts)`.
pub fn pack<W: Write, I: IntoIterator<Item = Burst>>(
    w: &mut W,
    meta: &TraceMeta,
    bursts: I,
    chunk_bursts: usize,
) -> Result<PackStats, StoreError> {
    if chunk_bursts == 0 || chunk_bursts > MAX_CHUNK_BURSTS {
        return Err(StoreError::Invalid("chunk_bursts out of range"));
    }
    if meta.name.len() > MAX_NAME_BYTES {
        return Err(StoreError::Invalid("name too long"));
    }
    if !meta.ipc.is_finite() || meta.ipc <= 0.0 {
        return Err(StoreError::Invalid("non-positive IPC"));
    }

    // Header.
    let mut pos: u64 = 0;
    w.write_all(MAGIC)?;
    pos += 8;
    pos += write_varint(w, meta.name.len() as u64)? as u64;
    w.write_all(meta.name.as_bytes())?;
    pos += meta.name.len() as u64;
    w.write_all(&meta.ipc.to_bits().to_le_bytes())?;
    pos += 8;
    pos += write_varint(w, meta.total_insts)? as u64;
    pos += write_varint(w, chunk_bursts as u64)? as u64;

    // Chunks.
    let mut index: Vec<ChunkRecord> = Vec::new();
    let mut raw = Vec::new();
    let mut in_chunk: u32 = 0;
    let mut stats = PackStats {
        bursts: 0,
        chunks: 0,
        raw_bytes: 0,
        packed_bytes: 0,
    };
    let mut vtime: u64 = 0;
    let mut chunk_vtime: u64 = 0; // first_vtime of the chunk being filled
    let flush = |w: &mut W,
                 raw: &mut Vec<u8>,
                 in_chunk: &mut u32,
                 pos: &mut u64,
                 first_vtime: u64|
     -> Result<ChunkRecord, StoreError> {
        let packed = lz::compress(raw);
        let rec = ChunkRecord {
            offset: *pos,
            comp_len: packed.len() as u32,
            raw_len: raw.len() as u32,
            bursts: *in_chunk,
            crc32: crc32(raw),
            first_vtime,
        };
        w.write_all(&packed)?;
        *pos += packed.len() as u64;
        raw.clear();
        *in_chunk = 0;
        Ok(rec)
    };
    for b in bursts {
        if in_chunk == 0 {
            chunk_vtime = vtime;
        }
        encode_burst(&mut raw, &b);
        in_chunk += 1;
        stats.bursts += 1;
        vtime = vtime
            .checked_add(b.total_insts())
            .ok_or(StoreError::Invalid("virtual time overflows u64"))?;
        if in_chunk as usize == chunk_bursts {
            stats.raw_bytes += raw.len() as u64;
            index.push(flush(w, &mut raw, &mut in_chunk, &mut pos, chunk_vtime)?);
        }
    }
    if in_chunk > 0 {
        stats.raw_bytes += raw.len() as u64;
        index.push(flush(w, &mut raw, &mut in_chunk, &mut pos, chunk_vtime)?);
    }
    stats.chunks = index.len() as u64;

    // Index + trailer.
    let index_offset = pos;
    let mut index_bytes = Vec::with_capacity(index.len() * INDEX_RECORD_BYTES as usize);
    for rec in &index {
        rec.encode(&mut index_bytes);
    }
    w.write_all(&index_bytes)?;
    w.write_all(&index_offset.to_le_bytes())?;
    w.write_all(&crc32(&index_bytes).to_le_bytes())?;
    w.write_all(&(index.len() as u32).to_le_bytes())?;
    w.write_all(TAIL_MAGIC)?;
    stats.packed_bytes = index_offset + index_bytes.len() as u64 + TRAILER_BYTES;
    Ok(stats)
}

/// [`pack`] into a fresh byte vector.
pub fn pack_to_vec<I: IntoIterator<Item = Burst>>(
    meta: &TraceMeta,
    bursts: I,
    chunk_bursts: usize,
) -> Result<Vec<u8>, StoreError> {
    let mut out = Vec::new();
    pack(&mut out, meta, bursts, chunk_bursts)?;
    Ok(out)
}

// ----------------------------------------------------------------- index

/// One chunk's entry in the index footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRecord {
    /// Byte offset of the chunk's compressed payload from container start.
    pub offset: u64,
    /// Compressed payload length.
    pub comp_len: u32,
    /// Decompressed length.
    pub raw_len: u32,
    /// Bursts in the chunk.
    pub bursts: u32,
    /// CRC-32 of the decompressed chunk bytes.
    pub crc32: u32,
    /// Cumulative virtual instructions before the chunk's first burst.
    pub first_vtime: u64,
}

impl ChunkRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.comp_len.to_le_bytes());
        out.extend_from_slice(&self.raw_len.to_le_bytes());
        out.extend_from_slice(&self.bursts.to_le_bytes());
        out.extend_from_slice(&self.crc32.to_le_bytes());
        out.extend_from_slice(&self.first_vtime.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Self {
        let u32_at = |i: usize| u32::from_le_bytes(buf[i..i + 4].try_into().unwrap());
        let u64_at = |i: usize| u64::from_le_bytes(buf[i..i + 8].try_into().unwrap());
        ChunkRecord {
            offset: u64_at(0),
            comp_len: u32_at(8),
            raw_len: u32_at(12),
            bursts: u32_at(16),
            crc32: u32_at(20),
            first_vtime: u64_at(24),
        }
    }
}

/// Summary of an opened container (the `trace info` payload).
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerInfo {
    /// Trace metadata from the header.
    pub meta: TraceMeta,
    /// Chunk count.
    pub chunks: u64,
    /// Total bursts across all chunks.
    pub bursts: u64,
    /// Bursts per full chunk.
    pub chunk_bursts: u64,
    /// Raw (decompressed) burst-record bytes.
    pub raw_bytes: u64,
    /// Total container size in bytes.
    pub packed_bytes: u64,
}

// --------------------------------------------------------------- reading

/// A bounded-memory, seekable reader over a `SUITTRC2` container.
///
/// Opening validates the trailer, the index checksum, and every index
/// record against the physical file size; bursts then stream through a
/// window of at most `window_chunks` decoded chunks, so peak memory is
/// O(window × chunk), never O(trace). [`Self::peak_resident_bursts`]
/// reports the high-water mark so tests can pin the bound.
pub struct StreamingReader<R: Read + Seek> {
    src: R,
    meta: TraceMeta,
    chunk_bursts: u64,
    index: Vec<ChunkRecord>,
    packed_bytes: u64,
    /// Decoded chunks, least-recently-used first.
    window: VecDeque<(usize, Vec<Burst>)>,
    window_chunks: usize,
    /// Cursor: next burst is `index[cur_chunk]`'s burst `cur_burst`
    /// (`cur_chunk == index.len()` ⇒ end of trace).
    cur_chunk: usize,
    cur_burst: usize,
    peak_resident: usize,
    decodes: u64,
}

impl<R: Read + Seek> StreamingReader<R> {
    /// Opens and validates a container with the default 2-chunk window.
    pub fn open(src: R) -> Result<Self, StoreError> {
        Self::with_window(src, 2)
    }

    /// Opens and validates a container holding at most `window_chunks`
    /// decoded chunks resident (minimum 1).
    pub fn with_window(mut src: R, window_chunks: usize) -> Result<Self, StoreError> {
        let file_len = src.seek(SeekFrom::End(0))?;
        if file_len < MIN_FILE_BYTES {
            // Too short even for an empty container — check the magic so
            // foreign files still report `BadMagic` over `Corrupt`.
            src.seek(SeekFrom::Start(0))?;
            let mut magic = [0u8; 8];
            if src.read_exact(&mut magic).is_err() || &magic != MAGIC {
                return Err(StoreError::BadMagic);
            }
            return Err(StoreError::Corrupt("container shorter than trailer"));
        }

        // Trailer.
        src.seek(SeekFrom::End(-(TRAILER_BYTES as i64)))?;
        let mut trailer = [0u8; TRAILER_BYTES as usize];
        src.read_exact(&mut trailer)?;
        if &trailer[16..24] != TAIL_MAGIC {
            // Distinguish "not ours at all" from "ours but damaged".
            src.seek(SeekFrom::Start(0))?;
            let mut magic = [0u8; 8];
            src.read_exact(&mut magic)?;
            if &magic != MAGIC {
                return Err(StoreError::BadMagic);
            }
            return Err(StoreError::Corrupt("bad trailer magic"));
        }
        let index_offset = u64::from_le_bytes(trailer[0..8].try_into().unwrap());
        let index_crc = u32::from_le_bytes(trailer[8..12].try_into().unwrap());
        let chunk_count = u32::from_le_bytes(trailer[12..16].try_into().unwrap());
        // The index must sit exactly between the chunks and the trailer:
        // this single equation bounds the index allocation by the
        // physical file size before any `Vec` is sized from it.
        let index_bytes_len = u64::from(chunk_count)
            .checked_mul(INDEX_RECORD_BYTES)
            .ok_or(StoreError::Corrupt("index size overflows"))?;
        if index_offset
            .checked_add(index_bytes_len)
            .and_then(|v| v.checked_add(TRAILER_BYTES))
            != Some(file_len)
        {
            return Err(StoreError::Corrupt("index does not fit the file"));
        }

        // Index.
        src.seek(SeekFrom::Start(index_offset))?;
        let mut index_bytes = vec![0u8; index_bytes_len as usize];
        src.read_exact(&mut index_bytes)?;
        if crc32(&index_bytes) != index_crc {
            return Err(StoreError::Corrupt("index checksum mismatch"));
        }

        // Header.
        src.seek(SeekFrom::Start(0))?;
        let head_budget = index_offset.min(8 + 1 + MAX_NAME_BYTES as u64 + 8 + 10 + 10);
        let mut head = vec![0u8; head_budget as usize];
        src.read_exact(&mut head)?;
        if head.len() < 8 || head[..8] != MAGIC[..] {
            return Err(StoreError::BadMagic);
        }
        let mut pos = 8usize;
        let name_len = read_varint(&head, &mut pos)? as usize;
        if name_len > MAX_NAME_BYTES {
            return Err(StoreError::Corrupt("name too long"));
        }
        let name_bytes = head
            .get(pos..pos + name_len)
            .ok_or(StoreError::Corrupt("name truncated"))?;
        let name = String::from_utf8(name_bytes.to_vec())
            .map_err(|_| StoreError::Corrupt("name not UTF-8"))?;
        pos += name_len;
        let ipc_bytes = head
            .get(pos..pos + 8)
            .ok_or(StoreError::Corrupt("header truncated"))?;
        let ipc = f64::from_bits(u64::from_le_bytes(ipc_bytes.try_into().unwrap()));
        if !ipc.is_finite() || ipc <= 0.0 {
            return Err(StoreError::Corrupt("non-positive IPC"));
        }
        pos += 8;
        let total_insts = read_varint(&head, &mut pos)?;
        let chunk_bursts = read_varint(&head, &mut pos)?;
        if chunk_bursts == 0 || chunk_bursts > MAX_CHUNK_BURSTS as u64 {
            return Err(StoreError::Corrupt("chunk_bursts out of range"));
        }
        let header_len = pos as u64;

        // Validate every index record against the physical layout before
        // trusting any of its lengths.
        let mut index = Vec::with_capacity(chunk_count as usize);
        let mut expect_offset = header_len;
        let mut prev_vtime: Option<u64> = None;
        for i in 0..chunk_count as usize {
            let rec = ChunkRecord::decode(&index_bytes[i * 32..(i + 1) * 32]);
            if rec.offset != expect_offset {
                return Err(StoreError::Corrupt("chunks are not contiguous"));
            }
            if rec.bursts == 0 {
                return Err(StoreError::Corrupt("empty chunk"));
            }
            if u64::from(rec.bursts) > chunk_bursts {
                return Err(StoreError::Corrupt("chunk over-declares bursts"));
            }
            // Every burst costs ≥ 4 raw bytes — a declared count larger
            // than the raw bytes could hold is hostile.
            if u64::from(rec.raw_len) < u64::from(rec.bursts) * MIN_BURST_BYTES
                || u64::from(rec.raw_len) > u64::from(rec.bursts) * MAX_BURST_BYTES
            {
                return Err(StoreError::Corrupt("raw length inconsistent with bursts"));
            }
            if u64::from(rec.comp_len) > lz::max_compressed_len(rec.raw_len as usize) as u64 {
                return Err(StoreError::Corrupt("compressed length over-declared"));
            }
            match prev_vtime {
                None if rec.first_vtime != 0 => {
                    return Err(StoreError::Corrupt("first chunk must start at vtime 0"))
                }
                Some(prev) if rec.first_vtime <= prev => {
                    return Err(StoreError::Corrupt("chunk vtimes must increase"))
                }
                _ => {}
            }
            prev_vtime = Some(rec.first_vtime);
            expect_offset += u64::from(rec.comp_len);
            index.push(rec);
        }
        if expect_offset != index_offset {
            return Err(StoreError::Corrupt("chunk region does not reach the index"));
        }

        Ok(StreamingReader {
            src,
            meta: TraceMeta {
                name,
                ipc,
                total_insts,
            },
            chunk_bursts,
            index,
            packed_bytes: file_len,
            window: VecDeque::new(),
            window_chunks: window_chunks.max(1),
            cur_chunk: 0,
            cur_burst: 0,
            peak_resident: 0,
            decodes: 0,
        })
    }

    /// The trace metadata from the header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Container summary (chunk/burst counts, sizes).
    pub fn info(&self) -> ContainerInfo {
        ContainerInfo {
            meta: self.meta.clone(),
            chunks: self.index.len() as u64,
            bursts: self.index.iter().map(|r| u64::from(r.bursts)).sum(),
            chunk_bursts: self.chunk_bursts,
            raw_bytes: self.index.iter().map(|r| u64::from(r.raw_len)).sum(),
            packed_bytes: self.packed_bytes,
        }
    }

    /// The validated per-chunk index.
    pub fn index(&self) -> &[ChunkRecord] {
        &self.index
    }

    /// High-water mark of decoded bursts resident in the window — the
    /// memory bound the container exists to enforce.
    pub fn peak_resident_bursts(&self) -> usize {
        self.peak_resident
    }

    /// Chunk decompressions performed so far (sequential replay decodes
    /// each chunk exactly once).
    pub fn chunk_decodes(&self) -> u64 {
        self.decodes
    }

    /// Decodes chunk `ci` into the window (evicting LRU entries first so
    /// residency never exceeds `window_chunks`) and returns its bursts.
    fn chunk(&mut self, ci: usize) -> Result<&[Burst], StoreError> {
        if let Some(hit) = self.window.iter().position(|(i, _)| *i == ci) {
            // Move to the back: most recently used.
            let entry = self.window.remove(hit).expect("position just found");
            self.window.push_back(entry);
            return Ok(&self.window.back().expect("just pushed").1);
        }
        while self.window.len() >= self.window_chunks {
            self.window.pop_front();
        }
        let rec = self.index[ci];
        self.src.seek(SeekFrom::Start(rec.offset))?;
        let mut packed = vec![0u8; rec.comp_len as usize];
        self.src.read_exact(&mut packed)?;
        let raw = lz::decompress(&packed, rec.raw_len as usize).map_err(StoreError::Corrupt)?;
        if crc32(&raw) != rec.crc32 {
            return Err(StoreError::Corrupt("chunk checksum mismatch"));
        }
        let bursts = decode_chunk(&raw, rec.bursts)?;
        self.decodes += 1;
        self.window.push_back((ci, bursts));
        let resident: usize = self.window.iter().map(|(_, b)| b.len()).sum();
        self.peak_resident = self.peak_resident.max(resident);
        Ok(&self.window.back().expect("just pushed").1)
    }

    /// Yields the next burst, or `None` at end of trace.
    pub fn next_burst(&mut self) -> Result<Option<Burst>, StoreError> {
        loop {
            if self.cur_chunk >= self.index.len() {
                return Ok(None);
            }
            if self.cur_burst >= self.index[self.cur_chunk].bursts as usize {
                self.cur_chunk += 1;
                self.cur_burst = 0;
                continue;
            }
            let at = self.cur_burst;
            let b = self.chunk(self.cur_chunk)?[at];
            self.cur_burst += 1;
            return Ok(Some(b));
        }
    }

    /// Positions the cursor on the burst covering virtual instruction
    /// `target` — the same burst a skip-from-start would stop at — via a
    /// binary search of the index, decoding at most one chunk. Returns
    /// the start vtime of the burst now at the cursor (the cumulative
    /// `total_insts` of everything before it); for a `target` at or past
    /// the end of the trace the cursor lands on end-of-trace and the
    /// trace's total burst time is returned.
    pub fn seek_to_vtime(&mut self, target: u64) -> Result<u64, StoreError> {
        if self.index.is_empty() {
            self.cur_chunk = 0;
            self.cur_burst = 0;
            return Ok(0);
        }
        // Last chunk whose first burst starts at or before `target`.
        let mut ci = self.index.partition_point(|r| r.first_vtime <= target);
        ci = ci.saturating_sub(1);
        loop {
            let start = self.index[ci].first_vtime;
            let found = {
                let bursts = self.chunk(ci)?;
                let mut v = start;
                let mut hit = None;
                for (j, b) in bursts.iter().enumerate() {
                    let end = v + b.total_insts();
                    if end > target {
                        hit = Some((j, v));
                        break;
                    }
                    v = end;
                }
                hit.ok_or(v)
            };
            match found {
                Ok((j, v)) => {
                    self.cur_chunk = ci;
                    self.cur_burst = j;
                    return Ok(v);
                }
                Err(v) => {
                    ci += 1;
                    if ci >= self.index.len() {
                        // Past the last burst: park at end of trace.
                        self.cur_chunk = self.index.len();
                        self.cur_burst = 0;
                        return Ok(v);
                    }
                }
            }
        }
    }

    /// Converts into a plain `Iterator<Item = Burst>` for the engine's
    /// streaming entry points; a decode error ends the iteration and is
    /// retrievable from [`Bursts::error`] / [`Bursts::finish`].
    pub fn bursts(self) -> Bursts<R> {
        Bursts {
            reader: self,
            error: None,
        }
    }
}

/// Decodes one chunk's raw bytes into bursts, consuming the slice exactly.
fn decode_chunk(raw: &[u8], count: u32) -> Result<Vec<Burst>, StoreError> {
    let mut bursts = Vec::with_capacity(count as usize); // count ≤ raw_len/4, validated
    let mut pos = 0usize;
    for _ in 0..count {
        let gap = read_varint(raw, &mut pos)?;
        let events = read_varint(raw, &mut pos)?;
        let within = read_varint(raw, &mut pos)?;
        let op = *raw.get(pos).ok_or(StoreError::Corrupt("burst truncated"))?;
        pos += 1;
        let opcode = *Opcode::ALL
            .get(op as usize)
            .ok_or(StoreError::Corrupt("opcode index out of range"))?;
        if events == 0 || events > u64::from(u32::MAX) || within > u64::from(u32::MAX) {
            return Err(StoreError::Corrupt("invalid burst"));
        }
        if !opcode.is_faultable() {
            return Err(StoreError::Corrupt("non-faultable burst opcode"));
        }
        bursts.push(Burst::new(gap, events as u32, within as u32, opcode));
    }
    if pos != raw.len() {
        return Err(StoreError::Corrupt("trailing bytes in chunk"));
    }
    Ok(bursts)
}

/// Iterator adapter over a [`StreamingReader`].
pub struct Bursts<R: Read + Seek> {
    reader: StreamingReader<R>,
    error: Option<StoreError>,
}

impl<R: Read + Seek> Bursts<R> {
    /// The decode error that ended iteration early, if any.
    pub fn error(&self) -> Option<&StoreError> {
        self.error.as_ref()
    }

    /// Finishes the iteration: `Ok` if the stream ended cleanly, the
    /// decode error otherwise.
    pub fn finish(self) -> Result<StreamingReader<R>, StoreError> {
        match self.error {
            None => Ok(self.reader),
            Some(e) => Err(e),
        }
    }

    /// The underlying reader (for residency introspection mid-stream).
    pub fn reader(&self) -> &StreamingReader<R> {
        &self.reader
    }
}

impl<R: Read + Seek> Iterator for Bursts<R> {
    type Item = Burst;

    fn next(&mut self) -> Option<Burst> {
        if self.error.is_some() {
            return None;
        }
        match self.reader.next_burst() {
            Ok(b) => b,
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

/// Opens a container over an in-memory byte slice.
pub fn open_bytes(bytes: &[u8]) -> Result<StreamingReader<io::Cursor<&[u8]>>, StoreError> {
    StreamingReader::open(io::Cursor::new(bytes))
}

/// Fully decodes a container: metadata plus every burst. Memory is
/// O(trace) — this is the *unpack* path, not the streaming path.
pub fn read_all(bytes: &[u8]) -> Result<(TraceMeta, Vec<Burst>), StoreError> {
    let mut reader = open_bytes(bytes)?;
    let mut bursts = Vec::new();
    while let Some(b) = reader.next_burst()? {
        bursts.push(b);
    }
    Ok((reader.meta().clone(), bursts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use suit_trace::profile;
    use suit_trace::TraceGen;

    fn meta() -> TraceMeta {
        TraceMeta {
            name: "502.gcc".into(),
            ipc: 1.2,
            total_insts: 1_000_000_000,
        }
    }

    fn sample(n: usize) -> Vec<Burst> {
        // One generator run is finite (it stops at the profile's virtual
        // length); chain seeds so any requested count is available.
        let p = profile::by_name("502.gcc").unwrap();
        (0u64..)
            .flat_map(|s| TraceGen::new(p, 42 + s).collect::<Vec<_>>())
            .take(n)
            .collect()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let bursts = sample(10_000);
        let bytes = pack_to_vec(&meta(), bursts.iter().copied(), 512).unwrap();
        let (m, back) = read_all(&bytes).unwrap();
        assert_eq!(m, meta());
        assert_eq!(back, bursts);
    }

    #[test]
    fn pack_is_deterministic_and_compresses() {
        let bursts = sample(20_000);
        let a = pack_to_vec(&meta(), bursts.iter().copied(), 1024).unwrap();
        let b = pack_to_vec(&meta(), bursts.iter().copied(), 1024).unwrap();
        assert_eq!(a, b);
        let mut v1 = Vec::new();
        suit_trace::io::write_trace(&mut v1, &meta(), bursts).unwrap();
        assert!(
            a.len() < v1.len(),
            "packed {} bytes vs v1 {} bytes",
            a.len(),
            v1.len()
        );
    }

    #[test]
    fn empty_trace_roundtrips() {
        let bytes = pack_to_vec(&meta(), Vec::new(), 64).unwrap();
        let (m, back) = read_all(&bytes).unwrap();
        assert_eq!(m, meta());
        assert!(back.is_empty());
        let mut r = open_bytes(&bytes).unwrap();
        assert_eq!(r.seek_to_vtime(12345).unwrap(), 0);
        assert!(r.next_burst().unwrap().is_none());
    }

    #[test]
    fn window_bounds_resident_memory() {
        let bursts = sample(64 * 32);
        let bytes = pack_to_vec(&meta(), bursts.iter().copied(), 32).unwrap();
        let mut r = StreamingReader::with_window(io::Cursor::new(&bytes[..]), 2).unwrap();
        assert_eq!(r.info().chunks, 64);
        let mut n = 0;
        while let Some(b) = r.next_burst().unwrap() {
            assert_eq!(b, bursts[n]);
            n += 1;
        }
        assert_eq!(n, bursts.len());
        assert!(
            r.peak_resident_bursts() <= 2 * 32,
            "peak {} bursts",
            r.peak_resident_bursts()
        );
        // Sequential replay decodes each chunk exactly once.
        assert_eq!(r.chunk_decodes(), 64);
    }

    #[test]
    fn seek_matches_skip_from_start() {
        let bursts = sample(3_000);
        let bytes = pack_to_vec(&meta(), bursts.iter().copied(), 64).unwrap();
        let total: u64 = bursts.iter().map(|b| b.total_insts()).sum();
        // Start vtime of each burst, by definition of skip-from-start.
        let mut starts = Vec::with_capacity(bursts.len());
        let mut v = 0u64;
        for b in &bursts {
            starts.push(v);
            v += b.total_insts();
        }
        for target in [
            0u64,
            1,
            starts[1],
            starts[1] - 1,
            starts[1500],
            starts[1500] + 1,
            starts[2999],
            total - 1,
        ] {
            // Reference: linear scan for the burst covering `target`.
            let want = starts.partition_point(|&s| s <= target) - 1;
            let mut r = open_bytes(&bytes).unwrap();
            let v0 = r.seek_to_vtime(target).unwrap();
            assert_eq!(v0, starts[want], "target {target}");
            assert_eq!(
                r.next_burst().unwrap(),
                Some(bursts[want]),
                "target {target}"
            );
            // The remainder of the stream matches too.
            for b in &bursts[want + 1..want + 1 + 5.min(bursts.len() - want - 1)] {
                assert_eq!(r.next_burst().unwrap(), Some(*b));
            }
        }
        // Seeking at or past the end parks at end-of-trace.
        let mut r = open_bytes(&bytes).unwrap();
        assert_eq!(r.seek_to_vtime(total).unwrap(), total);
        assert!(r.next_burst().unwrap().is_none());
    }

    #[test]
    fn seek_then_rewind_still_works() {
        let bursts = sample(500);
        let bytes = pack_to_vec(&meta(), bursts.iter().copied(), 32).unwrap();
        let mut r = open_bytes(&bytes).unwrap();
        r.seek_to_vtime(u64::MAX).unwrap();
        assert_eq!(r.seek_to_vtime(0).unwrap(), 0);
        assert_eq!(r.next_burst().unwrap(), Some(bursts[0]));
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let bytes = pack_to_vec(&meta(), sample(100), 16).unwrap();
        let mut broken = bytes.clone();
        broken[0] = b'X';
        assert!(matches!(open_bytes(&broken), Err(StoreError::BadMagic)));
        for cut in [0, 7, 12, bytes.len() / 2, bytes.len() - 1] {
            assert!(open_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rejects_chunk_corruption_via_crc() {
        let bytes = pack_to_vec(&meta(), sample(1_000), 64).unwrap();
        let r = open_bytes(&bytes).unwrap();
        let first = r.index()[0];
        let mut broken = bytes.clone();
        broken[first.offset as usize] ^= 0x40;
        let mut r = open_bytes(&broken).unwrap(); // index still validates
        let err = loop {
            match r.next_burst() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("corrupt chunk must not decode cleanly"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, StoreError::Corrupt(_)), "{err}");
    }

    #[test]
    fn rejects_over_declared_counts_without_allocating() {
        // A hostile trailer claiming 2^31 chunks in a tiny file must be
        // rejected by the size equation before any allocation.
        let bytes = pack_to_vec(&meta(), sample(10), 4).unwrap();
        let mut broken = bytes.clone();
        let cc_at = bytes.len() - 12; // chunk_count field in the trailer
        broken[cc_at..cc_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(open_bytes(&broken), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn rejects_index_bit_flips() {
        let bytes = pack_to_vec(&meta(), sample(200), 16).unwrap();
        let r = open_bytes(&bytes).unwrap();
        let index_start = bytes.len() - 24 - r.index().len() * 32;
        drop(r);
        for at in (index_start..bytes.len() - 24).step_by(5) {
            let mut broken = bytes.clone();
            broken[at] ^= 0x01;
            assert!(
                open_bytes(&broken).is_err(),
                "index flip at {at} must be caught by the index CRC"
            );
        }
    }

    #[test]
    fn pack_rejects_bad_arguments() {
        assert!(matches!(
            pack_to_vec(&meta(), Vec::new(), 0),
            Err(StoreError::Invalid(_))
        ));
        let mut m = meta();
        m.ipc = f64::NAN;
        assert!(matches!(
            pack_to_vec(&m, Vec::new(), 64),
            Err(StoreError::Invalid(_))
        ));
        let mut m = meta();
        m.name = "x".repeat(5000);
        assert!(matches!(
            pack_to_vec(&m, Vec::new(), 64),
            Err(StoreError::Invalid(_))
        ));
    }

    #[test]
    fn bursts_iterator_reports_errors() {
        let bytes = pack_to_vec(&meta(), sample(1_000), 64).unwrap();
        let r = open_bytes(&bytes).unwrap();
        let last = *r.index().last().unwrap();
        let mut broken = bytes.clone();
        broken[(last.offset + u64::from(last.comp_len) - 1) as usize] ^= 0x10;
        let mut it = open_bytes(&broken).unwrap().bursts();
        let n = it.by_ref().count();
        assert!(n < 1_000, "corruption must cut the stream short");
        assert!(it.error().is_some());
        assert!(it.finish().is_err());
    }
}
