//! Emulation-cost microbenchmarks: the bit-sliced (side-channel resilient)
//! AES the paper prescribes vs. the table-based reference — the ablation
//! of DESIGN.md item 5 — plus the `#DO` emulation dispatcher itself.

use std::hint::black_box;
use suit_bench::harness::bench_with_throughput;
use suit_emu::aes::{bitsliced, reference, Aes128Key};
use suit_emu::{emulate, EmuOperands};
use suit_isa::{Opcode, Vec128};

fn bench_aes() {
    let key = Aes128Key::expand([0x42; 16]);
    let block = Vec128::from_u128(0x0123_4567_89ab_cdef_0011_2233_4455_6677);
    let rk = key.round_key(5);

    println!("# aes_round");
    bench_with_throughput("aesenc_reference_table", Some(1), || {
        reference::aesenc(black_box(block), black_box(rk))
    });
    bench_with_throughput("aesenc_bitsliced_single", Some(1), || {
        bitsliced::aesenc(black_box(block), black_box(rk))
    });

    println!("# aes_round_x4");
    let blocks = [block; 4];
    bench_with_throughput("aesenc_bitsliced_x4", Some(4), || {
        bitsliced::aesenc4(black_box(blocks), black_box(rk))
    });

    println!("# aes_block (16 bytes each)");
    bench_with_throughput("encrypt128_reference", Some(16), || {
        reference::encrypt128(&key, black_box(block))
    });
    bench_with_throughput("encrypt128_bitsliced", Some(16), || {
        bitsliced::encrypt128(&key, black_box(block))
    });
}

fn bench_dispatcher() {
    let a = Vec128::from_u128(0xdead_beef);
    let b2 = Vec128::from_u128(0x1234_5678);
    println!("# do_emulation_dispatch");
    for op in [
        Opcode::Vor,
        Opcode::Vpclmulqdq,
        Opcode::Aesenc,
        Opcode::Imul,
    ] {
        bench_with_throughput(&format!("{op}"), Some(1), || {
            emulate(black_box(op), EmuOperands::new(black_box(a), black_box(b2)))
        });
    }
}

fn main() {
    bench_aes();
    bench_dispatcher();
}
