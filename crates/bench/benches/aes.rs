//! Emulation-cost microbenchmarks: the bit-sliced (side-channel resilient)
//! AES the paper prescribes vs. the table-based reference — the ablation
//! of DESIGN.md item 5 — plus the `#DO` emulation dispatcher itself.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use suit_emu::aes::{bitsliced, reference, Aes128Key};
use suit_emu::{emulate, EmuOperands};
use suit_isa::{Opcode, Vec128};

fn bench_aes(c: &mut Criterion) {
    let key = Aes128Key::expand([0x42; 16]);
    let block = Vec128::from_u128(0x0123_4567_89ab_cdef_0011_2233_4455_6677);
    let rk = key.round_key(5);

    let mut g = c.benchmark_group("aes_round");
    g.throughput(Throughput::Elements(1));
    g.bench_function("aesenc_reference_table", |b| {
        b.iter(|| black_box(reference::aesenc(black_box(block), black_box(rk))))
    });
    g.bench_function("aesenc_bitsliced_single", |b| {
        b.iter(|| black_box(bitsliced::aesenc(black_box(block), black_box(rk))))
    });
    g.finish();

    let mut g = c.benchmark_group("aes_round_x4");
    g.throughput(Throughput::Elements(4));
    let blocks = [block; 4];
    g.bench_function("aesenc_bitsliced_x4", |b| {
        b.iter(|| black_box(bitsliced::aesenc4(black_box(blocks), black_box(rk))))
    });
    g.finish();

    let mut g = c.benchmark_group("aes_block");
    g.throughput(Throughput::Bytes(16));
    g.bench_function("encrypt128_reference", |b| {
        b.iter(|| black_box(reference::encrypt128(&key, black_box(block))))
    });
    g.bench_function("encrypt128_bitsliced", |b| {
        b.iter(|| black_box(bitsliced::encrypt128(&key, black_box(block))))
    });
    g.finish();
}

fn bench_dispatcher(c: &mut Criterion) {
    let a = Vec128::from_u128(0xdead_beef);
    let b2 = Vec128::from_u128(0x1234_5678);
    let mut g = c.benchmark_group("do_emulation_dispatch");
    for op in [Opcode::Vor, Opcode::Vpclmulqdq, Opcode::Aesenc, Opcode::Imul] {
        g.bench_function(format!("{op}"), |b| {
            b.iter(|| emulate(black_box(op), EmuOperands::new(black_box(a), black_box(b2))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_aes, bench_dispatcher);
criterion_main!(benches);
