//! Simulator throughput benchmarks: the event-based system simulator, the
//! trace generator, and the out-of-order core model.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use suit_hw::{CpuModel, UndervoltLevel};
use suit_ooo::config::O3Config;
use suit_ooo::core::O3Core;
use suit_ooo::workload::{by_name, UopStream};
use suit_sim::engine::{simulate, SimConfig};
use suit_trace::{profile, TraceGen};

fn bench_engine(c: &mut Criterion) {
    let cpu = CpuModel::xeon_4208();
    let mut g = c.benchmark_group("trace_engine");
    g.sample_size(20);
    for name in ["557.xz", "502.gcc", "520.omnetpp", "Nginx"] {
        let p = profile::by_name(name).unwrap();
        let cfg = SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(500_000_000);
        g.throughput(Throughput::Elements(500_000_000));
        g.bench_function(format!("fv_{name}"), |b| {
            b.iter(|| black_box(simulate(&cpu, p, &cfg)))
        });
    }
    g.finish();
}

fn bench_tracegen(c: &mut Criterion) {
    let p = profile::by_name("502.gcc").unwrap();
    let mut g = c.benchmark_group("trace_generation");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("gcc_10k_bursts", |b| {
        b.iter(|| {
            let gen = TraceGen::new(p, 1);
            black_box(gen.take(10_000).map(|b| b.gap_insts).sum::<u64>())
        })
    });
    g.finish();
}

fn bench_ooo(c: &mut Criterion) {
    let mut g = c.benchmark_group("ooo_core");
    g.sample_size(10);
    g.throughput(Throughput::Elements(200_000));
    for name in ["525.x264", "505.mcf"] {
        let p = by_name(name).unwrap();
        g.bench_function(format!("o3_{name}_200k_uops"), |b| {
            b.iter(|| {
                let mut core = O3Core::new(O3Config::default());
                black_box(core.run(UopStream::new(p.clone(), 1), 200_000))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine, bench_tracegen, bench_ooo);
criterion_main!(benches);
