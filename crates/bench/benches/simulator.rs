//! Simulator throughput benchmarks: the event-based system simulator, the
//! trace generator, and the out-of-order core model.

use std::hint::black_box;
use suit_bench::harness::bench_with_throughput;
use suit_hw::{CpuModel, UndervoltLevel};
use suit_ooo::config::O3Config;
use suit_ooo::core::O3Core;
use suit_ooo::workload::{by_name, UopStream};
use suit_sim::engine::{simulate, SimConfig};
use suit_trace::{profile, TraceGen};

fn bench_engine() {
    let cpu = CpuModel::xeon_4208();
    println!("# trace_engine (500M simulated instructions per iteration)");
    for name in ["557.xz", "502.gcc", "520.omnetpp", "Nginx"] {
        let p = profile::by_name(name).unwrap();
        let cfg = SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(500_000_000);
        bench_with_throughput(&format!("fv_{name}"), Some(500_000_000), || {
            simulate(&cpu, p, &cfg)
        });
    }
}

fn bench_tracegen() {
    let p = profile::by_name("502.gcc").unwrap();
    println!("# trace_generation");
    bench_with_throughput("gcc_10k_bursts", Some(10_000), || {
        let gen = TraceGen::new(p, 1);
        black_box(gen.take(10_000).map(|b| b.gap_insts).sum::<u64>())
    });
}

fn bench_ooo() {
    println!("# ooo_core (200k uops per iteration)");
    for name in ["525.x264", "505.mcf"] {
        let p = by_name(name).unwrap();
        bench_with_throughput(&format!("o3_{name}_200k_uops"), Some(200_000), || {
            let mut core = O3Core::new(O3Config::default());
            black_box(core.run(UopStream::new(p.clone(), 1), 200_000))
        });
    }
}

fn main() {
    bench_engine();
    bench_tracegen();
    bench_ooo();
}
