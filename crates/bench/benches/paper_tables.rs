//! Wall-clock benches, one per paper table/figure: each benchmark
//! regenerates the experiment (with a reduced instruction cap so a full
//! `cargo bench` stays in minutes) and reports how long regeneration takes
//! on the in-tree median-of-K harness.

use suit_bench::harness::bench;
use suit_exec::Threads;
use suit_hw::UndervoltLevel;

const CAP: Option<u64> = Some(200_000_000);
// Wall-clock benches measure the work, not the fan-out: one worker.
const SERIAL: Threads = Threads::Fixed(1);

fn bench_tables() {
    println!("# paper_tables");
    bench("table1_fault_campaign", suit_bench::tables::table1);
    bench("table2_undervolt_response", suit_bench::tables::table2);
    bench("table3_temperature_guardband", suit_bench::tables::table3);
    bench("table4_no_simd", suit_bench::tables::table4);
    bench("table5_system_config", suit_bench::tables::table5);
    bench("table6_headline_97mv", || {
        suit_bench::tables::table6(UndervoltLevel::Mv97, CAP, SERIAL)
    });
    bench("table7_parameter_sweep", || {
        suit_bench::tables::table7(Some(50_000_000), SERIAL)
    });
    bench("table8_no_simd_wins", || {
        suit_bench::tables::table8(CAP, SERIAL)
    });
}

fn bench_figures() {
    println!("# paper_figures");
    bench("fig5_burst_reaction", || suit_bench::figs::fig5(CAP));
    bench("fig6_fv_sequence", suit_bench::figs::fig6);
    bench("fig7_gap_timeline", suit_bench::figs::fig7);
    bench("fig8_voltage_settle", suit_bench::figs::fig8);
    bench("fig9_freq_settle_intel", suit_bench::figs::fig9);
    bench("fig10_freq_settle_amd", suit_bench::figs::fig10);
    bench("fig11_pstate_change", suit_bench::figs::fig11);
    bench("fig12_undervolt_sweep", suit_bench::figs::fig12);
    bench("fig13_fv_pairs", suit_bench::figs::fig13);
    bench("fig14_imul_latency", || suit_bench::figs::fig14(50_000));
    bench("fig16_per_benchmark", || {
        suit_bench::figs::fig16(CAP, SERIAL)
    });
}

fn main() {
    bench_tables();
    bench_figures();
}
