//! Criterion benches, one group per paper table/figure: each benchmark
//! regenerates the experiment (with a reduced instruction cap so a full
//! `cargo bench` stays in minutes) and reports how long regeneration takes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use suit_hw::UndervoltLevel;

const CAP: Option<u64> = Some(200_000_000);

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_tables");
    g.sample_size(10);
    g.bench_function("table1_fault_campaign", |b| {
        b.iter(|| black_box(suit_bench::tables::table1()))
    });
    g.bench_function("table2_undervolt_response", |b| {
        b.iter(|| black_box(suit_bench::tables::table2()))
    });
    g.bench_function("table3_temperature_guardband", |b| {
        b.iter(|| black_box(suit_bench::tables::table3()))
    });
    g.bench_function("table4_no_simd", |b| {
        b.iter(|| black_box(suit_bench::tables::table4()))
    });
    g.bench_function("table5_system_config", |b| {
        b.iter(|| black_box(suit_bench::tables::table5()))
    });
    g.bench_function("table6_headline_97mv", |b| {
        b.iter(|| black_box(suit_bench::tables::table6(UndervoltLevel::Mv97, CAP)))
    });
    g.bench_function("table7_parameter_sweep", |b| {
        b.iter(|| black_box(suit_bench::tables::table7(Some(50_000_000))))
    });
    g.bench_function("table8_no_simd_wins", |b| {
        b.iter(|| black_box(suit_bench::tables::table8(CAP)))
    });
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_figures");
    g.sample_size(10);
    g.bench_function("fig5_burst_reaction", |b| {
        b.iter(|| black_box(suit_bench::figs::fig5(CAP)))
    });
    g.bench_function("fig6_fv_sequence", |b| b.iter(|| black_box(suit_bench::figs::fig6())));
    g.bench_function("fig7_gap_timeline", |b| b.iter(|| black_box(suit_bench::figs::fig7())));
    g.bench_function("fig8_voltage_settle", |b| b.iter(|| black_box(suit_bench::figs::fig8())));
    g.bench_function("fig9_freq_settle_intel", |b| {
        b.iter(|| black_box(suit_bench::figs::fig9()))
    });
    g.bench_function("fig10_freq_settle_amd", |b| {
        b.iter(|| black_box(suit_bench::figs::fig10()))
    });
    g.bench_function("fig11_pstate_change", |b| b.iter(|| black_box(suit_bench::figs::fig11())));
    g.bench_function("fig12_undervolt_sweep", |b| {
        b.iter(|| black_box(suit_bench::figs::fig12()))
    });
    g.bench_function("fig13_fv_pairs", |b| b.iter(|| black_box(suit_bench::figs::fig13())));
    g.bench_function("fig14_imul_latency", |b| {
        b.iter(|| black_box(suit_bench::figs::fig14(50_000)))
    });
    g.bench_function("fig16_per_benchmark", |b| {
        b.iter(|| black_box(suit_bench::figs::fig16(CAP)))
    });
    g.finish();
}

criterion_group!(benches, bench_tables, bench_figures);
criterion_main!(benches);
