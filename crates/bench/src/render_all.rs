//! The parallel render-all driver: one run that regenerates the complete
//! EXPERIMENTS.md artefact set and all committed `BENCH_*.json` files.
//!
//! Every table and figure regenerator (the same library calls behind the
//! `table1` … `fig16` binaries) becomes one *job*; the jobs fan out over
//! the [`suit_exec`] executor at the caller's `--threads`, each job
//! rendering with a single-threaded inner executor so the outer driver
//! owns all parallelism. Rendering is a pure function of the models, so
//! the artefacts are byte-identical at every worker count.
//!
//! The performance benches (`engine_hotpath`, `fleet_throughput`,
//! `trace_replay`, `scenario_sweep`) then run **serially after** the
//! render fan-out: timings must not share the machine with other jobs,
//! or the medians would measure scheduler contention instead of the
//! code.

use std::path::{Path, PathBuf};

use suit_exec::Threads;
use suit_hw::UndervoltLevel;

use crate::perf::{self, PerfOpts};
use crate::{ablation, emit, figs, tables};

/// The committed benchmark baselines, with the bench name each must
/// carry — the contract [`check_bench_files`] enforces.
pub const BENCH_FILES: [(&str, &str); 4] = [
    ("BENCH_engine.json", "engine_hotpath"),
    ("BENCH_fleet.json", "fleet_throughput"),
    ("BENCH_trace_replay.json", "trace_replay"),
    ("BENCH_scenarios.json", "scenario_sweep"),
];

/// Options for one render-all run.
#[derive(Debug, Clone)]
pub struct RenderAllOpts {
    /// Directory the rendered text artefacts are written into.
    pub out_dir: PathBuf,
    /// Directory the `BENCH_*.json` files are written into — the
    /// repository root for baseline regeneration, the artefact directory
    /// in `--test` mode so CI never dirties committed baselines.
    pub bench_dir: PathBuf,
    /// Per-workload instruction cap for the sweeping tables.
    pub cap: Option<u64>,
    /// Outer fan-out worker count.
    pub threads: Threads,
    /// CI mode: shrink the scenarios and assert the perf sanity bounds.
    pub test_mode: bool,
}

/// Validates every committed `BENCH_*.json` against the shared emitter
/// schema ([`emit::validate`]), including the bench name each file must
/// declare. Returns the per-file report lines, or the first failure —
/// which is how CI fails the build when a schema change lands without
/// regenerated baselines.
pub fn check_bench_files(dir: &Path) -> Result<Vec<String>, String> {
    let mut report = Vec::new();
    for (file, bench) in BENCH_FILES {
        let path = dir.join(file);
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("{file}: cannot read committed baseline: {e}"))?;
        emit::validate(&src, Some(bench)).map_err(|e| format!("{file}: {e}"))?;
        report.push(format!("{file}: ok ({bench})"));
    }
    Ok(report)
}

type Job = (&'static str, Box<dyn Fn() -> String + Sync>);

/// The job list: every EXPERIMENTS.md table and figure, rendered through
/// the same library functions as the standalone binaries. Inner sweeps
/// run single-threaded — the outer driver owns the parallelism.
fn jobs(cap: Option<u64>, test_mode: bool) -> Vec<Job> {
    let t1 = Threads::Fixed(1);
    let fig14_uops: u64 = if test_mode { 100_000 } else { 400_000 };
    let (chips, insts) = if test_mode { (8, 1_000) } else { (20, 5_000) };
    vec![
        ("table1", Box::new(|| tables::table1().to_string())),
        ("table2", Box::new(|| tables::table2().to_string())),
        ("table3", Box::new(|| tables::table3().to_string())),
        ("table4", Box::new(|| tables::table4().to_string())),
        ("table5", Box::new(|| tables::table5().to_string())),
        (
            "table6",
            Box::new(move || {
                UndervoltLevel::ALL
                    .iter()
                    .map(|&level| tables::table6(level, cap, t1).to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            }),
        ),
        (
            "table7",
            Box::new(move || tables::table7(cap, t1).to_string()),
        ),
        (
            "table8",
            Box::new(move || tables::table8(cap, t1).to_string()),
        ),
        (
            "residency",
            Box::new(move || tables::residency(cap, t1).to_string()),
        ),
        ("delays", Box::new(|| tables::delays().to_string())),
        (
            "security",
            Box::new(move || tables::security_report(chips, insts).to_string()),
        ),
        ("fig5", Box::new(move || figs::fig5(cap).to_string())),
        ("fig6", Box::new(|| figs::fig6().to_string())),
        ("fig7", Box::new(|| figs::fig7().to_string())),
        ("fig8", Box::new(|| figs::fig8().to_string())),
        ("fig9", Box::new(|| figs::fig9().to_string())),
        ("fig10", Box::new(|| figs::fig10().to_string())),
        ("fig11", Box::new(|| figs::fig11().to_string())),
        ("fig12", Box::new(|| figs::fig12().to_string())),
        ("fig13", Box::new(|| figs::fig13().to_string())),
        (
            "fig14",
            Box::new(move || figs::fig14(fig14_uops).to_string()),
        ),
        ("fig16", Box::new(move || figs::fig16(cap, t1).to_string())),
        (
            "ablations",
            Box::new(move || {
                [
                    ablation::thrash_prevention(cap, t1),
                    ablation::strategies(cap, t1),
                    ablation::imul_hardening(cap, t1),
                    ablation::noisy_neighbor(cap, t1),
                ]
                .map(|t| t.to_string())
                .join("\n")
            }),
        ),
    ]
}

/// Runs the full driver: fans the render jobs out, writes one
/// `<out_dir>/<id>.txt` per artefact plus an `INDEX.txt`, then runs the
/// perf benches serially, writing `BENCH_*.json` into `bench_dir`.
pub fn render_all(opts: &RenderAllOpts) {
    let jobs = jobs(opts.cap, opts.test_mode);
    println!(
        "render_all: {} artefacts over {} worker(s), then {} serial perf benches\n",
        jobs.len(),
        opts.threads.count().min(jobs.len()),
        BENCH_FILES.len()
    );

    let rendered: Vec<(&'static str, String)> =
        suit_exec::run(jobs.len(), opts.threads, |i| (jobs[i].0, (jobs[i].1)()));

    std::fs::create_dir_all(&opts.out_dir).expect("create artefact directory");
    let mut index = String::from("EXPERIMENTS.md artefact set, one file per regenerator:\n");
    for (name, text) in &rendered {
        let path = opts.out_dir.join(format!("{name}.txt"));
        std::fs::write(&path, text).expect("write artefact");
        index.push_str(&format!("  {name}.txt\n"));
        println!("wrote {}", path.display());
    }
    for (file, _) in BENCH_FILES {
        index.push_str(&format!("  {file} (perf baseline)\n"));
    }
    std::fs::write(opts.out_dir.join("INDEX.txt"), index).expect("write index");

    // Serial perf phase: the medians must not time other jobs' cache and
    // scheduler pressure.
    std::fs::create_dir_all(&opts.bench_dir).expect("create bench directory");
    for (file, _) in BENCH_FILES {
        let popts = PerfOpts {
            test_mode: opts.test_mode,
            json_path: Some(opts.bench_dir.join(file).to_string_lossy().into_owned()),
        };
        println!();
        match file {
            "BENCH_engine.json" => perf::engine_hotpath(&popts),
            "BENCH_fleet.json" => perf::fleet_throughput(&popts),
            "BENCH_trace_replay.json" => perf::trace_replay(&popts),
            "BENCH_scenarios.json" => perf::scenario_sweep(&popts),
            other => unreachable!("no perf bench registered for {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::{BenchDoc, Val};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("suit-render-all-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_doc(dir: &Path, file: &str, bench: &str) {
        let mut d = BenchDoc::new(bench);
        d.config("k", Val::U64(1));
        d.metric("main", "median_ms", Val::F64(1.0, 3));
        d.write(&dir.join(file).to_string_lossy());
    }

    #[test]
    fn check_accepts_schema_valid_baselines() {
        let dir = tmp_dir("ok");
        for (file, bench) in BENCH_FILES {
            write_doc(&dir, file, bench);
        }
        let report = check_bench_files(&dir).expect("all valid");
        assert_eq!(report.len(), BENCH_FILES.len());
    }

    #[test]
    fn check_rejects_stale_and_misnamed_baselines() {
        let dir = tmp_dir("stale");
        // Missing file.
        assert!(check_bench_files(&dir).is_err());
        for (file, bench) in BENCH_FILES {
            write_doc(&dir, file, bench);
        }
        // Pre-schema shape (no schema_version) is stale.
        std::fs::write(
            dir.join(BENCH_FILES[0].0),
            r#"{"bench": "engine_hotpath", "results": {}}"#,
        )
        .unwrap();
        assert!(check_bench_files(&dir)
            .unwrap_err()
            .contains("schema_version"));
        // Wrong bench name in the right envelope is also rejected.
        write_doc(&dir, BENCH_FILES[0].0, "something_else");
        assert!(check_bench_files(&dir).is_err());
    }

    #[test]
    fn job_list_covers_the_experiments_set() {
        let names: Vec<&str> = jobs(Some(1), true).iter().map(|(n, _)| *n).collect();
        for expect in [
            "table1",
            "table6",
            "table8",
            "fig5",
            "fig14",
            "fig16",
            "residency",
            "delays",
            "security",
            "ablations",
        ] {
            assert!(names.contains(&expect), "missing artefact job {expect}");
        }
        assert!(names.len() >= 23, "artefact set shrank: {}", names.len());
    }
}
