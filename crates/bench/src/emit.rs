//! The one shared `BENCH_*.json` emitter.
//!
//! Every committed benchmark baseline in the repository root
//! (`BENCH_engine.json`, `BENCH_fleet.json`, `BENCH_trace_replay.json`)
//! is written through [`BenchDoc`], so all of them share one schema:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "bench": "<name>",
//!   "config": { "<scalar or string>": ... },
//!   "results": { "<section>": { "median_ms": ..., "<rate>": ... } }
//! }
//! ```
//!
//! `config` holds the fixed scenario knobs (workload, sizes, seeds);
//! `results` holds one object per measured section, each with at least a
//! median. The rendered document is round-tripped through the in-tree
//! JSON parser (`suit_telemetry::json`) and schema-checked **before** it
//! is written, so a malformed emitter can never commit a malformed
//! baseline. [`validate`] is the same check over an already-written file
//! — CI runs it over every committed `BENCH_*.json` so a schema change
//! without regenerated baselines fails the build.

use std::fmt::Write as _;

use suit_telemetry::json::{self, Value};

/// Current schema version of the committed `BENCH_*.json` documents.
/// Bump it when the envelope shape changes; CI then forces the committed
/// baselines to be regenerated.
pub const SCHEMA_VERSION: u64 = 1;

/// One scalar value in a bench document.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// An exact integer (counts, byte sizes, seeds).
    U64(u64),
    /// A float rendered with the given number of decimals.
    F64(f64, usize),
    /// A string (workload names, mode labels).
    Str(String),
}

impl Val {
    fn render(&self) -> String {
        match self {
            Val::U64(v) => format!("{v}"),
            Val::F64(v, p) => {
                assert!(v.is_finite(), "bench metrics must be finite: {v}");
                format!("{v:.p$}", p = *p)
            }
            Val::Str(s) => json::escape(s),
        }
    }
}

fn render_obj(out: &mut String, indent: &str, fields: &[(String, Val)]) {
    out.push_str("{\n");
    for (i, (k, v)) in fields.iter().enumerate() {
        let comma = if i + 1 == fields.len() { "" } else { "," };
        let _ = writeln!(out, "{indent}  {}: {}{comma}", json::escape(k), v.render());
    }
    let _ = write!(out, "{indent}}}");
}

/// A benchmark document under construction: name, config scalars, and
/// named result sections, each a flat object of metrics.
#[derive(Debug, Clone, Default)]
pub struct BenchDoc {
    name: String,
    config: Vec<(String, Val)>,
    sections: Vec<(String, Vec<(String, Val)>)>,
}

impl BenchDoc {
    /// Starts a document for benchmark `name`.
    pub fn new(name: &str) -> Self {
        BenchDoc {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Adds (or replaces) a config scalar.
    pub fn config(&mut self, key: &str, value: Val) -> &mut Self {
        self.config.retain(|(k, _)| k != key);
        self.config.push((key.to_string(), value));
        self
    }

    /// Adds a metric to result section `section` (created on first use;
    /// an existing key in the section is replaced).
    pub fn metric(&mut self, section: &str, key: &str, value: Val) -> &mut Self {
        let sec = match self.sections.iter_mut().find(|(s, _)| s == section) {
            Some((_, fields)) => fields,
            None => {
                self.sections.push((section.to_string(), Vec::new()));
                &mut self.sections.last_mut().expect("just pushed").1
            }
        };
        sec.retain(|(k, _)| k != key);
        sec.push((key.to_string(), value));
        self
    }

    /// Copies every metric of `fields` into section `section` — used to
    /// carry a previously committed baseline section forward verbatim.
    pub fn section_from(&mut self, section: &str, fields: &[(String, Val)]) -> &mut Self {
        for (k, v) in fields {
            self.metric(section, k, v.clone());
        }
        self
    }

    /// Renders the document. Key order is insertion order, so reruns of
    /// the same emitter produce byte-identical files.
    pub fn render(&self) -> String {
        assert!(!self.sections.is_empty(), "bench doc needs >= 1 section");
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"bench\": {},", json::escape(&self.name));
        out.push_str("  \"config\": ");
        render_obj(&mut out, "  ", &self.config);
        out.push_str(",\n  \"results\": {\n");
        for (i, (sec, fields)) in self.sections.iter().enumerate() {
            let _ = write!(out, "    {}: ", json::escape(sec));
            render_obj(&mut out, "    ", fields);
            out.push_str(if i + 1 == self.sections.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Renders, validates against the schema with the in-tree JSON
    /// parser, and writes to `path`. Panics (rather than committing a
    /// bad baseline) if the document does not round-trip.
    pub fn write(&self, path: &str) {
        let doc = self.render();
        validate(&doc, Some(&self.name)).expect("emitter produced a schema-invalid document");
        std::fs::write(path, &doc).expect("write bench JSON");
        println!("wrote {path}");
    }
}

/// Parses a section of an already-validated document back into `(key,
/// value)` pairs, preserving exact integer/float/string rendering where
/// possible — used to carry a committed baseline forward.
pub fn read_section(doc_src: &str, section: &str) -> Option<Vec<(String, Val)>> {
    let v = json::parse(doc_src).ok()?;
    let results = v.get("results")?;
    let sec = results.get(section)?;
    let fields = match sec {
        Value::Obj(fields) => fields,
        _ => return None,
    };
    Some(
        fields
            .iter()
            .filter_map(|(k, v)| {
                let val = match v {
                    Value::Num(n) if n.fract() == 0.0 && n.abs() < 9e15 && *n >= 0.0 => {
                        Val::U64(*n as u64)
                    }
                    Value::Num(n) => Val::F64(*n, 3),
                    Value::Str(s) => Val::Str(s.clone()),
                    _ => return None,
                };
                Some((k.clone(), val))
            })
            .collect(),
    )
}

/// Schema check for a rendered or committed `BENCH_*.json`: parses with
/// the in-tree JSON parser and requires the shared envelope —
/// `schema_version == `[`SCHEMA_VERSION`], a `bench` name (matching
/// `expect_bench` when given), a `config` object, and a non-empty
/// `results` object whose sections each carry a finite `median_ms` or
/// `median_ns`.
pub fn validate(doc_src: &str, expect_bench: Option<&str>) -> Result<(), String> {
    let v = json::parse(doc_src).map_err(|e| format!("not valid JSON: {e}"))?;
    let ver = v
        .get("schema_version")
        .and_then(Value::as_f64)
        .ok_or("missing schema_version (stale pre-schema baseline?)")?;
    if ver != SCHEMA_VERSION as f64 {
        return Err(format!(
            "schema_version {ver} != current {SCHEMA_VERSION}: regenerate the baseline"
        ));
    }
    let bench = v
        .get("bench")
        .and_then(Value::as_str)
        .ok_or("missing bench name")?;
    if let Some(expect) = expect_bench {
        if bench != expect {
            return Err(format!("bench \"{bench}\" != expected \"{expect}\""));
        }
    }
    match v.get("config") {
        Some(Value::Obj(_)) => {}
        _ => return Err("missing config object".into()),
    }
    let results = match v.get("results") {
        Some(Value::Obj(sections)) if !sections.is_empty() => sections,
        Some(Value::Obj(_)) => return Err("results object is empty".into()),
        _ => return Err("missing results object".into()),
    };
    for (name, sec) in results {
        let fields = match sec {
            Value::Obj(fields) => fields,
            _ => return Err(format!("results.{name} is not an object")),
        };
        let median = fields
            .iter()
            .find(|(k, _)| k == "median_ms" || k == "median_ns")
            .and_then(|(_, v)| v.as_f64());
        match median {
            Some(m) if m.is_finite() && m >= 0.0 => {}
            _ => return Err(format!("results.{name} lacks a finite median_ms/median_ns")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchDoc {
        let mut d = BenchDoc::new("unit");
        d.config("workload", Val::Str("502.gcc".into()));
        d.config("insts", Val::U64(1000));
        d.metric("main", "median_ms", Val::F64(1.25, 3));
        d.metric("main", "rate_per_s", Val::F64(800.0, 1));
        d
    }

    #[test]
    fn rendered_doc_validates_and_roundtrips() {
        let doc = sample().render();
        validate(&doc, Some("unit")).unwrap();
        validate(&doc, None).unwrap();
        assert!(validate(&doc, Some("other")).is_err());
        // Byte-stable across reruns.
        assert_eq!(doc, sample().render());
    }

    #[test]
    fn stale_documents_are_rejected() {
        // The pre-schema shape (no schema_version) must fail.
        assert!(validate(r#"{"bench": "fleet", "serial": {}}"#, None)
            .unwrap_err()
            .contains("schema_version"));
        // A wrong version must fail.
        let doc = sample().render().replace(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            "\"schema_version\": 999",
        );
        assert!(validate(&doc, None).unwrap_err().contains("regenerate"));
        // A section without a median must fail.
        let mut d = BenchDoc::new("x");
        d.metric("s", "rate", Val::U64(3));
        assert!(validate(&d.render(), None).is_err());
    }

    #[test]
    fn sections_carry_forward() {
        let doc = sample().render();
        let fields = read_section(&doc, "main").expect("section exists");
        let mut d2 = BenchDoc::new("unit");
        d2.config("workload", Val::Str("502.gcc".into()));
        d2.config("insts", Val::U64(1000));
        d2.section_from("baseline", &fields);
        d2.metric("current", "median_ms", Val::F64(0.5, 3));
        let doc2 = d2.render();
        validate(&doc2, Some("unit")).unwrap();
        assert!(doc2.contains("\"baseline\""));
        // Whole-valued floats may re-render as integers; the JSON value
        // is identical either way.
        assert!(doc2.contains("\"rate_per_s\": 800"));
        assert!(read_section(&doc, "nope").is_none());
    }
}
