//! # suit-bench
//!
//! The experiment harness: one function (and one binary) per table and
//! figure of the SUIT paper's evaluation, regenerating the same rows and
//! series from this repository's models and simulators.
//!
//! Run any experiment with `cargo run --release -p suit-bench --bin <id>`
//! where `<id>` is `table1` … `table8`, `fig5` … `fig16`, `delays`,
//! `residency` or `security`. Binaries accept `--full` to run the
//! uncapped 2 × 10¹⁰-instruction virtual traces (the default caps at
//! 4 × 10⁹, which reproduces the same shapes in seconds).
//!
//! `EXPERIMENTS.md` at the repository root records paper-vs-measured for
//! every experiment here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod emit;
pub mod figs;
pub mod harness;
pub mod perf;
pub mod render;
pub mod render_all;
pub mod tables;

pub use render::TextTable;

/// Default per-workload instruction cap for the quick (non-`--full`) mode.
pub const QUICK_CAP: u64 = 4_000_000_000;

/// Parses the conventional binary arguments: `--full` lifts the cap.
pub fn cap_from_args() -> Option<u64> {
    if std::env::args().any(|a| a == "--full") {
        None
    } else {
        Some(QUICK_CAP)
    }
}

/// Parses the conventional `--threads N` flag into an executor policy
/// for the sweeping binaries. Absent, every core is used
/// ([`suit_exec::Threads::Auto`]); results are byte-identical at every
/// worker count, so the flag only trades wall-clock. Zero or junk values
/// print the same `error: …` + usage shape as `suit-cli` and exit with
/// status 2, so every binary in the workspace rejects a bad `--threads`
/// identically.
pub fn threads_from_args() -> suit_exec::Threads {
    let mut args = std::env::args();
    let bin = args.next().unwrap_or_else(|| "bench".into());
    while let Some(a) = args.next() {
        if a == "--threads" {
            let raw = args.next().unwrap_or_default();
            return suit_exec::Threads::parse(&raw).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                eprintln!("usage: {bin} [--full] [--threads N] [--telemetry]");
                std::process::exit(2);
            });
        }
    }
    suit_exec::Threads::Auto
}

/// Parses the conventional `--telemetry` flag: when present, returns a
/// recording handle whose summary the binary prints after its table;
/// otherwise the no-op handle (one predicted branch per hook).
pub fn telemetry_from_args() -> suit_telemetry::Telemetry {
    if std::env::args().any(|a| a == "--telemetry") {
        suit_telemetry::Telemetry::recording()
    } else {
        suit_telemetry::Telemetry::off()
    }
}
