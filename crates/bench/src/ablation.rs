//! Ablation studies for the design choices DESIGN.md calls out.

use suit_core::strategy::StrategyParams;
use suit_core::OperatingStrategy;
use suit_exec::Threads;
use suit_hw::{CpuModel, UndervoltLevel};
use suit_isa::Opcode;
use suit_sim::engine::{simulate, simulate_mixed, SimConfig};
use suit_trace::profile::{self, OpcodeMix, WorkloadProfile};

use crate::render::{pct, TextTable};

/// Ablation: thrashing prevention on vs. off (§4.3) for the thrash-prone
/// workloads. Without the guard, borderline gap cadences pay a curve
/// switch per burst; with it, the CPU parks on the conservative curve.
/// The (workload × guard) cells fan out over `threads` workers.
pub fn thrash_prevention(cap: Option<u64>, threads: Threads) -> TextTable {
    let cpu = CpuModel::xeon_4208();
    let mut t = TextTable::new(
        "Ablation — thrashing prevention (CPU C, fV, -97 mV)",
        &[
            "Workload",
            "Perf (on)",
            "Eff (on)",
            "Perf (off)",
            "Eff (off)",
            "Switches on/off",
        ],
    );
    const NAMES: [&str; 3] = ["520.omnetpp", "521.wrf", "502.gcc"];
    // Jobs are (workload, guard) cells: even index = guard on, odd = off.
    let results = suit_exec::run(NAMES.len() * 2, threads, |i| {
        let p = profile::by_name(NAMES[i / 2]).expect("profile");
        let mut cfg = SimConfig::fv_intel(UndervoltLevel::Mv97);
        cfg.max_insts = cap;
        if i % 2 == 1 {
            cfg.params = StrategyParams::intel().without_thrash_prevention();
        }
        simulate(&cpu, p, &cfg)
    });
    for (w, name) in NAMES.iter().enumerate() {
        let (on, off) = (&results[2 * w], &results[2 * w + 1]);
        t.row(vec![
            (*name).into(),
            pct(on.perf()),
            pct(on.efficiency()),
            pct(off.perf()),
            pct(off.efficiency()),
            format!("{}/{}", on.exceptions, off.exceptions),
        ]);
    }
    t.note("expected: for thrash-prone workloads the guard trades a sliver of efficiency for far fewer switches and better performance");
    t
}

/// Ablation: the three curve-switching strategies side by side (§4.3),
/// plus the §6.8 adaptive emulation/fV chooser. The
/// (workload × strategy) cells fan out over `threads` workers.
pub fn strategies(cap: Option<u64>, threads: Threads) -> TextTable {
    let cpu = CpuModel::xeon_4208();
    let mut t = TextTable::new(
        "Ablation — operating strategies on CPU C at -97 mV",
        &["Workload", "Strategy", "Perf", "Power", "Eff"],
    );
    const NAMES: [&str; 3] = ["557.xz", "502.gcc", "Nginx"];
    const VARIANTS: usize = 4; // f, V, fV, adaptive
    let rows = suit_exec::run(NAMES.len() * VARIANTS, threads, |i| {
        let name = NAMES[i / VARIANTS];
        let p = profile::by_name(name).expect("profile");
        let (label, cfg) = match i % VARIANTS {
            v @ 0..=2 => {
                let strategy = [
                    OperatingStrategy::Frequency,
                    OperatingStrategy::Voltage,
                    OperatingStrategy::FreqVolt,
                ][v];
                let cfg = SimConfig {
                    strategy,
                    params: StrategyParams::intel(),
                    level: UndervoltLevel::Mv97,
                    cores: 1,
                    seed: 0x5017,
                    max_insts: cap,
                    record_timeline: false,
                    adaptive: None,
                };
                (strategy.to_string(), cfg)
            }
            _ => {
                // §6.8 dynamic selection.
                let mut cfg = SimConfig::adaptive_intel(UndervoltLevel::Mv97);
                cfg.max_insts = cap;
                ("adaptive".to_string(), cfg)
            }
        };
        let r = simulate(&cpu, p, &cfg);
        vec![
            name.into(),
            label,
            pct(r.perf()),
            pct(r.power()),
            pct(r.efficiency()),
        ]
    });
    for row in rows {
        t.row(row);
    }
    t.note("fV combines f's fast engage with V's full-speed dwell (Fig. 4)");
    t.note("adaptive (Section 6.8) emulates sparse traffic and switches curves for bursts");
    t
}

/// The IMUL-trap ablation workload: what §4.2 argues against — trapping
/// IMUL like the other faultable instructions. With one IMUL every ~560 to
/// ~1 400 instructions, the deadline never expires.
pub fn imul_trap_profile() -> WorkloadProfile {
    let base = profile::by_name("502.gcc").expect("profile");
    WorkloadProfile {
        name: "gcc+trapped-IMUL",
        // One IMUL every 1/0.0007 ≈ 1 430 instructions, alone in its
        // "burst": the trap cadence SUIT would face without hardening.
        burst_interval_insts: 1.0 / base.imul_fraction,
        interval_log_sigma: 0.3,
        events_per_burst: 1.0,
        within_gap_insts: 1.0,
        opcode_mix: OpcodeMix::Only(Opcode::Imul),
        ..base.clone()
    }
}

/// Ablation: statically hardened IMUL vs. trapping IMUL (§4.2's "IMUL is
/// the exception" argument). Both variants fan out over `threads`.
pub fn imul_hardening(cap: Option<u64>, threads: Threads) -> TextTable {
    let cpu = CpuModel::xeon_4208();
    let mut t = TextTable::new(
        "Ablation — hardened 4-cycle IMUL vs. trapping IMUL (CPU C, fV, -97 mV)",
        &["Variant", "Residency", "Perf", "Eff"],
    );
    let mut cfg = SimConfig::fv_intel(UndervoltLevel::Mv97);
    cfg.max_insts = cap.map(|c| c.min(1_000_000_000));

    let trap_profile = imul_trap_profile();
    let labels = ["hardened IMUL (SUIT)", "trapped IMUL"];
    let results = suit_exec::run(2, threads, |i| {
        let p = if i == 0 {
            profile::by_name("502.gcc").expect("profile")
        } else {
            &trap_profile
        };
        simulate(&cpu, p, &cfg)
    });
    for (label, r) in labels.iter().zip(&results) {
        t.row(vec![
            (*label).into(),
            format!("{:.1}%", r.residency() * 100.0),
            pct(r.perf()),
            pct(r.efficiency()),
        ]);
    }
    t.note("§4.2: trapping IMUL would keep the CPU permanently on the conservative curve, erasing the efficiency gain");
    t
}

/// Ablation: workload consolidation on a single shared DVFS domain (§6.4
/// extended) — a quiet benchmark next to increasingly noisy neighbours.
/// The solo run and the three pairings fan out over `threads` workers.
pub fn noisy_neighbor(cap: Option<u64>, threads: Threads) -> TextTable {
    let cpu = CpuModel::i9_9900k(); // single shared domain
    let xz = profile::by_name("557.xz").expect("profile");
    let mut t = TextTable::new(
        "Ablation — noisy neighbours on the i9-9900K's shared DVFS domain (fV, -97 mV)",
        &[
            "Configuration",
            "Domain residency",
            "Domain power",
            "557.xz perf",
        ],
    );
    let mut cfg = SimConfig::fv_intel(UndervoltLevel::Mv97);
    cfg.max_insts = cap.map(|c| c.min(1_500_000_000));

    const NEIGHBORS: [&str; 3] = ["502.gcc", "Nginx", "520.omnetpp"];
    // Job 0 is the solo baseline; jobs 1..=3 pair xz with a neighbour.
    let rows = suit_exec::run(1 + NEIGHBORS.len(), threads, |i| {
        if i == 0 {
            let solo = simulate(&cpu, xz, &cfg);
            vec![
                "557.xz alone".into(),
                format!("{:.1}%", solo.residency() * 100.0),
                pct(solo.power()),
                pct(solo.perf()),
            ]
        } else {
            let neighbor = NEIGHBORS[i - 1];
            let n = profile::by_name(neighbor).expect("profile");
            let m = simulate_mixed(&cpu, &[xz, n], &cfg);
            vec![
                format!("557.xz + {neighbor}"),
                format!("{:.1}%", m.domain.residency() * 100.0),
                pct(m.domain.power()),
                pct(m.per_core[0].perf()),
            ]
        }
    });
    for row in rows {
        t.row(row);
    }
    t.note("a thrash-prone neighbour parks the whole domain on the conservative curve; per-core DVFS domains (CPU C) avoid this");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: Option<u64> = Some(300_000_000);

    #[test]
    fn thrash_guard_reduces_switching() {
        let t = thrash_prevention(CAP, Threads::Fixed(2));
        // omnetpp row: switches with the guard must be far fewer.
        let cells = &t.rows[0];
        let parts: Vec<u64> = cells[5].split('/').map(|v| v.parse().unwrap()).collect();
        assert!(parts[0] * 2 < parts[1], "on={} off={}", parts[0], parts[1]);
    }

    #[test]
    fn fv_balances_performance_and_efficiency() {
        // §4.3/§6.8: fV is the "one fits all" balance — near-top efficiency
        // *and* top performance; pure-frequency saves more power but runs
        // slower on C_f, pure-voltage pays long engage stalls.
        let t = strategies(CAP, Threads::Fixed(2));
        let field = |row: &Vec<String>, i: usize| -> f64 {
            row[i].trim_end_matches('%').parse::<f64>().unwrap()
        };
        for chunk in t.rows.chunks(4) {
            let best_perf = chunk
                .iter()
                .map(|r| field(r, 2))
                .fold(f64::NEG_INFINITY, f64::max);
            let fv = chunk.iter().find(|r| r[1] == "fV").unwrap();
            // fV never loses performance (the pure-frequency strategy
            // saves more power but computes slower on C_f)...
            assert!(
                field(fv, 2) >= best_perf - 0.5,
                "{}: fV perf {} vs best {best_perf}",
                chunk[0][0],
                field(fv, 2)
            );
            // ... while still improving efficiency on every workload.
            assert!(
                field(fv, 4) > 0.0,
                "{}: fV eff {}",
                chunk[0][0],
                field(fv, 4)
            );
        }
    }

    #[test]
    fn noisy_neighbors_degrade_shared_domains() {
        let t = noisy_neighbor(CAP, Threads::Fixed(2));
        let res = |i: usize| -> f64 { t.rows[i][1].trim_end_matches('%').parse::<f64>().unwrap() };
        assert!(res(0) > 80.0, "solo xz residency {}", res(0));
        assert!(res(3) < 30.0, "omnetpp neighbour residency {}", res(3));
        // Monotone-ish: noisier neighbours, lower residency.
        assert!(res(3) <= res(1) + 1.0);
    }

    #[test]
    fn trapping_imul_erases_the_gain() {
        let t = imul_hardening(CAP, Threads::Fixed(2));
        let res = |i: usize| -> f64 { t.rows[i][1].trim_end_matches('%').parse::<f64>().unwrap() };
        assert!(res(0) > 60.0, "hardened residency {}", res(0));
        assert!(res(1) < 10.0, "trapped residency {}", res(1));
        let eff = |i: usize| -> f64 {
            t.rows[i][3]
                .trim_start_matches('+')
                .trim_end_matches('%')
                .parse::<f64>()
                .unwrap()
        };
        assert!(eff(0) > eff(1) + 3.0, "{} vs {}", eff(0), eff(1));
    }
}
