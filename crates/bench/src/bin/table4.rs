//! Regenerates the paper's Table 4 (no-SIMD performance impact).
fn main() {
    println!("{}", suit_bench::tables::table4());
}
