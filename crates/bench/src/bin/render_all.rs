//! `render_all` — regenerates the complete EXPERIMENTS.md artefact set
//! (every table, figure, the delay/residency/security reports and the
//! four ablations) plus all three committed `BENCH_*.json` baselines in
//! a single run.
//!
//! The table/figure jobs fan out over `suit-exec` (`--threads N`, same
//! validation as every other binary); the perf benches run serially
//! afterwards so their medians are not polluted by sibling jobs.
//!
//! Flags:
//! * `--out DIR`      artefact directory (default `artifacts/`);
//! * `--threads N`    outer worker count (default: all cores);
//! * `--full`         uncapped traces (default caps at 4 × 10⁹ insts);
//! * `--test`         CI smoke mode: tiny scenarios, sanity asserts,
//!   and the `BENCH_*.json` files go to the artefact directory instead
//!   of the repository root so committed baselines stay untouched;
//! * `--check-bench`  validate the committed `BENCH_*.json` against the
//!   shared emitter schema and exit — the CI staleness gate.

use std::path::{Path, PathBuf};

use suit_bench::render_all::{check_bench_files, render_all, RenderAllOpts};

fn main() {
    let args: Vec<String> = std::env::args().collect();

    if args.iter().any(|a| a == "--check-bench") {
        match check_bench_files(Path::new(".")) {
            Ok(report) => {
                for line in report {
                    println!("{line}");
                }
                println!("all committed BENCH_*.json files match the emitter schema");
            }
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("regenerate with: cargo run --release -p suit-bench --bin render_all");
                std::process::exit(1);
            }
        }
        return;
    }

    let test_mode = args.iter().any(|a| a == "--test");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("artifacts"));
    let bench_dir = if test_mode {
        out_dir.clone()
    } else {
        PathBuf::from(".")
    };
    let cap = if test_mode {
        Some(50_000_000)
    } else {
        suit_bench::cap_from_args()
    };

    render_all(&RenderAllOpts {
        out_dir,
        bench_dir,
        cap,
        threads: suit_bench::threads_from_args(),
        test_mode,
    });
}
