//! The closed thermal loop: governor + RC thermal model + simulator,
//! replaying the Section 5.7 fan experiment dynamically.
use suit_hw::CpuModel;
use suit_sim::thermal_loop::{thermal_loop, ThermalLoopConfig};
use suit_trace::profile;

fn main() {
    let cpu = CpuModel::xeon_4208();
    let p = profile::by_name("502.gcc").expect("profile");
    let cfg = ThermalLoopConfig::default();
    // Fan schedule: starve at t = 30 s, restore at t = 80 s.
    let r = thermal_loop(
        &cpu,
        p,
        &ThermalLoopConfig { slices: 240, ..cfg },
        &[(60, 300.0), (160, 1800.0)],
    );

    println!(
        "Closed thermal loop: 502.gcc on {}, fan 1800 -> 300 RPM at 30 s -> 1800 RPM at 80 s",
        cpu.name
    );
    println!(
        "{:>8} {:>9} {:>10} {:>9} {:>7}",
        "t (s)", "temp (C)", "level", "power W", "eff"
    );
    for rec in r.records.iter().step_by(10) {
        println!(
            "{:>8.1} {:>9.1} {:>10} {:>9.1} {:>6.1}%",
            rec.t_secs,
            rec.temp_c,
            rec.level.map_or("off".to_string(), |l| l.to_string()),
            rec.power_w,
            rec.efficiency * 100.0
        );
    }
    println!(
        "\nEfficient-curve availability {:.0}% of the run; mean efficiency {:+.1}%.",
        r.enabled_fraction() * 100.0,
        r.mean_efficiency() * 100.0
    );
    println!("The fallback/recovery around ~72 C is Table 3's budget acting as a live governor.");
}
