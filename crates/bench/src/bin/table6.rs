//! Regenerates the paper's Table 6 (the headline evaluation).
//! `--threads N` pins the fan-out worker count (default: all cores);
//! the table is byte-identical for every `N`.
use suit_hw::UndervoltLevel;
fn main() {
    let cap = suit_bench::cap_from_args();
    let threads = suit_bench::threads_from_args();
    for level in UndervoltLevel::ALL {
        println!("{}", suit_bench::tables::table6(level, cap, threads));
    }
}
