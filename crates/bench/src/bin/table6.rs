//! Regenerates the paper's Table 6 (the headline evaluation).
use suit_hw::UndervoltLevel;
fn main() {
    let cap = suit_bench::cap_from_args();
    for level in UndervoltLevel::ALL {
        println!("{}", suit_bench::tables::table6(level, cap));
    }
}
