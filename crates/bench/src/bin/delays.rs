//! Prints the Section 5.2/5.3 transition-delay constants.
fn main() {
    println!("{}", suit_bench::tables::delays());
}
