//! Regenerates the paper's Fig. 8 (i9 voltage settle).
fn main() {
    println!("{}", suit_bench::figs::fig8());
}
