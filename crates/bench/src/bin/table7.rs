//! Regenerates the paper's Table 7 (operating-strategy parameters).
fn main() {
    println!(
        "{}",
        suit_bench::tables::table7(suit_bench::cap_from_args())
    );
}
