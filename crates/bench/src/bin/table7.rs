//! Regenerates the paper's Table 7 (operating-strategy parameters).
//! `--threads N` pins the fan-out worker count (default: all cores).
fn main() {
    println!(
        "{}",
        suit_bench::tables::table7(suit_bench::cap_from_args(), suit_bench::threads_from_args())
    );
}
