//! Monte-Carlo error bars around the headline Table 6 cell: C∞ fV at
//! −97 mV with per-run sampled transition delays and trace seeds.
//!
//! `--threads N` pins the worker count (default: all cores). The
//! reported distributions are byte-identical for every `N`; only the
//! wall-clock changes. `--telemetry` records per-run counters, histograms
//! and events (merged deterministically across workers) and prints the
//! summary after the table.
use std::time::Instant;

use suit_hw::{CpuModel, UndervoltLevel};
use suit_sim::engine::SimConfig;
use suit_sim::montecarlo::{monte_carlo_telemetry, monte_carlo_with_threads};
use suit_telemetry::TelemetrySnapshot;
use suit_trace::profile;

fn main() {
    let runs = if std::env::args().any(|a| a == "--full") {
        30
    } else {
        10
    };
    let workers = suit_bench::threads_from_args().count();
    let telemetry = std::env::args().any(|a| a == "--telemetry");
    let mut merged = TelemetrySnapshot::default();
    let cpu = CpuModel::xeon_4208();
    let cfg = SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(2_000_000_000);
    println!("Monte-Carlo ({runs} runs/workload): sampled transition delays + trace seeds");
    println!(
        "{:<16} {:>22} {:>22} {:>14}",
        "workload", "efficiency (mean+/-sd)", "perf (mean+/-sd)", "residency"
    );
    let t0 = Instant::now();
    for name in [
        "557.xz",
        "502.gcc",
        "525.x264",
        "520.omnetpp",
        "Nginx",
        "VLC",
    ] {
        let p = profile::by_name(name).expect("workload");
        let mc = if telemetry {
            let (mc, snap) = monte_carlo_telemetry(&cpu, p, &cfg, runs, workers);
            merged.merge_shard(&snap);
            mc
        } else {
            monte_carlo_with_threads(&cpu, p, &cfg, runs, workers)
        };
        println!(
            "{:<16} {:>12.2}% +/- {:>4.2} {:>12.2}% +/- {:>4.2} {:>12.1}%",
            name,
            mc.eff.mean() * 100.0,
            mc.eff.std() * 100.0,
            mc.perf.mean() * 100.0,
            mc.perf.std() * 100.0,
            mc.residency.mean() * 100.0,
        );
    }
    println!(
        "\nTight spreads = the flat-optimum robustness the paper reports (Section 6.4). \
         Wall-clock: {:.2} s.",
        t0.elapsed().as_secs_f64()
    );
    if telemetry {
        println!("\n{}", merged.summary());
    }
}
