//! Regenerates the paper's Fig. 7 (VLC AES gap timeline).
fn main() {
    println!("{}", suit_bench::figs::fig7());
}
