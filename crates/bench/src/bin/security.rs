//! Runs the Section 6.9 security audit: SUIT vs. naive undervolting.
fn main() {
    println!("{}", suit_bench::tables::security_report(20, 5_000));
    println!("SUIT executed zero faultable instructions below their Vmin - the Section 6.9 reduction holds.");
}
