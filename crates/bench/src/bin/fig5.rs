//! Regenerates the paper's Fig. 5 (burst and curve reaction).
fn main() {
    println!("{}", suit_bench::figs::fig5(suit_bench::cap_from_args()));
}
