//! Regenerates the paper's Fig. 5 (burst and curve reaction).
//!
//! `--telemetry` additionally prints the simulator's telemetry summary
//! (curve switches, #DO traps, stalls, residency counters).
fn main() {
    let tele = suit_bench::telemetry_from_args();
    println!(
        "{}",
        suit_bench::figs::fig5_telemetry(suit_bench::cap_from_args(), &tele)
    );
    if tele.is_enabled() {
        println!("\n{}", tele.snapshot().summary());
    }
}
