//! Prints the paper's Table 5 (simulated system configuration).
fn main() {
    println!("{}", suit_bench::tables::table5());
}
