//! Throughput of the out-of-core trace pipeline: `SUITTRC2` pack,
//! decode, and streaming simulation replay over one multi-chunk
//! 502.gcc container. `--json <path>` writes the committed
//! `BENCH_trace_replay.json` baseline; `--test` shrinks the trace and
//! asserts sanity bounds for CI. The measurement body lives in
//! [`suit_bench::perf`] so the `render_all` driver runs the identical
//! code.
fn main() {
    suit_bench::perf::trace_replay(&suit_bench::perf::PerfOpts::from_args());
}
