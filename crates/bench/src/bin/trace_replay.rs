//! Throughput of the out-of-core trace pipeline: `SUITTRC2` pack,
//! decode, and streaming simulation replay.
//!
//! Three measurements over one multi-chunk 502.gcc container:
//!
//! * `pack`   — bursts → compressed container (MB/s of raw burst bytes);
//! * `decode` — container → bursts, full streaming drain through the
//!   bounded window (MB/s of container bytes);
//! * `replay` — container → simulation via `run_stream` (bursts/s
//!   simulated end to end, decompression included).
//!
//! `--json <path>` additionally writes the numbers as a small JSON
//! document (the committed `BENCH_trace_replay.json` baseline); `--test`
//! shrinks the trace and asserts sanity bounds for CI.
use suit_bench::harness::{bench_with_throughput, Measurement};
use suit_hw::{CpuModel, UndervoltLevel};
use suit_sim::engine::{run_stream, SimConfig};
use suit_store as store;
use suit_trace::io::TraceMeta;
use suit_trace::{profile, TraceGen};

/// Chunk size for the benchmark container: small enough that the test
/// trace spans many chunks, large enough to amortize per-chunk costs.
const CHUNK_BURSTS: usize = 1024;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());

    let n_bursts: usize = if test_mode { 20_000 } else { 200_000 };
    let p = profile::by_name("502.gcc").expect("502.gcc profile");
    let meta = TraceMeta {
        name: p.name.into(),
        ipc: p.ipc,
        total_insts: p.total_insts,
    };
    // One TraceGen pass is finite (~2.3k bursts for 502.gcc), so chain
    // reseeded generators until the target length.
    let bursts: Vec<suit_trace::Burst> = (0u64..)
        .flat_map(|s| TraceGen::new(p, 0xBE7C + s))
        .take(n_bursts)
        .collect();

    let packed =
        store::pack_to_vec(&meta, bursts.iter().copied(), CHUNK_BURSTS).expect("pack bench trace");
    let info = store::open_bytes(&packed).expect("open").info();
    println!(
        "trace_replay: {} bursts, {} chunks, {} raw -> {} container bytes ({:.2}x)\n",
        info.bursts,
        info.chunks,
        info.raw_bytes,
        info.packed_bytes,
        info.raw_bytes as f64 / info.packed_bytes.max(1) as f64
    );

    let pack = bench_with_throughput("pack (raw bytes)", Some(info.raw_bytes), || {
        store::pack_to_vec(&meta, bursts.iter().copied(), CHUNK_BURSTS).expect("pack")
    });

    let decode = bench_with_throughput("decode (container bytes)", Some(info.packed_bytes), || {
        let mut reader = store::open_bytes(&packed).expect("open");
        let mut n = 0u64;
        while reader.next_burst().expect("decode").is_some() {
            n += 1;
        }
        n
    });

    let cpu = CpuModel::xeon_4208();
    let cfg = SimConfig::fv_intel(UndervoltLevel::Mv97);
    let replay = bench_with_throughput("replay (bursts)", Some(info.bursts), || {
        let reader = store::open_bytes(&packed).expect("open");
        let meta = reader.meta().clone();
        run_stream(&cpu, &meta, reader.bursts(), &cfg)
    });

    let mb = |bytes: u64, m: &Measurement| bytes as f64 / 1e6 / m.median.as_secs_f64().max(1e-12);
    let pack_mbs = mb(info.raw_bytes, &pack);
    let decode_mbs = mb(info.packed_bytes, &decode);
    let replay_bps = info.bursts as f64 / replay.median.as_secs_f64().max(1e-12);
    println!(
        "\npack {pack_mbs:.1} MB/s raw, decode {decode_mbs:.1} MB/s container, \
         replay {replay_bps:.3e} bursts/s"
    );

    if let Some(path) = json_path {
        let doc = format!(
            "{{\n  \"bench\": \"trace_replay\",\n  \"workload\": \"502.gcc\",\n  \
             \"bursts\": {},\n  \"chunks\": {},\n  \"chunk_bursts\": {CHUNK_BURSTS},\n  \
             \"raw_bytes\": {},\n  \"container_bytes\": {},\n  \
             \"pack\": {{\"median_ms\": {:.3}, \"raw_mb_per_s\": {:.1}}},\n  \
             \"decode\": {{\"median_ms\": {:.3}, \"container_mb_per_s\": {:.1}}},\n  \
             \"replay\": {{\"median_ms\": {:.3}, \"bursts_per_s\": {:.0}}}\n}}\n",
            info.bursts,
            info.chunks,
            info.raw_bytes,
            info.packed_bytes,
            pack.median.as_secs_f64() * 1e3,
            pack_mbs,
            decode.median.as_secs_f64() * 1e3,
            decode_mbs,
            replay.median.as_secs_f64() * 1e3,
            replay_bps,
        );
        std::fs::write(&path, doc).expect("write bench JSON");
        println!("wrote {path}");
    }

    if test_mode {
        // Generous sanity floors, not perf gates: the point is that the
        // pipeline streams at all on CI hardware.
        assert!(decode_mbs > 1.0, "decode below 1 MB/s: {decode_mbs:.2}");
        assert!(
            replay_bps > 1_000.0,
            "replay below 1k bursts/s: {replay_bps:.0}"
        );
        println!("OK: trace pipeline throughput within sanity bounds");
    }
}
