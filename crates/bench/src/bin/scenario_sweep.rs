//! Throughput of the scenario subsystem.
//!
//! Times the SRAM fault-domain campaign (bank × offset sweep plus the
//! dual-class audit matrix) and the Scrooge attacker-economics search
//! (grid + coordinate refinement + fleet validation + defence audits)
//! end to end. `--json <path>` writes the committed
//! `BENCH_scenarios.json` baseline; `--test` shrinks the campaigns and
//! asserts sanity bounds plus 1-vs-4-worker byte-identity for CI. The
//! measurement body lives in [`suit_bench::perf`] so the `render_all`
//! driver runs the identical code.
fn main() {
    suit_bench::perf::scenario_sweep(&suit_bench::perf::PerfOpts::from_args());
}
