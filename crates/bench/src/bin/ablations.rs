//! Runs the DESIGN.md ablation studies.
//! `--threads N` pins the fan-out worker count (default: all cores).
fn main() {
    let cap = suit_bench::cap_from_args();
    let threads = suit_bench::threads_from_args();
    println!("{}", suit_bench::ablation::thrash_prevention(cap, threads));
    println!("{}", suit_bench::ablation::strategies(cap, threads));
    println!("{}", suit_bench::ablation::imul_hardening(cap, threads));
    println!("{}", suit_bench::ablation::noisy_neighbor(cap, threads));
}
