//! Runs the DESIGN.md ablation studies.
fn main() {
    let cap = suit_bench::cap_from_args();
    println!("{}", suit_bench::ablation::thrash_prevention(cap));
    println!("{}", suit_bench::ablation::strategies(cap));
    println!("{}", suit_bench::ablation::imul_hardening(cap));
    println!("{}", suit_bench::ablation::noisy_neighbor(cap));
}
