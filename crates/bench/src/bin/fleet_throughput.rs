//! Throughput of the discrete-event fleet engine.
//!
//! One fixed rack-scale scenario (16 racks × 4 domains × 4 cores,
//! 256 cores total) measured three ways:
//!
//! * `serial`  — the sharded driver pinned to one worker;
//! * `sharded` — the same driver at `Threads::Auto` (the production
//!   configuration: domains fan out between thermal sync points);
//! * `event`   — the serial component-scheduler driver
//!   ([`FleetSim::run_event_driven`]), the reference the equivalence
//!   suite pins the sharded driver against.
//!
//! The figure of merit is core·epoch slices per second. `--json <path>`
//! writes the committed `BENCH_fleet.json` baseline; `--test` shrinks
//! the fleet and asserts sanity bounds (and cross-driver equality)
//! for CI.
use suit_bench::harness::{bench_with_throughput, Measurement};
use suit_exec::Threads;
use suit_sim::fleet::{FleetConfig, FleetSim};

fn scenario(test_mode: bool) -> FleetConfig {
    FleetConfig {
        racks: if test_mode { 4 } else { 16 },
        domains_per_rack: 4,
        cores_per_domain: 4,
        epochs: if test_mode { 2 } else { 4 },
        epoch_insts: if test_mode { 2_000_000 } else { 10_000_000 },
        ..FleetConfig::default()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());

    let cfg = scenario(test_mode);
    let sim = FleetSim::new(cfg.clone()).expect("bench scenario is valid");
    let slices = (sim.active_domains() * cfg.cores_per_domain * cfg.epochs) as u64;
    println!(
        "fleet_throughput: {} racks x {} domains x {} cores, {} epochs ({} core-epoch slices)\n",
        cfg.racks, cfg.domains_per_rack, cfg.cores_per_domain, cfg.epochs, slices
    );

    let serial = bench_with_throughput("serial (1 thread)", Some(slices), || {
        sim.run(Threads::Fixed(1))
    });
    let sharded = bench_with_throughput("sharded (auto threads)", Some(slices), || {
        sim.run(Threads::Auto)
    });
    let event = bench_with_throughput("event-driven (reference)", Some(slices), || {
        sim.run_event_driven()
    });

    let rate = |m: &Measurement| slices as f64 / m.median.as_secs_f64().max(1e-12);
    let serial_sps = rate(&serial);
    let sharded_sps = rate(&sharded);
    let event_sps = rate(&event);
    println!(
        "\nserial {serial_sps:.0} slices/s, sharded {sharded_sps:.0} slices/s \
         ({:.2}x), event-driven {event_sps:.0} slices/s",
        sharded_sps / serial_sps.max(1e-12)
    );

    if let Some(path) = json_path {
        let doc = format!(
            "{{\n  \"bench\": \"fleet_throughput\",\n  \"racks\": {},\n  \
             \"domains_per_rack\": {},\n  \"cores_per_domain\": {},\n  \
             \"epochs\": {},\n  \"epoch_insts\": {},\n  \"slices\": {slices},\n  \
             \"serial\": {{\"median_ms\": {:.3}, \"slices_per_s\": {:.0}}},\n  \
             \"sharded\": {{\"median_ms\": {:.3}, \"slices_per_s\": {:.0}}},\n  \
             \"event_driven\": {{\"median_ms\": {:.3}, \"slices_per_s\": {:.0}}}\n}}\n",
            cfg.racks,
            cfg.domains_per_rack,
            cfg.cores_per_domain,
            cfg.epochs,
            cfg.epoch_insts,
            serial.median.as_secs_f64() * 1e3,
            serial_sps,
            sharded.median.as_secs_f64() * 1e3,
            sharded_sps,
            event.median.as_secs_f64() * 1e3,
            event_sps,
        );
        std::fs::write(&path, doc).expect("write bench JSON");
        println!("wrote {path}");
    }

    if test_mode {
        // Sanity floors, not perf gates — plus the determinism contract:
        // all three drivers must agree bit for bit.
        let a = sim.run(Threads::Fixed(1));
        let b = sim.run(Threads::Auto);
        let c = sim.run_event_driven();
        assert!(a == b && b == c, "fleet drivers disagree");
        assert!(
            serial_sps > 10.0,
            "serial below 10 slices/s: {serial_sps:.1}"
        );
        println!("OK: fleet drivers agree and throughput is sane");
    }
}
