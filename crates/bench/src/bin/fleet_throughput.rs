//! Throughput of the discrete-event fleet engine.
//!
//! One fixed rack-scale scenario (16 racks × 4 domains × 4 cores,
//! 256 cores total) measured three ways (serial, sharded, event-driven);
//! the figure of merit is core·epoch slices per second. `--json <path>`
//! writes the committed `BENCH_fleet.json` baseline; `--test` shrinks
//! the fleet and asserts sanity bounds (and cross-driver equality) for
//! CI. The measurement body lives in [`suit_bench::perf`] so the
//! `render_all` driver runs the identical code.
fn main() {
    suit_bench::perf::fleet_throughput(&suit_bench::perf::PerfOpts::from_args());
}
