//! Regenerates the paper's Table 3 (temperature guardband).
fn main() {
    println!("{}", suit_bench::tables::table3());
}
