//! Hot-path throughput of the core simulation engine.
//!
//! Three measurements on the median-of-K harness:
//!
//! * `monte_carlo` — a single-thread Monte-Carlo campaign (sampled
//!   per-run delays and trace seeds), the metric the data-layout
//!   refactor targets;
//! * `quantum_loop` — one deterministic engine run, normalised to
//!   nanoseconds per faultable-instruction event;
//! * `aes` — bit-sliced AES block throughput through the widest lane
//!   batch.
//!
//! `--json <path>` writes the committed `BENCH_engine.json` baseline
//! (carrying any previously committed `baseline` section forward, so
//! the document always shows before/after); `--test` shrinks the
//! scenario and asserts determinism plus sanity bounds for CI.
fn main() {
    suit_bench::perf::engine_hotpath(&suit_bench::perf::PerfOpts::from_args());
}
