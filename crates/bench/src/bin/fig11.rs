//! Regenerates the paper's Fig. 11 (Xeon p-state change).
fn main() {
    println!("{}", suit_bench::figs::fig11());
}
