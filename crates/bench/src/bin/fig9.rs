//! Regenerates the paper's Fig. 9 (i9 frequency change with stall).
fn main() {
    println!("{}", suit_bench::figs::fig9());
}
