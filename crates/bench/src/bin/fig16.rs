//! Regenerates the paper's Fig. 16 (per-application impact on CPU C).
//! `--threads N` pins the fan-out worker count (default: all cores).
fn main() {
    println!(
        "{}",
        suit_bench::figs::fig16(suit_bench::cap_from_args(), suit_bench::threads_from_args())
    );
}
