//! Regenerates the paper's Fig. 16 (per-application impact on CPU C).
fn main() {
    println!("{}", suit_bench::figs::fig16(suit_bench::cap_from_args()));
}
