//! Regenerates the paper's Table 1 (fault-injection campaign).
fn main() {
    println!("{}", suit_bench::tables::table1());
}
