//! Regenerates the paper's Fig. 14 (IMUL latency sweep).
fn main() {
    let uops = if std::env::args().any(|a| a == "--full") {
        2_000_000
    } else {
        400_000
    };
    println!("{}", suit_bench::figs::fig14(uops));
}
