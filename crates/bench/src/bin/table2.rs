//! Regenerates the paper's Table 2 (undervolting response).
fn main() {
    println!("{}", suit_bench::tables::table2());
}
