//! Regenerates the paper's Table 8 (no-SIMD vs. SUIT wins).
//! `--threads N` pins the fan-out worker count (default: all cores).
fn main() {
    println!(
        "{}",
        suit_bench::tables::table8(suit_bench::cap_from_args(), suit_bench::threads_from_args())
    );
}
