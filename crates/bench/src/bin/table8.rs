//! Regenerates the paper's Table 8 (no-SIMD vs. SUIT wins).
fn main() {
    println!(
        "{}",
        suit_bench::tables::table8(suit_bench::cap_from_args())
    );
}
