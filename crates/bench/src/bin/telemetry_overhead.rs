//! Measures the cost of a disabled telemetry hook — the one-branch no-op
//! fast path that lets hooks stay compiled into the hot simulator loops.
//!
//! Three loops over the same hook site: no call at all (baseline), a
//! disabled handle (`Telemetry::off()`, one `Option` branch), and a
//! recording handle (relaxed atomic add). The disabled column is what
//! every non-`--telemetry` run pays.
//!
//! `--test` shrinks the iteration count and asserts the disabled hook
//! stays within a generous per-op bound, for CI.
use std::hint::black_box;
use std::time::Instant;

use suit_telemetry::{Counter, Telemetry};

fn time_ns_per_op<F: FnMut(u64)>(iters: u64, mut f: F) -> f64 {
    let t0 = Instant::now();
    for i in 0..iters {
        f(i);
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let iters: u64 = if test_mode { 5_000_000 } else { 100_000_000 };

    // Warm up the allocator/timer paths once.
    let _ = time_ns_per_op(100_000, |i| {
        black_box(i);
    });

    let baseline = time_ns_per_op(iters, |i| {
        black_box(i);
    });

    let off = Telemetry::off();
    let disabled = time_ns_per_op(iters, |i| {
        black_box(&off).count(Counter::DoTraps);
        black_box(i);
    });

    let on = Telemetry::recording();
    let enabled = time_ns_per_op(iters, |i| {
        black_box(&on).count(Counter::DoTraps);
        black_box(i);
    });
    assert_eq!(on.snapshot().counter(Counter::DoTraps), iters);

    println!("telemetry hook overhead ({iters} iterations per loop)");
    println!("{:<26} {:>12}", "variant", "ns/op");
    println!("{:<26} {:>12.3}", "no hook (baseline)", baseline);
    println!("{:<26} {:>12.3}", "disabled (Option branch)", disabled);
    println!("{:<26} {:>12.3}", "recording (atomic add)", enabled);
    println!(
        "\ndisabled-hook overhead vs baseline: {:.3} ns/op",
        (disabled - baseline).max(0.0)
    );

    if test_mode {
        let overhead = (disabled - baseline).max(0.0);
        assert!(
            overhead < 20.0,
            "disabled hook costs {overhead:.3} ns/op — more than a branch should"
        );
        println!("OK: disabled hook within the no-op budget");
    }
}
