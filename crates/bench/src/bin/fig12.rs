//! Regenerates the paper's Fig. 12 (undervolt sweep on the i9).
fn main() {
    println!("{}", suit_bench::figs::fig12());
}
