//! Regenerates the paper's Fig. 13 (f/V pairs and modified IMUL).
fn main() {
    println!("{}", suit_bench::figs::fig13());
}
