//! Prints the Section 6.4 efficient-curve residency report.
//! `--threads N` pins the fan-out worker count (default: all cores).
fn main() {
    println!(
        "{}",
        suit_bench::tables::residency(suit_bench::cap_from_args(), suit_bench::threads_from_args())
    );
}
