//! Prints the Section 6.4 efficient-curve residency report.
fn main() {
    println!(
        "{}",
        suit_bench::tables::residency(suit_bench::cap_from_args())
    );
}
