//! Regenerates the paper's Fig. 6 (fV sequence on a long burst).
fn main() {
    println!("{}", suit_bench::figs::fig6());
}
