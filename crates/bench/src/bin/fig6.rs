//! Regenerates the paper's Fig. 6 (fV sequence on a long burst).
//!
//! `--telemetry` additionally prints the simulator's telemetry summary
//! (curve switches, #DO traps, stalls, residency counters).
fn main() {
    let tele = suit_bench::telemetry_from_args();
    println!("{}", suit_bench::figs::fig6_telemetry(&tele));
    if tele.is_enabled() {
        println!("\n{}", tele.snapshot().summary());
    }
}
