//! Regenerates the paper's Fig. 10 (7700X frequency change).
fn main() {
    println!("{}", suit_bench::figs::fig10());
}
