//! Plain-text table rendering for the experiment binaries.

use std::fmt;

/// A simple aligned text table with a title and optional footnotes.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    /// Table title (e.g. `"Table 6 — ..."`)
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Footnotes printed under the table.
    pub notes: Vec<String>,
}

impl TextTable {
    /// Creates a table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a footnote.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        writeln!(f, "{}", self.title)?;
        let line_len: usize = w.iter().sum::<usize>() + 3 * w.len().saturating_sub(1);
        writeln!(
            f,
            "{}",
            "=".repeat(self.title.chars().count().max(line_len))
        )?;
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (cell, width) in cells.iter().zip(&w) {
                if !first {
                    write!(f, " | ")?;
                } else {
                    first = false;
                }
                write!(f, "{cell:>width$}")?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        writeln!(f, "{}", "-".repeat(line_len))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "  * {n}")?;
        }
        Ok(())
    }
}

/// Formats a fractional delta as a percentage (`-0.0972` → `"-9.7%"`).
pub fn pct(delta: f64) -> String {
    format!("{:+.1}%", delta * 100.0)
}

/// Formats a fractional delta with two decimals (`0.00031` → `"+0.03%"`).
pub fn pct2(delta: f64) -> String {
    format!("{:+.2}%", delta * 100.0)
}

/// Formats a plain float with the given precision.
pub fn num(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new("Demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        t.note("a footnote");
        let s = t.to_string();
        assert!(s.contains("Demo"));
        assert!(s.contains("alpha |     1"));
        assert!(s.contains("    b | 12345"));
        assert!(s.contains("* a footnote"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(-0.0972), "-9.7%");
        assert_eq!(pct(0.208), "+20.8%");
        assert_eq!(pct2(0.0003), "+0.03%");
        assert_eq!(num(31.4159, 2), "31.42");
    }
}
