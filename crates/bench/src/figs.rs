//! Regenerators for the paper's Figures 5–16 (the data series; the paper
//! plots them, we print them).

use suit_exec::Threads;
use suit_hw::delays::{frequency_settle_curve, voltage_settle_curve, TransitionDelays};
use suit_hw::undervolt::SteadyStateModel;
use suit_hw::{CpuModel, DvfsCurve, UndervoltLevel};
use suit_ooo::fig14::{self, FIG14_LATENCIES};
use suit_sim::engine::{simulate_with_timeline_telemetry, Point, SimConfig};
use suit_sim::experiment::{run_row_threads, table6_rows};
use suit_sim::timeline::fv_series;
use suit_telemetry::Telemetry;
use suit_trace::{profile, TraceGen};

use suit_rng::SuitRng;

use crate::render::{num, pct, pct2, TextTable};

/// Fig. 5: a crypto burst and the DVFS-curve reaction — gap-size events
/// interleaved with the recorded curve switches.
pub fn fig5(cap: Option<u64>) -> TextTable {
    fig5_telemetry(cap, &Telemetry::off())
}

/// [`fig5`] recording simulator telemetry into `tele` along the way.
pub fn fig5_telemetry(cap: Option<u64>, tele: &Telemetry) -> TextTable {
    let cpu = CpuModel::xeon_4208();
    let p = profile::by_name("Nginx").expect("profile");
    let cfg = SimConfig::fv_intel(UndervoltLevel::Mv97)
        .with_max_insts(cap.unwrap_or(p.total_insts).min(400_000_000));
    let (_, changes) = simulate_with_timeline_telemetry(&cpu, p, &cfg, tele);
    let mut t = TextTable::new(
        "Fig. 5 — AES burst and DVFS curve reaction (first switches)",
        &["t (us)", "curve"],
    );
    for c in changes.iter().take(16) {
        let label = match c.point {
            Point::E => "efficient",
            Point::Cf => "conservative (C_f)",
            Point::Cv => "conservative (C_V)",
        };
        t.row(vec![
            num(c.at.since(suit_isa::SimTime::ZERO).as_micros_f64(), 1),
            label.into(),
        ]);
    }
    t.note("pattern per paper: burst -> conservative, deadline expiry -> efficient");
    t
}

/// Fig. 6: the 𝑓𝑉 sequence on a long burst — frequency drops first, the
/// voltage raise lands later, expiry returns to the efficient curve.
pub fn fig6() -> TextTable {
    fig6_telemetry(&Telemetry::off())
}

/// [`fig6`] recording simulator telemetry into `tele` along the way.
pub fn fig6_telemetry(tele: &Telemetry) -> TextTable {
    let cpu = CpuModel::xeon_4208();
    // A dedicated single-long-burst workload makes the sequence crisp.
    let mut p = profile::by_name("Nginx").expect("profile").clone();
    p.total_insts = 40_000_000;
    let cfg = SimConfig::fv_intel(UndervoltLevel::Mv97);
    let (_, changes) = simulate_with_timeline_telemetry(&cpu, &p, &cfg, tele);
    let series = fv_series(&cpu, UndervoltLevel::Mv97, &changes);
    let mut t = TextTable::new(
        "Fig. 6 — fV operating strategy on a long burst",
        &["t (us)", "freq (GHz)", "voltage (mV)", "point"],
    );
    for s in series.iter().take(12) {
        t.row(vec![
            num(s.t_us, 1),
            num(s.freq_ghz, 2),
            num(s.voltage_mv, 0),
            format!("{:?}", s.point),
        ]);
    }
    t.note("expected: E -> C_f (freq drop), C_f -> C_V after ~335 us (voltage arrives), C_V -> E at deadline");
    t
}

/// Fig. 7: the VLC AES gap-size timeline — one row per burst, showing the
/// log10 gap heights the paper plots (large between bursts, small within).
pub fn fig7() -> TextTable {
    let p = profile::by_name("VLC").expect("profile");
    let mut t = TextTable::new(
        "Fig. 7 — VLC AES instruction gap-size timeline (per burst)",
        &[
            "burst start (insts)",
            "leading gap (log10)",
            "events",
            "within gap (log10)",
        ],
    );
    let mut pos: u64 = 0;
    for b in TraceGen::new(p, 0x5017).take(40) {
        pos += b.gap_insts;
        t.row(vec![
            pos.to_string(),
            num((b.gap_insts.max(1) as f64).log10(), 2),
            b.events.to_string(),
            num((u64::from(b.within_gap_insts).max(1) as f64).log10(), 2),
        ]);
        pos += b.total_insts() - b.gap_insts;
    }
    t.note("bursts show as runs of small gaps; quiet stretches as gaps of 10^5+ instructions");
    t
}

fn settle_table(title: &str, samples: &[suit_hw::delays::SettleSample], unit: &str) -> TextTable {
    let mut t = TextTable::new(title, &["t (us)", unit]);
    for s in samples {
        t.row(vec![
            num(s.t_us, 1),
            s.observed.map_or("stall".to_string(), |v| num(v, 3)),
        ]);
    }
    t
}

/// Fig. 8: i9-9900K voltage settle after resetting the offset (≈350 µs).
pub fn fig8() -> TextTable {
    let mut rng = SuitRng::seed_from_u64(8);
    let d = TransitionDelays::i9_9900k();
    let samples = voltage_settle_curve(&mut rng, &d, 800.0, 900.0, 25.0, 600.0);
    settle_table(
        "Fig. 8 — i9-9900K core voltage settle (offset reset at t=0)",
        &samples,
        "mV",
    )
}

/// Fig. 9: i9-9900K frequency change (≈22 µs) with the all-core stall gap.
pub fn fig9() -> TextTable {
    let mut rng = SuitRng::seed_from_u64(9);
    let d = TransitionDelays::i9_9900k();
    let samples = frequency_settle_curve(&mut rng, &d, 3.0, 2.6, 2.0, 40.0);
    settle_table(
        "Fig. 9 — i9-9900K frequency change (stall = no samples)",
        &samples,
        "GHz",
    )
}

/// Fig. 10: 7700X frequency change (≈668 µs), no stall.
pub fn fig10() -> TextTable {
    let mut rng = SuitRng::seed_from_u64(10);
    let d = TransitionDelays::ryzen_7700x();
    let samples = frequency_settle_curve(&mut rng, &d, 3.0, 1.5, 50.0, 900.0);
    settle_table(
        "Fig. 10 — Ryzen 7 7700X frequency change (no stall)",
        &samples,
        "GHz",
    )
}

/// Fig. 11: Xeon 4208 p-state change — voltage first, then frequency.
pub fn fig11() -> TextTable {
    let mut rng = SuitRng::seed_from_u64(11);
    let d = TransitionDelays::xeon_4208();
    let volt = voltage_settle_curve(&mut rng, &d, 800.0, 840.0, 25.0, 500.0);
    let freq = frequency_settle_curve(&mut rng, &d, 2.6, 3.0, 2.0, 60.0);
    let mut t = TextTable::new(
        "Fig. 11 — Xeon 4208 p-state change: voltage (335 us) then frequency (31 us)",
        &["phase", "t (us)", "value"],
    );
    for s in volt.iter().step_by(2) {
        t.row(vec![
            "voltage (mV)".into(),
            num(s.t_us, 1),
            s.observed.map_or("stall".into(), |v| num(v, 0)),
        ]);
    }
    for s in &freq {
        t.row(vec![
            "freq (GHz)".into(),
            num(s.t_us + 335.0, 1),
            s.observed.map_or("stall".into(), |v| num(v, 2)),
        ]);
    }
    t
}

/// Fig. 12: SPEC score / power / frequency vs. undervolt offset (i9).
pub fn fig12() -> TextTable {
    let m = SteadyStateModel::i9_9900k();
    let mut t = TextTable::new(
        "Fig. 12 — SPEC CPU2017 vs. undervolt offset, i9-9900K",
        &["offset (mV)", "score", "power (W)", "freq (GHz)"],
    );
    for r in m.sweep(&[0.0, -40.0, -70.0, -97.0]) {
        t.row(vec![
            num(r.offset_mv, 0),
            pct(r.score),
            num(r.power_w, 1),
            num(r.freq_ghz, 2),
        ]);
    }
    t.note("paper: score +3.8%, power 93 W -> 77 W, freq 4.5 -> ~4.65 GHz at -97 mV");
    t
}

/// Fig. 13: stable frequency/voltage pairs and the modified-IMUL curve.
pub fn fig13() -> TextTable {
    let curve = DvfsCurve::i9_9900k();
    let imul = curve.modified_imul();
    let mut t = TextTable::new(
        "Fig. 13 — i9-9900K stable f/V pairs and safe voltage for 4-cycle IMUL",
        &[
            "freq (GHz)",
            "V stock (mV)",
            "V modified IMUL (mV)",
            "delta (mV)",
        ],
    );
    for p in curve.points() {
        let v_imul = imul.voltage_at(p.freq_ghz);
        t.row(vec![
            num(p.freq_ghz, 1),
            num(p.voltage_mv, 0),
            num(v_imul, 0),
            num(p.voltage_mv - v_imul, 0),
        ]);
    }
    t.note("paper: ~220 mV headroom at 5 GHz, negligible at low frequency");
    t
}

/// Fig. 14: slowdown vs. IMUL latency from the out-of-order simulator.
pub fn fig14(uops: u64) -> TextTable {
    let data = fig14::run(uops);
    let mut t = TextTable::new(
        "Fig. 14 — Slowdown with increasing IMUL latency (baseline: 3 cycles)",
        &["latency", "geomean", "525.x264"],
    );
    let x264 = data.x264().clone();
    for (i, lat) in FIG14_LATENCIES.iter().enumerate() {
        t.row(vec![
            format!("{lat} cycles"),
            pct2(data.geomean(i)),
            pct2(x264.slowdowns[i]),
        ]);
    }
    t.note(
        "paper: geomean +0.03% and x264 +1.60% at 4 cycles; near-linear growth at large latencies",
    );
    t
}

/// Fig. 16: per-benchmark performance and efficiency on CPU 𝒞, 𝑓𝑉. The
/// workloads of each level fan out over `threads` workers.
pub fn fig16(cap: Option<u64>, threads: Threads) -> TextTable {
    let spec = &table6_rows()[5];
    let r70 = run_row_threads(spec, UndervoltLevel::Mv70, cap, threads);
    let r97 = run_row_threads(spec, UndervoltLevel::Mv97, cap, threads);
    let mut t = TextTable::new(
        "Fig. 16 — Per-application impact on CPU C (fV strategy)",
        &[
            "Workload",
            "Perf -70mV",
            "Eff -70mV",
            "Perf -97mV",
            "Eff -97mV",
        ],
    );
    for (a, b) in r70.per_workload.iter().zip(&r97.per_workload) {
        assert_eq!(a.workload, b.workload);
        t.row(vec![
            a.workload.clone(),
            pct(a.perf()),
            pct(a.efficiency()),
            pct(b.perf()),
            pct(b.efficiency()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: Option<u64> = Some(300_000_000);

    #[test]
    fn fig5_shows_curve_switches() {
        let s = fig5(CAP).to_string();
        assert!(s.contains("conservative"));
        assert!(s.contains("efficient"));
    }

    #[test]
    fn fig6_reaches_all_three_points() {
        let s = fig6().to_string();
        assert!(s.contains("Cf"), "{s}");
        assert!(s.contains("Cv"), "{s}");
        assert!(s.contains("E"), "{s}");
    }

    #[test]
    fn fig7_has_bimodal_gaps() {
        let t = fig7();
        let leading: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        let within: Vec<f64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(within.iter().all(|&l| l < 3.0), "dense within-burst gaps");
        assert!(
            leading.iter().any(|&l| l > 5.0),
            "quiet stretches: {leading:?}"
        );
    }

    #[test]
    fn fig9_contains_stall_gap() {
        let s = fig9().to_string();
        assert!(s.contains("stall"));
    }

    #[test]
    fn fig10_never_stalls() {
        // Every sample carries a value — the AMD core keeps running
        // through the change (no stall gaps in the data rows).
        let t = fig10();
        for row in &t.rows {
            assert_ne!(row[1], "stall", "{row:?}");
        }
    }

    #[test]
    fn fig12_monotone_power() {
        let t = fig12();
        let watts: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        for w in watts.windows(2) {
            assert!(w[1] <= w[0], "power must fall with offset");
        }
        assert!((watts[0] - 93.0).abs() < 3.0);
    }

    #[test]
    fn fig13_headroom_grows_with_frequency() {
        let t = fig13();
        let first: f64 = t.rows.first().unwrap()[3].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[3].parse().unwrap();
        assert!(first < 20.0, "low-frequency headroom ~0, got {first}");
        assert!(last > 150.0, "5 GHz headroom ~220 mV, got {last}");
    }

    #[test]
    fn fig16_covers_all_workloads() {
        let t = fig16(CAP, Threads::Fixed(2));
        assert_eq!(t.rows.len(), 25);
    }
}
