//! Regenerators for the paper's Tables 1–8.

use suit_exec::Threads;
use suit_faults::vmin::ChipVminModel;
use suit_faults::Campaign;
use suit_hw::guardband::{core_temp_at_fan_rpm, max_undervolt_at_temp_mv};
use suit_hw::measured::{self, TABLE2};
use suit_hw::undervolt::SteadyStateModel;
use suit_hw::UndervoltLevel;
use suit_isa::TABLE1;
use suit_ooo::O3Config;
use suit_sim::experiment::{run_row_threads, table6_rows, table8_counts, RowResult};
use suit_trace::profile;

use crate::render::{num, pct, TextTable};

/// Table 1: undervolting-induced instruction faults — fault-injection
/// campaign over several simulated chips, tallied per opcode family, next
/// to the counts Kogler et al. measured.
pub fn table1() -> TextTable {
    // Aggregate a few chips like the original multi-CPU study.
    let mut totals = [0u32; suit_isa::Opcode::COUNT];
    for seed in 0..3 {
        let chip = ChipVminModel::sample(4, 12.0, seed);
        let report = Campaign::standard(chip, seed).run();
        for row in TABLE1 {
            totals[row.opcode.index()] += report.faults(row.opcode);
        }
    }
    // Scale so the top entry matches the paper's 79 for easy comparison.
    let top = totals[suit_isa::Opcode::Imul.index()].max(1);
    let mut t = TextTable::new(
        "Table 1 — Undervolting-induced instruction faults (model vs. Kogler et al.)",
        &["Instruction", "Faults (model, scaled)", "Faults (paper)"],
    );
    for row in TABLE1 {
        let scaled = totals[row.opcode.index()] as f64 * 79.0 / top as f64;
        t.row(vec![
            row.opcode.to_string(),
            format!("{scaled:.0}"),
            row.faults.to_string(),
        ]);
    }
    t.note("model counts are (core × frequency × offset) combinations over 3 chips, scaled to IMUL = 79");
    t
}

/// Table 2: SPEC score / power / frequency / efficiency response to the
/// −70 mV and −97 mV undervolts for the three measured CPUs.
pub fn table2() -> TextTable {
    let mut t = TextTable::new(
        "Table 2 — Undervolting response (model vs. paper)",
        &[
            "CPU",
            "V_off",
            "Score",
            "Power",
            "Freq",
            "Eff.",
            "Eff. (paper)",
        ],
    );
    let models = [
        ("i5-1035G1", SteadyStateModel::i5_1035g1()),
        ("i9-9900K", SteadyStateModel::i9_9900k()),
        ("7700X", SteadyStateModel::ryzen_7700x()),
    ];
    for (name, model) in models {
        for offset in [-70.0, -97.0] {
            let r = model.response(offset);
            let paper = TABLE2
                .iter()
                .find(|row| row.cpu == name && (row.offset_mv - offset).abs() < 0.5)
                .expect("paper row");
            t.row(vec![
                name.to_string(),
                format!("{offset} mV"),
                pct(r.score),
                pct(r.power),
                pct(r.freq),
                pct(r.efficiency()),
                pct(paper.efficiency),
            ]);
        }
    }
    t
}

/// Table 3: core temperature (via fan speed) vs. maximum undervolt offset.
pub fn table3() -> TextTable {
    let mut t = TextTable::new(
        "Table 3 — Temperature vs. maximum undervolting offset",
        &[
            "f_CLK",
            "Fan RPM",
            "t_core",
            "V_off (model)",
            "V_off (paper)",
        ],
    );
    for (rpm, paper) in [(1800.0, -90.0), (300.0, -55.0)] {
        let temp = core_temp_at_fan_rpm(rpm);
        let voff = max_undervolt_at_temp_mv(temp);
        t.row(vec![
            "4 GHz".into(),
            format!("{rpm:.0}"),
            format!("{temp:.0} C",),
            format!("{voff:.0} mV"),
            format!("{paper:.0} mV"),
        ]);
    }
    t
}

/// Table 4: performance impact of compiling without SSE/AVX.
pub fn table4() -> TextTable {
    let mut t = TextTable::new(
        "Table 4 — SPEC CPU2017 without SIMD instructions",
        &["Benchmark", "i9-9900K", "7700X"],
    );
    // Suite means first, as in the paper.
    let fp: Vec<&profile::WorkloadProfile> = profile::all()
        .iter()
        .filter(|p| p.suite == profile::Suite::SpecFp)
        .collect();
    let int: Vec<&profile::WorkloadProfile> = profile::all()
        .iter()
        .filter(|p| p.suite == profile::Suite::SpecInt)
        .collect();
    let mean = |v: &[&profile::WorkloadProfile], intel: bool| {
        v.iter().map(|p| p.no_simd_overhead(intel)).sum::<f64>() / v.len() as f64
    };
    t.row(vec![
        "fprate".into(),
        pct(mean(&fp, true)),
        pct(mean(&fp, false)),
    ]);
    t.row(vec![
        "intrate".into(),
        pct(mean(&int, true)),
        pct(mean(&int, false)),
    ]);
    for row in measured::TABLE4_NO_SIMD.iter().skip(2) {
        let p = profile::by_name(row.0).expect("profile exists");
        t.row(vec![
            row.0.to_string(),
            pct(p.no_simd_intel),
            pct(p.no_simd_amd),
        ]);
    }
    t.note("per-benchmark anchors are Table 4's measured values; unlisted benchmarks carry small interpolated overheads");
    t
}

/// Table 5: the gem5-substitute system configuration.
pub fn table5() -> TextTable {
    let mut t = TextTable::new(
        "Table 5 — Simulated system for the instruction-latency evaluation",
        &["Component", "Configuration"],
    );
    for (k, v) in O3Config::default().table5() {
        t.row(vec![k, v]);
    }
    t
}

fn deltas_row(label: &str, row: &RowResult) -> Vec<Vec<String>> {
    let g = row.spec_gmean();
    let m = row.spec_median();
    let x = row.x264();
    let ns = row.spec_no_simd();
    let n = row.nginx();
    let v = row.vlc();
    let fmt = |metric: &str, a: f64, b: f64, c: f64, d: f64, e: f64, f: f64| {
        vec![
            label.to_string(),
            metric.to_string(),
            pct(a),
            pct(b),
            pct(c),
            pct(d),
            pct(e),
            pct(f),
        ]
    };
    vec![
        fmt("Pwr", g.power, m.power, x.power, ns.power, n.power, v.power),
        fmt("Perf", g.perf, m.perf, x.perf, ns.perf, n.perf, v.perf),
        fmt("Eff", g.eff, m.eff, x.eff, ns.eff, n.eff, v.eff),
    ]
}

/// Table 6: the headline evaluation — power, performance and efficiency
/// for every (CPU, cores, strategy) row at one undervolt level. The
/// workloads of each row fan out over `threads` workers; the rendered
/// table is byte-identical at every worker count.
pub fn table6(level: UndervoltLevel, cap: Option<u64>, threads: Threads) -> TextTable {
    let mut t = TextTable::new(
        format!("Table 6 — SUIT system results at {level}"),
        &[
            "Config",
            "Metric",
            "SPECgmean",
            "SPECmedian",
            "525.x264",
            "SPECnoSIMD",
            "Nginx",
            "VLC",
        ],
    );
    for spec in table6_rows() {
        let row = run_row_threads(&spec, level, cap, threads);
        for cells in deltas_row(spec.label, &row) {
            t.row(cells);
        }
    }
    t.note("paper at -97 mV: A1 fV gmean Pwr -9.7% / Perf +0.8% / Eff +12%; Cinf fV Eff +11%");
    t
}

/// Table 7: the optimal operating-strategy parameters, with a deadline
/// sweep demonstrating the flat optimum the paper reports. The deadline
/// sweep points fan out over `threads` workers.
pub fn table7(cap: Option<u64>, threads: Threads) -> TextTable {
    use suit_core::strategy::StrategyParams;
    use suit_core::OperatingStrategy;
    use suit_hw::CpuModel;
    use suit_sim::experiment::run_row_with_params;
    use suit_sim::experiment::RowSpec;

    let spec = RowSpec {
        label: "Cinf fV",
        cpu: CpuModel::xeon_4208(),
        cores: 1,
        strategy: OperatingStrategy::FreqVolt,
    };
    let mut t = TextTable::new(
        "Table 7 — Operating-strategy parameter sweep (deadline p_dl on CPU C)",
        &["p_dl (us)", "SPEC eff (gmean)", "delta vs optimum"],
    );
    const DEADLINES_US: [u64; 6] = [10, 20, 30, 40, 60, 120];
    let results: Vec<(u64, f64)> = suit_exec::run(DEADLINES_US.len(), threads, |i| {
        let dl_us = DEADLINES_US[i];
        let params =
            StrategyParams::intel().with_deadline(suit_isa::SimDuration::from_micros(dl_us));
        let row = run_row_with_params(&spec, UndervoltLevel::Mv97, params, cap);
        (dl_us, row.spec_gmean().eff)
    });
    let best = results
        .iter()
        .map(|r| r.1)
        .fold(f64::NEG_INFINITY, f64::max);
    for (dl, eff) in results {
        t.row(vec![dl.to_string(), pct(eff), pct(eff - best)]);
    }
    t.note("paper (Table 7): p_dl 30 us / p_ts 450 us / p_ec 3 / p_df 14 for A & C; 700 us / 14 ms / 4 / 9 for B");
    t.note("paper: +/-10 us around the optimum changes mean efficiency by only ~0.6% — the flat optimum above");
    t
}

/// Table 8: in how many SPEC benchmarks does compiling without SIMD beat
/// running SUIT with traps.
pub fn table8(cap: Option<u64>, threads: Threads) -> TextTable {
    let mut t = TextTable::new(
        "Table 8 — No-SIMD vs. SUIT wins over the 23 SPEC benchmarks (-97 mV)",
        &["Config", "No SIMD wins", "SUIT wins", "paper (No SIMD)"],
    );
    let paper = [
        ("A1 fV", 15),
        ("A4 fV", 21),
        ("Ainf e", 23),
        ("Binf f", 21),
        ("Binf e", 23),
        ("Cinf fV", 16),
    ];
    for (spec, (_, paper_wins)) in table6_rows().iter().zip(paper) {
        let row = run_row_threads(spec, UndervoltLevel::Mv97, cap, threads);
        let (ns, suit) = table8_counts(&row);
        t.row(vec![
            spec.label.to_string(),
            ns.to_string(),
            suit.to_string(),
            paper_wins.to_string(),
        ]);
    }
    t
}

/// §6.4 residency report: fraction of time on the efficient curve.
pub fn residency(cap: Option<u64>, threads: Threads) -> TextTable {
    let spec = &table6_rows()[5]; // C∞ fV
    let row = run_row_threads(spec, UndervoltLevel::Mv97, cap, threads);
    let mut t = TextTable::new(
        "Efficient-curve residency on CPU C, fV, -97 mV (paper §6.4)",
        &["Workload", "Residency", "Paper"],
    );
    let paper = |name: &str| match name {
        "557.xz" => "97.1%".to_string(),
        "502.gcc" => "76.6%".to_string(),
        "520.omnetpp" => "3.2%".to_string(),
        _ => "-".to_string(),
    };
    for r in &row.per_workload {
        t.row(vec![
            r.workload.clone(),
            format!("{:.1}%", r.residency() * 100.0),
            paper(&r.workload),
        ]);
    }
    t.row(vec![
        "SPEC mean".into(),
        format!("{:.1}%", row.spec_residency_mean() * 100.0),
        "72.7%".into(),
    ]);
    t
}

/// §5.3-style delay summary.
pub fn delays() -> TextTable {
    use suit_hw::TransitionDelays;
    let mut t = TextTable::new(
        "Measured transition delays (Section 5.2/5.3 constants)",
        &[
            "CPU",
            "freq change",
            "freq stall",
            "volt change",
            "#DO entry",
            "emu call",
        ],
    );
    for (name, d) in [
        ("i9-9900K (A)", TransitionDelays::i9_9900k()),
        ("7700X (B)", TransitionDelays::ryzen_7700x()),
        ("Xeon 4208 (C)", TransitionDelays::xeon_4208()),
    ] {
        t.row(vec![
            name.into(),
            format!("{} us", num(d.freq_change_us, 0)),
            format!("{} us", num(d.freq_stall_us, 0)),
            format!("{} us", num(d.volt_change_us, 0)),
            format!("{} us", num(d.exception_us, 2)),
            format!("{} us", num(d.emulation_call_us, 2)),
        ]);
    }
    t
}

/// The §6.9 security audit summary shared by `suit-cli security` and the
/// `security` bench binary: silent-error counts for naive undervolting
/// vs. SUIT over a chip population.
pub fn security_report(chips: u64, instructions: usize) -> TextTable {
    use suit_faults::vmin::ChipVminModel;
    use suit_faults::{audit_naive_undervolt, audit_suit_system};
    let mut t = TextTable::new(
        format!("Security audit (Section 6.9): {chips} chips x {instructions} instructions"),
        &[
            "offset",
            "naive silent errors",
            "SUIT silent errors",
            "SUIT #DO traps",
        ],
    );
    for offset in [-70.0, -97.0, -130.0] {
        let mut naive = 0u64;
        let mut suit_errors = 0u64;
        let mut traps = 0u64;
        for seed in 0..chips {
            let chip = ChipVminModel::sample(2, 12.0, seed);
            naive += audit_naive_undervolt(&chip, 0, offset, seed, instructions).silent_errors;
            let s = audit_suit_system(&chip, 0, offset, seed, instructions);
            suit_errors += s.silent_errors;
            traps += s.trapped;
        }
        assert_eq!(suit_errors, 0, "SUIT must never fault silently");
        t.row(vec![
            format!("{offset} mV"),
            naive.to_string(),
            suit_errors.to_string(),
            traps.to_string(),
        ]);
    }
    t.note("zero SUIT errors at every offset = the Section 6.9 reduction, executed");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: Option<u64> = Some(300_000_000);

    #[test]
    fn table1_preserves_paper_ordering_at_the_ends() {
        let t = table1();
        assert_eq!(t.rows.len(), 12);
        assert!(t.rows[0][0].contains("IMUL"));
        // Model count for IMUL (scaled to 79) exceeds the tail entries.
        let imul: f64 = t.rows[0][1].parse().unwrap();
        let tail: f64 = t.rows[11][1].parse().unwrap();
        assert!(imul > tail, "{imul} vs {tail}");
    }

    #[test]
    fn table2_has_six_rows_matching_paper_axes() {
        let t = table2();
        assert_eq!(t.rows.len(), 6);
        // i9 at −97 mV: model efficiency ≈ paper's +23 %.
        let i9_97 = &t.rows[3];
        assert_eq!(i9_97[0], "i9-9900K");
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let model = parse(&i9_97[5]);
        let paper = parse(&i9_97[6]);
        assert!(
            (model - paper).abs() < 1.5,
            "model {model} vs paper {paper}"
        );
    }

    #[test]
    fn table3_reproduces_both_anchors() {
        let t = table3();
        assert!(t.rows[0][3] == t.rows[0][4]);
        assert!(t.rows[1][3] == t.rows[1][4]);
    }

    #[test]
    fn table5_prints_gem5_rows() {
        let s = table5().to_string();
        assert!(s.contains("3 GHz"));
        assert!(s.contains("Full System"));
    }

    #[test]
    fn table6_renders_all_rows() {
        let t = table6(UndervoltLevel::Mv97, CAP, Threads::Fixed(2));
        assert_eq!(t.rows.len(), 6 * 3);
        let s = t.to_string();
        assert!(s.contains("A1 fV"));
        assert!(s.contains("Cinf fV"));
    }

    #[test]
    fn table8_counts_sum_to_23() {
        let t = table8(CAP, Threads::Fixed(1));
        for row in &t.rows {
            let ns: usize = row[1].parse().unwrap();
            let suit: usize = row[2].parse().unwrap();
            assert_eq!(ns + suit, 23, "{row:?}");
        }
    }

    #[test]
    fn residency_table_covers_all_workloads() {
        let t = residency(CAP, Threads::Fixed(2));
        assert_eq!(t.rows.len(), 26); // 25 workloads + SPEC mean
    }

    #[test]
    fn delays_table_prints_measured_constants() {
        let s = delays().to_string();
        assert!(s.contains("668"));
        assert!(s.contains("0.34"));
        assert!(s.contains("335"));
    }
}
