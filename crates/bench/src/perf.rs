//! The performance benches behind the committed `BENCH_*.json`
//! baselines, as library functions so both the standalone binaries
//! (`engine_hotpath`, `fleet_throughput`, `trace_replay`,
//! `scenario_sweep`) and the `render_all` driver run the identical
//! measurement code.
//!
//! Every document is written through [`crate::emit::BenchDoc`], so all
//! baselines share the one schema and are validated with the in-tree
//! JSON parser before they touch disk.

use suit_emu::aes::{bitsliced, Aes128Key};
use suit_exec::Threads;
use suit_hw::{CpuModel, UndervoltLevel};
use suit_isa::Vec128;
use suit_scenarios::{scrooge, sram, ScroogeConfig, SramScenarioConfig};
use suit_sim::engine::{run_stream, simulate, SimConfig};
use suit_sim::fleet::{FleetConfig, FleetSim};
use suit_sim::montecarlo::monte_carlo_with_threads;
use suit_store as store;
use suit_telemetry::Telemetry;
use suit_trace::io::TraceMeta;
use suit_trace::{profile, TraceGen};

use crate::emit::{read_section, BenchDoc, Val};
use crate::harness::{bench_with_throughput, Measurement};

/// Options shared by the perf benches.
#[derive(Debug, Clone, Default)]
pub struct PerfOpts {
    /// Shrink the scenario and assert sanity bounds (the CI mode).
    pub test_mode: bool,
    /// Write the measurement document to this path.
    pub json_path: Option<String>,
}

impl PerfOpts {
    /// Parses the conventional `--test` / `--json <path>` arguments.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        PerfOpts {
            test_mode: args.iter().any(|a| a == "--test"),
            json_path: args
                .iter()
                .position(|a| a == "--json")
                .map(|i| args.get(i + 1).expect("--json needs a path").clone()),
        }
    }
}

fn ms(m: &Measurement) -> f64 {
    m.median.as_secs_f64() * 1e3
}

/// The engine hot-path bench: single-thread Monte-Carlo throughput,
/// quantum-loop ns per faultable-instruction event, and bit-sliced AES
/// blocks/s — the headline numbers of the data-layout refactor.
///
/// The emitted `BENCH_engine.json` carries a `baseline` section and a
/// `current` section. On the first run both are the fresh measurement;
/// on every later run the existing file's `baseline` (falling back to
/// its `current`) is carried forward verbatim, so the committed document
/// always shows the pre-refactor numbers next to today's.
pub fn engine_hotpath(opts: &PerfOpts) {
    let cpu = CpuModel::xeon_4208();
    let p = profile::by_name("502.gcc").expect("502.gcc profile");

    let mc_insts: u64 = if opts.test_mode {
        20_000_000
    } else {
        1_000_000_000
    };
    let mc_runs: usize = if opts.test_mode { 2 } else { 8 };
    let quantum_insts: u64 = if opts.test_mode {
        50_000_000
    } else {
        2_000_000_000
    };

    println!(
        "engine_hotpath: 502.gcc fv -97 mV, mc {mc_runs} runs x {mc_insts} insts (1 thread), \
         quantum loop {quantum_insts} insts, bit-sliced AES\n"
    );

    // (1) Single-thread Monte-Carlo throughput: the metric the ROADMAP
    // speed item targets. Per-run sampled delays + trace seeds, exactly
    // the production campaign, pinned to one worker.
    let mc_cfg = SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(mc_insts);
    let mc = bench_with_throughput("monte_carlo (1 thread)", Some(mc_runs as u64), || {
        monte_carlo_with_threads(&cpu, p, &mc_cfg, mc_runs, 1)
    });
    let mc_runs_per_s = mc_runs as f64 / mc.median.as_secs_f64().max(1e-12);

    // (2) Quantum-loop cost: one deterministic engine run, normalised to
    // ns per faultable-instruction event.
    let q_cfg = SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(quantum_insts);
    let q_result = simulate(&cpu, p, &q_cfg);
    let quantum = bench_with_throughput("quantum_loop (events)", Some(q_result.events), || {
        simulate(&cpu, p, &q_cfg)
    });
    let quantum_ns_per_event = quantum.median.as_secs_f64() * 1e9 / q_result.events.max(1) as f64;

    // (3) Bit-sliced AES block throughput through the widest lane batch
    // the crate offers (`aes_width` blocks per kernel invocation).
    let key = Aes128Key::expand([0x42; 16]);
    let blocks: [Vec128; 8] =
        std::array::from_fn(|i| Vec128::from_u128(0x0123_4567_89ab_cdef ^ ((i as u128) << 96)));
    let aes_width: u64 = 8;
    let aes = bench_with_throughput("aes_encrypt128_x8 (blocks)", Some(aes_width), || {
        bitsliced::encrypt128_x8(&key, std::hint::black_box(blocks))
    });
    let aes_blocks_per_s = aes_width as f64 / aes.median.as_secs_f64().max(1e-12);

    println!(
        "\nmc {mc_runs_per_s:.2} runs/s (1 thread), quantum {quantum_ns_per_event:.1} ns/event \
         ({} events), aes {aes_blocks_per_s:.3e} blocks/s (x{aes_width})",
        q_result.events
    );

    if let Some(path) = &opts.json_path {
        let mut doc = BenchDoc::new("engine_hotpath");
        doc.config("workload", Val::Str("502.gcc".into()));
        doc.config("strategy", Val::Str("fv".into()));
        doc.config("mc_runs", Val::U64(mc_runs as u64));
        doc.config("mc_insts", Val::U64(mc_insts));
        doc.config("mc_threads", Val::U64(1));
        doc.config("quantum_insts", Val::U64(quantum_insts));

        // Carry the committed baseline forward; first run seeds it with
        // the fresh measurement.
        let prior = std::fs::read_to_string(path).ok();
        let baseline = prior
            .as_deref()
            .and_then(|doc| read_section(doc, "baseline").or_else(|| read_section(doc, "current")));
        // `median_ms` is the headline metric of the document: the wall
        // time of one single-thread Monte-Carlo batch.
        let current: Vec<(String, Val)> = vec![
            ("median_ms".into(), Val::F64(ms(&mc), 3)),
            ("mc_runs_per_s".into(), Val::F64(mc_runs_per_s, 2)),
            ("quantum_median_ms".into(), Val::F64(ms(&quantum), 3)),
            (
                "quantum_ns_per_event".into(),
                Val::F64(quantum_ns_per_event, 2),
            ),
            ("quantum_events".into(), Val::U64(q_result.events)),
            (
                "aes_median_ns".into(),
                Val::F64(aes.median.as_nanos() as f64, 0),
            ),
            ("aes_blocks_per_s".into(), Val::F64(aes_blocks_per_s, 0)),
            ("aes_width".into(), Val::U64(aes_width)),
        ];
        let baseline = baseline.unwrap_or_else(|| current.clone());
        if let Some((_, Val::F64(base_rate, _))) =
            baseline.iter().find(|(k, _)| k == "mc_runs_per_s")
        {
            println!(
                "speedup vs committed baseline: mc {:.2}x",
                mc_runs_per_s / base_rate.max(1e-12)
            );
        }
        doc.section_from("baseline", &baseline);
        doc.section_from("current", &current);
        doc.write(path);
    }

    if opts.test_mode {
        // Determinism contract first, sanity floors second.
        let a = monte_carlo_with_threads(&cpu, p, &mc_cfg, mc_runs, 1);
        let b = monte_carlo_with_threads(&cpu, p, &mc_cfg, mc_runs, 4);
        assert_eq!(a, b, "monte carlo must be thread-invariant");
        assert_eq!(
            q_result,
            simulate(&cpu, p, &q_cfg),
            "engine must be deterministic"
        );
        assert!(
            mc_runs_per_s > 0.05,
            "mc below floor: {mc_runs_per_s:.3} runs/s"
        );
        assert!(
            quantum_ns_per_event < 100_000.0,
            "quantum loop implausibly slow: {quantum_ns_per_event:.0} ns/event"
        );
        assert!(
            aes_blocks_per_s > 1_000.0,
            "aes below floor: {aes_blocks_per_s:.0}"
        );
        println!("OK: engine hot-path deterministic and within sanity bounds");
    }
}

/// The fleet-engine throughput bench (core·epoch slices per second over
/// three drivers). Moved verbatim from the `fleet_throughput` binary;
/// the JSON now goes through the shared schema.
pub fn fleet_throughput(opts: &PerfOpts) {
    let cfg = FleetConfig {
        racks: if opts.test_mode { 4 } else { 16 },
        domains_per_rack: 4,
        cores_per_domain: 4,
        epochs: if opts.test_mode { 2 } else { 4 },
        epoch_insts: if opts.test_mode {
            2_000_000
        } else {
            10_000_000
        },
        ..FleetConfig::default()
    };
    let sim = FleetSim::new(cfg.clone()).expect("bench scenario is valid");
    let slices = (sim.active_domains() * cfg.cores_per_domain * cfg.epochs) as u64;
    println!(
        "fleet_throughput: {} racks x {} domains x {} cores, {} epochs ({} core-epoch slices)\n",
        cfg.racks, cfg.domains_per_rack, cfg.cores_per_domain, cfg.epochs, slices
    );

    let serial = bench_with_throughput("serial (1 thread)", Some(slices), || {
        sim.run(Threads::Fixed(1))
    });
    let sharded = bench_with_throughput("sharded (auto threads)", Some(slices), || {
        sim.run(Threads::Auto)
    });
    let event = bench_with_throughput("event-driven (reference)", Some(slices), || {
        sim.run_event_driven()
    });

    let rate = |m: &Measurement| slices as f64 / m.median.as_secs_f64().max(1e-12);
    let (serial_sps, sharded_sps, event_sps) = (rate(&serial), rate(&sharded), rate(&event));
    println!(
        "\nserial {serial_sps:.0} slices/s, sharded {sharded_sps:.0} slices/s \
         ({:.2}x), event-driven {event_sps:.0} slices/s",
        sharded_sps / serial_sps.max(1e-12)
    );

    if let Some(path) = &opts.json_path {
        let mut doc = BenchDoc::new("fleet_throughput");
        doc.config("racks", Val::U64(cfg.racks as u64));
        doc.config("domains_per_rack", Val::U64(cfg.domains_per_rack as u64));
        doc.config("cores_per_domain", Val::U64(cfg.cores_per_domain as u64));
        doc.config("epochs", Val::U64(cfg.epochs as u64));
        doc.config("epoch_insts", Val::U64(cfg.epoch_insts));
        doc.config("slices", Val::U64(slices));
        for (name, m, sps) in [
            ("serial", &serial, serial_sps),
            ("sharded", &sharded, sharded_sps),
            ("event_driven", &event, event_sps),
        ] {
            doc.metric(name, "median_ms", Val::F64(ms(m), 3));
            doc.metric(name, "slices_per_s", Val::F64(sps, 0));
        }
        doc.write(path);
    }

    if opts.test_mode {
        // Sanity floors, not perf gates — plus the determinism contract:
        // all three drivers must agree bit for bit.
        let a = sim.run(Threads::Fixed(1));
        let b = sim.run(Threads::Auto);
        let c = sim.run_event_driven();
        assert!(a == b && b == c, "fleet drivers disagree");
        assert!(
            serial_sps > 10.0,
            "serial below 10 slices/s: {serial_sps:.1}"
        );
        println!("OK: fleet drivers agree and throughput is sane");
    }
}

/// Chunk size for the trace-replay benchmark container: small enough
/// that the test trace spans many chunks, large enough to amortize
/// per-chunk costs.
const CHUNK_BURSTS: usize = 1024;

/// The out-of-core trace pipeline bench (`SUITTRC2` pack, decode, and
/// streaming replay). Moved verbatim from the `trace_replay` binary;
/// the JSON now goes through the shared schema.
pub fn trace_replay(opts: &PerfOpts) {
    let n_bursts: usize = if opts.test_mode { 20_000 } else { 200_000 };
    let p = profile::by_name("502.gcc").expect("502.gcc profile");
    let meta = TraceMeta {
        name: p.name.into(),
        ipc: p.ipc,
        total_insts: p.total_insts,
    };
    // One TraceGen pass is finite (~2.3k bursts for 502.gcc), so chain
    // reseeded generators until the target length.
    let bursts: Vec<suit_trace::Burst> = (0u64..)
        .flat_map(|s| TraceGen::new(p, 0xBE7C + s))
        .take(n_bursts)
        .collect();

    let packed =
        store::pack_to_vec(&meta, bursts.iter().copied(), CHUNK_BURSTS).expect("pack bench trace");
    let info = store::open_bytes(&packed).expect("open").info();
    println!(
        "trace_replay: {} bursts, {} chunks, {} raw -> {} container bytes ({:.2}x)\n",
        info.bursts,
        info.chunks,
        info.raw_bytes,
        info.packed_bytes,
        info.raw_bytes as f64 / info.packed_bytes.max(1) as f64
    );

    let pack = bench_with_throughput("pack (raw bytes)", Some(info.raw_bytes), || {
        store::pack_to_vec(&meta, bursts.iter().copied(), CHUNK_BURSTS).expect("pack")
    });

    let decode = bench_with_throughput("decode (container bytes)", Some(info.packed_bytes), || {
        let mut reader = store::open_bytes(&packed).expect("open");
        let mut n = 0u64;
        while reader.next_burst().expect("decode").is_some() {
            n += 1;
        }
        n
    });

    let cpu = CpuModel::xeon_4208();
    let cfg = SimConfig::fv_intel(UndervoltLevel::Mv97);
    let replay = bench_with_throughput("replay (bursts)", Some(info.bursts), || {
        let reader = store::open_bytes(&packed).expect("open");
        let meta = reader.meta().clone();
        run_stream(&cpu, &meta, reader.bursts(), &cfg)
    });

    let mb = |bytes: u64, m: &Measurement| bytes as f64 / 1e6 / m.median.as_secs_f64().max(1e-12);
    let pack_mbs = mb(info.raw_bytes, &pack);
    let decode_mbs = mb(info.packed_bytes, &decode);
    let replay_bps = info.bursts as f64 / replay.median.as_secs_f64().max(1e-12);
    println!(
        "\npack {pack_mbs:.1} MB/s raw, decode {decode_mbs:.1} MB/s container, \
         replay {replay_bps:.3e} bursts/s"
    );

    if let Some(path) = &opts.json_path {
        let mut doc = BenchDoc::new("trace_replay");
        doc.config("workload", Val::Str("502.gcc".into()));
        doc.config("bursts", Val::U64(info.bursts));
        doc.config("chunks", Val::U64(info.chunks as u64));
        doc.config("chunk_bursts", Val::U64(CHUNK_BURSTS as u64));
        doc.config("raw_bytes", Val::U64(info.raw_bytes));
        doc.config("container_bytes", Val::U64(info.packed_bytes));
        doc.metric("pack", "median_ms", Val::F64(ms(&pack), 3));
        doc.metric("pack", "raw_mb_per_s", Val::F64(pack_mbs, 1));
        doc.metric("decode", "median_ms", Val::F64(ms(&decode), 3));
        doc.metric("decode", "container_mb_per_s", Val::F64(decode_mbs, 1));
        doc.metric("replay", "median_ms", Val::F64(ms(&replay), 3));
        doc.metric("replay", "bursts_per_s", Val::F64(replay_bps, 0));
        doc.write(path);
    }

    if opts.test_mode {
        // Generous sanity floors, not perf gates: the point is that the
        // pipeline streams at all on CI hardware.
        assert!(decode_mbs > 1.0, "decode below 1 MB/s: {decode_mbs:.2}");
        assert!(
            replay_bps > 1_000.0,
            "replay below 1k bursts/s: {replay_bps:.0}"
        );
        println!("OK: trace pipeline throughput within sanity bounds");
    }
}

/// The scenario-subsystem bench: the SRAM fault-domain campaign (bank ×
/// offset sweep + dual-class audit matrix) and the Scrooge economic
/// search (grid + refinement + fleet validation + defence audits), each
/// timed end to end on one `suit-exec` worker.
pub fn scenario_sweep(opts: &PerfOpts) {
    let mut sram_cfg = SramScenarioConfig::default();
    let mut scrooge_cfg = ScroogeConfig::default();
    if opts.test_mode {
        sram_cfg.reads = 512;
        sram_cfg.audit_len = 500;
        scrooge_cfg.epoch_insts = 200_000;
        scrooge_cfg.audit_len = 500;
    }
    let sram_points =
        ((sram_cfg.cache_banks + sram_cfg.rob_banks) * sram_cfg.offsets_mv.len()) as u64;
    let scrooge_points =
        (scrooge_cfg.offset_steps * scrooge_cfg.freq_steps + 4 * scrooge_cfg.refine_rounds) as u64;
    println!(
        "scenario_sweep: sram {} banks x {} offsets x {} reads, scrooge {} grid+refine points \
         over {} domains (1 thread)\n",
        sram_cfg.cache_banks + sram_cfg.rob_banks,
        sram_cfg.offsets_mv.len(),
        sram_cfg.reads,
        scrooge_points,
        scrooge_cfg.racks * scrooge_cfg.domains_per_rack
    );

    let sram_bench = bench_with_throughput(
        "sram_campaign (bank-offset points)",
        Some(sram_points),
        || sram::run(&sram_cfg, 1, &Telemetry::off()),
    );
    let sram_report = sram::run(&sram_cfg, 1, &Telemetry::off());
    let sram_pps = sram_points as f64 / sram_bench.median.as_secs_f64().max(1e-12);

    let scrooge_bench =
        bench_with_throughput("scrooge_search (grid points)", Some(scrooge_points), || {
            scrooge::search(&scrooge_cfg, 1, &Telemetry::off()).expect("bench scenario is valid")
        });
    let scrooge_report =
        scrooge::search(&scrooge_cfg, 1, &Telemetry::off()).expect("bench scenario is valid");
    let scrooge_pps = scrooge_points as f64 / scrooge_bench.median.as_secs_f64().max(1e-12);

    println!(
        "\nsram {sram_pps:.0} points/s ({} faults, {} bits), scrooge {scrooge_pps:.0} points/s \
         (chosen {} mV @ {:.3}x, net ${:.2})",
        sram_report.total_faults,
        sram_report.bits_flipped,
        scrooge_report.chosen.offset_mv,
        scrooge_report.chosen.freq_scale,
        scrooge_report.chosen.net
    );

    if let Some(path) = &opts.json_path {
        let mut doc = BenchDoc::new("scenario_sweep");
        doc.config(
            "sram_banks",
            Val::U64((sram_cfg.cache_banks + sram_cfg.rob_banks) as u64),
        );
        doc.config("sram_offsets", Val::U64(sram_cfg.offsets_mv.len() as u64));
        doc.config("sram_reads", Val::U64(sram_cfg.reads as u64));
        doc.config("scrooge_points", Val::U64(scrooge_points));
        doc.config(
            "scrooge_domains",
            Val::U64((scrooge_cfg.racks * scrooge_cfg.domains_per_rack) as u64),
        );
        doc.metric("sram", "median_ms", Val::F64(ms(&sram_bench), 3));
        doc.metric("sram", "points_per_s", Val::F64(sram_pps, 0));
        doc.metric("sram", "total_faults", Val::U64(sram_report.total_faults));
        doc.metric("scrooge", "median_ms", Val::F64(ms(&scrooge_bench), 3));
        doc.metric("scrooge", "points_per_s", Val::F64(scrooge_pps, 0));
        doc.metric(
            "scrooge",
            "points_evaluated",
            Val::U64(scrooge_report.points_evaluated),
        );
        doc.write(path);
    }

    if opts.test_mode {
        // Determinism contract first (both reports byte-identical at 1
        // and 4 workers), sanity floors second.
        for threads in [1, 4] {
            assert_eq!(
                sram_report.to_json(),
                sram::run(&sram_cfg, threads, &Telemetry::off()).to_json(),
                "sram scenario diverged at {threads} threads"
            );
            assert_eq!(
                scrooge_report.to_json(),
                scrooge::search(&scrooge_cfg, threads, &Telemetry::off())
                    .expect("bench scenario is valid")
                    .to_json(),
                "scrooge search diverged at {threads} threads"
            );
        }
        assert!(sram_report.total_faults > 0, "sweep found no faults");
        assert!(
            sram_report.defended_rows_secure(),
            "a defended audit row leaked silent errors"
        );
        assert!(sram_pps > 1.0, "sram below 1 point/s: {sram_pps:.2}");
        assert!(
            scrooge_pps > 1.0,
            "scrooge below 1 point/s: {scrooge_pps:.2}"
        );
        println!("OK: scenario campaigns deterministic and within sanity bounds");
    }
}
