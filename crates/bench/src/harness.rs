//! A minimal wall-clock benchmark harness: warmup batches, then
//! median-of-K timed batches on [`std::time::Instant`].
//!
//! This replaces the old criterion dev-dependency so the whole workspace
//! builds offline with zero external crates. It deliberately does much
//! less: no statistical outlier analysis, no plots — just a calibrated
//! inner-iteration count (so nanosecond-scale bodies are timed over a
//! long enough batch), a few warmup batches, and the median, minimum and
//! maximum per-iteration times over K samples, printed one line per
//! benchmark.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Number of untimed warmup batches before sampling.
pub const WARMUP_BATCHES: usize = 3;

/// Number of timed batches; the reported time is their median.
pub const SAMPLES: usize = 11;

/// Target wall-clock duration of one batch when calibrating the inner
/// iteration count.
const BATCH_TARGET: Duration = Duration::from_millis(20);

/// Hard ceiling on the calibrated inner iteration count.
const MAX_ITERS: u64 = 1 << 24;

/// One measured benchmark: per-iteration median/min/max over [`SAMPLES`]
/// batches.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Median per-iteration wall time across batches.
    pub median: Duration,
    /// Fastest batch, per iteration.
    pub min: Duration,
    /// Slowest batch, per iteration.
    pub max: Duration,
    /// Calibrated iterations per batch.
    pub iters: u64,
}

fn per_iter(batch: Duration, iters: u64) -> Duration {
    Duration::from_nanos((batch.as_nanos() / u128::from(iters)) as u64)
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Times `f`, prints one result line, and returns the measurement.
///
/// The closure result is routed through [`black_box`] so the optimizer
/// cannot delete the body.
pub fn bench<T>(name: &str, f: impl FnMut() -> T) -> Measurement {
    bench_with_throughput(name, None, f)
}

/// Like [`bench`], but additionally reports `elems / median` as a rate
/// (elements per second) when `elems` is given.
pub fn bench_with_throughput<T>(
    name: &str,
    elems: Option<u64>,
    mut f: impl FnMut() -> T,
) -> Measurement {
    // Calibrate: grow the batch until it runs long enough to time well.
    let mut iters: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        if t0.elapsed() >= BATCH_TARGET || iters >= MAX_ITERS {
            break;
        }
        iters = iters.saturating_mul(2).min(MAX_ITERS);
    }

    for _ in 0..WARMUP_BATCHES {
        for _ in 0..iters {
            black_box(f());
        }
    }

    let mut samples: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter(t0.elapsed(), iters)
        })
        .collect();
    samples.sort_unstable();

    let m = Measurement {
        median: samples[samples.len() / 2],
        min: samples[0],
        max: *samples.last().expect("SAMPLES > 0"),
        iters,
    };

    let rate = elems
        .map(|n| {
            let per_sec = n as f64 / m.median.as_secs_f64().max(1e-12);
            format!("  ({per_sec:.3e} elems/s)")
        })
        .unwrap_or_default();
    println!(
        "{name:<44} {:>12}  [min {}, max {}, K={SAMPLES}, iters/batch {}]{rate}",
        fmt_duration(m.median),
        fmt_duration(m.min),
        fmt_duration(m.max),
        m.iters,
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_trivial_body() {
        let mut n = 0u64;
        let m = bench("noop_increment", || {
            n = n.wrapping_add(1);
            n
        });
        assert!(m.iters >= 1);
        assert!(m.min <= m.median && m.median <= m.max);
    }

    #[test]
    fn reports_throughput_without_panicking() {
        let m = bench_with_throughput("tiny_sum", Some(64), || (0..64u64).sum::<u64>());
        assert!(m.median.as_nanos() > 0 || m.iters > 1);
    }

    #[test]
    fn formats_each_magnitude() {
        assert_eq!(fmt_duration(Duration::from_nanos(17)), "17 ns");
        assert_eq!(fmt_duration(Duration::from_nanos(1_700)), "1.70 us");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
