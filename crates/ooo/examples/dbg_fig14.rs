use suit_ooo::config::O3Config;
use suit_ooo::core::O3Core;
use suit_ooo::workload::{by_name, UopStream};

fn main() {
    let p = by_name("525.x264").unwrap();
    for lat in [3u32, 4, 30] {
        let mut core = O3Core::new(O3Config::with_imul_latency(lat));
        let s = core.run(UopStream::new(p.clone(), 0xf16), 400_000);
        println!("global lat {lat}: ipc {:.3} cycles {}", s.ipc(), s.cycles);
    }
    let mut k = p.clone();
    k.imul_phase_frac = 0.97;
    for lat in [3u32, 4, 30] {
        let mut core = O3Core::new(O3Config::with_imul_latency(lat));
        let s = core.run(UopStream::new(k.clone(), 0xf16), 400_000);
        println!("kernel lat {lat}: ipc {:.3} cycles {}", s.ipc(), s.cycles);
    }
}
