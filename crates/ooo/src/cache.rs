//! Set-associative LRU cache hierarchy (Table 5: 32 kB L1D → 2 MB LLC →
//! DDR4-2400 DRAM).

/// One set-associative cache level with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<u64>>, // per-set tag stack, most-recently-used first
    ways: usize,
    set_shift: u32,
    set_mask: u64,
    hit_latency: u32,
    accesses: u64,
    misses: u64,
}

/// Cache line size, bytes (64 B, as everywhere on x86).
pub const LINE_BYTES: u64 = 64;

impl Cache {
    /// Builds a cache of `size_bytes` with `ways`-way associativity and
    /// the given hit latency.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes` is a power of two multiple of
    /// `ways × 64`.
    pub fn new(size_bytes: usize, ways: usize, hit_latency: u32) -> Self {
        assert!(ways >= 1);
        let lines = size_bytes / LINE_BYTES as usize;
        assert!(lines % ways == 0, "size must divide into whole sets");
        let n_sets = lines / ways;
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets: vec![Vec::with_capacity(ways); n_sets],
            ways,
            set_shift: LINE_BYTES.trailing_zeros(),
            set_mask: (n_sets as u64) - 1,
            hit_latency,
            accesses: 0,
            misses: 0,
        }
    }

    /// Accesses `addr`; returns `true` on hit. Fills on miss.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let line = addr >> self.set_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let stack = &mut self.sets[set];
        if let Some(pos) = stack.iter().position(|&t| t == tag) {
            let t = stack.remove(pos);
            stack.insert(0, t);
            true
        } else {
            self.misses += 1;
            if stack.len() == self.ways {
                stack.pop();
            }
            stack.insert(0, tag);
            false
        }
    }

    /// This level's hit latency, cycles.
    pub fn hit_latency(&self) -> u32 {
        self.hit_latency
    }

    /// Accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Miss ratio so far (0 when never accessed).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// The Table 5 data-side hierarchy: L1D → LLC → DRAM.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// Level-1 data cache.
    pub l1d: Cache,
    /// Last-level cache.
    pub llc: Cache,
    dram_latency: u32,
}

impl Hierarchy {
    /// Builds the hierarchy from the machine config.
    pub fn new(cfg: &crate::config::O3Config) -> Self {
        Hierarchy {
            l1d: Cache::new(cfg.l1d_bytes, 8, cfg.l1d_latency),
            llc: Cache::new(cfg.llc_bytes, 16, cfg.llc_latency),
            dram_latency: cfg.dram_latency,
        }
    }

    /// Load latency for `addr` in cycles, walking the hierarchy.
    pub fn load_latency(&mut self, addr: u64) -> u32 {
        if self.l1d.access(addr) {
            self.l1d.hit_latency()
        } else if self.llc.access(addr) {
            self.llc.hit_latency()
        } else {
            self.dram_latency
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(32 * 1024, 8, 4);
        assert!(!c.access(0x1000), "cold miss");
        assert!(c.access(0x1000), "warm hit");
        assert!(c.access(0x1008), "same line");
        assert!((c.miss_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 8-way set: touch 9 distinct lines mapping to the same set.
        let mut c = Cache::new(32 * 1024, 8, 4);
        let set_stride = 64 * (32 * 1024 / 64 / 8) as u64; // one full wrap
        for i in 0..9u64 {
            c.access(i * set_stride);
        }
        assert!(!c.access(0), "line 0 was LRU and must be evicted");
        assert!(c.access(8 * set_stride), "newest line survives");
    }

    #[test]
    fn streaming_larger_than_cache_always_misses() {
        let mut c = Cache::new(32 * 1024, 8, 4);
        let mut misses = 0;
        // Two passes over a 4 MB stream: no reuse fits.
        for pass in 0..2 {
            for addr in (0..4 * 1024 * 1024u64).step_by(64) {
                if !c.access(addr) {
                    misses += 1;
                }
            }
            if pass == 0 {
                misses = 0; // only measure the second pass
            }
        }
        assert_eq!(misses, 4 * 1024 * 1024 / 64);
    }

    #[test]
    fn hierarchy_latencies_order() {
        let cfg = crate::config::O3Config::default();
        let mut h = Hierarchy::new(&cfg);
        let cold = h.load_latency(0x4000);
        let warm = h.load_latency(0x4000);
        assert_eq!(cold, cfg.dram_latency);
        assert_eq!(warm, cfg.l1d_latency);
    }

    #[test]
    fn llc_catches_l1_overflow() {
        let cfg = crate::config::O3Config::default();
        let mut h = Hierarchy::new(&cfg);
        // Touch 256 kB (8× L1D, well within 2 MB LLC), then re-touch.
        for addr in (0..256 * 1024u64).step_by(64) {
            h.load_latency(addr);
        }
        let lat = h.load_latency(0);
        assert_eq!(lat, cfg.llc_latency, "L1 evicted, LLC holds it");
    }

    #[test]
    #[should_panic(expected = "whole sets")]
    fn rejects_odd_geometry() {
        let _ = Cache::new(3000, 8, 4);
    }
}
