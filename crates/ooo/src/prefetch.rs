//! A PC-indexed stride prefetcher for the data-cache hierarchy.
//!
//! gem5's classic cache configurations attach a stride prefetcher to the
//! L1D; without one, streaming benchmarks (519.lbm, 503.bwaves) pay a
//! DRAM round trip per line and the model's baseline CPI drifts far from
//! hardware. The design is the textbook RPT (reference prediction table):
//! per load PC, remember the last address and stride; after two
//! confirmations, prefetch `degree` lines ahead.

use crate::cache::{Hierarchy, LINE_BYTES};

/// One reference-prediction-table entry.
#[derive(Debug, Clone, Copy, Default)]
struct RptEntry {
    tag: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
}

/// A stride prefetcher in front of a [`Hierarchy`].
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<RptEntry>,
    mask: u64,
    degree: u32,
    issued: u64,
}

impl StridePrefetcher {
    /// Creates a prefetcher with `2^index_bits` RPT entries fetching
    /// `degree` lines ahead.
    pub fn new(index_bits: u32, degree: u32) -> Self {
        assert!((4..=16).contains(&index_bits));
        assert!((1..=8).contains(&degree));
        StridePrefetcher {
            table: vec![RptEntry::default(); 1 << index_bits],
            mask: (1 << index_bits) - 1,
            degree,
            issued: 0,
        }
    }

    /// Observes a demand load at (`pc`, `addr`) and issues prefetches into
    /// the hierarchy when the stride is confirmed.
    pub fn observe(&mut self, hier: &mut Hierarchy, pc: u64, addr: u64) {
        let idx = ((pc >> 2) & self.mask) as usize;
        let e = &mut self.table[idx];
        let tag = pc >> 2;
        if e.tag != tag {
            *e = RptEntry {
                tag,
                last_addr: addr,
                stride: 0,
                confidence: 0,
            };
            return;
        }
        let stride = addr as i64 - e.last_addr as i64;
        if stride == e.stride && stride != 0 {
            e.confidence = (e.confidence + 1).min(3);
        } else {
            e.stride = stride;
            e.confidence = 0;
        }
        e.last_addr = addr;

        if e.confidence >= 2 {
            for k in 1..=self.degree as i64 {
                let target = addr as i64 + e.stride * k;
                if target >= 0 {
                    // Fill the hierarchy; latency is hidden (off the
                    // demand path).
                    self.issued += 1;
                    if !hier.l1d.access(target as u64) {
                        let _ = hier.llc.access(target as u64);
                    }
                }
            }
        }
    }

    /// Prefetches issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Prefetch degree (lines ahead).
    pub fn degree(&self) -> u32 {
        self.degree
    }
}

/// Default prefetcher geometry: 256-entry RPT, 2 lines ahead — the gem5
/// `StridePrefetcher` defaults, roughly.
impl Default for StridePrefetcher {
    fn default() -> Self {
        StridePrefetcher::new(8, 2)
    }
}

/// Convenience constant used by tests.
pub const LINE: u64 = LINE_BYTES;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::O3Config;

    fn hierarchy() -> Hierarchy {
        Hierarchy::new(&O3Config::default())
    }

    #[test]
    fn sequential_stream_gets_covered() {
        let mut h = hierarchy();
        let mut pf = StridePrefetcher::default();
        let pc = 0x400100;
        let mut misses = 0;
        for i in 0..2_000u64 {
            let addr = i * LINE;
            let lat = h.load_latency(addr);
            if lat > 4 {
                misses += 1;
            }
            pf.observe(&mut h, pc, addr);
        }
        // After warm-up the stream hits prefetched lines.
        assert!(misses < 2_000 / 3, "{misses} misses with prefetching");
        assert!(pf.issued() > 1_000);
    }

    #[test]
    fn without_prefetcher_the_stream_always_misses() {
        let mut h = hierarchy();
        let mut misses = 0;
        for i in 0..2_000u64 {
            if h.load_latency(i * LINE) > 4 {
                misses += 1;
            }
        }
        assert_eq!(misses, 2_000, "cold stream misses every line");
    }

    #[test]
    fn random_accesses_do_not_trigger_prefetch() {
        let mut h = hierarchy();
        let mut pf = StridePrefetcher::default();
        let pc = 0x400200;
        // Pseudo-random addresses: strides never repeat.
        let mut addr = 0x12345u64;
        for _ in 0..1_000 {
            addr = addr
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            pf.observe(&mut h, pc, addr & 0xFFFFFF);
        }
        assert_eq!(pf.issued(), 0, "no confirmed stride, no prefetch");
    }

    #[test]
    fn negative_strides_work() {
        let mut h = hierarchy();
        let mut pf = StridePrefetcher::default();
        let pc = 0x400300;
        let base = 1 << 20;
        let mut misses_late = 0;
        for i in 0..500u64 {
            let addr = base - i * LINE;
            let lat = h.load_latency(addr);
            if i > 50 && lat > 4 {
                misses_late += 1;
            }
            pf.observe(&mut h, pc, addr);
        }
        assert!(misses_late < 450 / 2, "{misses_late}");
    }

    #[test]
    fn distinct_pcs_track_independent_strides() {
        let mut h = hierarchy();
        let mut pf = StridePrefetcher::default();
        // PCs chosen not to collide in the 256-entry RPT.
        for i in 0..200u64 {
            pf.observe(&mut h, 0x1004, i * LINE);
            pf.observe(&mut h, 0x2008, (1 << 22) + i * 4 * LINE);
        }
        assert!(pf.issued() > 300, "both streams confirmed: {}", pf.issued());
    }

    #[test]
    #[should_panic]
    fn rejects_degenerate_geometry() {
        let _ = StridePrefetcher::new(2, 1);
    }
}
