//! Gshare branch predictor with 2-bit saturating counters.

/// A gshare predictor: global-history XOR PC indexes a table of 2-bit
/// counters.
#[derive(Debug, Clone)]
pub struct Gshare {
    counters: Vec<u8>,
    history: u64,
    mask: u64,
    lookups: u64,
    mispredicts: u64,
}

impl Gshare {
    /// Creates a predictor with `2^bits` counters.
    pub fn new(bits: u32) -> Self {
        assert!((4..=24).contains(&bits), "table size out of range");
        Gshare {
            counters: vec![2; 1 << bits], // weakly taken
            history: 0,
            mask: (1u64 << bits) - 1,
            lookups: 0,
            mispredicts: 0,
        }
    }

    /// Predicts and trains on the branch at `pc` with the actual `taken`
    /// outcome; returns `true` if the prediction was correct.
    pub fn predict_and_train(&mut self, pc: u64, taken: bool) -> bool {
        self.lookups += 1;
        let idx = ((pc >> 2) ^ self.history) & self.mask;
        let ctr = &mut self.counters[idx as usize];
        let predicted_taken = *ctr >= 2;
        // Train.
        if taken {
            *ctr = (*ctr + 1).min(3);
        } else {
            *ctr = ctr.saturating_sub(1);
        }
        self.history = ((self.history << 1) | u64::from(taken)) & self.mask;
        let correct = predicted_taken == taken;
        if !correct {
            self.mispredicts += 1;
        }
        correct
    }

    /// Mispredict ratio so far.
    pub fn mispredict_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suit_rng::{Rng, SuitRng};

    #[test]
    fn learns_an_always_taken_branch() {
        let mut p = Gshare::new(12);
        let mut wrong = 0;
        for _ in 0..1000 {
            if !p.predict_and_train(0x400100, true) {
                wrong += 1;
            }
        }
        assert!(wrong <= 2, "{wrong} mispredicts on a monotone branch");
    }

    #[test]
    fn learns_an_alternating_pattern_through_history() {
        let mut p = Gshare::new(12);
        for i in 0..2000u64 {
            p.predict_and_train(0x400200, i % 2 == 0);
        }
        // After warm-up, gshare's history disambiguates the alternation.
        let mut wrong = 0;
        for i in 2000..3000u64 {
            if !p.predict_and_train(0x400200, i % 2 == 0) {
                wrong += 1;
            }
        }
        assert!(wrong < 50, "{wrong} mispredicts on a learnable pattern");
    }

    #[test]
    fn random_branches_mispredict_half_the_time() {
        let mut p = Gshare::new(12);
        let mut rng = SuitRng::seed_from_u64(1);
        for _ in 0..20_000 {
            p.predict_and_train(rng.u64() & 0xfffc, rng.bool());
        }
        let r = p.mispredict_ratio();
        assert!((0.40..0.60).contains(&r), "ratio {r:.3}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_huge_tables() {
        let _ = Gshare::new(40);
    }
}
