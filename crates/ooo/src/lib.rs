//! # suit-ooo
//!
//! A simplified out-of-order CPU microarchitecture simulator — the gem5
//! substitute for the paper's IMUL-latency study (§6.1, Table 5, Fig. 14).
//!
//! The paper modifies gem5's O3 model to stretch the `IMUL` pipeline from
//! 3 to {4, 5, 6, 15, 30} cycles and measures SPEC CPU2017 slowdowns:
//! 0.03 % geometric mean and 1.60 % for 525.x264_r at 4 cycles, growing
//! near-linearly for large latencies. Reproducing that only requires an
//! out-of-order backend that (a) hides small latency increases behind
//! instruction-level parallelism and (b) exposes large ones once dependent
//! chains dominate — which is exactly what this crate models:
//!
//! * [`config`] — the machine description mirroring the paper's Table 5
//!   gem5 system (3 GHz O3 core, 64 kB L1I / 32 kB L1D / 2 MB LLC,
//!   DDR4-2400), with per-opcode-class functional-unit latencies including
//!   the configurable IMUL latency.
//! * [`cache`] — a set-associative, LRU, multi-level data-cache hierarchy.
//! * [`prefetch`] — a PC-indexed stride prefetcher (gem5 attaches one to
//!   the L1D by default), covering streaming benchmarks.
//! * [`bpred`] — a gshare branch predictor with 2-bit counters.
//! * [`core`] — the O3 backend: register renaming via a writer scoreboard,
//!   dispatch width, ROB occupancy limit, per-port issue with pipelined
//!   functional units, in-order retirement.
//! * [`workload`] — synthetic per-benchmark µop streams (instruction mix,
//!   dependency-distance distribution, memory footprint, branch
//!   predictability) calibrated to representative SPEC CPU2017 behaviour.
//! * [`fig14`] — the experiment harness regenerating Fig. 14.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bpred;
pub mod cache;
pub mod config;
pub mod core;
pub mod fig14;
pub mod prefetch;
pub mod workload;

pub use crate::core::{CoreStats, O3Core};
pub use config::O3Config;
