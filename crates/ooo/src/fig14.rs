//! The Fig. 14 experiment: SPEC slowdown vs. IMUL latency.
//!
//! The paper stretches gem5's IMUL from 3 cycles to {4, 5, 6, 15, 30} and
//! reports 0.03 % geometric-mean slowdown and 1.60 % for 525.x264_r at
//! 4 cycles, with an almost linear relationship at large latencies (the
//! out-of-order window hides small increments but not big ones).

use crate::config::O3Config;
use crate::core::O3Core;
use crate::workload::{spec_profiles, UopProfile, UopStream};

/// The latencies Fig. 14 sweeps (stock latency 3 is the baseline).
pub const FIG14_LATENCIES: [u32; 5] = [4, 5, 6, 15, 30];

/// Per-benchmark slowdowns across the latency sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Baseline IPC at the stock 3-cycle IMUL.
    pub base_ipc: f64,
    /// Fractional slowdown per entry of [`FIG14_LATENCIES`].
    pub slowdowns: Vec<f64>,
}

/// The complete Fig. 14 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14 {
    /// One row per SPEC benchmark.
    pub rows: Vec<Fig14Row>,
}

impl Fig14 {
    /// Geometric-mean slowdown at sweep index `i`.
    pub fn geomean(&self, i: usize) -> f64 {
        let sum: f64 = self.rows.iter().map(|r| (1.0 + r.slowdowns[i]).ln()).sum();
        (sum / self.rows.len() as f64).exp() - 1.0
    }

    /// The 525.x264 row.
    pub fn x264(&self) -> &Fig14Row {
        self.rows
            .iter()
            .find(|r| r.name == "525.x264")
            .expect("x264 present")
    }
}

fn run_one(profile: &UopProfile, imul_latency: u32, n: u64) -> f64 {
    let mut core = O3Core::new(O3Config::with_imul_latency(imul_latency));
    let stats = core.run(UopStream::new(profile.clone(), 0xf16), n);
    stats.cycles as f64
}

/// Runs the full sweep over all 23 SPEC benchmarks with `n` µops each.
///
/// Slowdown is `cycles(latency) / cycles(3) − 1` on identical µop streams
/// (same seed), so measurement noise is purely model-intrinsic.
pub fn run(n: u64) -> Fig14 {
    let rows = spec_profiles()
        .iter()
        .map(|p| {
            let base = run_one(p, 3, n);
            let base_ipc = n as f64 / base;
            let slowdowns = FIG14_LATENCIES
                .iter()
                .map(|&lat| run_one(p, lat, n) / base - 1.0)
                .collect();
            Fig14Row {
                name: p.name,
                base_ipc,
                slowdowns,
            }
        })
        .collect();
    Fig14 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig14_small() -> Fig14 {
        run(400_000)
    }

    #[test]
    fn four_cycle_imul_is_nearly_free_on_average() {
        // Paper: 0.03 % geomean slowdown at 4 cycles.
        let f = fig14_small();
        let g = f.geomean(0);
        assert!(g < 0.005, "geomean at 4 cycles: {:.4}", g);
        assert!(g > -0.002, "hardening cannot speed things up: {:.4}", g);
    }

    #[test]
    fn x264_is_hit_hardest() {
        // Paper: 1.60 % for 525.x264_r at 4 cycles — the only benchmark
        // with ~1 % IMUL density and multiply chains.
        let f = fig14_small();
        let x = f.x264();
        assert!(
            (0.004..0.04).contains(&x.slowdowns[0]),
            "x264 at 4 cycles: {:.4}",
            x.slowdowns[0]
        );
        // It must be the worst (or near-worst) benchmark.
        let worst = f
            .rows
            .iter()
            .map(|r| r.slowdowns[0])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            x.slowdowns[0] >= worst * 0.8,
            "{} vs {worst}",
            x.slowdowns[0]
        );
    }

    #[test]
    fn slowdown_grows_monotonically_with_latency() {
        let f = fig14_small();
        for i in 1..FIG14_LATENCIES.len() {
            assert!(
                f.geomean(i) >= f.geomean(i - 1) - 0.001,
                "geomean not monotone at index {i}"
            );
            let x = f.x264();
            assert!(x.slowdowns[i] >= x.slowdowns[i - 1] - 0.001);
        }
    }

    #[test]
    fn large_latencies_are_not_hidden() {
        // Fig. 14: "with higher latencies, we can see an almost linear
        // relationship" — 30 cycles must cost x264 double-digit percents.
        let f = fig14_small();
        let x = f.x264();
        let at30 = *x.slowdowns.last().unwrap();
        assert!(at30 > 0.10, "x264 at 30 cycles: {:.3}", at30);
        // And the increment 15 → 30 is comparable to 6 → 15 per cycle
        // (linear regime), unlike the hidden 3 → 4 increment.
        let per_cycle_low = x.slowdowns[0]; // 1 extra cycle
        let per_cycle_high = (at30 - x.slowdowns[3]) / 15.0;
        assert!(
            per_cycle_high > per_cycle_low,
            "latency hiding must saturate"
        );
    }
}
