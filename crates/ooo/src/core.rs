//! The out-of-order backend timing model.
//!
//! A dataflow timing simulator in the style of interval models: every µop
//! is processed once, in program order, and its *issue* and *completion*
//! cycles are computed from
//!
//! 1. **dispatch** — bounded by the front-end width, branch-redirect
//!    stalls, and ROB occupancy (a µop cannot dispatch until the µop
//!    `rob_size` ahead of it has retired);
//! 2. **operand readiness** — the maximum completion cycle of its
//!    producing instructions (register renaming means *only* true
//!    dependencies matter, which the writer scoreboard captures);
//! 3. **structural hazards** — per-port initiation intervals (the IMUL
//!    pipe stays fully pipelined at any latency, §4.2);
//! 4. **execution latency** — per-opcode, with loads walking the cache
//!    hierarchy.
//!
//! Retirement is in order. This is exactly the mechanism that makes a
//! 3 → 4 cycle IMUL almost free (consumers are usually scheduled ≥ 1 cycle
//! later anyway, and the ROB hides the slack) while a 30-cycle IMUL
//! serialises every multiply chain.

use std::collections::VecDeque;

use suit_isa::{InstKind, Opcode};
use suit_telemetry::{Counter, Telemetry};

use crate::bpred::Gshare;
use crate::cache::Hierarchy;
use crate::config::{O3Config, Port};
use crate::prefetch::StridePrefetcher;
use crate::workload::Uop;

/// Aggregate statistics of one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreStats {
    /// Retired instructions.
    pub insts: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// L1D misses observed by loads.
    pub l1d_misses: u64,
    /// Σ cycles µops waited on *true dependencies* after dispatch.
    pub wait_dep_cycles: u64,
    /// Σ cycles µops waited on a busy functional-unit port.
    pub wait_port_cycles: u64,
    /// Σ cycles dispatch stalled on a full ROB.
    pub rob_stall_cycles: u64,
    /// Σ cycles the front end was squashed after mispredicts.
    pub branch_stall_cycles: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.insts as f64 / self.cycles.max(1) as f64
    }

    /// Mean dependency wait per instruction, cycles — the quantity the
    /// IMUL-latency experiment moves.
    pub fn dep_wait_per_inst(&self) -> f64 {
        self.wait_dep_cycles as f64 / self.insts.max(1) as f64
    }

    /// Mean structural (port) wait per instruction, cycles.
    pub fn port_wait_per_inst(&self) -> f64 {
        self.wait_port_cycles as f64 / self.insts.max(1) as f64
    }
}

/// The out-of-order core simulator.
#[derive(Debug, Clone)]
pub struct O3Core {
    cfg: O3Config,
    hier: Hierarchy,
    bpred: Gshare,
    prefetcher: Option<StridePrefetcher>,
}

impl O3Core {
    /// Builds a core from the machine configuration.
    pub fn new(cfg: O3Config) -> Self {
        let hier = Hierarchy::new(&cfg);
        let prefetcher = cfg.prefetcher.then(StridePrefetcher::default);
        O3Core {
            cfg,
            hier,
            bpred: Gshare::new(14),
            prefetcher,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &O3Config {
        &self.cfg
    }

    /// [`Self::run`] with microarchitectural telemetry: mispredicts, L1D
    /// misses and ROB-full stall cycles are added to `tele`'s counters
    /// after the run. Pure observation — the returned statistics are
    /// identical to [`Self::run`]'s.
    pub fn run_telemetry<I: Iterator<Item = Uop>>(
        &mut self,
        stream: I,
        n: u64,
        tele: &Telemetry,
    ) -> CoreStats {
        let stats = self.run(stream, n);
        tele.add(Counter::OooMispredicts, stats.mispredicts);
        tele.add(Counter::OooL1dMisses, stats.l1d_misses);
        tele.add(Counter::OooRobStallCycles, stats.rob_stall_cycles);
        stats
    }

    /// Runs `n` µops from `stream` and returns timing statistics.
    pub fn run<I: Iterator<Item = Uop>>(&mut self, stream: I, n: u64) -> CoreStats {
        let cfg = &self.cfg;
        let mut reg_ready = [0u64; 64];
        let mut rob: VecDeque<u64> = VecDeque::with_capacity(cfg.rob_size);
        let mut port_free = [0u64; Port::ALL.len()];
        let mut dispatch_cycle: u64 = 0;
        let mut dispatched_this_cycle: u32 = 0;
        let mut fetch_ready: u64 = 0;
        let mut last_retire: u64 = 0;
        let mut mispredicts: u64 = 0;
        let mut l1d_misses: u64 = 0;
        let mut insts: u64 = 0;
        let mut wait_dep_cycles: u64 = 0;
        let mut wait_port_cycles: u64 = 0;
        let mut rob_stall_cycles: u64 = 0;
        let mut branch_stall_cycles: u64 = 0;

        for uop in stream.take(n as usize) {
            insts += 1;

            // --- Dispatch ---
            let base = dispatch_cycle;
            let mut d = dispatch_cycle.max(fetch_ready);
            branch_stall_cycles += fetch_ready.saturating_sub(base);
            if rob.len() == cfg.rob_size {
                // Head must retire before we get an entry.
                let head = rob.pop_front().expect("rob non-empty");
                rob_stall_cycles += head.saturating_sub(d.max(base));
                d = d.max(head);
            }
            if d > dispatch_cycle {
                dispatch_cycle = d;
                dispatched_this_cycle = 0;
            }
            if dispatched_this_cycle >= cfg.width {
                dispatch_cycle += 1;
                dispatched_this_cycle = 0;
            }
            let d = dispatch_cycle;
            dispatched_this_cycle += 1;

            // --- Operand readiness (true dependencies only) ---
            let mut ready = d;
            for s in uop.inst.sources() {
                ready = ready.max(reg_ready[s as usize]);
            }

            // --- Structural: pick a port ---
            let mut port = cfg.port(uop.inst.opcode);
            if port == Port::Alu0 && port_free[Port::Alu0.index()] > ready {
                // Second ALU port.
                if port_free[Port::Alu1.index()] <= port_free[Port::Alu0.index()] {
                    port = Port::Alu1;
                }
            }
            let issue = ready.max(port_free[port.index()]);
            wait_dep_cycles += ready.saturating_sub(d);
            wait_port_cycles += issue.saturating_sub(ready);
            port_free[port.index()] = issue + u64::from(cfg.initiation_interval(uop.inst.opcode));

            // --- Execute ---
            let latency = match uop.inst.kind() {
                InstKind::Load => {
                    let addr = uop.addr.expect("loads carry addresses");
                    let lat = self.hier.load_latency(addr);
                    if lat > cfg.l1d_latency {
                        l1d_misses += 1;
                    }
                    if let Some(pf) = &mut self.prefetcher {
                        pf.observe(&mut self.hier, uop.pc, addr);
                    }
                    u64::from(lat)
                }
                InstKind::Store => {
                    // Committed through the store buffer; address check only.
                    if let Some(addr) = uop.addr {
                        let _ = self.hier.load_latency(addr); // line fill for ownership
                    }
                    1
                }
                _ => u64::from(cfg.latency(uop.inst.opcode)),
            };
            let complete = issue + latency;

            // --- Branch resolution ---
            if uop.inst.opcode == Opcode::Branch {
                let taken = uop.taken.unwrap_or(false);
                if !self.bpred.predict_and_train(uop.pc, taken) {
                    mispredicts += 1;
                    fetch_ready = fetch_ready.max(complete + u64::from(cfg.mispredict_penalty));
                }
            }

            // --- Writeback & in-order retire ---
            if let Some(dst) = uop.inst.dst {
                reg_ready[dst as usize] = complete;
            }
            let retire = complete.max(last_retire);
            last_retire = retire;
            rob.push_back(retire);
        }

        CoreStats {
            insts,
            cycles: last_retire.max(dispatch_cycle) + 1,
            mispredicts,
            l1d_misses,
            wait_dep_cycles,
            wait_port_cycles,
            rob_stall_cycles,
            branch_stall_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{by_name, UopStream};
    use suit_isa::Inst;

    /// Handy builder for raw µop sequences.
    fn compute(op: Opcode, dst: u8, s1: u8, s2: u8) -> Uop {
        Uop {
            inst: Inst::new(op, dst, s1, s2),
            addr: None,
            taken: None,
            pc: 0x1000,
        }
    }

    #[test]
    fn independent_alu_ops_reach_dual_issue() {
        // 2 ALU ports limit independent ALU throughput to 2/cycle.
        let mut core = O3Core::new(O3Config::default());
        let uops = (0..20_000u64).map(|i| compute(Opcode::Alu, (i % 32) as u8, 40, 50));
        let stats = core.run(uops, 20_000);
        let ipc = stats.ipc();
        assert!((1.8..=2.05).contains(&ipc), "ipc {ipc:.2}");
    }

    #[test]
    fn dependent_chain_serialises() {
        // A strict ALU dependency chain runs at 1 IPC (latency 1).
        let mut core = O3Core::new(O3Config::default());
        let uops = (0..10_000u64).map(|i| {
            let dst = ((i + 1) % 2) as u8;
            let src = (i % 2) as u8;
            compute(Opcode::Alu, dst, src, src)
        });
        let stats = core.run(uops, 10_000);
        let ipc = stats.ipc();
        assert!((0.95..=1.05).contains(&ipc), "ipc {ipc:.2}");
    }

    #[test]
    fn imul_chain_exposes_full_latency() {
        // Chained multiplies run at 1 / latency IPC.
        for lat in [3u32, 4, 10] {
            let mut core = O3Core::new(O3Config::with_imul_latency(lat));
            let uops = (0..10_000u64).map(|i| {
                let dst = ((i + 1) % 2) as u8;
                let src = (i % 2) as u8;
                compute(Opcode::Imul, dst, src, src)
            });
            let stats = core.run(uops, 10_000);
            let expect = 1.0 / f64::from(lat);
            assert!(
                (stats.ipc() - expect).abs() < 0.01,
                "lat {lat}: ipc {:.3} vs {expect:.3}",
                stats.ipc()
            );
        }
    }

    #[test]
    fn independent_imuls_are_throughput_bound_at_any_latency() {
        // §4.2: IMUL is fully pipelined; latency does not change the
        // throughput of independent multiplies (1/cycle on the MUL port).
        let run = |lat| {
            let mut core = O3Core::new(O3Config::with_imul_latency(lat));
            let uops = (0..20_000u64).map(|i| compute(Opcode::Imul, (i % 32) as u8, 40, 50));
            core.run(uops, 20_000).ipc()
        };
        let base = run(3);
        let hardened = run(4);
        let wild = run(30);
        assert!((base - 1.0).abs() < 0.02, "base ipc {base:.3}");
        assert!((hardened - base).abs() < 0.02);
        assert!(
            (wild - base).abs() < 0.05,
            "30-cycle pipelined ipc {wild:.3}"
        );
    }

    #[test]
    fn rob_limits_memory_level_parallelism() {
        // All-DRAM-miss loads: ROB-many can overlap; IPC ≈ rob / dram.
        // (Prefetching off: the constant-stride test pattern would
        // otherwise be covered and measure the prefetcher instead.)
        let cfg = O3Config {
            prefetcher: false,
            ..O3Config::default()
        };
        let mut core = O3Core::new(cfg.clone());
        // Strided far beyond any cache: every load misses to DRAM.
        let uops = (0..40_000u64).map(|i| Uop {
            inst: Inst::load((i % 32) as u8, 40),
            addr: Some(i * 1024 * 1024 * 7),
            taken: None,
            pc: 0x1000,
        });
        let stats = core.run(uops, 40_000);
        let bound = cfg.rob_size as f64 / f64::from(cfg.dram_latency);
        assert!(
            (stats.ipc() - bound).abs() / bound < 0.3,
            "ipc {:.3} vs MLP bound {bound:.3}",
            stats.ipc()
        );
        assert!(stats.l1d_misses > 39_000);
    }

    #[test]
    fn mispredicts_cost_cycles() {
        let p = by_name("505.mcf").unwrap();
        let mut predictable = p.clone();
        predictable.branch_random_frac = 0.0;
        let mut random = p;
        random.branch_random_frac = 1.0;
        let mut c1 = O3Core::new(O3Config::default());
        let s1 = c1.run(UopStream::new(predictable, 1), 200_000);
        let mut c2 = O3Core::new(O3Config::default());
        let s2 = c2.run(UopStream::new(random, 1), 200_000);
        assert!(s2.mispredicts > 10 * s1.mispredicts.max(1));
        assert!(s2.ipc() < s1.ipc(), "{:.3} vs {:.3}", s2.ipc(), s1.ipc());
    }

    #[test]
    fn stall_attribution_identifies_the_bottleneck() {
        // Chained multiplies: dependency wait dominates and grows with
        // latency (the Fig. 14 mechanism, visible in the attribution).
        let chain = |lat| {
            let mut core = O3Core::new(O3Config::with_imul_latency(lat));
            let uops = (0..10_000u64).map(|i| {
                let dst = ((i + 1) % 2) as u8;
                let src = (i % 2) as u8;
                compute(Opcode::Imul, dst, src, src)
            });
            core.run(uops, 10_000)
        };
        let s3 = chain(3);
        let s30 = chain(30);
        assert!(s3.dep_wait_per_inst() > 1.0, "{}", s3.dep_wait_per_inst());
        assert!(
            s30.dep_wait_per_inst() > s3.dep_wait_per_inst() * 5.0,
            "{} vs {}",
            s30.dep_wait_per_inst(),
            s3.dep_wait_per_inst()
        );
        assert!(s3.port_wait_per_inst() < 0.1, "no structural pressure");

        // Independent single-port multiplies: structural wait dominates
        // (4-wide dispatch into a 1/cycle MUL port).
        let mut core = O3Core::new(O3Config::default());
        let uops = (0..10_000u64).map(|i| compute(Opcode::Imul, (i % 32) as u8, 40, 50));
        let s = core.run(uops, 10_000);
        assert!(s.port_wait_per_inst() > s.dep_wait_per_inst());
    }

    #[test]
    fn run_telemetry_mirrors_core_stats() {
        let p = by_name("505.mcf").unwrap();
        let mut c1 = O3Core::new(O3Config::default());
        let plain = c1.run(UopStream::new(p.clone(), 1), 100_000);
        let mut c2 = O3Core::new(O3Config::default());
        let tele = Telemetry::recording();
        let traced = c2.run_telemetry(UopStream::new(p, 1), 100_000, &tele);
        assert_eq!(plain, traced, "telemetry must not perturb the model");
        let snap = tele.snapshot();
        assert_eq!(snap.counter(Counter::OooMispredicts), plain.mispredicts);
        assert_eq!(snap.counter(Counter::OooL1dMisses), plain.l1d_misses);
        assert_eq!(
            snap.counter(Counter::OooRobStallCycles),
            plain.rob_stall_cycles
        );
    }

    #[test]
    fn spec_streams_have_plausible_ipc() {
        for name in ["525.x264", "505.mcf", "519.lbm"] {
            let p = by_name(name).unwrap();
            let mut core = O3Core::new(O3Config::default());
            let stats = core.run(UopStream::new(p, 2), 300_000);
            let ipc = stats.ipc();
            assert!((0.03..=3.5).contains(&ipc), "{name}: ipc {ipc:.2}");
        }
        // mcf (64 MB pointer chasing) must be much slower than x264.
        let mut c1 = O3Core::new(O3Config::default());
        let x264 = c1.run(UopStream::new(by_name("525.x264").unwrap(), 2), 300_000);
        let mut c2 = O3Core::new(O3Config::default());
        let mcf = c2.run(UopStream::new(by_name("505.mcf").unwrap(), 2), 300_000);
        assert!(x264.ipc() > 1.5 * mcf.ipc());
    }
}
