//! Synthetic per-benchmark µop streams.
//!
//! gem5 executed real SPEC CPU2017 binaries (via SPECcast's representative
//! slices); we have no binaries, so each benchmark is modelled as a
//! statistical µop stream with the properties that matter to the §6.1
//! question — *how visible is one extra IMUL cycle?*:
//!
//! * the instruction **mix** (IMUL density: 0.99 % in 525.x264_r, 0.07 %
//!   elsewhere — §6.1; load/store/branch/FP/SIMD shares by suite),
//! * the **dependency-distance** distribution (how soon a result is
//!   consumed — short distances put latency on the critical path),
//! * **IMUL chaining** (x264's motion-estimation kernels chain multiplies;
//!   sparse IMULs elsewhere are mostly independent),
//! * the **memory footprint** and streaming behaviour (drives cache
//!   misses, which dominate the baseline CPI),
//! * **branch predictability** (drives pipeline flushes).

use suit_isa::{Inst, Opcode};
use suit_rng::{Rng, SuitRng};

/// Number of rotating architectural registers used by the generator.
/// Registers above the ring are reserved; 63 is the IMUL accumulator.
const REG_RING: u64 = 56;

/// The loop-carried multiply accumulator register (never recycled by the
/// ring, so multiply chains survive arbitrarily long gaps).
pub const IMUL_ACC: u8 = 63;

/// One micro-op: a decoded instruction plus its dynamic context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uop {
    /// The decoded instruction (registers encode true dependencies).
    pub inst: Inst,
    /// Effective address for loads/stores.
    pub addr: Option<u64>,
    /// Actual branch outcome for branches.
    pub taken: Option<bool>,
    /// Program counter (for the branch predictor).
    pub pc: u64,
}

/// Statistical description of one benchmark's µop stream.
#[derive(Debug, Clone, PartialEq)]
pub struct UopProfile {
    /// Benchmark name.
    pub name: &'static str,
    /// Fraction of instructions that are IMUL.
    pub imul_frac: f64,
    /// Load fraction.
    pub load_frac: f64,
    /// Store fraction.
    pub store_frac: f64,
    /// Branch fraction.
    pub branch_frac: f64,
    /// Scalar FP fraction.
    pub fp_frac: f64,
    /// SIMD fraction.
    pub simd_frac: f64,
    /// Mean register dependency distance (geometric).
    pub dep_distance_mean: f64,
    /// Probability that an IMUL reads the previous IMUL's result
    /// (multiply chains).
    pub imul_chain_frac: f64,
    /// Mean length of consecutive dependent-IMUL runs (1 = isolated
    /// multiplies).
    pub imul_run_mean: f64,
    /// Fraction of instructions spent inside dense multiply kernels
    /// (525.x264's motion-estimation phases; 0 elsewhere).
    pub imul_phase_frac: f64,
    /// Local IMUL density inside a multiply kernel.
    pub imul_phase_density: f64,
    /// Data working-set size in bytes.
    pub working_set: u64,
    /// Fraction of memory accesses that stream sequentially.
    pub stream_frac: f64,
    /// Fraction of non-streaming accesses that hit a hot, L1-resident
    /// 16 kB region (temporal locality; low for pointer-chasers like mcf).
    pub hot_frac: f64,
    /// Fraction of branches with data-dependent (random) outcomes.
    pub branch_random_frac: f64,
}

impl UopProfile {
    fn int(name: &'static str, dep: f64, ws_kb: u64, brnd: f64) -> Self {
        UopProfile {
            name,
            imul_frac: 0.0007,
            load_frac: 0.25,
            store_frac: 0.10,
            branch_frac: 0.20,
            fp_frac: 0.0,
            simd_frac: 0.02,
            dep_distance_mean: dep,
            imul_chain_frac: 0.25,
            imul_run_mean: 1.0,
            imul_phase_frac: 0.0,
            imul_phase_density: 0.0,
            working_set: ws_kb * 1024,
            stream_frac: 0.3,
            hot_frac: 0.85,
            branch_random_frac: brnd,
        }
    }

    fn fp(name: &'static str, dep: f64, ws_kb: u64, stream: f64) -> Self {
        UopProfile {
            name,
            imul_frac: 0.0007,
            load_frac: 0.28,
            store_frac: 0.12,
            branch_frac: 0.06,
            fp_frac: 0.25,
            simd_frac: 0.15,
            dep_distance_mean: dep,
            imul_chain_frac: 0.25,
            imul_run_mean: 1.0,
            imul_phase_frac: 0.0,
            imul_phase_density: 0.0,
            working_set: ws_kb * 1024,
            stream_frac: stream,
            hot_frac: 0.75,
            branch_random_frac: 0.02,
        }
    }
}

/// The 23 SPEC CPU2017 µop profiles.
pub fn spec_profiles() -> Vec<UopProfile> {
    let mut v = vec![
        UopProfile::int("500.perlbench", 9.0, 128, 0.05),
        UopProfile::int("502.gcc", 8.0, 4096, 0.08),
        UopProfile {
            hot_frac: 0.45,                                   // pointer chasing: poor locality
            ..UopProfile::int("505.mcf", 6.0, 1 << 16, 0.12)  // 64 MB
        },
        UopProfile {
            hot_frac: 0.60,
            ..UopProfile::int("520.omnetpp", 7.0, 1 << 15, 0.10)
        },
        UopProfile::int("523.xalancbmk", 9.0, 2048, 0.06),
        // 525.x264: multiplies concentrate in motion-estimation kernels —
        // compute-dense phases (~10 % of execution) where every tenth
        // instruction is an IMUL chained through a loop-carried cost
        // accumulator. Inside the kernel the multiply chain *is* the
        // critical path, which is what makes Fig. 14's large-latency
        // slowdowns possible while the 3 → 4 step stays small.
        UopProfile {
            name: "525.x264",
            imul_frac: 0.0099,
            imul_chain_frac: 1.0,
            imul_phase_frac: 0.066,
            imul_phase_density: 0.15,
            dep_distance_mean: 14.0, // heavily unrolled encoder loops
            load_frac: 0.22,
            stream_frac: 0.05,
            hot_frac: 0.95, // macroblock data is cache-resident
            ..UopProfile::int("525.x264", 14.0, 512, 0.03)
        },
        UopProfile::int("531.deepsjeng", 8.0, 4096, 0.10),
        UopProfile::int("541.leela", 8.0, 1024, 0.09),
        UopProfile::int("548.exchange2", 12.0, 64, 0.01),
        UopProfile::int("557.xz", 7.0, 1 << 14, 0.09),
        UopProfile::fp("503.bwaves", 14.0, 1 << 14, 0.8),
        UopProfile::fp("507.cactuBSSN", 12.0, 1 << 13, 0.7),
        UopProfile::fp("508.namd", 10.0, 512, 0.5),
        UopProfile::fp("510.parest", 12.0, 1 << 13, 0.6),
        UopProfile::fp("511.povray", 10.0, 256, 0.3),
        UopProfile::fp("519.lbm", 16.0, 1 << 15, 0.9),
        UopProfile::fp("521.wrf", 13.0, 1 << 13, 0.7),
        UopProfile::fp("526.blender", 11.0, 2048, 0.4),
        UopProfile::fp("527.cam4", 12.0, 1 << 13, 0.6),
        UopProfile::fp("538.imagick", 10.0, 1024, 0.6),
        UopProfile::fp("544.nab", 11.0, 512, 0.4),
        UopProfile::fp("549.fotonik3d", 14.0, 1 << 14, 0.8),
        UopProfile::fp("554.roms", 14.0, 1 << 14, 0.8),
    ];
    v.sort_by_key(|p| p.name);
    v
}

/// Looks up a SPEC µop profile by name.
pub fn by_name(name: &str) -> Option<UopProfile> {
    spec_profiles().into_iter().find(|p| p.name == name)
}

/// A deterministic generator of [`Uop`]s for one profile.
#[derive(Debug, Clone)]
pub struct UopStream {
    p: UopProfile,
    rng: SuitRng,
    i: u64,
    last_imul_dst: Option<u8>,
    imul_run_left: u32,
    /// Instructions left in the current multiply kernel (0 = regular code).
    kernel_left: u64,
    /// Instructions until the next multiply kernel starts.
    until_kernel: u64,
    stream_addr: u64,
    kernel_addr: u64,
    pc: u64,
}

/// Length of one multiply kernel, instructions.
const KERNEL_LEN: u64 = 2_000;

impl UopStream {
    /// Creates a seeded stream.
    pub fn new(profile: UopProfile, seed: u64) -> Self {
        let until_kernel = if profile.imul_phase_frac > 0.0 {
            (KERNEL_LEN as f64 * (1.0 - profile.imul_phase_frac) / profile.imul_phase_frac) as u64
        } else {
            u64::MAX
        };
        UopStream {
            p: profile,
            rng: SuitRng::seed_from_u64(seed),
            i: 0,
            last_imul_dst: None,
            imul_run_left: 0,
            kernel_left: 0,
            until_kernel,
            stream_addr: 0,
            kernel_addr: 0,
            pc: 0x40_0000,
        }
    }

    fn in_kernel(&self) -> bool {
        self.kernel_left > 0
    }

    fn step_phase(&mut self) {
        if self.kernel_left > 0 {
            self.kernel_left -= 1;
        } else if self.until_kernel != u64::MAX {
            if self.until_kernel == 0 {
                self.kernel_left = KERNEL_LEN - 1;
                self.until_kernel = (KERNEL_LEN as f64 * (1.0 - self.p.imul_phase_frac)
                    / self.p.imul_phase_frac) as u64;
            } else {
                self.until_kernel -= 1;
            }
        }
    }

    // Same inverse-CDF sampler as suit_trace::gen (kept local so the
    // µop substrate stays independent of the trace crate), with the
    // result clamped against pathological draws at extreme means.
    fn geometric(&mut self, mean: f64) -> u64 {
        if mean <= 1.0 {
            return 1;
        }
        let q = 1.0 - 1.0 / mean;
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let k = (u.ln() / q.ln()).floor();
        if k.is_finite() && k >= 0.0 {
            (k as u64).saturating_add(1).min(1 << 32)
        } else {
            1
        }
    }

    /// Mix inside a multiply kernel: compute-dense, cache-resident,
    /// predictable — the multiply chain is the only long dependency.
    fn sample_kernel_opcode(&mut self) -> Opcode {
        let x: f64 = self.rng.f64();
        if x < self.p.imul_phase_density {
            Opcode::Imul
        } else if x < self.p.imul_phase_density + 0.10 {
            Opcode::Load
        } else if x < self.p.imul_phase_density + 0.15 {
            Opcode::Branch
        } else {
            Opcode::Alu
        }
    }

    fn sample_opcode(&mut self) -> Opcode {
        if self.in_kernel() {
            return self.sample_kernel_opcode();
        }
        // A pending multiply run forces consecutive dependent IMULs.
        if self.imul_run_left > 0 {
            self.imul_run_left -= 1;
            return Opcode::Imul;
        }
        let x: f64 = self.rng.f64();
        let p = &self.p;
        // Run starts are rarer by the run length so the *overall* IMUL
        // density still matches `imul_frac` (kernel IMULs count toward it).
        let background = (p.imul_frac - p.imul_phase_frac * p.imul_phase_density).max(0.0);
        let mut acc = background / p.imul_run_mean.max(1.0);
        if x < acc {
            if p.imul_run_mean > 1.0 {
                self.imul_run_left = self.geometric(p.imul_run_mean).min(32) as u32;
                self.imul_run_left = self.imul_run_left.saturating_sub(1);
            }
            return Opcode::Imul;
        }
        acc += p.load_frac;
        if x < acc {
            return Opcode::Load;
        }
        acc += p.store_frac;
        if x < acc {
            return Opcode::Store;
        }
        acc += p.branch_frac;
        if x < acc {
            return Opcode::Branch;
        }
        acc += p.fp_frac;
        if x < acc {
            return Opcode::Fp;
        }
        acc += p.simd_frac;
        if x < acc {
            return Opcode::SimdOther;
        }
        Opcode::Alu
    }

    fn src_at_distance(&mut self) -> u8 {
        // Kernels unroll heavily: dependencies are farther apart than in
        // regular code.
        let mean = if self.in_kernel() {
            16.0
        } else {
            self.p.dep_distance_mean
        };
        let d = self.geometric(mean).min(REG_RING - 1);
        ((self.i + REG_RING - d) % REG_RING) as u8
    }

    fn never_written(&mut self) -> u8 {
        // Registers 56..62 are never destinations: always-ready operands.
        56 + (self.rng.u8() % 7)
    }

    fn address(&mut self) -> u64 {
        if self.in_kernel() {
            // Reference blocks live in an L1-resident 16 kB buffer.
            self.kernel_addr = (self.kernel_addr + 64) % (16 * 1024);
            return self.kernel_addr;
        }
        if self.rng.f64() < self.p.stream_frac {
            self.stream_addr = self.stream_addr.wrapping_add(64) % self.p.working_set.max(64);
            self.stream_addr
        } else if self.rng.f64() < self.p.hot_frac {
            // Hot, L1-resident 16 kB region.
            self.rng.gen_range(0..16 * 1024u64) & !7
        } else {
            self.rng.gen_range(0..self.p.working_set.max(64)) & !7
        }
    }
}

impl Iterator for UopStream {
    type Item = Uop;

    fn next(&mut self) -> Option<Uop> {
        let op = self.sample_opcode();
        // Chained multiplies read *and* write the loop-carried accumulator,
        // so the dependency survives ring recycling — the x264 pattern.
        let chained_imul = op == Opcode::Imul && self.rng.f64() < self.p.imul_chain_frac;
        let dst = if chained_imul {
            IMUL_ACC
        } else {
            (self.i % REG_RING) as u8
        };
        let src1 = if chained_imul {
            IMUL_ACC
        } else {
            self.src_at_distance()
        };
        let _ = self.never_written(); // keep RNG stream shape stable
        let src2 = self.src_at_distance();

        let (inst, addr, taken) = match op {
            Opcode::Load => (Inst::load(dst, src1), Some(self.address()), None),
            Opcode::Store => (Inst::store(src1, src2), Some(self.address()), None),
            Opcode::Branch => {
                let random = !self.in_kernel() && self.rng.f64() < self.p.branch_random_frac;
                let taken = if random {
                    self.rng.bool()
                } else {
                    // Predictable loop back-edge behaviour.
                    self.i % 16 != 0
                };
                (Inst::branch(src1), None, Some(taken))
            }
            op => (Inst::new(op, dst, src1, src2), None, None),
        };

        if op == Opcode::Imul {
            self.last_imul_dst = Some(dst);
        }
        self.step_phase();
        self.pc = self.pc.wrapping_add(4) & 0xff_ffff;
        self.i += 1;
        Some(Uop {
            inst,
            addr,
            taken,
            pc: self.pc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_23_profiles() {
        assert_eq!(spec_profiles().len(), 23);
        assert!(by_name("525.x264").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn x264_has_paper_imul_density() {
        let p = by_name("525.x264").unwrap();
        assert!((p.imul_frac - 0.0099).abs() < 1e-9);
        for other in spec_profiles().iter().filter(|p| p.name != "525.x264") {
            assert!((other.imul_frac - 0.0007).abs() < 1e-9, "{}", other.name);
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let p = by_name("502.gcc").unwrap();
        let a: Vec<Uop> = UopStream::new(p.clone(), 7).take(1000).collect();
        let b: Vec<Uop> = UopStream::new(p, 7).take(1000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn mix_fractions_converge() {
        let p = by_name("525.x264").unwrap();
        let n = 400_000;
        let uops: Vec<Uop> = UopStream::new(p, 3).take(n).collect();
        let imuls = uops
            .iter()
            .filter(|u| u.inst.opcode == Opcode::Imul)
            .count();
        let loads = uops
            .iter()
            .filter(|u| u.inst.opcode == Opcode::Load)
            .count();
        let f_imul = imuls as f64 / n as f64;
        let f_load = loads as f64 / n as f64;
        assert!((f_imul - 0.0099).abs() < 0.002, "imul {f_imul:.4}");
        // Global load share blends the regular mix (0.22) with the
        // load-lighter multiply kernels (0.10 over 6.6 % of the stream).
        assert!((f_load - 0.21).abs() < 0.02, "load {f_load:.3}");
    }

    #[test]
    fn dependencies_point_backwards() {
        let p = by_name("502.gcc").unwrap();
        for (i, u) in UopStream::new(p, 5).take(5000).enumerate() {
            let ring_dst = (i as u64 % REG_RING) as u8;
            let dst = u.inst.dst.unwrap_or(ring_dst);
            assert!(dst == ring_dst || dst == IMUL_ACC, "unexpected dst {dst}");
            for s in u.inst.sources() {
                // Only the multiply accumulator may read its own name
                // (a true loop-carried dependency on the previous value).
                if s == dst {
                    assert_eq!(dst, IMUL_ACC, "ring self-dependency at {i}");
                }
            }
        }
    }

    #[test]
    fn x264_multiplies_chain_through_the_accumulator() {
        let p = by_name("525.x264").unwrap();
        let imuls: Vec<Uop> = UopStream::new(p, 5)
            .take(300_000)
            .filter(|u| u.inst.opcode == Opcode::Imul)
            .collect();
        assert!(!imuls.is_empty());
        let chained = imuls
            .iter()
            .filter(|u| u.inst.dst == Some(IMUL_ACC))
            .count();
        assert!(
            chained as f64 / imuls.len() as f64 > 0.95,
            "{chained}/{} chained",
            imuls.len()
        );
    }

    #[test]
    fn addresses_stay_in_working_set() {
        let p = by_name("505.mcf").unwrap();
        let ws = p.working_set;
        for u in UopStream::new(p, 9).take(20_000) {
            if let Some(a) = u.addr {
                assert!(a < ws, "{a} outside working set {ws}");
            }
        }
    }
}
