//! Machine configuration — the Table 5 gem5 system.

use suit_isa::{Opcode, OpcodeClass};

/// Functional-unit port classes of the backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// Simple integer ALU (two ports).
    Alu0,
    /// Second ALU port.
    Alu1,
    /// Integer multiply/divide pipe.
    Mul,
    /// SIMD / FP pipe.
    Vec,
    /// Load port.
    Load,
    /// Store port.
    Store,
    /// Branch port.
    Branch,
}

impl Port {
    /// All ports, for iteration.
    pub const ALL: [Port; 7] = [
        Port::Alu0,
        Port::Alu1,
        Port::Mul,
        Port::Vec,
        Port::Load,
        Port::Store,
        Port::Branch,
    ];

    /// Dense index.
    pub fn index(self) -> usize {
        match self {
            Port::Alu0 => 0,
            Port::Alu1 => 1,
            Port::Mul => 2,
            Port::Vec => 3,
            Port::Load => 4,
            Port::Store => 5,
            Port::Branch => 6,
        }
    }
}

/// The out-of-order machine description (paper Table 5: x86-64 O3 CPU at
/// 3 GHz, full-system gem5, 64 kB L1I, 32 kB L1D, 2 MB LLC, DDR4-2400).
#[derive(Debug, Clone, PartialEq)]
pub struct O3Config {
    /// Core clock, GHz (Table 5: 3 GHz).
    pub freq_ghz: f64,
    /// Dispatch/retire width, instructions per cycle.
    pub width: u32,
    /// Reorder-buffer capacity.
    pub rob_size: usize,
    /// IMUL latency in cycles — *the* experimental knob (§6.1). Stock
    /// CPUs use 3; SUIT hardens to 4; the sweep goes to 30.
    pub imul_latency: u32,
    /// Scalar ALU latency.
    pub alu_latency: u32,
    /// Integer divide latency (unpipelined).
    pub div_latency: u32,
    /// Scalar FP latency.
    pub fp_latency: u32,
    /// SIMD latency.
    pub simd_latency: u32,
    /// L1D hit latency, cycles.
    pub l1d_latency: u32,
    /// L2/LLC hit latency, cycles.
    pub llc_latency: u32,
    /// DRAM access latency, cycles (DDR4-2400 ≈ 60 ns at 3 GHz).
    pub dram_latency: u32,
    /// L1D size in bytes (Table 5: 32 kB).
    pub l1d_bytes: usize,
    /// LLC size in bytes (Table 5: 2 MB).
    pub llc_bytes: usize,
    /// Branch mispredict redirect penalty, cycles.
    pub mispredict_penalty: u32,
    /// Enable the L1D stride prefetcher (gem5 attaches one by default).
    pub prefetcher: bool,
}

impl Default for O3Config {
    fn default() -> Self {
        O3Config {
            freq_ghz: 3.0,
            width: 4,
            rob_size: 192,
            imul_latency: 3,
            alu_latency: 1,
            div_latency: 20,
            fp_latency: 4,
            simd_latency: 3,
            l1d_latency: 4,
            llc_latency: 30,
            dram_latency: 180,
            l1d_bytes: 32 * 1024,
            llc_bytes: 2 * 1024 * 1024,
            mispredict_penalty: 14,
            prefetcher: true,
        }
    }
}

impl O3Config {
    /// The Table 5 system with a given IMUL latency.
    pub fn with_imul_latency(imul_latency: u32) -> Self {
        assert!(imul_latency >= 1, "latency must be at least one cycle");
        O3Config {
            imul_latency,
            ..O3Config::default()
        }
    }

    /// Execution latency for an opcode.
    pub fn latency(&self, op: Opcode) -> u32 {
        match op {
            Opcode::Imul => self.imul_latency,
            Opcode::Div => self.div_latency,
            Opcode::Fp => self.fp_latency,
            Opcode::Vsqrtpd => 15,
            op if op.class() == OpcodeClass::Simd => self.simd_latency,
            Opcode::Aesenc => 4,
            Opcode::Branch => 1,
            // Loads get their latency from the cache model; this is the
            // address-generation part.
            Opcode::Load | Opcode::Store => 1,
            _ => self.alu_latency,
        }
    }

    /// Issue port for an opcode. The second ALU port is chosen dynamically
    /// by the core; this returns the primary port.
    pub fn port(&self, op: Opcode) -> Port {
        match op {
            Opcode::Imul | Opcode::Div => Port::Mul,
            Opcode::Load => Port::Load,
            Opcode::Store => Port::Store,
            Opcode::Branch => Port::Branch,
            Opcode::Fp | Opcode::Aesenc => Port::Vec,
            op if op.class() == OpcodeClass::Simd => Port::Vec,
            _ => Port::Alu0,
        }
    }

    /// Issue initiation interval on the port (1 = fully pipelined). The
    /// multiplier stays fully pipelined at *any* latency — §4.2: "while
    /// the latency is 3 cycles, already after the first cycle, another
    /// input can be pushed into the IMUL pipeline".
    pub fn initiation_interval(&self, op: Opcode) -> u32 {
        match op {
            Opcode::Div => self.div_latency, // unpipelined
            Opcode::Vsqrtpd => 8,
            _ => 1,
        }
    }

    /// Renders the configuration as the paper's Table 5 rows.
    pub fn table5(&self) -> Vec<(String, String)> {
        vec![
            (
                "CPU".into(),
                format!(
                    "x86-64, 2 Core, {} GHz, O3 (Out-Of-Order) CPU",
                    self.freq_ghz
                ),
            ),
            ("DRAM".into(), "2 Channel, 3 GB DDR4_2400_8x8".into()),
            (
                "Cache".into(),
                format!(
                    "64 kB L1I, {} kB L1D, {} MB LLC",
                    self.l1d_bytes / 1024,
                    self.llc_bytes / (1024 * 1024)
                ),
            ),
            ("gem5 Mode".into(), "Full System".into()),
            (
                "OS".into(),
                "Ubuntu 20.04.1 with Linux kernel v5.19.0".into(),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_imul_is_three_cycles() {
        let c = O3Config::default();
        assert_eq!(c.latency(Opcode::Imul), 3);
        assert_eq!(c.initiation_interval(Opcode::Imul), 1, "fully pipelined");
    }

    #[test]
    fn suit_hardening_adds_one_cycle() {
        let c = O3Config::with_imul_latency(4);
        assert_eq!(c.latency(Opcode::Imul), 4);
        // Throughput is unchanged (§4.2).
        assert_eq!(c.initiation_interval(Opcode::Imul), 1);
        // Nothing else moves.
        assert_eq!(c.latency(Opcode::Alu), 1);
        assert_eq!(c.latency(Opcode::Fp), 4);
    }

    #[test]
    fn table5_matches_paper_rows() {
        let rows = O3Config::default().table5();
        assert_eq!(rows.len(), 5);
        assert!(rows[0].1.contains("3 GHz"));
        assert!(rows[2].1.contains("32 kB L1D"));
        assert!(rows[2].1.contains("2 MB LLC"));
        assert!(rows[4].1.contains("v5.19.0"));
    }

    #[test]
    fn ports_route_sensibly() {
        let c = O3Config::default();
        assert_eq!(c.port(Opcode::Imul), Port::Mul);
        assert_eq!(c.port(Opcode::Load), Port::Load);
        assert_eq!(c.port(Opcode::Vxor), Port::Vec);
        assert_eq!(c.port(Opcode::Alu), Port::Alu0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_zero_latency() {
        let _ = O3Config::with_imul_latency(0);
    }
}
