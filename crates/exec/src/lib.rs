//! # suit-exec
//!
//! The deterministic fan-out executor behind every parallel sweep in the
//! SUIT workspace: Monte-Carlo campaigns, fault-injection sweeps, the
//! Table 6 / Fig. 16 row harness and `suit-check`'s parallel exploration
//! all run their indexed job sets through [`run`] (or one of its
//! convenience wrappers) instead of hand-rolling `std::thread::scope`
//! shard loops.
//!
//! ## The contract
//!
//! A job set is a pure function `(0..jobs) -> T`. Workers pull the next
//! unclaimed index from a shared atomic counter (dynamic stealing, so a
//! slow job — 520.omnetpp simulating thirty times more curve-switch
//! events per instruction than 557.xz — never idles the other workers
//! the way static chunking does) and write the result into the
//! pre-allocated slot for *that index*. Results are therefore always
//! returned in job-index order, and as long as the job function is a
//! pure function of its index the output is **byte-identical at every
//! thread count**. Determinism comes from where results land, not from
//! when they are computed.
//!
//! Randomness and observability plug into the same index discipline:
//!
//! * [`run_seeded`] hands job *i* the fork `SuitRng::fork(i)` of one
//!   top-level seed — a pure function of `(seed, i)`, independent of
//!   which worker runs it (the [`suit_rng`] stream-splitting contract).
//! * [`run_telemetry`] gives every job a private recorder and merges the
//!   per-job snapshots in index order after all workers join, so merged
//!   counters, histograms and event streams are thread-count invariant.
//!
//! Panics inside a job abort the fan-out and resurface on the caller
//! with the **failing job index** attached; when several jobs panic
//! concurrently the lowest index wins, keeping even the failure mode
//! deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use suit_rng::SuitRng;
use suit_telemetry::{Telemetry, TelemetrySnapshot};

/// Worker-count policy for a fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threads {
    /// One worker per available hardware thread
    /// (`std::thread::available_parallelism`, falling back to 1).
    #[default]
    Auto,
    /// Exactly this many workers. Must be at least 1 — use
    /// [`Threads::parse`] at CLI boundaries to reject 0 gracefully.
    Fixed(usize),
}

impl Threads {
    /// Resolves the policy to a concrete worker count (always ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics on `Fixed(0)` — reject zero at the parse boundary instead.
    pub fn count(self) -> usize {
        match self {
            Threads::Auto => std::thread::available_parallelism().map_or(1, |n| n.get()),
            Threads::Fixed(n) => {
                assert!(n >= 1, "need at least one worker");
                n
            }
        }
    }

    /// Parses a `--threads` CLI value: a positive integer. Zero, empty
    /// and non-numeric values are errors, never silently clamped.
    pub fn parse(s: &str) -> Result<Threads, String> {
        match s.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Threads::Fixed(n)),
            _ => Err(format!("--threads must be a positive integer, got '{s}'")),
        }
    }
}

/// Extracts a human-readable message from a caught panic payload.
fn payload_msg(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// Runs the indexed job set `(0..jobs) -> T` over scoped worker threads
/// and returns the results **in job-index order**.
///
/// Scheduling is a dynamic work queue (atomic next-index counter): each
/// worker claims the next unclaimed index, computes `job(i)`, and stores
/// the result in the pre-allocated slot `i`. With a pure `job` the
/// returned vector is byte-identical for every `threads` value; only
/// wall-clock changes. `threads` is capped at `jobs`, and a resolved
/// count of 1 (or `jobs <= 1`) runs inline on the caller's thread.
///
/// # Panics
///
/// If any job panics, the remaining queue is abandoned and this function
/// panics with the failing job index and the original message. When
/// multiple in-flight jobs panic, the lowest index is reported.
pub fn run<T, F>(jobs: usize, threads: Threads, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.count().min(jobs);
    if workers <= 1 {
        return (0..jobs)
            .map(|i| match panic::catch_unwind(AssertUnwindSafe(|| job(i))) {
                Ok(v) => v,
                Err(payload) => {
                    panic!("suit-exec: job {i} panicked: {}", payload_msg(payload))
                }
            })
            .collect();
    }

    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let failed: Mutex<Option<(usize, String)>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                while !abort.load(Ordering::Relaxed) {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    match panic::catch_unwind(AssertUnwindSafe(|| job(i))) {
                        Ok(v) => {
                            *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                        }
                        Err(payload) => {
                            abort.store(true, Ordering::Relaxed);
                            let msg = payload_msg(payload);
                            let mut f = failed.lock().unwrap_or_else(|e| e.into_inner());
                            if f.as_ref().map_or(true, |(fi, _)| i < *fi) {
                                *f = Some((i, msg));
                            }
                        }
                    }
                }
            });
        }
    });

    if let Some((i, msg)) = failed.into_inner().unwrap_or_else(|e| e.into_inner()) {
        panic!("suit-exec: job {i} panicked: {msg}");
    }
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every job slot is filled when no job panicked")
        })
        .collect()
}

/// [`run`] with per-index forked randomness: job `i` receives
/// `SuitRng::seed_from_u64(seed).fork(i)` — a pure function of
/// `(seed, i)`, so the fan-out stays byte-identical at every thread
/// count no matter which worker executes which index.
pub fn run_seeded<T, F>(jobs: usize, threads: Threads, seed: u64, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, SuitRng) -> T + Sync,
{
    let root = SuitRng::seed_from_u64(seed);
    run(jobs, threads, move |i| job(i, root.fork(i as u64)))
}

/// [`run`] with per-job telemetry: every job records into its own
/// private recorder (event-ring capacity `capacity`), and the per-job
/// snapshots are merged **in job-index order** after all workers join —
/// so the merged snapshot (counters, histograms, event stream, and any
/// serialization of it) is byte-identical at every thread count.
pub fn run_telemetry<T, F>(
    jobs: usize,
    threads: Threads,
    capacity: usize,
    job: F,
) -> (Vec<T>, TelemetrySnapshot)
where
    T: Send,
    F: Fn(usize, &Telemetry) -> T + Sync,
{
    let pairs = run(jobs, threads, move |i| {
        let tele = Telemetry::with_capacity(capacity);
        let v = job(i, &tele);
        (v, tele.snapshot())
    });
    let mut merged = TelemetrySnapshot::default();
    let mut out = Vec::with_capacity(pairs.len());
    for (v, snap) in pairs {
        merged.merge_shard(&snap);
        out.push(v);
    }
    (out, merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use suit_rng::Rng;

    #[test]
    fn results_are_in_index_order() {
        let got = run(100, Threads::Fixed(4), |i| i * i);
        assert_eq!(got, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_return_empty() {
        // The div_ceil-chunk edge case family, settled once: n = 0 must
        // not spawn workers or panic, at any thread policy.
        for threads in [Threads::Fixed(1), Threads::Fixed(8), Threads::Auto] {
            let got: Vec<u64> = run(0, threads, |_| unreachable!("no jobs to run"));
            assert!(got.is_empty());
        }
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let got = run(3, Threads::Fixed(16), |i| i + 10);
        assert_eq!(got, vec![10, 11, 12]);
    }

    #[test]
    fn single_thread_matches_parallel() {
        let serial = run(37, Threads::Fixed(1), |i| (i as u64).wrapping_mul(0x9E37));
        for threads in [2, 4, 8] {
            let parallel = run(37, Threads::Fixed(threads), |i| {
                (i as u64).wrapping_mul(0x9E37)
            });
            assert_eq!(serial, parallel, "{threads} threads diverged");
        }
    }

    #[test]
    fn seeded_jobs_are_thread_count_invariant() {
        let draw = |_i: usize, mut rng: SuitRng| (rng.u64(), rng.f64());
        let serial = run_seeded(25, Threads::Fixed(1), 0x5017, draw);
        for threads in [2, 4, 8, 16] {
            let parallel = run_seeded(25, Threads::Fixed(threads), 0x5017, draw);
            assert_eq!(serial, parallel, "{threads} threads diverged");
        }
        // And the streams actually differ per index.
        assert_ne!(serial[0], serial[1]);
    }

    #[test]
    fn seeded_jobs_follow_the_root_seed() {
        let draw = |_i: usize, mut rng: SuitRng| rng.u64();
        let a = run_seeded(4, Threads::Fixed(2), 1, draw);
        let b = run_seeded(4, Threads::Fixed(2), 2, draw);
        assert_ne!(a, b, "different seeds must give different job streams");
    }

    #[test]
    fn telemetry_merges_in_index_order() {
        use suit_telemetry::Counter;
        let job = |i: usize, tele: &Telemetry| {
            tele.add(Counter::FaultsInjected, i as u64);
            i
        };
        let (serial, snap1) = run_telemetry(9, Threads::Fixed(1), 64, job);
        for threads in [3, 8] {
            let (parallel, snap_n) = run_telemetry(9, Threads::Fixed(threads), 64, job);
            assert_eq!(serial, parallel, "{threads} threads diverged");
            assert_eq!(snap1, snap_n, "{threads}-thread telemetry diverged");
        }
        assert_eq!(snap1.counter(Counter::FaultsInjected), (0..9u64).sum());
    }

    #[test]
    fn panics_carry_the_failing_job_index() {
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            run(8, Threads::Fixed(4), |i| {
                if i == 5 {
                    panic!("boom at five");
                }
                i
            })
        }));
        let msg = payload_msg(caught.expect_err("must propagate"));
        assert!(msg.contains("job 5"), "{msg}");
        assert!(msg.contains("boom at five"), "{msg}");
    }

    #[test]
    fn serial_panics_carry_the_index_too() {
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            run(3, Threads::Fixed(1), |i| {
                assert!(i < 2, "too far");
                i
            })
        }));
        let msg = payload_msg(caught.expect_err("must propagate"));
        assert!(msg.contains("job 2"), "{msg}");
    }

    #[test]
    fn parse_accepts_positive_and_rejects_junk() {
        assert_eq!(Threads::parse("1"), Ok(Threads::Fixed(1)));
        assert_eq!(Threads::parse("32"), Ok(Threads::Fixed(32)));
        for bad in ["0", "", "-3", "many", "1.5"] {
            assert!(Threads::parse(bad).is_err(), "'{bad}' must be rejected");
        }
    }

    #[test]
    fn auto_resolves_to_at_least_one() {
        assert!(Threads::Auto.count() >= 1);
        assert_eq!(Threads::Fixed(7).count(), 7);
    }
}
