//! Per-application workload profiles (§5.1, §6.2).
//!
//! Each [`WorkloadProfile`] describes one of the paper's 25 traced
//! applications: all 23 SPEC CPU2017 benchmarks, the Nginx HTTPS server,
//! and VLC streaming. Since the original QEMU traces are not available,
//! the profiles encode the *burst statistics* the paper reports or implies
//! and the generator reproduces them synthetically.
//!
//! ## Calibration
//!
//! Burst intervals are derived from each benchmark's **target residency**
//! — the fraction of time SUIT keeps it on the efficient DVFS curve under
//! the 𝑓𝑉 strategy on CPU 𝒞 at −97 mV. The paper pins three of these
//! directly (557.xz 97.1 %, 502.gcc 76.6 %, 520.omnetpp 3.2 %; average
//! 72.7 %, §6.4) and orders the rest by efficiency gain in Fig. 16; the
//! remaining targets are interpolated along that order. Given a residency
//! `r` and a burst span `s`, the mean burst interval is
//! `(s + c) / (1 − r)` where `c ≈ 84 µs` is the per-episode conservative
//! overhead at the Table 7 parameters (switch stalls + deadline).
//!
//! IMUL density comes from §6.1 (0.99 % for 525.x264, 0.07 % average
//! elsewhere); the no-SIMD recompile overheads from Table 4 (per-CPU
//! vendor); IPC values are representative per-benchmark figures used only
//! to convert instruction counts to time.

use std::sync::OnceLock;

use suit_isa::Opcode;

/// Which application group a profile belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2017 integer suite.
    SpecInt,
    /// SPEC CPU2017 floating-point suite.
    SpecFp,
    /// Network applications (Nginx server, VLC client).
    Network,
}

/// A weighted mix of faultable opcodes appearing in a workload's bursts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpcodeMix {
    /// General SIMD mix in Table 1 proportions (SPEC benchmarks).
    SpecSimd,
    /// AES-heavy crypto mix: `AESENC` with some `VPCLMULQDQ` (GCM) and
    /// `VXOR` (Nginx / VLC HTTPS traffic).
    Crypto,
    /// A single opcode (used by targeted tests and ablations).
    Only(Opcode),
}

impl OpcodeMix {
    /// The weighted opcode table for this mix. Weights follow the Table 1
    /// fault-count proportions for [`OpcodeMix::SpecSimd`] (excluding IMUL,
    /// which is hardened rather than trapped).
    pub fn weights(&self) -> Vec<(Opcode, f64)> {
        match self {
            OpcodeMix::SpecSimd => vec![
                (Opcode::Vor, 47.0),
                (Opcode::Vxor, 40.0),
                (Opcode::Vandn, 30.0),
                (Opcode::Vand, 28.0),
                (Opcode::Vsqrtpd, 24.0),
                (Opcode::Vpsrad, 9.0),
                (Opcode::Vpcmp, 5.0),
                (Opcode::Vpmax, 3.0),
                (Opcode::Vpaddq, 1.0),
            ],
            OpcodeMix::Crypto => vec![
                (Opcode::Aesenc, 10.0),
                (Opcode::Vpclmulqdq, 1.0),
                (Opcode::Vxor, 2.0),
            ],
            OpcodeMix::Only(op) => vec![(*op, 1.0)],
        }
    }
}

/// Reference frequency used to convert between µs-denominated burst
/// statistics and instruction counts, GHz (the i9-9900K / Xeon SPEC mean).
pub const REFERENCE_FREQ_GHZ: f64 = 4.5;

/// Per-episode conservative overhead at the Table 7 parameters, µs:
/// two 27 µs switch stalls plus the 30 µs deadline tail.
pub const EPISODE_OVERHEAD_US: f64 = 84.0;

/// A traced application's burst statistics and metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Benchmark name as the paper prints it (e.g. `"557.xz"`).
    pub name: &'static str,
    /// Suite membership.
    pub suite: Suite,
    /// Mean instructions per cycle (for instruction ↔ time conversion,
    /// mirroring the paper's INSTRUCTIONS_RETIRED calibration).
    pub ipc: f64,
    /// Virtual trace length in instructions.
    pub total_insts: u64,
    /// Fraction of instructions that are IMUL (§6.1).
    pub imul_fraction: f64,
    /// Score change when compiled without SSE/AVX on Intel (Table 4;
    /// negative = slower without SIMD).
    pub no_simd_intel: f64,
    /// Score change when compiled without SSE/AVX on AMD (Table 4).
    pub no_simd_amd: f64,
    /// Calibration target: efficient-curve residency under 𝑓𝑉 on CPU 𝒞 at
    /// −97 mV.
    pub target_residency: f64,
    /// Mean instructions between burst starts.
    pub burst_interval_insts: f64,
    /// Log-space σ of the lognormal burst-interval distribution.
    pub interval_log_sigma: f64,
    /// Mean faultable instructions per burst (geometric distribution).
    pub events_per_burst: f64,
    /// Mean non-faultable instructions between events inside a burst.
    pub within_gap_insts: f64,
    /// Which faultable opcodes the bursts contain.
    pub opcode_mix: OpcodeMix,
}

impl WorkloadProfile {
    /// Instructions executed per microsecond at the reference frequency.
    pub fn insts_per_us(&self) -> f64 {
        self.ipc * REFERENCE_FREQ_GHZ * 1e3
    }

    /// Mean burst interval in µs at the reference frequency.
    pub fn burst_interval_us(&self) -> f64 {
        self.burst_interval_insts / self.insts_per_us()
    }

    /// Mean burst span in µs at the reference frequency.
    pub fn burst_span_us(&self) -> f64 {
        self.events_per_burst * self.within_gap_insts / self.insts_per_us()
    }

    /// Mean instructions between faultable instructions over the whole
    /// trace (the §1 "one every N instructions" metric).
    pub fn mean_event_gap_insts(&self) -> f64 {
        self.burst_interval_insts / self.events_per_burst
    }

    /// Expected number of bursts in the full virtual trace.
    pub fn expected_bursts(&self) -> f64 {
        self.total_insts as f64 / self.burst_interval_insts
    }

    /// The no-SIMD recompile overhead for a CPU vendor (`true` = Intel).
    pub fn no_simd_overhead(&self, intel: bool) -> f64 {
        if intel {
            self.no_simd_intel
        } else {
            self.no_simd_amd
        }
    }
}

/// Builds one SPEC profile from calibration targets.
///
/// `span_us` is the burst duration; the interval is derived from the
/// target residency as described in the module docs. `within_gap_insts`
/// sets the *density* of faultable instructions inside a burst — dense
/// vectorized loops (25–250 instructions between faultable SIMD ops, e.g.
/// 519.lbm, 508.namd) are the workloads the paper finds catastrophic under
/// the emulation strategy, while sparse ones (thousands of instructions)
/// emulate almost for free.
#[allow(clippy::too_many_arguments)]
fn spec(
    name: &'static str,
    suite: Suite,
    ipc: f64,
    imul_fraction: f64,
    no_simd_intel: f64,
    no_simd_amd: f64,
    target_residency: f64,
    span_us: f64,
    within_gap_insts: f64,
) -> WorkloadProfile {
    assert!((0.0..1.0).contains(&target_residency));
    let insts_per_us = ipc * REFERENCE_FREQ_GHZ * 1e3;
    let interval_us = (span_us + EPISODE_OVERHEAD_US) / (1.0 - target_residency);
    let span_insts = span_us * insts_per_us;
    WorkloadProfile {
        name,
        suite,
        ipc,
        total_insts: 20_000_000_000,
        imul_fraction,
        no_simd_intel,
        no_simd_amd,
        target_residency,
        burst_interval_insts: interval_us * insts_per_us,
        interval_log_sigma: 0.6,
        events_per_burst: span_insts / within_gap_insts,
        within_gap_insts,
        opcode_mix: OpcodeMix::SpecSimd,
    }
}

/// All 25 profiles, in the Fig. 16 presentation order (decreasing
/// efficiency gain), network applications last.
pub fn all() -> &'static [WorkloadProfile] {
    static PROFILES: OnceLock<Vec<WorkloadProfile>> = OnceLock::new();
    PROFILES.get_or_init(build_profiles)
}

fn build_profiles() -> Vec<WorkloadProfile> {
    let avg_imul = 0.0007; // §6.1: 0.07 % on average outside 525.x264
    let mut v = vec![
        // name, suite, ipc, imul, noSIMD(intel), noSIMD(amd), residency, span µs, within-gap insts
        spec(
            "523.xalancbmk",
            Suite::SpecInt,
            1.3,
            avg_imul,
            -0.002,
            -0.003,
            0.975,
            120.0,
            330.0,
        ),
        spec(
            "557.xz",
            Suite::SpecInt,
            1.1,
            avg_imul,
            -0.005,
            -0.007,
            0.971,
            300.0,
            10_000.0,
        ),
        spec(
            "549.fotonik3d",
            Suite::SpecFp,
            1.6,
            avg_imul,
            -0.030,
            -0.042,
            0.960,
            200.0,
            5_000.0,
        ),
        spec(
            "505.mcf",
            Suite::SpecInt,
            0.5,
            avg_imul,
            0.000,
            0.000,
            0.955,
            150.0,
            250.0,
        ),
        spec(
            "531.deepsjeng",
            Suite::SpecInt,
            1.5,
            avg_imul,
            -0.005,
            -0.007,
            0.945,
            180.0,
            1_000.0,
        ),
        spec(
            "548.exchange2",
            Suite::SpecInt,
            2.3,
            avg_imul,
            0.077,
            0.068,
            0.935,
            150.0,
            10_000.0,
        ),
        spec(
            "519.lbm",
            Suite::SpecFp,
            1.0,
            avg_imul,
            -0.030,
            -0.042,
            0.925,
            250.0,
            25.0,
        ),
        spec(
            "541.leela",
            Suite::SpecInt,
            1.4,
            avg_imul,
            -0.003,
            -0.004,
            0.910,
            200.0,
            1_500.0,
        ),
        spec(
            "538.imagick",
            Suite::SpecFp,
            2.0,
            avg_imul,
            -0.120,
            -0.090,
            0.890,
            300.0,
            2_000.0,
        ),
        spec(
            "525.x264",
            Suite::SpecInt,
            2.2,
            0.0099,
            0.070,
            0.220,
            0.870,
            250.0,
            20_000.0,
        ),
        spec(
            "510.parest",
            Suite::SpecFp,
            1.6,
            avg_imul,
            -0.020,
            -0.028,
            0.820,
            280.0,
            20_000.0,
        ),
        spec(
            "502.gcc",
            Suite::SpecInt,
            1.2,
            avg_imul,
            -0.008,
            -0.011,
            0.766,
            300.0,
            3_000.0,
        ),
        spec(
            "508.namd",
            Suite::SpecFp,
            2.2,
            avg_imul,
            -0.220,
            -0.350,
            0.750,
            350.0,
            150.0,
        ),
        spec(
            "526.blender",
            Suite::SpecFp,
            1.7,
            avg_imul,
            -0.020,
            -0.028,
            0.710,
            320.0,
            34_000.0,
        ),
        spec(
            "511.povray",
            Suite::SpecFp,
            1.9,
            avg_imul,
            -0.010,
            -0.014,
            0.670,
            300.0,
            42_000.0,
        ),
        spec(
            "507.cactuBSSN",
            Suite::SpecFp,
            1.3,
            avg_imul,
            -0.020,
            -0.028,
            0.630,
            350.0,
            4_000.0,
        ),
        spec(
            "500.perlbench",
            Suite::SpecInt,
            1.8,
            avg_imul,
            -0.010,
            -0.014,
            0.590,
            280.0,
            40_000.0,
        ),
        spec(
            "503.bwaves",
            Suite::SpecFp,
            1.9,
            avg_imul,
            -0.015,
            -0.021,
            0.540,
            400.0,
            250.0,
        ),
        spec(
            "554.roms",
            Suite::SpecFp,
            1.5,
            avg_imul,
            -0.033,
            -0.190,
            0.490,
            380.0,
            180.0,
        ),
        spec(
            "544.nab",
            Suite::SpecFp,
            1.7,
            avg_imul,
            -0.020,
            -0.028,
            0.430,
            360.0,
            9_000.0,
        ),
        spec(
            "527.cam4",
            Suite::SpecFp,
            1.4,
            avg_imul,
            -0.020,
            -0.028,
            0.330,
            400.0,
            9_000.0,
        ),
        spec(
            "520.omnetpp",
            Suite::SpecInt,
            0.8,
            avg_imul,
            -0.003,
            -0.004,
            0.032,
            20.0,
            3_500.0,
        ),
        spec(
            "521.wrf",
            Suite::SpecFp,
            1.5,
            avg_imul,
            -0.014,
            -0.053,
            0.100,
            60.0,
            190.0,
        ),
    ];
    // Nginx: wrk-driven HTTPS serving of 100 kB files. Each request
    // encrypts ~6 250 AES blocks (62 500 AESENC rounds) plus GCM GHASH
    // carry-less multiplies — one dense crypto burst per request.
    v.push(WorkloadProfile {
        name: "Nginx",
        suite: Suite::Network,
        ipc: 1.2,
        total_insts: 20_000_000_000,
        imul_fraction: 0.0007,
        no_simd_intel: -0.30, // bit-sliced AES is far slower than AES-NI
        no_simd_amd: -0.30,
        target_residency: 0.45,
        burst_interval_insts: {
            let insts_per_us = 1.2 * REFERENCE_FREQ_GHZ * 1e3;
            let span_us = 800.0; // pipelined requests: ≈ 108 000 crypto ops
            (span_us + EPISODE_OVERHEAD_US) / (1.0 - 0.45) * insts_per_us
        },
        interval_log_sigma: 0.4,
        events_per_burst: 800.0 * 1.2 * REFERENCE_FREQ_GHZ * 1e3 / 40.0,
        within_gap_insts: 40.0,
        opcode_mix: OpcodeMix::Crypto,
    });
    // VLC: streaming a 1080p video over HTTPS (Fig. 7's AES timeline):
    // periodic decrypt bursts as network buffers drain.
    v.push(WorkloadProfile {
        name: "VLC",
        suite: Suite::Network,
        ipc: 1.5,
        total_insts: 20_000_000_000,
        imul_fraction: 0.0007,
        no_simd_intel: -0.25,
        no_simd_amd: -0.25,
        target_residency: 0.48,
        burst_interval_insts: {
            let insts_per_us = 1.5 * REFERENCE_FREQ_GHZ * 1e3;
            let span_us = 600.0; // decrypt burst per network-buffer drain
            (span_us + EPISODE_OVERHEAD_US) / (1.0 - 0.48) * insts_per_us
        },
        interval_log_sigma: 0.8,
        events_per_burst: 600.0 * 1.5 * REFERENCE_FREQ_GHZ * 1e3 / 150.0,
        within_gap_insts: 150.0,
        opcode_mix: OpcodeMix::Crypto,
    });
    v
}

/// The 23 SPEC CPU2017 profiles.
pub fn spec_suite() -> impl Iterator<Item = &'static WorkloadProfile> {
    all().iter().filter(|p| p.suite != Suite::Network)
}

/// Looks a profile up by its paper name.
pub fn by_name(name: &str) -> Option<&'static WorkloadProfile> {
    all().iter().find(|p| p.name == name)
}

/// Named multi-core workload mixes for consolidation studies (§3.1's
/// "laptop CPUs often only have up to 4 cores that tend to be
/// underutilized given typical office or web browsing usage" and the
/// data-center scenarios of §6.4).
pub fn mix(name: &str) -> Option<Vec<&'static WorkloadProfile>> {
    let names: &[&str] = match name {
        // A laptop doing office work next to a media stream.
        "office" => &["523.xalancbmk", "500.perlbench", "557.xz", "VLC"],
        // A web server: TLS front end plus application logic.
        "webserver" => &["Nginx", "502.gcc", "520.omnetpp", "557.xz"],
        // A compute node: dense FP kernels.
        "hpc" => &["519.lbm", "503.bwaves", "554.roms", "549.fotonik3d"],
        // Video pipeline: encode + decode + housekeeping.
        "media" => &["525.x264", "VLC", "538.imagick", "541.leela"],
        _ => return None,
    };
    names.iter().map(|n| by_name(n)).collect()
}

/// The available [`mix`] names.
pub const MIX_NAMES: [&str; 4] = ["office", "webserver", "hpc", "media"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_25_profiles_23_spec() {
        assert_eq!(all().len(), 25);
        assert_eq!(spec_suite().count(), 23);
        let ints = all().iter().filter(|p| p.suite == Suite::SpecInt).count();
        let fps = all().iter().filter(|p| p.suite == Suite::SpecFp).count();
        assert_eq!(ints, 10, "SPECint 2017 has 10 rate benchmarks");
        assert_eq!(fps, 13, "SPECfp 2017 has 13 rate benchmarks");
    }

    #[test]
    fn names_are_unique_and_lookup_works() {
        let mut names: Vec<_> = all().iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 25);
        assert!(by_name("557.xz").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn paper_pinned_residencies() {
        assert!((by_name("557.xz").unwrap().target_residency - 0.971).abs() < 1e-9);
        assert!((by_name("502.gcc").unwrap().target_residency - 0.766).abs() < 1e-9);
        assert!((by_name("520.omnetpp").unwrap().target_residency - 0.032).abs() < 1e-9);
    }

    #[test]
    fn mean_spec_residency_near_72_7_percent() {
        let mean: f64 = spec_suite().map(|p| p.target_residency).sum::<f64>() / 23.0;
        assert!((mean - 0.727).abs() < 0.05, "mean residency {mean:.3}");
    }

    #[test]
    fn x264_imul_density_matches_section_6_1() {
        assert!((by_name("525.x264").unwrap().imul_fraction - 0.0099).abs() < 1e-9);
        let others: Vec<_> = spec_suite().filter(|p| p.name != "525.x264").collect();
        for p in others {
            assert!((p.imul_fraction - 0.0007).abs() < 1e-9, "{}", p.name);
        }
    }

    #[test]
    fn table4_no_simd_anchors() {
        assert_eq!(by_name("508.namd").unwrap().no_simd_intel, -0.22);
        assert_eq!(by_name("508.namd").unwrap().no_simd_amd, -0.35);
        assert_eq!(by_name("525.x264").unwrap().no_simd_intel, 0.07);
        assert_eq!(by_name("525.x264").unwrap().no_simd_amd, 0.22);
        assert_eq!(by_name("548.exchange2").unwrap().no_simd_intel, 0.077);
        assert_eq!(by_name("554.roms").unwrap().no_simd_amd, -0.19);
    }

    #[test]
    fn no_simd_suite_means_match_table4() {
        // Table 4: fprate −4.1 % / intrate +0.5 % on the i9-9900K.
        let fp: Vec<_> = all().iter().filter(|p| p.suite == Suite::SpecFp).collect();
        let int: Vec<_> = all().iter().filter(|p| p.suite == Suite::SpecInt).collect();
        let fp_mean = fp.iter().map(|p| p.no_simd_intel).sum::<f64>() / fp.len() as f64;
        let int_mean = int.iter().map(|p| p.no_simd_intel).sum::<f64>() / int.len() as f64;
        assert!((fp_mean - (-0.041)).abs() < 0.015, "fp mean {fp_mean:.3}");
        assert!((int_mean - 0.005).abs() < 0.01, "int mean {int_mean:.3}");
    }

    #[test]
    fn derived_intervals_follow_residency_formula() {
        let p = by_name("557.xz").unwrap();
        let expected_interval_us = (300.0 + EPISODE_OVERHEAD_US) / (1.0 - 0.971);
        assert!((p.burst_interval_us() - expected_interval_us).abs() < 1.0);
        // xz spends multi-millisecond stretches without faultable
        // instructions — the §5.1 pattern.
        assert!(p.burst_interval_us() > 10_000.0);
    }

    #[test]
    fn average_faultable_gap_is_billions_of_instructions_for_quiet_apps() {
        // §1: on SPEC average, one *infrequent* faultable instruction every
        // ~5 × 10⁹ instructions. Our quietest profiles must be in the 10⁵+
        // range of mean event gaps and dominate the time-weighted picture;
        // sanity-check order of magnitude spread.
        let xz = by_name("557.xz").unwrap();
        let omnetpp = by_name("520.omnetpp").unwrap();
        assert!(xz.mean_event_gap_insts() > 50_000.0);
        assert!(omnetpp.mean_event_gap_insts() < xz.mean_event_gap_insts());
    }

    #[test]
    fn within_burst_gaps_stay_under_deadline() {
        // The deadline (30 µs) must not expire inside a burst, or a burst
        // would fragment into many episodes.
        for p in all() {
            let within_us = p.within_gap_insts / p.insts_per_us();
            assert!(within_us < 30.0, "{}: within-gap {within_us} µs", p.name);
        }
    }

    #[test]
    fn named_mixes_resolve() {
        for name in MIX_NAMES {
            let m = mix(name).unwrap_or_else(|| panic!("{name}"));
            assert_eq!(m.len(), 4, "{name}");
        }
        assert!(mix("nope").is_none());
    }

    #[test]
    fn opcode_mixes_are_well_formed() {
        for p in all() {
            let w = p.opcode_mix.weights();
            assert!(!w.is_empty());
            for (op, weight) in w {
                assert!(op.is_faultable(), "{op}");
                assert!(weight > 0.0);
            }
        }
    }
}
