//! Trace analysis — the §5.1 workload characterisation, plus an analytic
//! residency predictor.
//!
//! The paper's first evaluation step is understanding each workload's
//! faultable-instruction process: how often, how bursty, how long the
//! quiet stretches are. [`TraceReport`] computes those statistics from
//! any burst stream (generated or loaded from disk), and — because SUIT's
//! deadline mechanism is simple — *predicts* the efficient-curve
//! residency a 𝑓𝑉 system would achieve, without running the simulator:
//!
//! ```text
//! conservative time ≈ Σ over episodes (span + deadline + switch overhead)
//! residency ≈ 1 − conservative / total
//! ```
//!
//! where an *episode* is a maximal run of faultable instructions whose
//! gaps stay under the deadline. The simulator's measured residency is
//! validated against this prediction in the integration tests — the two
//! views must agree for calibrated workloads.

use suit_isa::SimDuration;

use crate::event::Burst;
use crate::stats::GapHistogram;

/// Characterisation of one trace at a given deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Total instructions covered (gaps + events).
    pub insts: u64,
    /// Faultable instructions.
    pub events: u64,
    /// Bursts as generated.
    pub bursts: u64,
    /// Deadline-merged episodes (bursts closer than the deadline fuse).
    pub episodes: u64,
    /// Mean instructions between faultable instructions.
    pub mean_event_gap: f64,
    /// Decade histogram of gaps.
    pub histogram: GapHistogram,
    /// Predicted fraction of time on the efficient curve under 𝑓𝑉.
    pub predicted_residency: f64,
}

/// Parameters the predictor needs (the simulator's knobs in instruction
/// units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyzeParams {
    /// Instructions retired per second on the conservative curve
    /// (IPC × base frequency).
    pub insts_per_sec: f64,
    /// Deadline p_dl.
    pub deadline: SimDuration,
    /// Per-episode switch overhead (entry wait + exit, ≈ 60 µs on 𝒞).
    pub episode_overhead: SimDuration,
}

impl AnalyzeParams {
    /// Parameters for CPU 𝒞 at the Table 7 defaults.
    pub fn xeon(ipc: f64) -> Self {
        AnalyzeParams {
            insts_per_sec: ipc * 4.5e9,
            deadline: SimDuration::from_micros(30),
            episode_overhead: SimDuration::from_micros(60),
        }
    }
}

impl TraceReport {
    /// Analyses a burst stream.
    pub fn from_bursts<I: IntoIterator<Item = Burst>>(bursts: I, params: AnalyzeParams) -> Self {
        let deadline_insts = params.deadline.as_secs_f64() * params.insts_per_sec;
        let overhead_insts = params.episode_overhead.as_secs_f64() * params.insts_per_sec;

        let mut insts: u64 = 0;
        let mut events: u64 = 0;
        let mut burst_count: u64 = 0;
        let mut episodes: u64 = 0;
        let mut conservative_insts: f64 = 0.0;
        let mut histogram = GapHistogram::default();
        let mut open_episode = false;

        for b in bursts {
            burst_count += 1;
            events += u64::from(b.events);
            insts += b.total_insts();
            histogram.record(b.gap_insts);
            for _ in 1..b.events {
                histogram.record(u64::from(b.within_gap_insts));
            }

            if open_episode && (b.gap_insts as f64) <= deadline_insts {
                // The previous episode's deadline had not expired: this
                // burst fuses into it; the gap itself runs conservative.
                conservative_insts += b.gap_insts as f64 + b.span_insts() as f64;
            } else {
                if open_episode {
                    // Close the previous episode with its deadline tail.
                    conservative_insts += deadline_insts + overhead_insts;
                }
                episodes += 1;
                conservative_insts += b.span_insts() as f64;
                open_episode = true;
            }
        }
        if open_episode {
            conservative_insts += deadline_insts + overhead_insts;
        }

        let predicted_residency =
            (1.0 - conservative_insts / (insts.max(1) as f64)).clamp(0.0, 1.0);
        TraceReport {
            insts,
            events,
            bursts: burst_count,
            episodes,
            mean_event_gap: insts as f64 / events.max(1) as f64,
            histogram,
            predicted_residency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGen;
    use crate::profile;
    use suit_isa::Opcode;

    fn params() -> AnalyzeParams {
        AnalyzeParams::xeon(1.0)
    }

    #[test]
    fn counts_and_gaps() {
        let bursts = vec![
            Burst::new(1_000_000, 3, 10, Opcode::Aesenc),
            Burst::new(9_000_000, 1, 0, Opcode::Vor),
        ];
        let r = TraceReport::from_bursts(bursts, params());
        assert_eq!(r.bursts, 2);
        assert_eq!(r.events, 4);
        assert_eq!(
            r.episodes, 2,
            "10M-instruction gap far exceeds the deadline"
        );
        assert!(r.mean_event_gap > 2_000_000.0);
    }

    #[test]
    fn bursts_inside_the_deadline_fuse_into_one_episode() {
        // Deadline at IPC 1 / 4.5 GHz = 135 000 instructions.
        let bursts = vec![
            Burst::new(10_000_000, 5, 100, Opcode::Vxor),
            Burst::new(50_000, 5, 100, Opcode::Vxor), // inside the deadline
            Burst::new(10_000_000, 5, 100, Opcode::Vxor),
        ];
        let r = TraceReport::from_bursts(bursts, params());
        assert_eq!(r.bursts, 3);
        assert_eq!(r.episodes, 2);
    }

    #[test]
    fn quiet_traces_predict_high_residency() {
        let p = profile::by_name("557.xz").unwrap();
        let r = TraceReport::from_bursts(TraceGen::new(p, 1).take(300), AnalyzeParams::xeon(p.ipc));
        assert!(
            (r.predicted_residency - p.target_residency).abs() < 0.05,
            "predicted {:.3} vs target {:.3}",
            r.predicted_residency,
            p.target_residency
        );
    }

    #[test]
    fn bursty_traces_predict_low_residency() {
        let p = profile::by_name("520.omnetpp").unwrap();
        let r =
            TraceReport::from_bursts(TraceGen::new(p, 1).take(3_000), AnalyzeParams::xeon(p.ipc));
        assert!(r.predicted_residency < 0.25, "{:.3}", r.predicted_residency);
    }

    #[test]
    fn prediction_matches_across_the_suite() {
        // The analytic predictor and the profile calibration targets agree
        // within a few points for non-thrashing workloads.
        for name in ["502.gcc", "511.povray", "527.cam4", "523.xalancbmk"] {
            let p = profile::by_name(name).unwrap();
            let r = TraceReport::from_bursts(
                TraceGen::new(p, 3).take(2_000),
                AnalyzeParams::xeon(p.ipc),
            );
            assert!(
                (r.predicted_residency - p.target_residency).abs() < 0.10,
                "{name}: predicted {:.3} vs target {:.3}",
                r.predicted_residency,
                p.target_residency
            );
        }
    }
}
