//! Deterministic synthetic trace generation.
//!
//! [`TraceGen`] turns a [`WorkloadProfile`] into a lazy stream of
//! [`Burst`]s: burst intervals are lognormally distributed around the
//! profile mean (matching the heavy-tailed gap-size spread of Figs. 5
//! and 7), burst sizes are geometric, and opcodes are drawn from the
//! profile's mix. Everything is seeded, so a (profile, seed) pair always
//! produces the identical trace — the property the simulator's regression
//! tests rely on.

use suit_rng::{Rng, SuitRng};

use crate::event::Burst;
use crate::profile::WorkloadProfile;
use suit_isa::Opcode;

/// A standard-normal variate via Box–Muller (shared by the generators and
/// the fault model; avoids a `rand_distr` dependency).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A seeded iterator of [`Burst`]s for one workload.
#[derive(Debug, Clone)]
pub struct TraceGen<'p> {
    profile: &'p WorkloadProfile,
    rng: SuitRng,
    /// Instructions emitted so far (including gaps).
    pos_insts: u64,
    /// Cumulative opcode weights for sampling.
    opcode_cdf: Vec<(Opcode, f64)>,
    weight_total: f64,
}

impl<'p> TraceGen<'p> {
    /// Creates a generator for `profile` with a deterministic `seed`.
    pub fn new(profile: &'p WorkloadProfile, seed: u64) -> Self {
        let weights = profile.opcode_mix.weights();
        let mut acc = 0.0;
        let opcode_cdf: Vec<(Opcode, f64)> = weights
            .into_iter()
            .map(|(op, w)| {
                acc += w;
                (op, acc)
            })
            .collect();
        TraceGen {
            profile,
            rng: SuitRng::seed_from_u64(seed ^ hash_name(profile.name)),
            pos_insts: 0,
            weight_total: acc,
            opcode_cdf,
        }
    }

    /// The profile this generator samples from.
    pub fn profile(&self) -> &'p WorkloadProfile {
        self.profile
    }

    /// Instructions emitted so far.
    pub fn position_insts(&self) -> u64 {
        self.pos_insts
    }

    /// Lognormal sample with the given *mean* (not median) and log-space σ.
    fn lognormal(&mut self, mean: f64, log_sigma: f64) -> f64 {
        // E[lognormal(µ, σ)] = exp(µ + σ²/2) → µ = ln(mean) − σ²/2.
        let mu = mean.ln() - 0.5 * log_sigma * log_sigma;
        (mu + log_sigma * standard_normal(&mut self.rng)).exp()
    }

    /// Geometric sample with the given mean (support ≥ 1).
    fn geometric(&mut self, mean: f64) -> u32 {
        if mean <= 1.0 {
            return 1;
        }
        let p = 1.0 / mean;
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let k = (u.ln() / (1.0 - p).ln()).floor() as u64 + 1;
        k.min(u32::MAX as u64) as u32
    }

    fn sample_opcode(&mut self) -> Opcode {
        let x = self.rng.gen_range(0.0..self.weight_total);
        for (op, cum) in &self.opcode_cdf {
            if x < *cum {
                return *op;
            }
        }
        self.opcode_cdf.last().expect("non-empty mix").0
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, so different profiles with the same user seed diverge.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl Iterator for TraceGen<'_> {
    type Item = Burst;

    fn next(&mut self) -> Option<Burst> {
        if self.pos_insts >= self.profile.total_insts {
            return None;
        }
        let p = self.profile;
        // The leading gap is the lognormal interval minus the previous
        // burst's span; clamp at a small positive floor.
        let interval = self.lognormal(p.burst_interval_insts, p.interval_log_sigma);
        let span = p.events_per_burst * p.within_gap_insts;
        let gap = (interval - span).max(p.within_gap_insts * 4.0).round() as u64;

        let events = self.geometric(p.events_per_burst);
        let within = p.within_gap_insts.round().max(1.0) as u32;
        let opcode = self.sample_opcode();

        let burst = Burst::new(gap, events, within, opcode);
        self.pos_insts += burst.total_insts();
        Some(burst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceSummary;
    use crate::profile;

    #[test]
    fn generation_is_deterministic() {
        let p = profile::by_name("502.gcc").unwrap();
        let a: Vec<Burst> = TraceGen::new(p, 42).take(500).collect();
        let b: Vec<Burst> = TraceGen::new(p, 42).take(500).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let p = profile::by_name("502.gcc").unwrap();
        let a: Vec<Burst> = TraceGen::new(p, 1).take(100).collect();
        let b: Vec<Burst> = TraceGen::new(p, 2).take(100).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn same_seed_different_profiles_differ() {
        let xz = profile::by_name("557.xz").unwrap();
        let gcc = profile::by_name("502.gcc").unwrap();
        let a: Vec<u64> = TraceGen::new(xz, 7).take(50).map(|b| b.gap_insts).collect();
        let b: Vec<u64> = TraceGen::new(gcc, 7)
            .take(50)
            .map(|b| b.gap_insts)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn mean_interval_converges_to_profile() {
        let p = profile::by_name("511.povray").unwrap();
        let bursts: Vec<Burst> = TraceGen::new(p, 9).take(4000).collect();
        let mean_total: f64 =
            bursts.iter().map(|b| b.total_insts() as f64).sum::<f64>() / bursts.len() as f64;
        let rel = mean_total / p.burst_interval_insts;
        assert!((0.85..1.15).contains(&rel), "interval ratio {rel:.3}");
    }

    #[test]
    fn mean_events_per_burst_converges() {
        let p = profile::by_name("502.gcc").unwrap();
        let bursts: Vec<Burst> = TraceGen::new(p, 5).take(4000).collect();
        let mean: f64 =
            bursts.iter().map(|b| f64::from(b.events)).sum::<f64>() / bursts.len() as f64;
        let rel = mean / p.events_per_burst;
        assert!((0.85..1.15).contains(&rel), "events ratio {rel:.3}");
    }

    #[test]
    fn trace_terminates_at_total_insts() {
        let mut p = profile::by_name("505.mcf").unwrap().clone();
        p.total_insts = 50_000_000;
        let s = TraceSummary::from_bursts(TraceGen::new(&p, 3));
        assert!(s.insts >= p.total_insts, "stream ended early: {}", s.insts);
        // One burst of overshoot at most.
        assert!(s.insts < p.total_insts + 20 * p.burst_interval_insts as u64);
    }

    #[test]
    fn crypto_profiles_emit_aes() {
        let p = profile::by_name("Nginx").unwrap();
        let bursts: Vec<Burst> = TraceGen::new(p, 11).take(200).collect();
        let aes = bursts
            .iter()
            .filter(|b| b.opcode == suit_isa::Opcode::Aesenc)
            .count();
        assert!(
            aes > bursts.len() / 2,
            "AES should dominate Nginx ({aes}/200)"
        );
        // Dense bursts: tens of thousands of events (62 500 AESENC per
        // 100 kB request).
        let mean_events: f64 =
            bursts.iter().map(|b| f64::from(b.events)).sum::<f64>() / bursts.len() as f64;
        assert!(mean_events > 10_000.0, "{mean_events}");
    }

    #[test]
    fn gaps_are_heavy_tailed() {
        // Lognormal σ = 0.6 ⇒ p95/p50 ≈ e^(1.65·0.6) ≈ 2.7; check spread.
        let p = profile::by_name("526.blender").unwrap();
        let mut gaps: Vec<u64> = TraceGen::new(p, 13)
            .take(2000)
            .map(|b| b.gap_insts)
            .collect();
        gaps.sort_unstable();
        let p50 = gaps[gaps.len() / 2] as f64;
        let p95 = gaps[gaps.len() * 95 / 100] as f64;
        assert!(p95 / p50 > 1.8, "p95/p50 = {:.2}", p95 / p50);
    }
}
