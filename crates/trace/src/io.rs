//! Binary trace serialization — record once, replay exactly.
//!
//! The paper's pipeline records QEMU traces once and replays them through
//! the simulator many times (every CPU × strategy × offset combination).
//! This module gives synthetic traces the same property: a compact
//! varint-encoded `.suittrc` format with the workload metadata needed to
//! resimulate (IPC, virtual length), so expensive generation or external
//! trace imports happen once.
//!
//! Format (little-endian):
//!
//! ```text
//! magic  "SUITTRC1"                      8 bytes
//! name   varint len + UTF-8 bytes
//! ipc    f64 bits                        8 bytes
//! total  varint (virtual instructions)
//! count  varint (number of bursts)
//! bursts count × { gap varint, events varint, within varint, opcode u8 }
//! ```

use std::io::{self, Read, Write};

use suit_isa::Opcode;

use crate::event::Burst;

const MAGIC: &[u8; 8] = b"SUITTRC1";

/// Metadata carried alongside the bursts.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Workload name.
    pub name: String,
    /// Instructions per cycle for time conversion.
    pub ipc: f64,
    /// Virtual trace length in instructions.
    pub total_insts: u64,
}

/// Serialization/deserialization failures.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the `SUITTRC1` magic.
    BadMagic,
    /// A varint ran past 10 bytes or the stream ended mid-value.
    Corrupt(&'static str),
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl core::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::BadMagic => write!(f, "not a SUIT trace (bad magic)"),
            TraceIoError::Corrupt(what) => write!(f, "corrupt trace: {what}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    // Encode into a stack buffer first: one write_all per varint instead
    // of one syscall-able write per byte.
    let mut buf = [0u8; 10];
    let mut n = 0;
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf[n] = byte;
            n += 1;
            return w.write_all(&buf[..n]);
        }
        buf[n] = byte | 0x80;
        n += 1;
    }
}

fn read_varint<R: Read>(r: &mut R) -> Result<u64, TraceIoError> {
    let mut v: u64 = 0;
    for shift in (0..70).step_by(7) {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)
            .map_err(|_| TraceIoError::Corrupt("varint truncated"))?;
        if shift == 63 && b[0] > 1 {
            return Err(TraceIoError::Corrupt("varint overflow"));
        }
        v |= u64::from(b[0] & 0x7F) << shift;
        if b[0] & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(TraceIoError::Corrupt("varint too long"))
}

/// Writes a trace (metadata + bursts) to `w`.
pub fn write_trace<W: Write, I>(w: &mut W, meta: &TraceMeta, bursts: I) -> Result<(), TraceIoError>
where
    I: IntoIterator<Item = Burst>,
{
    let bursts: Vec<Burst> = bursts.into_iter().collect();
    let count = bursts.len() as u64;
    write_trace_counted(w, meta, count, bursts)
}

/// Streaming variant of [`write_trace`] for callers that already know the
/// burst count (e.g. unpacking a chunked container whose index carries
/// it): the iterator is consumed as it is written, so memory stays O(1)
/// instead of collecting the whole trace first.
///
/// Returns `Corrupt` if the iterator yields a different number of bursts
/// than `count` — the header has been written by then, so the output must
/// be discarded on error.
pub fn write_trace_counted<W: Write, I>(
    w: &mut W,
    meta: &TraceMeta,
    count: u64,
    bursts: I,
) -> Result<(), TraceIoError>
where
    I: IntoIterator<Item = Burst>,
{
    w.write_all(MAGIC)?;
    write_varint(w, meta.name.len() as u64)?;
    w.write_all(meta.name.as_bytes())?;
    w.write_all(&meta.ipc.to_bits().to_le_bytes())?;
    write_varint(w, meta.total_insts)?;
    write_varint(w, count)?;
    let mut written = 0u64;
    for b in bursts {
        write_varint(w, b.gap_insts)?;
        write_varint(w, u64::from(b.events))?;
        write_varint(w, u64::from(b.within_gap_insts))?;
        w.write_all(&[b.opcode.index() as u8])?;
        written += 1;
    }
    if written != count {
        return Err(TraceIoError::Corrupt("declared burst count mismatch"));
    }
    Ok(())
}

/// A serialized burst is at least 3 varints (1 byte each) + 1 opcode byte.
const MIN_BURST_BYTES: u64 = 4;

/// How far `Vec` preallocation may run ahead of bytes actually seen when
/// the stream length is unknown. The vector still *grows* to any real
/// count — this only caps what a 10-byte hostile header can reserve.
const UNSIZED_PREALLOC_CAP: usize = 4096;

struct CountingReader<R> {
    inner: R,
    read: u64,
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.read += n as u64;
        Ok(n)
    }
}

/// Reads a trace written by [`write_trace`].
///
/// The declared burst count is untrusted: on a plain `Read` the stream
/// length is unknowable, so preallocation is capped at a small constant
/// and the vector grows only as real burst bytes arrive. When the input
/// is in memory, prefer [`read_trace_bytes`], which rejects counts that
/// cannot fit the remaining bytes before allocating anything.
pub fn read_trace<R: Read>(r: &mut R) -> Result<(TraceMeta, Vec<Burst>), TraceIoError> {
    let mut counting = CountingReader { inner: r, read: 0 };
    read_trace_impl(&mut counting, None)
}

/// Reads a trace from an in-memory buffer, validating the declared burst
/// count against the physically remaining bytes (each burst costs ≥ 4
/// bytes) before any allocation — a hostile header cannot OOM the loader.
pub fn read_trace_bytes(bytes: &[u8]) -> Result<(TraceMeta, Vec<Burst>), TraceIoError> {
    let mut counting = CountingReader {
        inner: bytes,
        read: 0,
    };
    read_trace_impl(&mut counting, Some(bytes.len() as u64))
}

fn read_trace_impl<R: Read>(
    r: &mut CountingReader<R>,
    stream_len: Option<u64>,
) -> Result<(TraceMeta, Vec<Burst>), TraceIoError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TraceIoError::BadMagic);
    }
    let name_len = read_varint(r)? as usize;
    if name_len > 4096 {
        return Err(TraceIoError::Corrupt("name too long"));
    }
    let mut name = vec![0u8; name_len];
    r.read_exact(&mut name)?;
    let name = String::from_utf8(name).map_err(|_| TraceIoError::Corrupt("name not UTF-8"))?;
    let mut ipc_bits = [0u8; 8];
    r.read_exact(&mut ipc_bits)?;
    let ipc = f64::from_bits(u64::from_le_bytes(ipc_bits));
    if !ipc.is_finite() || ipc <= 0.0 {
        return Err(TraceIoError::Corrupt("non-positive IPC"));
    }
    let total_insts = read_varint(r)?;
    let count = read_varint(r)? as usize;
    let capacity = match stream_len {
        Some(len) => {
            let remaining = len.saturating_sub(r.read);
            if (count as u64).saturating_mul(MIN_BURST_BYTES) > remaining {
                return Err(TraceIoError::Corrupt(
                    "burst count exceeds the remaining stream",
                ));
            }
            count
        }
        None => count.min(UNSIZED_PREALLOC_CAP),
    };
    let mut bursts = Vec::with_capacity(capacity);
    for _ in 0..count {
        let gap = read_varint(r)?;
        let events = read_varint(r)?;
        let within = read_varint(r)?;
        let mut op = [0u8; 1];
        r.read_exact(&mut op)?;
        let opcode = *Opcode::ALL
            .get(op[0] as usize)
            .ok_or(TraceIoError::Corrupt("opcode index out of range"))?;
        if events == 0
            || events > u64::from(u32::MAX)
            || within > u64::from(u32::MAX)
            || !opcode.is_faultable()
        {
            return Err(TraceIoError::Corrupt("invalid burst"));
        }
        bursts.push(Burst::new(gap, events as u32, within as u32, opcode));
    }
    Ok((
        TraceMeta {
            name,
            ipc,
            total_insts,
        },
        bursts,
    ))
}

/// Imports an *event list* — the raw format a QEMU-plugin recording
/// produces: one faultable instruction per line as
/// `<instruction-index> <mnemonic>` — and clusters it into [`Burst`]s
/// using `cluster_gap` (events closer than the gap join the current
/// burst; within-burst spacing is averaged).
///
/// Example input:
///
/// ```text
/// 425000000 AESENC
/// 425000040 AESENC
/// 425000080 VPCLMULQDQ
/// 900000000 VOR
/// ```
pub fn import_events<R: std::io::BufRead>(
    reader: R,
    cluster_gap: u64,
) -> Result<Vec<Burst>, TraceIoError> {
    fn mnemonic_to_opcode(m: &str) -> Option<Opcode> {
        let m = m.trim().to_ascii_uppercase();
        Opcode::ALL
            .into_iter()
            .filter(|o| o.is_faultable())
            .find(|o| {
                let name = o.mnemonic().trim_end_matches('*');
                m == name || (m.starts_with(name) && !name.is_empty())
            })
    }

    let mut events: Vec<(u64, Opcode)> = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let idx: u64 = parts
            .next()
            .ok_or(TraceIoError::Corrupt("missing instruction index"))?
            .parse()
            .map_err(|_| TraceIoError::Corrupt("bad instruction index"))?;
        let op = parts
            .next()
            .and_then(mnemonic_to_opcode)
            .ok_or(TraceIoError::Corrupt("unknown mnemonic"))?;
        events.push((idx, op));
    }
    if events.windows(2).any(|w| w[1].0 <= w[0].0) {
        return Err(TraceIoError::Corrupt("indices must be strictly increasing"));
    }

    let mut bursts = Vec::new();
    let mut i = 0;
    let mut prev_end: u64 = 0;
    while i < events.len() {
        let start = events[i].0;
        let opcode = events[i].1;
        let mut j = i + 1;
        while j < events.len() && events[j].0 - events[j - 1].0 <= cluster_gap {
            j += 1;
        }
        let count = (j - i) as u32;
        let span = events[j - 1].0 - start;
        let within = if count > 1 {
            (span / u64::from(count - 1)).max(1) as u32
        } else {
            0
        };
        bursts.push(Burst::new(start - prev_end, count, within, opcode));
        prev_end = events[j - 1].0 + 1;
        i = j;
    }
    Ok(bursts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGen;
    use crate::profile;

    fn sample_meta() -> TraceMeta {
        TraceMeta {
            name: "502.gcc".into(),
            ipc: 1.2,
            total_insts: 1_000_000,
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let p = profile::by_name("502.gcc").unwrap();
        let bursts: Vec<Burst> = TraceGen::new(p, 42).take(2_000).collect();
        let meta = sample_meta();
        let mut buf = Vec::new();
        write_trace(&mut buf, &meta, bursts.clone()).unwrap();
        let (meta2, bursts2) = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(meta, meta2);
        assert_eq!(bursts, bursts2);
    }

    #[test]
    fn format_is_compact() {
        let p = profile::by_name("502.gcc").unwrap();
        let bursts: Vec<Burst> = TraceGen::new(p, 1).take(10_000).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_meta(), bursts).unwrap();
        // Varints keep the per-burst cost well under the 21-byte fixed
        // encoding.
        assert!(buf.len() < 10_000 * 12, "{} bytes", buf.len());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_meta(), Vec::new()).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_trace(&mut buf.as_slice()),
            Err(TraceIoError::BadMagic)
        ));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let p = profile::by_name("557.xz").unwrap();
        let bursts: Vec<Burst> = TraceGen::new(p, 3).take(50).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_meta(), bursts).unwrap();
        for cut in [4usize, 9, 20, buf.len() - 1] {
            let r = read_trace(&mut buf[..cut].to_vec().as_slice());
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn rejects_invalid_opcode_and_ipc() {
        let mut buf = Vec::new();
        write_trace(
            &mut buf,
            &sample_meta(),
            vec![Burst::new(10, 1, 0, Opcode::Aesenc)],
        )
        .unwrap();
        // Corrupt the trailing opcode byte.
        let last = buf.len() - 1;
        buf[last] = 200;
        assert!(matches!(
            read_trace(&mut buf.as_slice()),
            Err(TraceIoError::Corrupt(_))
        ));
    }

    #[test]
    fn import_clusters_events_into_bursts() {
        let text = "\
# a recorded AES burst followed by a lone VOR
1000 AESENC
1040 AESENC
1080 VPCLMULQDQ
900000 VOR
";
        let bursts = import_events(text.as_bytes(), 1_000).unwrap();
        assert_eq!(bursts.len(), 2);
        assert_eq!(bursts[0].gap_insts, 1000);
        assert_eq!(bursts[0].events, 3);
        assert_eq!(bursts[0].within_gap_insts, 40);
        assert_eq!(bursts[0].opcode, Opcode::Aesenc);
        assert_eq!(bursts[1].events, 1);
        assert_eq!(bursts[1].opcode, Opcode::Vor);
        assert_eq!(bursts[1].gap_insts, 900_000 - 1081);
    }

    #[test]
    fn import_accepts_family_mnemonics() {
        // Concrete family members (VPCMPEQD, VPMAXSD) map onto the Table 1
        // families via their canonical prefixes.
        let ok = import_events(
            "10 VOR\n2000000 VPCMPEQD\n4000000 VPMAXSD\n".as_bytes(),
            100,
        )
        .unwrap();
        assert_eq!(ok.len(), 3);
        assert_eq!(ok[1].opcode, Opcode::Vpcmp);
        assert_eq!(ok[2].opcode, Opcode::Vpmax);
    }

    #[test]
    fn import_rejects_garbage() {
        assert!(matches!(
            import_events("abc AESENC\n".as_bytes(), 10),
            Err(TraceIoError::Corrupt(_))
        ));
        assert!(matches!(
            import_events("10 FNORD\n".as_bytes(), 10),
            Err(TraceIoError::Corrupt(_))
        ));
        assert!(matches!(
            import_events("10 AESENC\n5 AESENC\n".as_bytes(), 10),
            Err(TraceIoError::Corrupt(_))
        ));
    }

    #[test]
    fn imported_bursts_roundtrip_through_the_binary_format() {
        let bursts =
            import_events("100 AESENC\n120 AESENC\n500000 VXOR\n".as_bytes(), 1_000).unwrap();
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_meta(), bursts.clone()).unwrap();
        let (_, back) = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(back, bursts);
    }

    #[test]
    fn hostile_burst_count_is_rejected_before_allocation() {
        // A 10-byte-ish header declaring u64::MAX bursts: the slice reader
        // must reject it from the length equation, not try to reserve.
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_meta(), Vec::new()).unwrap();
        // Replace the trailing count varint (0 → one byte) with u64::MAX.
        buf.pop();
        buf.extend(std::iter::repeat_n(0xFF, 9));
        buf.push(0x01);
        match read_trace_bytes(&buf) {
            Err(TraceIoError::Corrupt(msg)) => assert!(msg.contains("remaining stream"), "{msg}"),
            other => panic!("hostile count must be rejected, got {other:?}"),
        }
        // The generic reader caps preallocation and then fails on the
        // (absent) burst bytes — still an error, never an OOM.
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn read_trace_bytes_matches_read_trace() {
        let p = profile::by_name("502.gcc").unwrap();
        let bursts: Vec<Burst> = TraceGen::new(p, 7).take(500).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_meta(), bursts.clone()).unwrap();
        let a = read_trace(&mut buf.as_slice()).unwrap();
        let b = read_trace_bytes(&buf).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.1, bursts);
    }

    #[test]
    fn counted_write_streams_and_validates_the_count() {
        let p = profile::by_name("557.xz").unwrap();
        let bursts: Vec<Burst> = TraceGen::new(p, 5).take(200).collect();
        let mut collected = Vec::new();
        write_trace(&mut collected, &sample_meta(), bursts.clone()).unwrap();
        let mut streamed = Vec::new();
        write_trace_counted(&mut streamed, &sample_meta(), 200, bursts.iter().copied()).unwrap();
        assert_eq!(collected, streamed, "counted write must be byte-identical");

        let mut out = Vec::new();
        assert!(matches!(
            write_trace_counted(&mut out, &sample_meta(), 7, bursts.iter().copied().take(3)),
            Err(TraceIoError::Corrupt(_))
        ));
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v, "{v}");
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("suit_trace_test_{}.suittrc", std::process::id()));
        let p = profile::by_name("Nginx").unwrap();
        let bursts: Vec<Burst> = TraceGen::new(p, 9).take(100).collect();
        {
            let mut f = std::fs::File::create(&path).unwrap();
            write_trace(&mut f, &sample_meta(), bursts.clone()).unwrap();
        }
        let mut f = std::fs::File::open(&path).unwrap();
        let (_, back) = read_trace(&mut f).unwrap();
        assert_eq!(back, bursts);
        let _ = std::fs::remove_file(&path);
    }
}
