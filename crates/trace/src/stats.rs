//! Gap-size statistics and timeline extraction (Figs. 5 and 7).
//!
//! The paper visualises traces as *gap-size timelines*: for each faultable
//! instruction, a point at (instruction index, log₁₀ of the gap since the
//! previous faultable instruction). Horizontal runs are quiet stretches;
//! vertical drops are bursts. [`gap_timeline`] reproduces that series and
//! [`GapHistogram`] the log-bucketed distribution.

use crate::event::Burst;

/// One point of a Fig. 5/7 gap-size timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelinePoint {
    /// Instruction index of the faultable instruction.
    pub index: u64,
    /// Gap (instructions) since the previous faultable instruction.
    pub gap: u64,
}

impl TimelinePoint {
    /// log₁₀ of the gap — the y-axis of Figs. 5 and 7 (zero gap plots as 0).
    pub fn log10_gap(&self) -> f64 {
        if self.gap == 0 {
            0.0
        } else {
            (self.gap as f64).log10()
        }
    }
}

/// Expands bursts into the per-event gap timeline of Figs. 5 and 7,
/// stopping after `max_points` points (the figures truncate, too).
pub fn gap_timeline<I>(bursts: I, max_points: usize) -> Vec<TimelinePoint>
where
    I: IntoIterator<Item = Burst>,
{
    let mut out = Vec::new();
    let mut pos: u64 = 0;
    for b in bursts {
        let mut gap = b.gap_insts;
        pos += b.gap_insts;
        for _ in 0..b.events {
            out.push(TimelinePoint { index: pos, gap });
            if out.len() >= max_points {
                return out;
            }
            pos += u64::from(b.within_gap_insts) + 1;
            gap = u64::from(b.within_gap_insts);
        }
    }
    out
}

/// A histogram of gap sizes in decade buckets: bucket `i` counts gaps in
/// `[10^i, 10^(i+1))`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GapHistogram {
    buckets: [u64; 12],
    total: u64,
}

impl GapHistogram {
    /// Builds a histogram over all per-event gaps of a burst stream.
    pub fn from_bursts<I: IntoIterator<Item = Burst>>(bursts: I) -> Self {
        let mut h = GapHistogram::default();
        for b in bursts {
            h.record(b.gap_insts);
            for _ in 1..b.events {
                h.record(u64::from(b.within_gap_insts));
            }
        }
        h
    }

    /// Records one gap.
    pub fn record(&mut self, gap: u64) {
        let bucket = if gap == 0 {
            0
        } else {
            (gap as f64).log10().floor() as usize
        };
        self.buckets[bucket.min(self.buckets.len() - 1)] += 1;
        self.total += 1;
    }

    /// Count in decade bucket `i` (gaps in `[10^i, 10^(i+1))`).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Total recorded gaps.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether the distribution is bimodal in the burst sense: mass both
    /// below 10³ (within-burst) and at or above 10^`quiet_decade`
    /// (between bursts) — the visual signature of Figs. 5 and 7.
    pub fn is_bursty(&self, quiet_decade: usize) -> bool {
        let dense: u64 = self.buckets[..3].iter().sum();
        let quiet: u64 = self.buckets[quiet_decade..].iter().sum();
        dense > 0 && quiet > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGen;
    use crate::profile;
    use suit_isa::Opcode;

    #[test]
    fn timeline_positions_and_gaps() {
        let bursts = vec![
            Burst::new(100, 3, 10, Opcode::Aesenc),
            Burst::new(1000, 1, 0, Opcode::Vor),
        ];
        let t = gap_timeline(bursts, usize::MAX);
        assert_eq!(t.len(), 4);
        assert_eq!(
            t[0],
            TimelinePoint {
                index: 100,
                gap: 100
            }
        );
        assert_eq!(
            t[1],
            TimelinePoint {
                index: 111,
                gap: 10
            }
        );
        assert_eq!(
            t[2],
            TimelinePoint {
                index: 122,
                gap: 10
            }
        );
        // Next burst starts after the last event's slot plus its gap:
        // the last event at 122 occupies its slot and a trailing
        // within-gap stride (122 + 11 = 133), then the 1000-gap follows.
        assert_eq!(t[3].gap, 1000);
        assert_eq!(t[3].index, 133 + 1000);
    }

    #[test]
    fn timeline_truncates() {
        let bursts = vec![Burst::new(10, 1000, 1, Opcode::Vxor)];
        assert_eq!(gap_timeline(bursts, 7).len(), 7);
    }

    #[test]
    fn log10_gap() {
        assert_eq!(TimelinePoint { index: 0, gap: 0 }.log10_gap(), 0.0);
        assert!(
            (TimelinePoint {
                index: 0,
                gap: 1000
            }
            .log10_gap()
                - 3.0)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn histogram_buckets() {
        let mut h = GapHistogram::default();
        h.record(5); // decade 0
        h.record(50); // decade 1
        h.record(5_000_000); // decade 6
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(6), 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn vlc_trace_shows_fig7_bimodality() {
        // Fig. 7: AES instructions during VLC streaming execute in bursts —
        // dense within-burst gaps coexisting with ≥10⁵-instruction quiet
        // stretches.
        let p = profile::by_name("VLC").unwrap();
        let h = GapHistogram::from_bursts(TraceGen::new(p, 1).take(200));
        assert!(h.is_bursty(5), "expected bimodal gap distribution");
        // Within-burst gaps dominate by count (tens of thousands per burst).
        assert!(h.bucket(1) + h.bucket(2) > h.total() / 2);
    }
}
