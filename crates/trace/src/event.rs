//! Trace events: bursts of faultable instructions.
//!
//! The QEMU traces of §5.1 record individual instruction indices; Figs. 5
//! and 7 show that faultable instructions cluster into bursts with uniform
//! small internal gaps, separated by gaps up to 10⁷ instructions. A
//! [`Burst`] captures exactly that structure, and is the unit the
//! event-based simulator consumes — dense crypto workloads stay O(bursts)
//! instead of O(instructions).

use suit_isa::Opcode;

/// One burst of faultable instructions within an instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Burst {
    /// Non-faultable instructions executed between the end of the previous
    /// burst (or stream start) and the first faultable instruction of this
    /// burst.
    pub gap_insts: u64,
    /// Number of faultable instructions in the burst (≥ 1).
    pub events: u32,
    /// Non-faultable instructions between consecutive faultable
    /// instructions inside the burst.
    pub within_gap_insts: u32,
    /// The dominant faultable opcode of the burst.
    pub opcode: Opcode,
}

impl Burst {
    /// Creates a burst, validating its invariants.
    ///
    /// # Panics
    ///
    /// Panics if `events` is zero or `opcode` is not faultable.
    pub fn new(gap_insts: u64, events: u32, within_gap_insts: u32, opcode: Opcode) -> Self {
        assert!(events >= 1, "a burst contains at least one event");
        assert!(opcode.is_faultable(), "burst opcode must be faultable");
        Burst {
            gap_insts,
            events,
            within_gap_insts,
            opcode,
        }
    }

    /// Instructions spanned from the first to the last faultable
    /// instruction of the burst (zero for a single event).
    pub fn span_insts(&self) -> u64 {
        u64::from(self.events - 1) * (u64::from(self.within_gap_insts) + 1)
    }

    /// Total instructions consumed by the burst including its leading gap:
    /// gap + events + internal gaps.
    pub fn total_insts(&self) -> u64 {
        self.gap_insts
            + u64::from(self.events)
            + u64::from(self.events - 1) * u64::from(self.within_gap_insts)
    }

    /// Instruction offsets (relative to the burst's first event) of every
    /// faultable instruction in the burst.
    pub fn event_offsets(&self) -> impl Iterator<Item = u64> + '_ {
        let stride = u64::from(self.within_gap_insts) + 1;
        (0..u64::from(self.events)).map(move |i| i * stride)
    }
}

/// Summary statistics over a stream of bursts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TraceSummary {
    /// Number of bursts.
    pub bursts: u64,
    /// Total faultable instructions.
    pub events: u64,
    /// Total instructions (faultable + gaps).
    pub insts: u64,
    /// Largest leading gap observed.
    pub max_gap: u64,
    /// Smallest leading gap observed.
    pub min_gap: u64,
}

impl TraceSummary {
    /// Accumulates statistics over bursts.
    pub fn from_bursts<I: IntoIterator<Item = Burst>>(iter: I) -> Self {
        let mut s = TraceSummary {
            min_gap: u64::MAX,
            ..Default::default()
        };
        for b in iter {
            s.bursts += 1;
            s.events += u64::from(b.events);
            s.insts += b.total_insts();
            s.max_gap = s.max_gap.max(b.gap_insts);
            s.min_gap = s.min_gap.min(b.gap_insts);
        }
        if s.bursts == 0 {
            s.min_gap = 0;
        }
        s
    }

    /// Mean instructions per faultable instruction (the "one faultable
    /// instruction every N instructions" metric of §1).
    pub fn insts_per_event(&self) -> f64 {
        if self.events == 0 {
            f64::INFINITY
        } else {
            self.insts as f64 / self.events as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_accounting() {
        let b = Burst::new(1000, 5, 10, Opcode::Aesenc);
        assert_eq!(b.span_insts(), 4 * 11);
        assert_eq!(b.total_insts(), 1000 + 5 + 4 * 10);
        let offs: Vec<u64> = b.event_offsets().collect();
        assert_eq!(offs, vec![0, 11, 22, 33, 44]);
    }

    #[test]
    fn single_event_burst() {
        let b = Burst::new(42, 1, 0, Opcode::Vor);
        assert_eq!(b.span_insts(), 0);
        assert_eq!(b.total_insts(), 43);
        assert_eq!(b.event_offsets().count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn rejects_empty_burst() {
        let _ = Burst::new(0, 0, 0, Opcode::Vor);
    }

    #[test]
    #[should_panic(expected = "must be faultable")]
    fn rejects_non_faultable_opcode() {
        let _ = Burst::new(0, 1, 0, Opcode::Alu);
    }

    #[test]
    fn summary_over_bursts() {
        let bursts = vec![
            Burst::new(100, 2, 5, Opcode::Vxor),
            Burst::new(900, 1, 0, Opcode::Aesenc),
        ];
        let s = TraceSummary::from_bursts(bursts);
        assert_eq!(s.bursts, 2);
        assert_eq!(s.events, 3);
        assert_eq!(s.insts, (100 + 2 + 5) + (900 + 1));
        assert_eq!(s.max_gap, 900);
        assert_eq!(s.min_gap, 100);
        assert!((s.insts_per_event() - 1008.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_sane() {
        let s = TraceSummary::from_bursts(Vec::new());
        assert_eq!(s.bursts, 0);
        assert_eq!(s.min_gap, 0);
        assert!(s.insts_per_event().is_infinite());
    }
}
