//! # suit-trace
//!
//! Instruction traces, workload profiles, and synthetic trace generators —
//! the QEMU-plugin substitute for §5.1 of the SUIT paper.
//!
//! The paper instruments 25 applications (all 23 SPEC CPU2017 benchmarks
//! plus an Nginx HTTPS server and VLC streaming a 1080p video) with a QEMU
//! plugin that records when faultable instructions execute. Its key
//! finding: faultable instructions come in *bursts* separated by large
//! gaps (Figs. 5 and 7), and the gap-size process — not the individual
//! instruction semantics — is what drives SUIT's DVFS-curve dynamics.
//!
//! We cannot run SPEC under QEMU here, so this crate generates synthetic
//! traces with the same structure:
//!
//! * [`event::Burst`] — a burst of faultable instructions: a leading gap,
//!   an event count, and a within-burst gap. Bursts are the unit the
//!   event-based simulator consumes, which keeps dense AES workloads
//!   (62 500 `AESENC`s per HTTPS request) tractable.
//! * [`profile::WorkloadProfile`] — per-application burst statistics
//!   (interval, span, density, opcode mix, IPC, IMUL share, no-SIMD
//!   recompile overhead) calibrated so the simulator lands on the
//!   residencies and overheads the paper reports (e.g. 557.xz ≈ 97 % on
//!   the efficient curve, 520.omnetpp ≈ 3 %, SPEC average ≈ 73 %).
//! * [`gen::TraceGen`] — a deterministic, seedable iterator of bursts.
//! * [`stats`] — gap-size histograms and timeline extraction (Figs. 5, 7).
//! * [`analyze`] — the §5.1 workload characterisation plus an analytic
//!   residency predictor cross-validated against the simulator.
//! * [`io`] — a compact binary trace format, so traces are generated (or
//!   imported) once and replayed across every CPU × strategy × offset
//!   configuration, as the paper's QEMU pipeline did.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod event;
pub mod gen;
pub mod io;
pub mod profile;
pub mod stats;

pub use event::Burst;
pub use gen::TraceGen;
pub use profile::{OpcodeMix, Suite, WorkloadProfile};
