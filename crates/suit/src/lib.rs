//! # SUIT: Secure Undervolting with Instruction Traps
//!
//! A full Rust reproduction of the ASPLOS 2024 paper by Juffinger,
//! Kalinin, Gruss and Mueller: a hardware–software co-design that runs a
//! CPU on a second, more *efficient* DVFS curve by disabling the small
//! set of instructions that fault first when undervolted, trapping their
//! execution with a new `#DO` exception, and statically hardening the one
//! frequent faultable instruction (`IMUL`, 3 → 4 cycles).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Contents |
//! |---|---|
//! | [`isa`] | Opcodes, the Table 1 faultable set, 128-bit values, sim time |
//! | [`emu`] | `#DO` emulation: bit-sliced AES, scalar SIMD semantics |
//! | [`hw`] | DVFS curves, transition delays, power & guardband models |
//! | [`trace`] | Workload profiles and synthetic trace generation |
//! | [`store`] | `SUITTRC2` chunked container, bounded-memory streaming replay |
//! | [`faults`] | Vmin fault model, injection campaigns, security audit |
//! | [`core`] | The SUIT mechanism: MSRs, `#DO`, deadline, strategies |
//! | [`sim`] | The event-based system simulator (Tables 2/6, Figs 12/16) |
//! | [`scenarios`] | SRAM fault-domain & Scrooge attacker-economics campaigns |
//! | [`ooo`] | The out-of-order core model (Fig. 14) |
//! | [`telemetry`] | Counters, histograms, event rings, Perfetto export |
//! | [`exec`] | Deterministic fan-out executor behind every parallel sweep |
//! | [`mod@bench`] | Regenerators for every paper table and figure |
//! | [`check`] | Property testing, shrinking, differential fuzzing |
//! | [`serve`] | Zero-dependency HTTP service: batching, backpressure |
//!
//! ## Quick start
//!
//! ```
//! use suit::hw::{CpuModel, UndervoltLevel};
//! use suit::sim::engine::{simulate, SimConfig};
//! use suit::trace::profile;
//!
//! let cpu = CpuModel::xeon_4208();
//! let workload = profile::by_name("557.xz").unwrap();
//! let cfg = SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(500_000_000);
//! let result = simulate(&cpu, workload, &cfg);
//!
//! // 557.xz spends ~97 % of its time on the efficient curve (§6.4)…
//! assert!(result.residency() > 0.9);
//! // …and gains double-digit energy efficiency.
//! assert!(result.efficiency() > 0.10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use suit_bench as bench;
pub use suit_check as check;
pub use suit_core as core;
pub use suit_emu as emu;
pub use suit_exec as exec;
pub use suit_faults as faults;
pub use suit_hw as hw;
pub use suit_isa as isa;
pub use suit_ooo as ooo;
pub use suit_rng as rng;
pub use suit_scenarios as scenarios;
pub use suit_serve as serve;
pub use suit_sim as sim;
pub use suit_store as store;
pub use suit_telemetry as telemetry;
pub use suit_trace as trace;
